//! Cross-crate integration tests: full client → server → registry →
//! engine flows over both transports, the two showcase workflows
//! end-to-end, the search figures as assertions, and failure injection.

use laminar::prelude::*;
use laminar::workloads::astro::{coordinates_file, VoService};
use std::sync::Arc;

fn system(deployment: Deployment) -> LaminarSystem {
    LaminarSystem::start(deployment).expect("system starts")
}

fn login<'a>(system: &'a mut LaminarSystem, user: &str) -> &'a mut LaminarClient {
    let c = system.client_mut();
    c.register(user, "password").unwrap();
    c.login(user, "password").unwrap();
    c
}

#[test]
fn isprime_showcase_full_serverless_loop() {
    // Register → search → retrieve → run, exactly the paper's §5.1 story.
    let mut sys = system(Deployment::Test);
    let c = login(&mut sys, "zz46");
    c.register_workflow(
        laminar::workloads::isprime::SOURCE,
        "isPrime",
        Some("Workflow that prints random prime numbers"),
    )
    .unwrap();

    // Figure 6 assertion: partial text match finds the workflow.
    let hits = c.search_registry("prime", "workflow", "text").unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0]["name"].as_str(), Some("isPrime"));

    // Run with each mapping; every printed number must be prime.
    for mapping in [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis] {
        let out = c.run_registered("isPrime", RunConfig::iterations(30).with_mapping(mapping, 5)).unwrap();
        for line in &out.printed {
            if let Some(rest) = line.strip_prefix("the num ") {
                let n: i64 = rest.split_whitespace().next().unwrap().parse().unwrap();
                assert!(laminar::workloads::isprime::is_prime(n), "{mapping}: printed non-prime {n}");
            }
        }
        assert_eq!(out.processed["NumberProducer"], 30, "{mapping}");
    }
    sys.stop();
}

#[test]
fn astrophysics_showcase_with_resources_over_tcp() {
    // The §5.2 workflow over the remote (HTTP) deployment, with the VO
    // service installed on the engine and the coordinates staged as a
    // resource — Listings 5-7.
    let vo: Arc<dyn laminar::script::Host + Send + Sync> = Arc::new(VoService::instant());
    let mut sys = LaminarSystem::start_with_hosts(
        Deployment::RemoteSimulated,
        &[("vo", Arc::clone(&vo)), ("astropy", Arc::clone(&vo))],
    )
    .unwrap();
    let c = login(&mut sys, "astro");
    c.register_workflow(laminar::workloads::astro::SOURCE, "Astrophysics", None).unwrap();
    let out = c
        .run_registered(
            "Astrophysics",
            RunConfig::data(vec![Value::Str("coordinates.txt".into())])
                .with_mapping(MappingKind::Multi, 5)
                .with_resource("coordinates.txt", coordinates_file(6).into_bytes()),
        )
        .unwrap();
    // 6 coordinates × 4 galaxies per VOTable.
    assert_eq!(out.printed.len(), 24);
    for line in &out.printed {
        assert!(line.contains("extinction"));
    }
    sys.stop();
}

#[test]
fn semantic_search_and_completion_figures() {
    // Figures 7 and 8 as assertions against a populated registry.
    let mut sys = system(Deployment::Test);
    let c = login(&mut sys, "zz46");
    c.register_workflow(laminar::workloads::isprime::SOURCE, "isPrime", None).unwrap();
    c.register_pe(
        "pe ReverseText : iterative { input text; output output; process { emit(reverse(text)); } }",
        Some("Reverses the characters of each input string"),
    )
    .unwrap();

    // Figure 7: natural-language query ranks the prime checker first.
    let hits = c.search_registry("A PE that checks if a number is prime", "pe", "text").unwrap();
    assert_eq!(hits[0]["name"].as_str(), Some("IsPrime"), "hits: {hits:?}");
    // Scores are sorted descending.
    let scores: Vec<f64> = hits.iter().map(|h| h["score"].as_f64().unwrap()).collect();
    assert!(scores.windows(2).all(|w| w[0] >= w[1]));

    // Figure 8: a code snippet retrieves the random producer.
    let hits = c.search_registry("emit(randint(1, 1000));", "pe", "code").unwrap();
    assert_eq!(hits[0]["name"].as_str(), Some("NumberProducer"), "hits: {hits:?}");
    sys.stop();
}

#[test]
fn auto_summaries_appear_for_undescribed_pes() {
    let mut sys = system(Deployment::Test);
    let c = login(&mut sys, "zz46");
    c.register_pe(
        r#"pe CountWords : generic {
            input input groupby 0; output output;
            init { state.count = {}; }
            process { state.count[input[0]] = get(state.count, input[0], 0) + 1; emit(state.count); }
        }"#,
        None,
    )
    .unwrap();
    let (meta, _) = c.get_pe("CountWords").unwrap();
    assert_eq!(meta["auto"].as_bool(), Some(true));
    let desc = meta["description"].as_str().unwrap();
    assert!(desc.contains("counts words"), "summary: {desc}");
    sys.stop();
}

#[test]
fn shared_ownership_and_privacy_across_users() {
    let mut sys = system(Deployment::Test);
    let src = "pe Shared : producer { output output; process { emit(1); } }";
    {
        let c = sys.client_mut();
        c.register("alice", "password").unwrap();
        c.login("alice", "password").unwrap();
        c.register_pe(src, Some("alice's PE")).unwrap();
    }
    {
        let c = sys.client_mut();
        c.register("bob", "password").unwrap();
        c.login("bob", "password").unwrap();
        // Bob can't see it until he registers the identical PE himself —
        // then he becomes a co-owner of the same entry (paper §3.1).
        assert!(c.get_pe("Shared").is_err());
        let id = c.register_pe(src, None).unwrap();
        let (meta, _) = c.get_pe("Shared").unwrap();
        assert_eq!(meta["peId"].as_i64(), Some(id));
        // The entry kept alice's description — no duplicate row.
        assert_eq!(meta["description"].as_str(), Some("alice's PE"));
    }
    sys.stop();
}

#[test]
fn execution_failures_surface_as_structured_errors() {
    let mut sys = system(Deployment::Test);
    let c = login(&mut sys, "zz46");

    // Runtime failure inside a PE (division by zero).
    let bad = "pe Bad : producer { output output; process { emit(1 / (iteration - 1)); } }";
    let err = c.run_source(bad, RunConfig::iterations(3)).unwrap_err();
    match err {
        ClientError::Api { status, message, .. } => {
            assert_eq!(status, 400);
            assert!(message.contains("division by zero"), "message: {message}");
        }
        other => panic!("expected API error, got {other:?}"),
    }

    // Unparsable source.
    let err = c.run_source("this is not lamscript", RunConfig::iterations(1)).unwrap_err();
    assert!(matches!(err, ClientError::Api { status: 400, .. }));

    // Running an unregistered workflow.
    let err = c.run_registered("ghost", RunConfig::iterations(1)).unwrap_err();
    assert!(matches!(err, ClientError::Api { status: 404, .. }));
    sys.stop();
}

#[test]
fn runaway_pe_is_killed_by_fuel() {
    let mut sys = system(Deployment::Test);
    let c = login(&mut sys, "zz46");
    let hostile = "pe Loop : producer { output output; process { while true { let x = 1; } } }";
    let err = c.run_source(hostile, RunConfig::iterations(1)).unwrap_err();
    match err {
        ClientError::Api { message, .. } => assert!(message.contains("fuel"), "message: {message}"),
        other => panic!("expected API error, got {other:?}"),
    }
    sys.stop();
}

#[test]
fn workflow_members_queryable_and_removable() {
    let mut sys = system(Deployment::Test);
    let c = login(&mut sys, "zz46");
    c.register_workflow(laminar::workloads::wordcount::SOURCE, "wc", None).unwrap();
    let pes = c.get_pes_by_workflow("wc").unwrap();
    assert_eq!(pes.len(), 3);
    // Removing the workflow leaves the PEs registered (they're shared).
    c.remove_workflow("wc").unwrap();
    assert!(c.get_workflow("wc").is_err());
    assert!(c.get_pe("CountWords").is_ok());
    sys.stop();
}

#[test]
fn registry_dump_matches_paper_figure_format() {
    let mut sys = system(Deployment::Test);
    let c = login(&mut sys, "zz46");
    c.register_workflow(laminar::workloads::isprime::SOURCE, "isPrime", None).unwrap();
    let dump = c.get_registry().unwrap();
    let pes = dump["pes"].as_array().unwrap();
    assert_eq!(pes.len(), 3);
    for pe in pes {
        assert!(pe["peId"].as_i64().is_some());
        assert!(pe["peName"].as_str().is_some());
        assert!(pe["description"].as_str().is_some());
    }
    sys.stop();
}

#[test]
fn mapping_equivalence_through_the_full_stack() {
    // Multiset equivalence checked not at the dataflow layer but through
    // the whole client/server/engine path.
    let mut sys = system(Deployment::Test);
    let c = login(&mut sys, "zz46");
    let src = r#"
        pe Seq : producer { output output; process { emit(iteration); } }
        pe Sq : iterative { input x; output output; process { emit(x * x); } }
        workflow Squares { nodes { s = Seq; q = Sq; } connect s.output -> q.x; }
    "#;
    c.register_workflow(src, "squares", None).unwrap();
    let mut reference: Option<Vec<i64>> = None;
    for mapping in [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis] {
        let out = c.run_registered("squares", RunConfig::iterations(25).with_mapping(mapping, 4)).unwrap();
        let mut got: Vec<i64> = out.port_values("Sq", "output").iter().filter_map(Value::as_i64).collect();
        got.sort();
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "{mapping} diverged through the full stack"),
        }
    }
    sys.stop();
}

#[test]
fn fold_of_event_stream_reproduces_batch_result_for_every_mapping() {
    // The PR-4 contract: an enactment is an ordered event stream and the
    // batch `RunResult` is a fold over it. For each mapping, record the
    // live stream of one run and check that folding the recording
    // reproduces the returned result bit-for-bit — outputs, prints, and
    // the complete `RunStats` (counters, instances, timings, event count,
    // first-output latency).
    use laminar::dataflow::{fold_events, RecordingObserver, RunEvent, RunObserver};
    use std::time::Duration;

    let src = r#"
        pe Seq : producer { output output; process { emit(iteration + 1); } }
        pe Halve : iterative { input x; output output; process { if x % 2 == 0 { emit(x / 2); } } }
        pe Note : iterative { input x; output output; process { if x % 5 == 0 { print("milestone", x); } emit(x * 10); } }
    "#;
    let mut g = WorkflowGraph::new("stream-equiv");
    let s = g.add_script_pe(src, "Seq").unwrap();
    let h = g.add_script_pe(src, "Halve").unwrap();
    let n = g.add_script_pe(src, "Note").unwrap();
    g.connect(s, "output", h, "x").unwrap();
    g.connect(h, "output", n, "x").unwrap();

    let opts = RunOptions::iterations(40).with_processes(5);
    for mapping in [&SimpleMapping as &dyn Mapping, &MultiMapping, &MpiMapping, &RedisMapping::default()] {
        let kind = mapping.kind();
        let recorder = RecordingObserver::new();
        let result = mapping
            .execute_observed(&g, &opts, Some(recorder.clone() as std::sync::Arc<dyn RunObserver>))
            .unwrap();
        let recorded = recorder.take();

        // Stream well-formedness: seq is gapless from 0, the terminal
        // event is Finished, and per-instance events nest correctly.
        for (i, (seq, _, _)) in recorded.iter().enumerate() {
            assert_eq!(*seq, i as u64, "{kind}: seq gap");
        }
        assert!(
            matches!(recorded.last().unwrap().2, RunEvent::Finished { .. }),
            "{kind}: stream must end with Finished"
        );
        let started =
            recorded.iter().filter(|(_, _, e)| matches!(e, RunEvent::InstanceStarted { .. })).count();
        let finished =
            recorded.iter().filter(|(_, _, e)| matches!(e, RunEvent::InstanceFinished { .. })).count();
        assert_eq!(started, finished, "{kind}: every started instance finishes");

        // The acceptance criterion: fold(events) == batch result.
        let refolded = fold_events(recorded.into_iter().map(|(_, _, e)| e));
        assert_eq!(refolded.outputs, result.outputs, "{kind}: outputs diverged");
        assert_eq!(refolded.printed, result.printed, "{kind}: prints diverged");
        assert_eq!(refolded.stats, result.stats, "{kind}: stats diverged");

        // Observed runs report a real first-output latency.
        assert!(result.stats.first_output.unwrap() <= result.stats.elapsed.max(Duration::from_nanos(1)));
        assert_eq!(result.stats.events, refolded.stats.events);
    }
}

#[test]
fn streaming_scenario_through_the_full_stack() {
    // The streaming sensor workload end-to-end: submit with events=true,
    // consume the live stream via the client iterator, and check the
    // folded view agrees with the job result.
    use laminar::workloads::streaming::{expected_windows, SensorFleet, SOURCE};

    let fleet: Arc<dyn laminar::script::Host + Send + Sync> = Arc::new(SensorFleet::instant(3));
    let mut sys = LaminarSystem::start_with_hosts(Deployment::Test, &[("sensor", fleet)]).unwrap();
    let c = login(&mut sys, "streamer");
    c.register_workflow(SOURCE, "SensorWindows", Some("windowed sensor aggregation")).unwrap();
    let id = c
        .submit(
            laminar::client::RunTarget::Registered("SensorWindows".into()),
            RunConfig::iterations(96).with_mapping(MappingKind::Multi, 5).with_events(true),
        )
        .unwrap();
    let mut windows = 0usize;
    let mut alerts = 0usize;
    let mut closed_with = None;
    for event in c.event_stream(id, std::time::Duration::from_secs(30)) {
        let event = event.unwrap();
        match event["type"].as_str() {
            Some("output") => windows += 1,
            Some("print") => alerts += 1,
            Some("done") | Some("failed") => closed_with = event["type"].as_str().map(str::to_string),
            _ => {}
        }
    }
    assert_eq!(closed_with.as_deref(), Some("done"));
    assert_eq!(windows, expected_windows(96, 3), "every window aggregate streamed");
    let out = c.wait_job(id, std::time::Duration::from_secs(10)).unwrap();
    assert_eq!(out.port_values("WindowStats", "output").len(), windows);
    assert_eq!(out.printed.len(), alerts, "alerts streamed == alerts in the batch result");
    assert!(out.first_output.is_some(), "streamed runs report first-output latency");
    sys.stop();
}

#[test]
fn cancel_unbounded_sensor_run_via_client_on_all_mappings() {
    // The acceptance scenario for cooperative cancellation: the sensor
    // workload runs in its natural, unbounded mode; the client consumes
    // the live stream, stops the job mid-stream via
    // DELETE /execution/{user}/job/{id}, and the sealed log is a valid
    // prefix — terminated by exactly one `cancelled` marker — whose fold
    // equals the prefix-fold of its recorded events. All four mappings.
    use laminar::dataflow::{fold_events, RunEvent};
    use laminar::workloads::streaming::{SensorFleet, SOURCE};
    use std::time::Duration;

    for mapping in [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis] {
        let fleet: Arc<dyn laminar::script::Host + Send + Sync> = Arc::new(SensorFleet::instant(2));
        let mut sys = LaminarSystem::start_with_hosts(Deployment::Test, &[("sensor", fleet)]).unwrap();
        let c = login(&mut sys, "streamer");
        c.register_workflow(SOURCE, "SensorWindows", None).unwrap();
        let id = c
            .submit(
                laminar::client::RunTarget::Registered("SensorWindows".into()),
                RunConfig::unbounded(Duration::from_micros(200)).with_mapping(mapping, 4),
            )
            .unwrap();

        // Consume the stream; cancel from the consumer loop once four
        // window aggregates have arrived; drain to the seal.
        let mut stream = c.event_stream(id, Duration::from_secs(60));
        let mut wire_events: Vec<Value> = Vec::new();
        let mut outputs = 0usize;
        while let Some(event) = stream.next() {
            let event = event.unwrap_or_else(|e| panic!("{mapping}: stream error {e}"));
            if event["type"].as_str() == Some("output") {
                outputs += 1;
                if outputs == 4 {
                    let r = stream.cancel().unwrap();
                    assert!(
                        matches!(r["status"].as_str(), Some("running") | Some("cancelled")),
                        "{mapping}: {r:?}"
                    );
                }
            }
            wire_events.push(event);
        }
        assert!(outputs >= 4, "{mapping}: cancelled mid-stream after real data");
        let types: Vec<&str> = wire_events.iter().filter_map(|e| e["type"].as_str()).collect();
        assert_eq!(types.last(), Some(&"cancelled"), "{mapping}: sealed by the cancelled marker");
        assert_eq!(types.iter().filter(|t| **t == "cancelled").count(), 1, "{mapping}");
        assert!(!types.contains(&"done") && !types.contains(&"finished"), "{mapping}");

        // The job is terminally cancelled, distinguishable from failure.
        let status = c.job_status(id).unwrap();
        assert_eq!(status["status"].as_str(), Some("cancelled"), "{mapping}");
        match c.wait_job(id, Duration::from_secs(5)) {
            Err(ClientError::Cancelled { job }) => assert_eq!(job, id, "{mapping}"),
            other => panic!("{mapping}: expected Cancelled, got {other:?}"),
        }

        // fold(recorded events) == prefix-fold: parsing the wire log back
        // into run events and folding it reproduces exactly the streamed
        // window aggregates and alerts, in order.
        let run_events: Vec<RunEvent> = wire_events.iter().filter_map(RunEvent::from_value).collect();
        assert!(matches!(run_events.last(), Some(RunEvent::Cancelled)), "{mapping}");
        let streamed_windows: Vec<Value> = wire_events
            .iter()
            .filter(|e| e["type"].as_str() == Some("output"))
            .map(|e| e["value"].clone())
            .collect();
        let streamed_alerts: Vec<String> = wire_events
            .iter()
            .filter(|e| e["type"].as_str() == Some("print"))
            .filter_map(|e| e["line"].as_str().map(str::to_string))
            .collect();
        let folded = fold_events(run_events);
        assert_eq!(
            folded.port_values("WindowStats", "output"),
            &streamed_windows[..],
            "{mapping}: fold != prefix-fold of the recorded stream"
        );
        assert_eq!(folded.printed, streamed_alerts, "{mapping}");
        sys.stop();
    }
}

#[test]
fn cancel_unbounded_job_over_real_tcp() {
    // The DELETE verb and the cancel lifecycle through the actual HTTP
    // front-end (request-line parsing, percent-decoding, connection
    // handling) — not just the in-process transport.
    use std::time::Duration;

    let mut sys = LaminarSystem::start(Deployment::RemoteSimulated).unwrap();
    let c = login(&mut sys, "tcp-cancel");
    let src = r#"
        pe Gen : producer { output output; process { emit(iteration); } }
        workflow Forever { nodes { g = Gen; } }
    "#;
    let id = c
        .submit(
            laminar::client::RunTarget::Source(src.into()),
            RunConfig::unbounded(Duration::from_micros(300)),
        )
        .unwrap();
    let mut stream = c.event_stream(id, Duration::from_secs(30));
    let mut outputs = 0usize;
    let mut last_type = String::new();
    while let Some(event) = stream.next() {
        let event = event.unwrap();
        if event["type"].as_str() == Some("output") {
            outputs += 1;
            if outputs == 3 {
                stream.cancel().unwrap();
            }
        }
        last_type = event["type"].as_str().unwrap_or("?").to_string();
    }
    assert!(outputs >= 3);
    assert_eq!(last_type, "cancelled");
    assert_eq!(c.job_status(id).unwrap()["status"].as_str(), Some("cancelled"));
    match c.wait_job(id, Duration::from_secs(5)) {
        Err(ClientError::Cancelled { job }) => assert_eq!(job, id),
        other => panic!("expected Cancelled over TCP, got {other:?}"),
    }
    sys.stop();
}

#[test]
fn four_mappings_same_graph_same_outputs_and_counts() {
    // The satellite equivalence check: one WorkflowGraph value, enacted by
    // all four back-ends through the shared runtime, must yield identical
    // sorted terminal outputs AND identical per-PE processed/emitted
    // counters — the runtime owns the orchestration, so any divergence
    // would be a transport bug.
    let src = r#"
        pe Seq : producer { output output; process { emit(iteration + 1); } }
        pe Halve : iterative { input x; output output; process { if x % 2 == 0 { emit(x / 2); } } }
        pe Scale : iterative { input x; output output; process { emit(x * 10); } }
    "#;
    let mut g = WorkflowGraph::new("equiv");
    let s = g.add_script_pe(src, "Seq").unwrap();
    let h = g.add_script_pe(src, "Halve").unwrap();
    let k = g.add_script_pe(src, "Scale").unwrap();
    g.connect(s, "output", h, "x").unwrap();
    g.connect(h, "output", k, "x").unwrap();

    let opts = RunOptions::iterations(40).with_processes(5);
    let collect = |m: &dyn Mapping| {
        let r = m.execute(&g, &opts).unwrap();
        let mut out: Vec<i64> = r.port_values("Scale", "output").iter().filter_map(|v| v.as_i64()).collect();
        out.sort();
        (out, r.stats.processed.clone(), r.stats.emitted.clone(), r.stats.timings)
    };

    let (base_out, base_processed, base_emitted, _) = collect(&SimpleMapping);
    assert_eq!(base_out.len(), 20, "evens of 1..=40, halved then scaled");
    for mapping in [&MultiMapping as &dyn Mapping, &MpiMapping, &RedisMapping::default()] {
        let (out, processed, emitted, timings) = collect(mapping);
        let kind = mapping.kind();
        assert_eq!(out, base_out, "{kind}: terminal outputs diverged");
        assert_eq!(processed, base_processed, "{kind}: processed counts diverged");
        assert_eq!(emitted, base_emitted, "{kind}: emitted counts diverged");
        assert!(timings.enact > std::time::Duration::ZERO, "{kind}: stages not timed");
    }
}
