//! The three registry searches of paper §4 (Figures 6, 7 and 8): text
//! search, semantic code search and code completion, over a registry
//! populated with PEs and workflows like the paper's 22-PE scenario.
//!
//! ```text
//! cargo run --example registry_search
//! ```

use laminar::prelude::*;

fn main() {
    let mut system = LaminarSystem::start(Deployment::Test).expect("system starts");
    let client = system.client_mut();
    client.register("zz46", "password").unwrap();
    client.login("zz46", "password").unwrap();

    // Populate: the IsPrime workflow (3 PEs) plus a batch of extra PEs,
    // most registered WITHOUT a description so the summarizer fills it in
    // (paper §3.1.1 / Figure 7's "[auto]" rows).
    client
        .register_workflow(
            laminar::workloads::isprime::SOURCE,
            "isPrime",
            Some("Workflow that prints random prime numbers"),
        )
        .unwrap();
    client
        .register_workflow(
            laminar::workloads::wordcount::SOURCE,
            "wordCount",
            Some("Counts word occurrences across a stream of sentences"),
        )
        .unwrap();

    let extra_pes: &[(&str, Option<&str>)] = &[
        (
            "pe ReverseText : iterative { input text; output output; process { emit(reverse(text)); } }",
            Some("Reverses the characters of each input string"),
        ),
        ("pe SquareNumber : iterative { input num; output output; process { emit(num * num); } }", None),
        (
            r#"pe RunningMax : generic {
                input input; output output;
                init { state.best = -999999; }
                process { if input > state.best { state.best = input; } emit(state.best); }
            }"#,
            None,
        ),
        (
            r#"pe CelsiusToF : iterative { input num; output output; process { emit(num * 9 / 5 + 32); } }"#,
            Some("Converts temperatures from celsius to fahrenheit"),
        ),
    ];
    for (src, desc) in extra_pes {
        client.register_pe(src, *desc).unwrap();
    }
    let dump = client.get_registry().unwrap();
    println!(
        "registry now holds {} PEs and {} workflows\n",
        dump["pes"].as_array().unwrap().len(),
        dump["workflows"].as_array().unwrap().len()
    );

    // --- Figure 6: text search for 'prime' over workflows ----------------
    println!("=== Figure 6: client.search_Registry(\"prime\", \"workflow\") ===");
    let hits = client.search_registry("prime", "workflow", "text").unwrap();
    print_hits(&hits);

    // --- Figure 7: semantic code search over PE descriptions --------------
    println!("\n=== Figure 7: client.search_Registry(\"A PE that checks if a number is prime\", \"pe\", \"text\") ===");
    let hits = client.search_registry("A PE that checks if a number is prime", "pe", "text").unwrap();
    print_hits(&hits[..hits.len().min(5)]);

    // --- Figure 8: code completion from a snippet --------------------------
    println!("\n=== Figure 8: client.search_Registry(\"randint(1, 1000)\", \"pe\", \"code\") ===");
    let hits = client.search_registry("emit(randint(1, 1000));", "pe", "code").unwrap();
    print_hits(&hits[..hits.len().min(5)]);

    // Retrieve the winner for reuse in a new workflow (paper §4.3).
    if let Some(best) = hits.first() {
        let (_, source) = client.get_pe(best["name"].as_str().unwrap()).unwrap();
        println!("\nretrieved top hit '{}' for reuse:\n{}", best["name"].as_str().unwrap(), source);
    }
    system.stop();
}

fn print_hits(hits: &[Value]) {
    println!("{:<5} {:<10} {:<18} {:<8} description", "id", "kind", "name", "score");
    for h in hits {
        let auto = if h["auto"].as_bool() == Some(true) { " [auto]" } else { "" };
        println!(
            "{:<5} {:<10} {:<18} {:<8.4} {}{}",
            h["id"].as_i64().unwrap_or(0),
            h["kind"].as_str().unwrap_or("?"),
            h["name"].as_str().unwrap_or("?"),
            h["score"].as_f64().unwrap_or(0.0),
            h["description"].as_str().unwrap_or(""),
            auto
        );
    }
}
