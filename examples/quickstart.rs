//! Quickstart: the IsPrime showcase end-to-end (paper §5.1, Figures 1
//! and 9, Listings 3–4).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use laminar::prelude::*;

fn main() {
    // Boot a local Laminar deployment (registry + server + engine).
    let mut system = LaminarSystem::start(Deployment::Test).expect("system starts");
    let client = system.client_mut();
    client.register("zz46", "password").unwrap();
    client.login("zz46", "password").unwrap();

    // Register the workflow — this also registers its three PEs (paper §5.1).
    let source = laminar::workloads::isprime::SOURCE;
    client.register_Workflow(source);
    let wid = client
        .register_workflow(source, "isPrime", Some("Workflow that prints random prime numbers"))
        .unwrap();
    println!("registered workflow isPrime (id {wid})\n");

    // Figure 1: the abstract (green) and concrete (blue) graphs.
    let graph = laminar::workloads::isprime::build_graph();
    println!("--- Figure 1: abstract workflow (DOT) ---\n{}", graph.to_dot());
    let plan = laminar::dataflow::ConcretePlan::distribute(&graph, 5).unwrap();
    println!("--- Figure 1: concrete workflow, Multi with 5 processes (DOT) ---\n{}", plan.to_dot(&graph));
    println!("instance distribution: {:?}  (paper: one for PE1, two each for PE2/PE3)\n", plan.instances);

    // Listing 4: run with the Multi mapping, 5 iterations, 5 processes.
    let out = client
        .run_registered("isPrime", RunConfig::iterations(5).with_mapping(MappingKind::Multi, 5))
        .unwrap();

    // Figure 9: the output the Execution Engine sends back to the client.
    println!("--- Figure 9: output sent from the Execution Engine to the Client ---");
    for line in &out.printed {
        println!("{line}");
    }
    println!("\nprocessed: {:?}", out.processed);
    // Stage timings travel at microsecond resolution, so even this tiny run
    // shows where the time went (Table 5's overhead structure).
    println!("overhead:  {}", out.overhead_report());
    system.stop();
}

/// The paper's Python client calls this `register_Workflow`; keep a nod to
/// the original naming in the example.
trait PaperNaming {
    #[allow(non_snake_case)]
    fn register_Workflow(&mut self, source: &str);
}

impl PaperNaming for LaminarClient {
    fn register_Workflow(&mut self, _source: &str) {
        // The snake_case API below is the real call; this is documentation.
    }
}
