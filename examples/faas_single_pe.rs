//! FaaS-style single-PE execution (paper §3.4.1): "users have the option
//! to create workflows with a single PE, similar to traditional FaaS
//! frameworks" — here a lone generic PE is invoked serverlessly with
//! explicit input data, over a *remote* (HTTP + WAN-model) deployment.
//!
//! ```text
//! cargo run --example faas_single_pe
//! ```

use laminar::prelude::*;

const FUNCTION: &str = r#"
pe Classify : generic {
    doc "Classifies a reading as low, normal or high";
    input reading;
    output output;
    process {
        let r = input;
        if r < 10 { emit(["low", r]); }
        else if r < 100 { emit(["normal", r]); }
        else { emit(["high", r]); }
    }
}
"#;

fn main() {
    // Remote deployment: real HTTP over loopback plus the WAN model.
    let mut system = LaminarSystem::start(Deployment::RemoteSimulated).expect("system starts");
    let client = system.client_mut();
    client.register("faas", "password").unwrap();
    client.login("faas", "password").unwrap();

    // Register the "function" in the registry (it gets an auto summary).
    client.register_pe(FUNCTION, None).unwrap();
    let (meta, _) = client.get_pe("Classify").unwrap();
    println!("registered function 'Classify'");
    println!("auto-generated description: {}\n", meta["description"].as_str().unwrap_or("?"));

    // Invoke it like a function: one request, explicit payloads.
    let payload = vec![Value::Int(3), Value::Int(42), Value::Int(712), Value::Int(99)];
    let out = client.run_source(FUNCTION, RunConfig::data(payload.clone())).expect("invocation succeeds");

    println!("invocations and results:");
    for (arg, result) in payload.iter().zip(out.port_values("Classify", "output")) {
        println!("  Classify({arg}) -> {result}");
    }
    println!("\nround-trip (incl. WAN model + provisioning): {:?}", out.total_time);
    system.stop();
}
