//! Stateful word counting under all four mappings — demonstrates that
//! group-by routing (paper Listing 2's `grouping=[0]`) keeps per-key state
//! exact no matter which enactment back-end runs the workflow.
//!
//! ```text
//! cargo run --example wordcount_mappings
//! ```

use laminar::prelude::*;
use laminar::workloads::wordcount::{reference_counts, SOURCE};

fn main() {
    let graph = WorkflowGraph::from_script(SOURCE, "WordCount").expect("workload source is valid");
    let iterations = 16;
    let expected = reference_counts(iterations as usize);

    println!("WordCount over {iterations} sentences, 4 mappings, 6 processes:\n");
    let mappings: Vec<(&str, Box<dyn Mapping>)> = vec![
        ("SIMPLE", Box::new(SimpleMapping)),
        ("MULTI", Box::new(MultiMapping)),
        ("MPI", Box::new(MpiMapping)),
        ("REDIS", Box::new(RedisMapping::default())),
    ];
    for (name, mapping) in &mappings {
        let t0 = std::time::Instant::now();
        let result = mapping
            .execute(&graph, &RunOptions::iterations(iterations).with_processes(6))
            .expect("run succeeds");
        // Final count per word = max over the emitted running counts.
        let mut counts = std::collections::BTreeMap::new();
        for v in result.port_values("CountWords", "output") {
            let w = v[0].as_str().unwrap().to_string();
            let e = counts.entry(w).or_insert(0i64);
            *e = (*e).max(v[1].as_i64().unwrap());
        }
        assert_eq!(counts, expected, "{name} diverged from the reference counts");
        println!(
            "  {name:<7} exact counts ✓  ({} counter instances, {:?})",
            result.stats.instances["CountWords"],
            t0.elapsed()
        );
    }

    println!("\ntop words:");
    let mut sorted: Vec<(&String, &i64)> = expected.iter().collect();
    sorted.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    for (w, n) in sorted.iter().take(6) {
        println!("  {w:<8} {n}");
    }
}
