//! The Internal Extinction astrophysics workflow (paper §5.2, Figure 10,
//! Listings 5–7): coordinates file → simulated Virtual Observatory →
//! VOTable filtering → extinction computation, executed serverlessly with
//! staged resources.
//!
//! ```text
//! cargo run --example astrophysics
//! ```

use laminar::prelude::*;
use laminar::workloads::astro::{coordinates_file, VoService, SOURCE};
use std::sync::Arc;

fn main() {
    // The VO service is a simulated external dependency registered as an
    // engine host (DESIGN.md substitution for the AMIGA VO endpoint).
    let vo: Arc<dyn laminar::script::Host + Send + Sync> = Arc::new(VoService::table5());
    let mut system = LaminarSystem::start_with_hosts(
        Deployment::Test,
        &[("vo", Arc::clone(&vo)), ("astropy", Arc::clone(&vo))],
    )
    .expect("system starts");

    let client = system.client_mut();
    client.register("zz46", "password").unwrap();
    client.login("zz46", "password").unwrap();

    // Listing 5: register the workflow.
    client
        .register_workflow(
            SOURCE,
            "Astrophysics",
            Some("A workflow to compute the internal extinction of galaxies"),
        )
        .unwrap();
    println!("registered workflow 'Astrophysics'");

    // Listing 6: retrieve it back (the registry is the source of truth).
    let (_meta, retrieved) = client.get_workflow("Astrophysics").unwrap();
    assert!(retrieved.contains("workflow Astrophysics"));
    println!("retrieved workflow source ({} bytes)\n", retrieved.len());

    // Listing 7: execute with a staged resources file. The paper uses the
    // Redis mapping with 10 processes; we do the same.
    let coords = coordinates_file(12);
    let out = client
        .run_registered(
            "Astrophysics",
            RunConfig::data(vec![Value::Str("coordinates.txt".into())])
                .with_mapping(MappingKind::Redis, 10)
                .with_resource("coordinates.txt", coords.into_bytes()),
        )
        .unwrap();

    println!("--- extinction results (first 10 lines) ---");
    for line in out.printed.iter().take(10) {
        println!("{line}");
    }
    println!(
        "... {} galaxies processed across {} coordinates in {:?}",
        out.printed.len(),
        12,
        out.execute_time
    );
    system.stop();
}
