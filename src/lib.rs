//! # Laminar
//!
//! A Rust reproduction of **"Laminar: A New Serverless Stream-based
//! Framework with Semantic Code Search and Code Completion"**
//! (Zahra, Li, Filgueira — WORKS 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`json`] | laminar-json | JSON value model / parser / printer |
//! | [`codec`] | laminar-codec | base64, CRC32, lampickle framing |
//! | [`script`] | laminar-script | LamScript language (PE code as data) |
//! | [`redisim`] | laminar-redisim | Redis-like broker |
//! | [`dataflow`] | laminar-dataflow | PEs, graphs, the four mappings |
//! | [`embed`] | laminar-embed | embedding models, summarizer, IR metrics |
//! | [`registry`] | laminar-registry | entities, storage, searches |
//! | [`engine`] | laminar-engine | serverless execution engine |
//! | [`server`] | laminar-server | REST API + HTTP front-end |
//! | [`client`] | laminar-client | the 13 client functions |
//! | [`core`] | laminar-core | deployment presets |
//! | [`workloads`] | laminar-workloads | IsPrime, WordCount, Astrophysics |
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the reproduction
//! methodology.

pub use laminar_client as client;
pub use laminar_codec as codec;
pub use laminar_core as core;
pub use laminar_dataflow as dataflow;
pub use laminar_embed as embed;
pub use laminar_engine as engine;
pub use laminar_json as json;
pub use laminar_redisim as redisim;
pub use laminar_registry as registry;
pub use laminar_script as script;
pub use laminar_server as server;
pub use laminar_workloads as workloads;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use laminar_client::{ClientError, LaminarClient, RunConfig, RunTarget};
    pub use laminar_core::{Deployment, LaminarSystem};
    pub use laminar_dataflow::{
        mapping::{Mapping, MpiMapping, MultiMapping, RedisMapping, SimpleMapping},
        MappingKind, RunOptions, WorkflowGraph,
    };
    pub use laminar_json::{jarr, jobj, Value};
    pub use laminar_server::LaminarServer;
}
