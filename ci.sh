#!/usr/bin/env bash
# The local gate, structured as named tiers. Offline by construction:
# every dependency is a workspace path dependency (see README.md "Zero
# external dependencies").
#
# Usage:
#   ./ci.sh                     # the full gate: every tier, in order
#   ./ci.sh <tier> [<tier>...]  # only the named tiers
#   ./ci.sh --quick             # fail-fast subset: build + test-quick
#   ./ci.sh --list              # show the tiers
#
# Tiers:
#   build        release build of the workspace + examples
#   test         the whole test suite
#   test-quick   the whole suite with property tests (including the
#                VM-vs-interpreter differential suite) at a reduced
#                case count (PROPTEST_CASES=8)
#   stress       the concurrency stress suite (unrestricted test threads)
#                plus the registry search-index differential proptests
#   streaming    streaming + cancellation scenario tiers
#   chaos        durability fault-injection suite at full proptest depth:
#                crash/resume chaos, cross-backend epoch parity, torn
#                journal segments, the mid-stream worker-failure
#                regression, and randomized slow/dead-consumer
#                backpressure (PROPTEST_CASES env raises the depth)
#   bench-smoke  bench compile, smoke runs, and the bench_check
#                regression guard against the committed BENCH_PR*.json
#   lint         rustfmt + clippy (warnings are errors)
#
# Every run ends with a per-tier wall-clock timing summary and, when all
# selected tiers passed, the line "CI GREEN".
set -euo pipefail
cd "$(dirname "$0")"

ALL_TIERS=(build test test-quick stress streaming chaos bench-smoke lint)
QUICK_TIERS=(build test-quick)

tier_build() {
  cargo build --release --workspace
  cargo build --examples
}

tier_test() {
  cargo test -q --workspace
}

tier_test_quick() {
  # Same suite, property tests at 8 cases instead of 64. The differential
  # VM-vs-interpreter proptests still run — the quick gate trades fuzzing
  # depth for latency, not coverage of the parity contract.
  PROPTEST_CASES=8 cargo test -q --workspace
}

tier_stress() {
  cargo test -q -p laminar-server --test concurrent
  # Registry search differential: indexed answers must equal the linear
  # scan under randomized mutation histories, and survive WAL replay.
  cargo test -q -p laminar-registry --test proptest_search
}

tier_streaming() {
  cargo test -q -p laminar-workloads streaming
  cargo test -q --test integration streaming
  cargo test -q --test integration cancel
  cargo test -q -p laminar-dataflow --test proptest_mappings fold_of_recorded_stream
  cargo test -q -p laminar-dataflow --test proptest_cancel
  cargo test -q -p laminar-engine pool::tests::cancel
}

tier_chaos() {
  # Durability under injected faults, at full property-test depth
  # (export PROPTEST_CASES to push deeper). chaos_truncation is its own
  # integration binary because it arms process-global LAMINAR_FAULTS.
  cargo test -q -p laminar-dataflow --test proptest_chaos
  cargo test -q -p laminar-dataflow --test proptest_backends
  cargo test -q -p laminar-engine --test chaos_truncation
  cargo test -q -p laminar-dataflow mid_stream_worker_error
  cargo test -q -p laminar-engine --test proptest_slow_consumer
}

tier_bench_smoke() {
  cargo bench --no-run --workspace
  cargo run --release -p laminar-bench --bin perf_report -- --smoke --out target/bench_smoke.json
  test -s target/bench_smoke.json
  cargo run --release -p laminar-bench --bin concurrent_serving -- --smoke --out target/bench_concurrent_smoke.json
  test -s target/bench_concurrent_smoke.json
  cargo run --release -p laminar-bench --bin streaming_latency -- --smoke --out target/bench_streaming_smoke.json
  test -s target/bench_streaming_smoke.json
  cargo run --release -p laminar-bench --bin durability_overhead -- --smoke --out target/bench_durability_smoke.json
  test -s target/bench_durability_smoke.json
  cargo run --release -p laminar-bench --bin slow_consumer -- --smoke --out target/bench_slow_consumer_smoke.json
  test -s target/bench_slow_consumer_smoke.json
  cargo run --release -p laminar-bench --bin search_scale -- --smoke --out target/bench_search_smoke.json
  test -s target/bench_search_smoke.json
  cargo run --release -p laminar-bench --bin sustained_load -- --smoke --out target/bench_sustained_smoke.json
  test -s target/bench_sustained_smoke.json
  # The regression guard: fresh smoke vs the committed trajectory.
  cargo run --release -p laminar-bench --bin bench_check
}

tier_lint() {
  cargo fmt --check
  cargo clippy --workspace --all-targets -- -D warnings
}

usage() {
  sed -n '2,28p' "$0" | sed 's/^# \{0,1\}//'
}

TIERS=()
QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    --list) printf '%s\n' "${ALL_TIERS[@]}"; exit 0 ;;
    -h|--help) usage; exit 0 ;;
    -*) echo "ci.sh: unknown flag '$arg'" >&2; usage >&2; exit 2 ;;
    *) TIERS+=("$arg") ;;
  esac
done

if [ ${#TIERS[@]} -eq 0 ]; then
  if [ "$QUICK" -eq 1 ]; then
    TIERS=("${QUICK_TIERS[@]}")
  else
    TIERS=("${ALL_TIERS[@]}")
  fi
elif [ "$QUICK" -eq 1 ]; then
  echo "ci.sh: note: explicit tiers given; --quick only selects the default subset" >&2
fi

for tier in "${TIERS[@]}"; do
  case " ${ALL_TIERS[*]} " in
    *" $tier "*) ;;
    *) echo "ci.sh: unknown tier '$tier' (valid: ${ALL_TIERS[*]})" >&2; exit 2 ;;
  esac
done

TIER_NAMES=()
TIER_SECS=()
for tier in "${TIERS[@]}"; do
  echo "== tier: $tier =="
  t0=$SECONDS
  "tier_${tier//-/_}"
  TIER_NAMES+=("$tier")
  TIER_SECS+=($((SECONDS - t0)))
done

echo
echo "== CI timing summary =="
total=0
for i in "${!TIER_NAMES[@]}"; do
  printf '  %-12s %4ds\n' "${TIER_NAMES[$i]}" "${TIER_SECS[$i]}"
  total=$((total + TIER_SECS[i]))
done
printf '  %-12s %4ds\n' "total" "$total"

echo "CI GREEN"
