#!/usr/bin/env bash
# The full local gate. Offline by construction: every dependency is a
# workspace path dependency (see README.md "Zero external dependencies").
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release) =="
cargo build --release --workspace

echo "== build examples =="
cargo build --examples

echo "== test =="
cargo test -q --workspace

echo "== concurrency stress tier (unrestricted test threads) =="
cargo test -q -p laminar-server --test concurrent

echo "== streaming scenario tier =="
cargo test -q -p laminar-workloads streaming
cargo test -q --test integration streaming
cargo test -q -p laminar-dataflow --test proptest_mappings fold_of_recorded_stream

echo "== bench compile (no run) =="
cargo bench --no-run --workspace

echo "== perf_report smoke =="
cargo run --release -p laminar-bench --bin perf_report -- --smoke --out target/bench_smoke.json
test -s target/bench_smoke.json

echo "== concurrent_serving smoke =="
cargo run --release -p laminar-bench --bin concurrent_serving -- --smoke --out target/bench_concurrent_smoke.json
test -s target/bench_concurrent_smoke.json

echo "== streaming_latency smoke =="
cargo run --release -p laminar-bench --bin streaming_latency -- --smoke --out target/bench_streaming_smoke.json
test -s target/bench_streaming_smoke.json

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI GREEN"
