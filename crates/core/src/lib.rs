//! # laminar-core
//!
//! System bootstrap: one call wires the registry, server, execution engine
//! and client into a working deployment. Three presets mirror the paper's
//! evaluation configurations (Tables 4 and 5):
//!
//! * [`Deployment::Local`] — client and server share the process; the
//!   engine provisions real (simulated-cost) environments. The "Local
//!   Execution (with Laminar)" row.
//! * [`Deployment::RemoteSimulated`] — the server runs behind a loopback
//!   HTTP listener and the engine pays a WAN latency model. The "Remote
//!   Execution (with Laminar)" row.
//! * [`Deployment::Test`] — everything instant, for unit tests.
//!
//! ```
//! use laminar_core::LaminarSystem;
//!
//! let mut system = LaminarSystem::start(laminar_core::Deployment::Test).unwrap();
//! let client = system.client_mut();
//! client.register("zz46", "password").unwrap();
//! client.login("zz46", "password").unwrap();
//! ```

use laminar_client::LaminarClient;
use laminar_engine::{ExecutionEngine, NetModel};
use laminar_registry::Registry;
use laminar_script::Host;
use laminar_server::{HttpServer, LaminarServer};
use std::sync::Arc;

/// Deployment presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// In-process client+server, calibrated engine costs.
    Local,
    /// HTTP server on loopback, WAN-modelled engine.
    RemoteSimulated,
    /// In-process, all simulated costs disabled.
    Test,
}

/// A running Laminar system.
pub struct LaminarSystem {
    client: LaminarClient,
    http: Option<HttpServer>,
    deployment: Deployment,
}

impl LaminarSystem {
    /// Start a system with the given preset.
    pub fn start(deployment: Deployment) -> Result<LaminarSystem, String> {
        Self::start_with_hosts(deployment, &[])
    }

    /// Start with simulated-service hosts pre-registered on the engine
    /// (e.g. the astro workload's `vo` service).
    pub fn start_with_hosts(
        deployment: Deployment,
        hosts: &[(&str, Arc<dyn Host + Send + Sync>)],
    ) -> Result<LaminarSystem, String> {
        let engine = match deployment {
            Deployment::Local => ExecutionEngine::new(),
            Deployment::RemoteSimulated => ExecutionEngine::new().with_net(NetModel::wan()),
            Deployment::Test => ExecutionEngine::instant(),
        };
        for (module, host) in hosts {
            engine.hosts().register(module, Arc::clone(host));
        }
        let server = LaminarServer::new(Registry::in_memory(), engine);
        let (client, http) = match deployment {
            Deployment::RemoteSimulated => {
                let http = HttpServer::start(server).map_err(|e| e.to_string())?;
                (LaminarClient::connect(http.addr()), Some(http))
            }
            _ => (LaminarClient::in_process(server), None),
        };
        Ok(LaminarSystem { client, http, deployment })
    }

    /// The client bound to this system.
    pub fn client_mut(&mut self) -> &mut LaminarClient {
        &mut self.client
    }

    /// Which preset is running.
    pub fn deployment(&self) -> Deployment {
        self.deployment
    }

    /// Shut the system down (stops the HTTP listener if any).
    pub fn stop(mut self) {
        if let Some(h) = self.http.take() {
            h.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_client::RunConfig;

    const SRC: &str = "pe Gen : producer { output output; process { emit(iteration); } }";

    #[test]
    fn test_preset_runs() {
        let mut sys = LaminarSystem::start(Deployment::Test).unwrap();
        let c = sys.client_mut();
        c.register("u", "password").unwrap();
        c.login("u", "password").unwrap();
        let out = c.run_source(SRC, RunConfig::iterations(3)).unwrap();
        assert_eq!(out.port_values("Gen", "output").len(), 3);
        assert_eq!(sys.deployment(), Deployment::Test);
        sys.stop();
    }

    #[test]
    fn remote_preset_serves_over_tcp() {
        let mut sys = LaminarSystem::start(Deployment::RemoteSimulated).unwrap();
        let c = sys.client_mut();
        c.register("u", "password").unwrap();
        c.login("u", "password").unwrap();
        let out = c.run_source(SRC, RunConfig::iterations(2)).unwrap();
        assert_eq!(out.port_values("Gen", "output").len(), 2);
        sys.stop();
    }

    #[test]
    fn local_preset_charges_provisioning() {
        let mut sys = LaminarSystem::start(Deployment::Local).unwrap();
        let c = sys.client_mut();
        c.register("u", "password").unwrap();
        c.login("u", "password").unwrap();
        let out = c.run_source(SRC, RunConfig::iterations(1)).unwrap();
        // Env setup ≈ 40ms under the default calibration.
        assert!(out.provision_time >= std::time::Duration::from_millis(10));
        sys.stop();
    }

    #[test]
    fn hosts_visible_to_workflows() {
        use laminar_json::Value;
        use laminar_script::{ErrorKind, ScriptError};
        struct Fixed;
        impl Host for Fixed {
            fn call(&self, _m: &str, name: &str, _a: &[Value]) -> Result<Value, ScriptError> {
                if name == "answer" {
                    Ok(Value::Int(42))
                } else {
                    Err(ScriptError::new(ErrorKind::NameError, "no such fn"))
                }
            }
        }
        let mut sys =
            LaminarSystem::start_with_hosts(Deployment::Test, &[("oracle", Arc::new(Fixed))]).unwrap();
        let c = sys.client_mut();
        c.register("u", "password").unwrap();
        c.login("u", "password").unwrap();
        let src = "pe Ask : producer { output output; process { emit(oracle.answer()); } }";
        let out = c.run_source(src, RunConfig::iterations(1)).unwrap();
        assert_eq!(out.port_values("Ask", "output")[0].as_i64(), Some(42));
        sys.stop();
    }
}
