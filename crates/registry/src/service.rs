//! The registry service: the business-logic layer the server's Service
//! tier delegates to. Combines DAO, auth, the embedding models and the
//! summarizer.

use crate::dao::Dao;
use crate::entities::{decode_code, encode_code, hash_password, PeEntity, UserEntity, WorkflowEntity};
use crate::error::RegistryError;
use crate::search::{
    ranked_pe_hits, text_search_pes, text_search_workflows, QueryType, SearchHit, SearchOptions, SearchType,
    VecField,
};
use crate::store::Store;
use crate::wal::WalStore;
use laminar_embed::models::{model_by_name, EmbeddingModel};
use laminar_embed::summarize::summarize_pe_source;
use laminar_json::Value;
use laminar_script::{parse_script, to_source};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Key used by clients to address a PE or workflow: numeric id or name
/// (the `Union[str, int]` of the Python client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EntityKey {
    /// By numeric id.
    Id(i64),
    /// By unique name.
    Name(String),
}

impl EntityKey {
    /// Interpret a JSON value the way the web client does: integers are
    /// ids, strings that parse as integers are ids, other strings are
    /// names.
    pub fn from_value(v: &Value) -> Option<EntityKey> {
        match v {
            Value::Int(i) => Some(EntityKey::Id(*i)),
            Value::Str(s) => Some(Self::parse(s)),
            _ => None,
        }
    }

    /// Parse from path-segment text.
    pub fn parse(s: &str) -> EntityKey {
        match s.parse::<i64>() {
            Ok(i) => EntityKey::Id(i),
            Err(_) => EntityKey::Name(s.to_string()),
        }
    }
}

impl From<i64> for EntityKey {
    fn from(i: i64) -> Self {
        EntityKey::Id(i)
    }
}

impl From<&str> for EntityKey {
    fn from(s: &str) -> Self {
        EntityKey::parse(s)
    }
}

/// One search call's outcome: hits plus the embed/rank timing split the
/// server puts on the wire (the read path's analogue of
/// `plan_us`/`enact_us`/`collect_us`).
#[derive(Debug, Clone)]
pub struct SearchResponse {
    /// The winners, best-first.
    pub hits: Vec<SearchHit>,
    /// Microseconds spent embedding the query (zero for text modes).
    pub embed_us: u64,
    /// Microseconds spent matching/ranking + materializing winners.
    pub rank_us: u64,
}

/// The registry service.
pub struct Registry {
    dao: Dao,
    search_model: Box<dyn EmbeddingModel>,
    completion_model: Box<dyn EmbeddingModel>,
    sessions: HashMap<String, i64>,
    session_counter: u64,
    /// Total search calls served (atomic: search holds only a read lock).
    searches: AtomicU64,
}

impl Registry {
    /// In-memory registry with the paper's chosen models
    /// (unixcoder-code-search + ReACC-retriever-py).
    pub fn in_memory() -> Registry {
        Registry::with_dao(Dao::new(Store::new(), WalStore::ephemeral()))
    }

    /// Durable registry persisted under `dir`.
    pub fn open(dir: &Path) -> Result<Registry, RegistryError> {
        let (store, wal) = WalStore::open(dir)?;
        Ok(Registry::with_dao(Dao::new(store, wal)))
    }

    fn with_dao(dao: Dao) -> Registry {
        Registry {
            dao,
            search_model: model_by_name("unixcoder-code-search").expect("model exists"),
            completion_model: model_by_name("ReACC-retriever-py").expect("model exists"),
            sessions: HashMap::new(),
            session_counter: 0,
            searches: AtomicU64::new(0),
        }
    }

    /// Swap the search/completion models (used by the model ablations).
    pub fn with_models(
        mut self,
        search: Box<dyn EmbeddingModel>,
        completion: Box<dyn EmbeddingModel>,
    ) -> Registry {
        self.search_model = search;
        self.completion_model = completion;
        self
    }

    /// Access the DAO (tests and server-internal queries).
    pub fn dao(&self) -> &Dao {
        &self.dao
    }

    /// Force a snapshot to disk (durable mode only).
    pub fn checkpoint(&mut self) -> Result<(), RegistryError> {
        self.dao.checkpoint()
    }

    /// Enable or disable the search index (bench baseline knob).
    pub fn set_index_enabled(&mut self, enabled: bool) {
        self.dao.set_index_enabled(enabled);
    }

    // ---- auth -------------------------------------------------------------

    /// Register a new user (paper client function 1).
    pub fn register_user(&mut self, name: &str, password: &str) -> Result<UserEntity, RegistryError> {
        if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '-') {
            return Err(RegistryError::Invalid {
                field: "userName",
                message: "must be non-empty alphanumeric".into(),
            });
        }
        if password.len() < 4 {
            return Err(RegistryError::Invalid {
                field: "password",
                message: "must be at least 4 characters".into(),
            });
        }
        self.dao.insert_user(UserEntity {
            user_id: 0,
            user_name: name.to_string(),
            password_hash: hash_password(name, password),
        })
    }

    /// Login: verify credentials and mint a session token (client fn 2).
    pub fn login(&mut self, name: &str, password: &str) -> Result<String, RegistryError> {
        let user = self
            .dao
            .user_by_name(name)
            .map_err(|_| RegistryError::Unauthorized("unknown user or wrong password".into()))?;
        if user.password_hash != hash_password(name, password) {
            return Err(RegistryError::Unauthorized("unknown user or wrong password".into()));
        }
        self.session_counter += 1;
        let token = format!("tok-{}", hash_password(name, &format!("session{}", self.session_counter)));
        self.sessions.insert(token.clone(), user.user_id);
        Ok(token)
    }

    /// Resolve a session token to its user.
    pub fn auth(&self, token: &str) -> Result<UserEntity, RegistryError> {
        let id = self
            .sessions
            .get(token)
            .ok_or_else(|| RegistryError::Unauthorized("invalid or expired session".into()))?;
        UserEntity::from_row(
            self.dao
                .store
                .users
                .get(*id)
                .ok_or_else(|| RegistryError::Unauthorized("session user vanished".into()))?,
        )
        .ok_or(RegistryError::Storage("corrupt user row".into()))
    }

    /// All user names (the `/auth/all` endpoint).
    pub fn all_user_names(&self) -> Vec<String> {
        self.dao.all_users().into_iter().map(|u| u.user_name).collect()
    }

    fn user_id(&self, user: &str) -> Result<i64, RegistryError> {
        Ok(self.dao.user_by_name(user)?.user_id)
    }

    // ---- PEs ---------------------------------------------------------------

    /// Register a PE from LamScript source (client fn 3).
    ///
    /// * Canonicalizes the source and extracts the PE declaration.
    /// * If no description was given, generates one with the summarizer
    ///   (paper §3.1.1) and flags it as auto-generated.
    /// * Computes and stores both embeddings once (§3.1.1).
    /// * If a PE with the same name and identical code already exists, the
    ///   user is added as an additional owner instead of duplicating (§3.1).
    pub fn register_pe(
        &mut self,
        user: &str,
        source: &str,
        description: Option<&str>,
    ) -> Result<PeEntity, RegistryError> {
        let uid = self.user_id(user)?;
        let script = parse_script(source)
            .map_err(|e| RegistryError::Invalid { field: "peCode", message: e.to_string() })?;
        let decl = script
            .pes()
            .next()
            .ok_or(RegistryError::Invalid {
                field: "peCode",
                message: "source contains no PE declaration".into(),
            })?
            .clone();
        let canonical = to_source(&script);
        // Warm the process-wide compile cache at registration time so the
        // first workflow that enacts this PE gets a bytecode cache hit
        // instead of paying the lowering cost on the serving path. A compile
        // error is not a registration error: the PE still registers and will
        // fall back to the interpreter at enactment.
        let _ = laminar_script::compile::warm(&canonical);

        if let Ok(existing) = self.dao.pe_by_name(&decl.name) {
            if existing.source().as_deref() == Some(canonical.as_str()) {
                // Shared-owner rule: same PE, new owner.
                self.dao.link_user_pe(uid, existing.pe_id)?;
                return Ok(existing);
            }
            return Err(RegistryError::Duplicate { entity: "PE", field: "peName", value: decl.name.clone() });
        }

        let (description, generated) = match description {
            Some(d) if !d.trim().is_empty() => (d.trim().to_string(), false),
            _ => {
                let auto = summarize_pe_source(&canonical)
                    .unwrap_or_else(|| format!("A {} PE named {}.", decl.kind.as_str(), decl.name));
                (auto, true)
            }
        };
        let pe = PeEntity {
            pe_id: 0,
            pe_name: decl.name.clone(),
            description: description.clone(),
            description_generated: generated,
            pe_code: encode_code(&canonical),
            pe_imports: laminar_script::analysis::pe_imports(&decl),
            code_embedding: self.completion_model.embed_code(&canonical),
            desc_embedding: self.search_model.embed_text(&description),
        };
        self.dao.insert_pe(pe, uid)
    }

    /// Fetch a PE by id or name (client fn 7); ownership enforced.
    pub fn get_pe(&self, user: &str, key: &EntityKey) -> Result<PeEntity, RegistryError> {
        let uid = self.user_id(user)?;
        let pe = match key {
            EntityKey::Id(id) => self.dao.pe_by_id(*id)?,
            EntityKey::Name(name) => self.dao.pe_by_name(name)?,
        };
        if !self.dao.store.user_pes.linked(uid, pe.pe_id) {
            return Err(RegistryError::NotFound { entity: "PE", key: pe.pe_name });
        }
        Ok(pe)
    }

    /// All PEs owned by a user.
    pub fn all_pes(&self, user: &str) -> Result<Vec<PeEntity>, RegistryError> {
        Ok(self.dao.pes_of_user(self.user_id(user)?))
    }

    /// Remove a PE from a user's registry (client fn 5).
    pub fn remove_pe(&mut self, user: &str, key: &EntityKey) -> Result<(), RegistryError> {
        let uid = self.user_id(user)?;
        let pe = match key {
            EntityKey::Id(id) => self.dao.pe_by_id(*id)?,
            EntityKey::Name(name) => self.dao.pe_by_name(name)?,
        };
        self.dao.remove_pe_for_user(uid, pe.pe_id)
    }

    // ---- workflows ----------------------------------------------------------

    /// Register a workflow (client fn 4). Also registers every PE the
    /// workflow declaration references (the paper's `run()` does this
    /// automatically) and links them to the workflow.
    pub fn register_workflow(
        &mut self,
        user: &str,
        source: &str,
        entry_point: &str,
        description: Option<&str>,
    ) -> Result<WorkflowEntity, RegistryError> {
        let uid = self.user_id(user)?;
        let script = parse_script(source)
            .map_err(|e| RegistryError::Invalid { field: "workflowCode", message: e.to_string() })?;
        let decl = script
            .workflows()
            .next()
            .ok_or(RegistryError::Invalid {
                field: "workflowCode",
                message: "source contains no workflow declaration".into(),
            })?
            .clone();
        let canonical = to_source(&script);
        if self.dao.workflow_by_entry(entry_point).is_ok() {
            return Err(RegistryError::Duplicate {
                entity: "Workflow",
                field: "entryPoint",
                value: entry_point.to_string(),
            });
        }
        let description = description
            .map(str::to_string)
            .or_else(|| decl.doc.clone())
            .unwrap_or_else(|| format!("Workflow {}", decl.name));
        let wf = self.dao.insert_workflow(
            WorkflowEntity {
                workflow_id: 0,
                workflow_name: decl.name.clone(),
                entry_point: entry_point.to_string(),
                description,
                workflow_code: encode_code(&canonical),
            },
            uid,
        )?;
        // Register each referenced PE (if new) and link membership.
        for node in &decl.nodes {
            let pe_source = {
                let pe_decl = script.pe(&node.pe_name).ok_or(RegistryError::Invalid {
                    field: "workflowCode",
                    message: format!("workflow references undefined PE '{}'", node.pe_name),
                })?;
                let single =
                    laminar_script::Script { items: vec![laminar_script::Item::Pe(pe_decl.clone())] };
                to_source(&single)
            };
            let pe = self.register_pe(user, &pe_source, None)?;
            self.dao.link_workflow_pe(wf.workflow_id, pe.pe_id)?;
        }
        Ok(wf)
    }

    /// Fetch a workflow by id or entry point (client fn 8).
    pub fn get_workflow(&self, user: &str, key: &EntityKey) -> Result<WorkflowEntity, RegistryError> {
        let uid = self.user_id(user)?;
        let wf = match key {
            EntityKey::Id(id) => self.dao.workflow_by_id(*id)?,
            EntityKey::Name(name) => self.dao.workflow_by_entry(name)?,
        };
        if !self.dao.store.user_workflows.linked(uid, wf.workflow_id) {
            return Err(RegistryError::NotFound { entity: "Workflow", key: wf.entry_point });
        }
        Ok(wf)
    }

    /// All workflows owned by a user.
    pub fn all_workflows(&self, user: &str) -> Result<Vec<WorkflowEntity>, RegistryError> {
        Ok(self.dao.workflows_of_user(self.user_id(user)?))
    }

    /// PEs belonging to a workflow (client fn 9).
    pub fn pes_by_workflow(&self, user: &str, key: &EntityKey) -> Result<Vec<PeEntity>, RegistryError> {
        let wf = self.get_workflow(user, key)?;
        Ok(self.dao.pes_of_workflow(wf.workflow_id))
    }

    /// Remove a workflow (client fn 6).
    pub fn remove_workflow(&mut self, user: &str, key: &EntityKey) -> Result<(), RegistryError> {
        let uid = self.user_id(user)?;
        let wf = match key {
            EntityKey::Id(id) => self.dao.workflow_by_id(*id)?,
            EntityKey::Name(name) => self.dao.workflow_by_entry(name)?,
        };
        self.dao.remove_workflow_for_user(uid, wf.workflow_id)
    }

    /// Attach an existing PE to an existing workflow (the PUT endpoint of
    /// Table 3).
    pub fn add_pe_to_workflow(
        &mut self,
        user: &str,
        workflow_id: i64,
        pe_id: i64,
    ) -> Result<(), RegistryError> {
        let uid = self.user_id(user)?;
        if !self.dao.store.user_workflows.linked(uid, workflow_id) {
            return Err(RegistryError::NotFound { entity: "Workflow", key: workflow_id.to_string() });
        }
        self.dao.link_workflow_pe(workflow_id, pe_id)
    }

    // ---- search -------------------------------------------------------------

    /// The unified search entry point (client fn 10, endpoint
    /// `GET /registry/{user}/search/{search}/type/{type}`), with default
    /// options.
    pub fn search(
        &self,
        user: &str,
        query: &str,
        search_type: SearchType,
        query_type: QueryType,
    ) -> Result<Vec<SearchHit>, RegistryError> {
        Ok(self.search_with(user, query, search_type, query_type, &SearchOptions::default())?.hits)
    }

    /// Search with explicit options, returning the embed/rank timing
    /// split alongside the hits.
    pub fn search_with(
        &self,
        user: &str,
        query: &str,
        search_type: SearchType,
        query_type: QueryType,
        opts: &SearchOptions,
    ) -> Result<SearchResponse, RegistryError> {
        let uid = self.user_id(user)?;
        self.searches.fetch_add(1, Ordering::Relaxed);
        let mut embed_us = 0u64;
        let mut embed = |model: &dyn EmbeddingModel, code: bool| {
            let t = Instant::now();
            let q = if code { model.embed_code(query) } else { model.embed_text(query) };
            embed_us = t.elapsed().as_micros() as u64;
            q
        };
        let rank_start;
        let hits = match (search_type, query_type) {
            (SearchType::Workflow, _) => {
                rank_start = Instant::now();
                text_search_workflows(&self.dao, uid, query, opts)
            }
            (SearchType::Pe, QueryType::Text) => {
                let q = embed(self.search_model.as_ref(), false);
                rank_start = Instant::now();
                ranked_pe_hits(&self.dao, uid, &q, VecField::Desc, opts)
            }
            (SearchType::Pe, QueryType::Code) | (SearchType::Both, QueryType::Code) => {
                let q = embed(self.completion_model.as_ref(), true);
                rank_start = Instant::now();
                ranked_pe_hits(&self.dao, uid, &q, VecField::Code, opts)
            }
            (SearchType::Both, QueryType::Text) => {
                // Figure 6 behaviour: plain text match on both kinds, PE
                // hits first; the limit applies to the combined list.
                rank_start = Instant::now();
                let mut hits = text_search_pes(&self.dao, uid, query, opts);
                hits.extend(text_search_workflows(&self.dao, uid, query, opts));
                hits.truncate(opts.limit);
                hits
            }
        };
        let rank_us = rank_start.elapsed().as_micros() as u64;
        Ok(SearchResponse { hits, embed_us, rank_us })
    }

    /// Registry observability (`GET /registry/stats`): entity counts, the
    /// search counter and the index's shape.
    pub fn stats(&self) -> Value {
        let mut v = Value::Null;
        v.set("users", self.dao.store.users.len() as i64)
            .set("pes", self.dao.store.pes.len() as i64)
            .set("workflows", self.dao.store.workflows.len() as i64)
            .set("searches", self.searches.load(Ordering::Relaxed) as i64)
            .set("index", self.dao.index().stats());
        v
    }

    /// Registry dump (client fn 12 / `GET /registry/{user}/all`).
    pub fn dump(&self, user: &str) -> Result<Value, RegistryError> {
        let pes: Value = self
            .all_pes(user)?
            .into_iter()
            .map(|p| {
                let mut v = Value::Null;
                v.set("peId", p.pe_id)
                    .set("peName", p.pe_name.as_str())
                    .set("description", p.description.as_str());
                v
            })
            .collect();
        let wfs: Value = self
            .all_workflows(user)?
            .into_iter()
            .map(|w| {
                let mut v = Value::Null;
                v.set("workflowId", w.workflow_id)
                    .set("entryPoint", w.entry_point.as_str())
                    .set("description", w.description.as_str());
                v
            })
            .collect();
        let mut out = Value::Null;
        out.set("pes", pes).set("workflows", wfs);
        Ok(out)
    }

    /// `describe`: human text for a PE or workflow (client fn 11).
    pub fn describe(&self, user: &str, key: &EntityKey) -> Result<String, RegistryError> {
        if let Ok(pe) = self.get_pe(user, key) {
            return Ok(format!(
                "PE {} (id {}): {}{}",
                pe.pe_name,
                pe.pe_id,
                pe.description,
                if pe.description_generated { " [auto-generated]" } else { "" }
            ));
        }
        let wf = self.get_workflow(user, key)?;
        let members = self.dao.pes_of_workflow(wf.workflow_id);
        let names: Vec<&str> = members.iter().map(|p| p.pe_name.as_str()).collect();
        Ok(format!(
            "Workflow {} (id {}, entry '{}'): {} — PEs: [{}]",
            wf.workflow_name,
            wf.workflow_id,
            wf.entry_point,
            wf.description,
            names.join(", ")
        ))
    }

    /// Decode stored workflow source for execution.
    pub fn workflow_source(&self, user: &str, key: &EntityKey) -> Result<String, RegistryError> {
        let wf = self.get_workflow(user, key)?;
        decode_code(&wf.workflow_code).ok_or(RegistryError::Storage("corrupt workflow code".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRIME_SRC: &str = r#"
        pe IsPrime : iterative {
            input num; output output;
            process {
                let i = 2;
                let prime = num > 1;
                while i * i <= num { if num % i == 0 { prime = false; break; } i = i + 1; }
                if prime { emit(num); }
            }
        }
    "#;

    const WF_SRC: &str = r#"
        pe NumberProducer : producer { output output; process { emit(randint(1, 1000)); } }
        pe IsPrime : iterative {
            input num; output output;
            process { if num > 1 { emit(num); } }
        }
        pe PrintPrime : consumer { input num; process { print("the num", num, "is prime"); } }
        workflow IsPrimeFlow {
            doc "Workflow that prints random prime numbers";
            nodes { p = NumberProducer; i = IsPrime; pr = PrintPrime; }
            connect p.output -> i.num;
            connect i.output -> pr.num;
        }
    "#;

    fn reg_with_user() -> Registry {
        let mut r = Registry::in_memory();
        r.register_user("zz46", "password").unwrap();
        r
    }

    #[test]
    fn user_registration_validation() {
        let mut r = Registry::in_memory();
        assert!(r.register_user("", "password").is_err());
        assert!(r.register_user("bad name", "password").is_err());
        assert!(r.register_user("ok", "abc").is_err());
        r.register_user("ok", "good-pass").unwrap();
        assert!(matches!(r.register_user("ok", "other"), Err(RegistryError::Duplicate { .. })));
        assert_eq!(r.all_user_names(), vec!["ok"]);
    }

    #[test]
    fn login_and_sessions() {
        let mut r = reg_with_user();
        assert!(r.login("zz46", "wrong").is_err());
        assert!(r.login("ghost", "password").is_err());
        let tok = r.login("zz46", "password").unwrap();
        assert_eq!(r.auth(&tok).unwrap().user_name, "zz46");
        assert!(r.auth("tok-bogus").is_err());
        // Tokens are unique per login.
        let tok2 = r.login("zz46", "password").unwrap();
        assert_ne!(tok, tok2);
    }

    #[test]
    fn pe_registration_with_description() {
        let mut r = reg_with_user();
        let pe = r.register_pe("zz46", PRIME_SRC, Some("Checks if a number is prime")).unwrap();
        assert_eq!(pe.pe_name, "IsPrime");
        assert!(!pe.description_generated);
        assert_eq!(pe.description, "Checks if a number is prime");
        assert!(!pe.pe_imports.iter().any(|i| i == "math"));
        assert!(pe.code_embedding.dim() > 0);
        // Retrieval by name and id, and source round-trip.
        let by_name = r.get_pe("zz46", &"IsPrime".into()).unwrap();
        assert_eq!(by_name.pe_id, pe.pe_id);
        let by_id = r.get_pe("zz46", &EntityKey::Id(pe.pe_id)).unwrap();
        assert!(by_id.source().unwrap().contains("pe IsPrime"));
    }

    #[test]
    fn pe_auto_summarization() {
        let mut r = reg_with_user();
        let pe = r.register_pe("zz46", PRIME_SRC, None).unwrap();
        assert!(pe.description_generated);
        assert!(pe.description.to_lowercase().contains("prime"), "summary: {}", pe.description);
    }

    #[test]
    fn shared_owner_on_identical_reregistration() {
        let mut r = reg_with_user();
        r.register_user("zl81", "password").unwrap();
        let first = r.register_pe("zz46", PRIME_SRC, None).unwrap();
        let second = r.register_pe("zl81", PRIME_SRC, None).unwrap();
        assert_eq!(first.pe_id, second.pe_id, "no duplicate entry — shared owner");
        assert_eq!(r.all_pes("zl81").unwrap().len(), 1);
        // Same name but different code is a real conflict.
        let different = PRIME_SRC.replace("num > 1", "num > 2");
        assert!(matches!(r.register_pe("zl81", &different, None), Err(RegistryError::Duplicate { .. })));
    }

    #[test]
    fn ownership_privacy() {
        let mut r = reg_with_user();
        r.register_user("intruder", "password").unwrap();
        let pe = r.register_pe("zz46", PRIME_SRC, None).unwrap();
        assert!(r.get_pe("intruder", &EntityKey::Id(pe.pe_id)).is_err(), "no cross-user access");
        assert!(r.all_pes("intruder").unwrap().is_empty());
    }

    #[test]
    fn workflow_registration_registers_member_pes() {
        let mut r = reg_with_user();
        let wf = r
            .register_workflow("zz46", WF_SRC, "isPrime", Some("Workflow that prints random prime numbers"))
            .unwrap();
        assert_eq!(wf.workflow_name, "IsPrimeFlow");
        let members = r.pes_by_workflow("zz46", &"isPrime".into()).unwrap();
        assert_eq!(members.len(), 3);
        let names: Vec<&str> = members.iter().map(|m| m.pe_name.as_str()).collect();
        assert!(names.contains(&"NumberProducer"));
        assert!(names.contains(&"IsPrime"));
        assert!(names.contains(&"PrintPrime"));
        // The stored source re-parses and still contains the workflow.
        let src = r.workflow_source("zz46", &"isPrime".into()).unwrap();
        assert!(laminar_script::parse_script(&src).is_ok());
        assert!(src.contains("workflow IsPrimeFlow"));
    }

    #[test]
    fn duplicate_entry_point_rejected() {
        let mut r = reg_with_user();
        r.register_workflow("zz46", WF_SRC, "isPrime", None).unwrap();
        assert!(matches!(
            r.register_workflow("zz46", WF_SRC, "isPrime", None),
            Err(RegistryError::Duplicate { .. })
        ));
    }

    #[test]
    fn text_search_finds_partial_workflow_match() {
        // The Figure 6 scenario: query 'prime' finds workflow 'isPrime'.
        let mut r = reg_with_user();
        r.register_workflow("zz46", WF_SRC, "isPrime", Some("Workflow that prints random prime numbers"))
            .unwrap();
        let hits = r.search("zz46", "prime", SearchType::Workflow, QueryType::Text).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "isPrime");
        assert_eq!(hits[0].kind, "workflow");
    }

    #[test]
    fn semantic_search_ranks_prime_pe_first() {
        // The Figure 7 scenario.
        let mut r = reg_with_user();
        r.register_pe("zz46", PRIME_SRC, None).unwrap();
        r.register_pe(
            "zz46",
            r#"pe CountWords : generic { input input groupby 0; output output;
               init { state.count = {}; }
               process { state.count[input[0]] = get(state.count, input[0], 0) + 1; emit(state.count); } }"#,
            Some("Counts the occurrences of each word"),
        )
        .unwrap();
        r.register_pe(
            "zz46",
            r#"pe ReverseText : iterative { input text; output output; process { emit(reverse(text)); } }"#,
            Some("Reverses the characters of the input string"),
        )
        .unwrap();
        let hits = r
            .search("zz46", "A PE that checks if a number is prime", SearchType::Pe, QueryType::Text)
            .unwrap();
        assert_eq!(hits.len(), 3, "semantic search ranks every PE");
        assert_eq!(hits[0].name, "IsPrime", "hits: {hits:?}");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn code_completion_finds_random_producer() {
        // The Figure 8 scenario: query `randint(1, 1000)`.
        let mut r = reg_with_user();
        r.register_pe(
            "zz46",
            "pe NumberProducer : producer { output output; process { emit(randint(1, 1000)); } }",
            None,
        )
        .unwrap();
        r.register_pe("zz46", PRIME_SRC, None).unwrap();
        let hits = r.search("zz46", "randint(1, 1000)", SearchType::Pe, QueryType::Code).unwrap();
        assert_eq!(hits[0].name, "NumberProducer", "hits: {hits:?}");
    }

    #[test]
    fn describe_formats() {
        let mut r = reg_with_user();
        let standalone = PRIME_SRC.replace("IsPrime", "IsPrimeManual");
        let pe = r.register_pe("zz46", &standalone, Some("manual words")).unwrap();
        let d = r.describe("zz46", &EntityKey::Id(pe.pe_id)).unwrap();
        assert!(d.contains("IsPrimeManual"));
        assert!(d.contains("manual words"));
        r.register_workflow("zz46", WF_SRC, "isPrime", None).unwrap();
        let wd = r.describe("zz46", &"isPrime".into()).unwrap();
        assert!(wd.contains("PEs: ["));
    }

    #[test]
    fn remove_pe_and_workflow() {
        let mut r = reg_with_user();
        let pe = r.register_pe("zz46", PRIME_SRC, None).unwrap();
        r.remove_pe("zz46", &EntityKey::Id(pe.pe_id)).unwrap();
        assert!(r.get_pe("zz46", &EntityKey::Id(pe.pe_id)).is_err());
        let wf = r.register_workflow("zz46", WF_SRC, "isPrime", None).unwrap();
        r.remove_workflow("zz46", &EntityKey::Id(wf.workflow_id)).unwrap();
        assert!(r.get_workflow("zz46", &"isPrime".into()).is_err());
    }

    #[test]
    fn dump_lists_everything() {
        let mut r = reg_with_user();
        r.register_pe("zz46", &PRIME_SRC.replace("IsPrime", "IsPrimeManual"), None).unwrap();
        r.register_workflow("zz46", WF_SRC, "isPrime", None).unwrap();
        let d = r.dump("zz46").unwrap();
        assert!(!d["pes"].as_array().unwrap().is_empty());
        assert_eq!(d["workflows"][0]["entryPoint"].as_str(), Some("isPrime"));
    }

    #[test]
    fn entity_key_parsing() {
        assert_eq!(EntityKey::parse("42"), EntityKey::Id(42));
        assert_eq!(EntityKey::parse("IsPrime"), EntityKey::Name("IsPrime".into()));
        assert_eq!(EntityKey::from_value(&Value::Int(7)), Some(EntityKey::Id(7)));
        assert_eq!(EntityKey::from_value(&Value::Null), None);
    }

    #[test]
    fn durable_registry_survives_restart() {
        let dir = std::env::temp_dir().join(format!("laminar-reg-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut r = Registry::open(&dir).unwrap();
            r.register_user("zz46", "password").unwrap();
            r.register_pe("zz46", PRIME_SRC, Some("persisted")).unwrap();
        }
        {
            let r = Registry::open(&dir).unwrap();
            let pe = r.get_pe("zz46", &"IsPrime".into()).unwrap();
            assert_eq!(pe.description, "persisted");
            // Embeddings survived serialization.
            assert!(pe.desc_embedding.dim() > 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
