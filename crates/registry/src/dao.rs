//! Data Access Object layer (paper §3.2.3): CRUD over the store, with
//! every mutation journaled through the WAL before acknowledgment.

use crate::entities::{PeEntity, UserEntity, WorkflowEntity};
use crate::error::RegistryError;
use crate::index::SearchIndex;
use crate::store::Store;
use crate::wal::{ops, WalStore};

/// DAO facade bundling the store, its journal and the search index.
///
/// The index is owned here — not by the search layer — because every
/// mutation that must keep it consistent flows through these methods,
/// inside the same registry write lock that journals the change. WAL
/// replay mutates the store *below* this layer, so [`Dao::new`] rebuilds
/// the index from whatever store it is handed (fresh or recovered); the
/// incremental hooks keep it exact from then on.
pub struct Dao {
    /// The table store.
    pub store: Store,
    /// The journal.
    pub wal: WalStore,
    index: SearchIndex,
}

impl Dao {
    /// Wrap a recovered store + journal; derives the search index from
    /// the store.
    pub fn new(store: Store, wal: WalStore) -> Dao {
        let index = SearchIndex::build(&store);
        Dao { store, wal, index }
    }

    /// The search index (query side).
    pub fn index(&self) -> &SearchIndex {
        &self.index
    }

    /// Enable or disable index maintenance. Disabling drops the index
    /// (searches fall back to the linear scan); re-enabling rebuilds it
    /// from the store. This is the bench's baseline knob — production
    /// code never turns it off.
    pub fn set_index_enabled(&mut self, enabled: bool) {
        self.index = if enabled { SearchIndex::build(&self.store) } else { SearchIndex::disabled() };
    }

    /// Force a snapshot to disk (durable mode only).
    pub fn checkpoint(&mut self) -> Result<(), RegistryError> {
        self.wal.snapshot(&self.store)
    }

    // ---- users -----------------------------------------------------------

    /// Insert a user row.
    pub fn insert_user(&mut self, mut user: UserEntity) -> Result<UserEntity, RegistryError> {
        let id = self.store.users.insert(user.to_row(), "userId").map_err(|e| match e {
            RegistryError::Duplicate { .. } => {
                RegistryError::Duplicate { entity: "User", field: "userName", value: user.user_name.clone() }
            }
            other => other,
        })?;
        user.user_id = id;
        self.wal.append(
            &self.store,
            &ops::insert("users", id, self.store.users.get(id).expect("just inserted")),
        )?;
        Ok(user)
    }

    /// Find a user by login name.
    pub fn user_by_name(&self, name: &str) -> Result<UserEntity, RegistryError> {
        let id = self
            .store
            .users
            .find_unique("userName", name)
            .ok_or(RegistryError::NotFound { entity: "User", key: name.to_string() })?;
        UserEntity::from_row(self.store.users.get(id).expect("indexed"))
            .ok_or(RegistryError::Storage("corrupt user row".into()))
    }

    /// All users.
    pub fn all_users(&self) -> Vec<UserEntity> {
        self.store.users.scan().filter_map(|(_, row)| UserEntity::from_row(row)).collect()
    }

    // ---- PEs ---------------------------------------------------------------

    /// Insert a PE row and link its owner.
    pub fn insert_pe(&mut self, mut pe: PeEntity, owner_id: i64) -> Result<PeEntity, RegistryError> {
        let id = self.store.pes.insert(pe.to_row(), "peId").map_err(|e| match e {
            RegistryError::Duplicate { .. } => {
                RegistryError::Duplicate { entity: "PE", field: "peName", value: pe.pe_name.clone() }
            }
            other => other,
        })?;
        pe.pe_id = id;
        self.wal
            .append(&self.store, &ops::insert("pes", id, self.store.pes.get(id).expect("just inserted")))?;
        self.link_user_pe(owner_id, id)?;
        Ok(pe)
    }

    /// Add an ownership link (idempotent — the paper's shared-owner rule).
    pub fn link_user_pe(&mut self, user_id: i64, pe_id: i64) -> Result<(), RegistryError> {
        if self.store.user_pes.link(user_id, pe_id) {
            self.wal.append(&self.store, &ops::link("user_pes", user_id, pe_id))?;
            if let Ok(pe) = self.pe_by_id(pe_id) {
                self.index.add_pe(user_id, &pe);
            }
        }
        Ok(())
    }

    /// PE by id.
    pub fn pe_by_id(&self, id: i64) -> Result<PeEntity, RegistryError> {
        let row =
            self.store.pes.get(id).ok_or(RegistryError::NotFound { entity: "PE", key: id.to_string() })?;
        PeEntity::from_row(row).ok_or(RegistryError::Storage("corrupt PE row".into()))
    }

    /// The hit-visible fields of a PE row — `(name, description,
    /// description_generated)` — read straight off the stored row.
    /// The winners' materialization path after ranking: unlike
    /// [`pe_by_id`](Dao::pe_by_id) it decodes neither embedding vector
    /// nor the code blob, which dominate `from_row` cost and are not
    /// part of a [`SearchHit`](crate::SearchHit).
    pub fn pe_hit_fields(&self, id: i64) -> Option<(String, String, bool)> {
        let row = self.store.pes.get(id)?;
        Some((
            row["peName"].as_str()?.to_string(),
            row["description"].as_str().unwrap_or("").to_string(),
            row["descriptionGenerated"].as_bool().unwrap_or(false),
        ))
    }

    /// The hit-visible fields of a workflow row — `(entry_point,
    /// description)` — without materializing the full entity.
    pub fn workflow_hit_fields(&self, id: i64) -> Option<(String, String)> {
        let row = self.store.workflows.get(id)?;
        Some((row["entryPoint"].as_str()?.to_string(), row["description"].as_str().unwrap_or("").to_string()))
    }

    /// PE by unique name.
    pub fn pe_by_name(&self, name: &str) -> Result<PeEntity, RegistryError> {
        let id = self
            .store
            .pes
            .find_unique("peName", name)
            .ok_or(RegistryError::NotFound { entity: "PE", key: name.to_string() })?;
        self.pe_by_id(id)
    }

    /// Update a PE row in place.
    pub fn update_pe(&mut self, pe: &PeEntity) -> Result<(), RegistryError> {
        self.store.pes.update(pe.pe_id, pe.to_row())?;
        self.wal.append(&self.store, &ops::update("pes", pe.pe_id, &pe.to_row()))?;
        for owner in self.store.user_pes.lefts_of(pe.pe_id) {
            self.index.update_pe(owner, pe);
        }
        Ok(())
    }

    /// PEs owned by a user.
    pub fn pes_of_user(&self, user_id: i64) -> Vec<PeEntity> {
        self.store.user_pes.rights_of(user_id).into_iter().filter_map(|id| self.pe_by_id(id).ok()).collect()
    }

    /// Remove a user's ownership of a PE; the row itself is deleted only
    /// when the last owner leaves (and it is detached from workflows).
    pub fn remove_pe_for_user(&mut self, user_id: i64, pe_id: i64) -> Result<(), RegistryError> {
        if !self.store.user_pes.linked(user_id, pe_id) {
            return Err(RegistryError::NotFound { entity: "PE", key: pe_id.to_string() });
        }
        self.store.user_pes.unlink(user_id, pe_id);
        self.wal.append(&self.store, &ops::unlink("user_pes", user_id, pe_id))?;
        self.index.remove_pe(user_id, pe_id);
        if self.store.user_pes.lefts_of(pe_id).is_empty() {
            self.store.pes.delete(pe_id)?;
            self.wal.append(&self.store, &ops::delete("pes", pe_id))?;
            self.store.workflow_pes.remove_right(pe_id);
            self.wal.append(&self.store, &ops::remove_right("workflow_pes", pe_id))?;
        }
        Ok(())
    }

    // ---- workflows ----------------------------------------------------------

    /// Insert a workflow row and link its owner.
    pub fn insert_workflow(
        &mut self,
        mut wf: WorkflowEntity,
        owner_id: i64,
    ) -> Result<WorkflowEntity, RegistryError> {
        let id = self.store.workflows.insert(wf.to_row(), "workflowId").map_err(|e| match e {
            RegistryError::Duplicate { .. } => RegistryError::Duplicate {
                entity: "Workflow",
                field: "entryPoint",
                value: wf.entry_point.clone(),
            },
            other => other,
        })?;
        wf.workflow_id = id;
        self.wal.append(
            &self.store,
            &ops::insert("workflows", id, self.store.workflows.get(id).expect("just inserted")),
        )?;
        if self.store.user_workflows.link(owner_id, id) {
            self.wal.append(&self.store, &ops::link("user_workflows", owner_id, id))?;
            self.index.add_workflow(owner_id, &wf);
        }
        Ok(wf)
    }

    /// Workflow by id.
    pub fn workflow_by_id(&self, id: i64) -> Result<WorkflowEntity, RegistryError> {
        let row = self
            .store
            .workflows
            .get(id)
            .ok_or(RegistryError::NotFound { entity: "Workflow", key: id.to_string() })?;
        WorkflowEntity::from_row(row).ok_or(RegistryError::Storage("corrupt workflow row".into()))
    }

    /// Workflow by unique entry point.
    pub fn workflow_by_entry(&self, entry: &str) -> Result<WorkflowEntity, RegistryError> {
        let id = self
            .store
            .workflows
            .find_unique("entryPoint", entry)
            .ok_or(RegistryError::NotFound { entity: "Workflow", key: entry.to_string() })?;
        self.workflow_by_id(id)
    }

    /// Workflows owned by a user.
    pub fn workflows_of_user(&self, user_id: i64) -> Vec<WorkflowEntity> {
        self.store
            .user_workflows
            .rights_of(user_id)
            .into_iter()
            .filter_map(|id| self.workflow_by_id(id).ok())
            .collect()
    }

    /// Link a PE into a workflow (the two-way many-to-many of §3.1).
    pub fn link_workflow_pe(&mut self, workflow_id: i64, pe_id: i64) -> Result<(), RegistryError> {
        // Both sides must exist.
        self.workflow_by_id(workflow_id)?;
        self.pe_by_id(pe_id)?;
        if self.store.workflow_pes.link(workflow_id, pe_id) {
            self.wal.append(&self.store, &ops::link("workflow_pes", workflow_id, pe_id))?;
        }
        Ok(())
    }

    /// PEs belonging to a workflow.
    pub fn pes_of_workflow(&self, workflow_id: i64) -> Vec<PeEntity> {
        self.store
            .workflow_pes
            .rights_of(workflow_id)
            .into_iter()
            .filter_map(|id| self.pe_by_id(id).ok())
            .collect()
    }

    /// Remove a user's workflow (row deleted when last owner leaves).
    pub fn remove_workflow_for_user(&mut self, user_id: i64, workflow_id: i64) -> Result<(), RegistryError> {
        if !self.store.user_workflows.linked(user_id, workflow_id) {
            return Err(RegistryError::NotFound { entity: "Workflow", key: workflow_id.to_string() });
        }
        self.store.user_workflows.unlink(user_id, workflow_id);
        self.wal.append(&self.store, &ops::unlink("user_workflows", user_id, workflow_id))?;
        self.index.remove_workflow(user_id, workflow_id);
        if self.store.user_workflows.lefts_of(workflow_id).is_empty() {
            self.store.workflows.delete(workflow_id)?;
            self.wal.append(&self.store, &ops::delete("workflows", workflow_id))?;
            self.store.workflow_pes.remove_left(workflow_id);
            self.wal.append(&self.store, &ops::remove_left("workflow_pes", workflow_id))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::{encode_code, hash_password};
    use laminar_embed::Embedding;

    fn dao() -> Dao {
        Dao::new(Store::new(), WalStore::ephemeral())
    }

    fn user(name: &str) -> UserEntity {
        UserEntity { user_id: 0, user_name: name.into(), password_hash: hash_password(name, "pw") }
    }

    fn pe(name: &str) -> PeEntity {
        PeEntity {
            pe_id: 0,
            pe_name: name.into(),
            description: format!("{name} description"),
            description_generated: false,
            pe_code: encode_code(&format!("pe {name} : producer {{ output o; process {{ emit(1); }} }}")),
            pe_imports: vec![],
            code_embedding: Embedding { values: vec![1.0, 0.0] },
            desc_embedding: Embedding { values: vec![0.0, 1.0] },
        }
    }

    fn wf(entry: &str) -> WorkflowEntity {
        WorkflowEntity {
            workflow_id: 0,
            workflow_name: format!("{entry}Wf"),
            entry_point: entry.into(),
            description: String::new(),
            workflow_code: encode_code("workflow X { }"),
        }
    }

    #[test]
    fn user_crud() {
        let mut d = dao();
        let u = d.insert_user(user("zz46")).unwrap();
        assert_eq!(u.user_id, 1);
        assert_eq!(d.user_by_name("zz46").unwrap().user_id, 1);
        assert!(matches!(d.insert_user(user("zz46")), Err(RegistryError::Duplicate { entity: "User", .. })));
        assert_eq!(d.all_users().len(), 1);
        assert!(d.user_by_name("nobody").is_err());
    }

    #[test]
    fn pe_ownership_lifecycle() {
        let mut d = dao();
        let u1 = d.insert_user(user("a")).unwrap();
        let u2 = d.insert_user(user("b")).unwrap();
        let p = d.insert_pe(pe("IsPrime"), u1.user_id).unwrap();
        assert_eq!(d.pes_of_user(u1.user_id).len(), 1);
        // Second owner joins rather than duplicating (paper §3.1).
        d.link_user_pe(u2.user_id, p.pe_id).unwrap();
        assert_eq!(d.pes_of_user(u2.user_id).len(), 1);
        // First owner leaves: the row survives for the second owner.
        d.remove_pe_for_user(u1.user_id, p.pe_id).unwrap();
        assert!(d.pe_by_id(p.pe_id).is_ok());
        // Last owner leaves: the row is gone.
        d.remove_pe_for_user(u2.user_id, p.pe_id).unwrap();
        assert!(d.pe_by_id(p.pe_id).is_err());
        // Removing twice errors.
        assert!(d.remove_pe_for_user(u2.user_id, p.pe_id).is_err());
    }

    #[test]
    fn workflow_pe_links() {
        let mut d = dao();
        let u = d.insert_user(user("a")).unwrap();
        let p1 = d.insert_pe(pe("P1"), u.user_id).unwrap();
        let p2 = d.insert_pe(pe("P2"), u.user_id).unwrap();
        let w = d.insert_workflow(wf("flow"), u.user_id).unwrap();
        d.link_workflow_pe(w.workflow_id, p1.pe_id).unwrap();
        d.link_workflow_pe(w.workflow_id, p2.pe_id).unwrap();
        let members = d.pes_of_workflow(w.workflow_id);
        assert_eq!(members.len(), 2);
        // Linking an unknown PE fails cleanly.
        assert!(d.link_workflow_pe(w.workflow_id, 999).is_err());
        assert!(d.link_workflow_pe(999, p1.pe_id).is_err());
    }

    #[test]
    fn pe_deletion_detaches_from_workflows() {
        let mut d = dao();
        let u = d.insert_user(user("a")).unwrap();
        let p = d.insert_pe(pe("P"), u.user_id).unwrap();
        let w = d.insert_workflow(wf("f"), u.user_id).unwrap();
        d.link_workflow_pe(w.workflow_id, p.pe_id).unwrap();
        d.remove_pe_for_user(u.user_id, p.pe_id).unwrap();
        assert!(d.pes_of_workflow(w.workflow_id).is_empty());
    }

    #[test]
    fn workflow_removal() {
        let mut d = dao();
        let u = d.insert_user(user("a")).unwrap();
        let w = d.insert_workflow(wf("f"), u.user_id).unwrap();
        assert_eq!(d.workflows_of_user(u.user_id).len(), 1);
        assert_eq!(d.workflow_by_entry("f").unwrap().workflow_id, w.workflow_id);
        d.remove_workflow_for_user(u.user_id, w.workflow_id).unwrap();
        assert!(d.workflow_by_id(w.workflow_id).is_err());
        assert!(d.workflow_by_entry("f").is_err());
    }

    #[test]
    fn update_pe_description() {
        let mut d = dao();
        let u = d.insert_user(user("a")).unwrap();
        let mut p = d.insert_pe(pe("P"), u.user_id).unwrap();
        p.description = "new words".into();
        d.update_pe(&p).unwrap();
        assert_eq!(d.pe_by_id(p.pe_id).unwrap().description, "new words");
    }
}
