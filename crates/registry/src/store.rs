//! The embedded table store: typed tables of JSON rows with auto-increment
//! primary keys, unique indexes and junction (many-to-many) tables.
//!
//! This is the MySQL substitution (DESIGN.md): the DAO layer above it
//! performs the same CRUD it would against the paper's hosted database.

use crate::error::RegistryError;
use laminar_json::Value;
use std::collections::{BTreeMap, BTreeSet};

/// One table: rows keyed by auto-increment id, with declared unique
/// columns.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    next_id: i64,
    rows: BTreeMap<i64, Value>,
    unique_columns: Vec<String>,
    unique_index: BTreeMap<String, BTreeMap<String, i64>>,
}

impl Table {
    /// Create a table with the given unique columns.
    pub fn new(name: &str, unique_columns: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            next_id: 1,
            rows: BTreeMap::new(),
            unique_columns: unique_columns.iter().map(|s| s.to_string()).collect(),
            unique_index: unique_columns.iter().map(|c| (c.to_string(), BTreeMap::new())).collect(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn unique_key(row: &Value, col: &str) -> Option<String> {
        row.get(col).map(|v| match v {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        })
    }

    /// Insert a row (object), assigning and returning its id. The id is
    /// also written into the row under `id_column`.
    pub fn insert(&mut self, mut row: Value, id_column: &str) -> Result<i64, RegistryError> {
        for col in &self.unique_columns {
            if let Some(key) = Self::unique_key(&row, col) {
                if self.unique_index[col].contains_key(&key) {
                    return Err(RegistryError::Duplicate {
                        entity: "row",
                        field: Box::leak(col.clone().into_boxed_str()),
                        value: key,
                    });
                }
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        row.set(id_column, id);
        for col in &self.unique_columns {
            if let Some(key) = Self::unique_key(&row, col) {
                self.unique_index.get_mut(col).expect("declared column").insert(key, id);
            }
        }
        self.rows.insert(id, row);
        Ok(id)
    }

    /// Insert with a caller-chosen id (used by WAL replay).
    pub fn insert_with_id(&mut self, id: i64, row: Value) -> Result<(), RegistryError> {
        if self.rows.contains_key(&id) {
            return Err(RegistryError::Duplicate { entity: "row", field: "id", value: id.to_string() });
        }
        for col in &self.unique_columns {
            if let Some(key) = Self::unique_key(&row, col) {
                self.unique_index.get_mut(col).expect("declared column").insert(key, id);
            }
        }
        self.next_id = self.next_id.max(id + 1);
        self.rows.insert(id, row);
        Ok(())
    }

    /// Fetch a row by id.
    pub fn get(&self, id: i64) -> Option<&Value> {
        self.rows.get(&id)
    }

    /// Look up a row id via a unique column.
    pub fn find_unique(&self, column: &str, key: &str) -> Option<i64> {
        self.unique_index.get(column)?.get(key).copied()
    }

    /// Replace a row in place. Unique indexes are maintained.
    pub fn update(&mut self, id: i64, new_row: Value) -> Result<(), RegistryError> {
        let old = self
            .rows
            .get(&id)
            .cloned()
            .ok_or(RegistryError::NotFound { entity: "row", key: id.to_string() })?;
        // Check unique conflicts against OTHER rows first.
        for col in &self.unique_columns {
            if let Some(new_key) = Self::unique_key(&new_row, col) {
                if let Some(&owner) = self.unique_index[col].get(&new_key) {
                    if owner != id {
                        return Err(RegistryError::Duplicate {
                            entity: "row",
                            field: Box::leak(col.clone().into_boxed_str()),
                            value: new_key,
                        });
                    }
                }
            }
        }
        for col in &self.unique_columns {
            if let Some(old_key) = Self::unique_key(&old, col) {
                self.unique_index.get_mut(col).expect("declared").remove(&old_key);
            }
            if let Some(new_key) = Self::unique_key(&new_row, col) {
                self.unique_index.get_mut(col).expect("declared").insert(new_key, id);
            }
        }
        self.rows.insert(id, new_row);
        Ok(())
    }

    /// Delete a row.
    pub fn delete(&mut self, id: i64) -> Result<Value, RegistryError> {
        let row =
            self.rows.remove(&id).ok_or(RegistryError::NotFound { entity: "row", key: id.to_string() })?;
        for col in &self.unique_columns {
            if let Some(key) = Self::unique_key(&row, col) {
                self.unique_index.get_mut(col).expect("declared").remove(&key);
            }
        }
        Ok(row)
    }

    /// Iterate `(id, row)` in id order.
    pub fn scan(&self) -> impl Iterator<Item = (i64, &Value)> {
        self.rows.iter().map(|(k, v)| (*k, v))
    }

    /// Serialize the table for snapshots.
    pub fn to_value(&self) -> Value {
        let rows: Value = self
            .rows
            .iter()
            .map(|(id, row)| {
                let mut v = Value::Null;
                v.set("id", *id).set("row", row.clone());
                v
            })
            .collect();
        let mut v = Value::Null;
        v.set("name", self.name.as_str())
            .set("next_id", self.next_id)
            .set("unique", Value::Array(self.unique_columns.iter().map(|c| Value::Str(c.clone())).collect()))
            .set("rows", rows);
        v
    }

    /// Rebuild from a snapshot value.
    pub fn from_value(v: &Value) -> Result<Table, RegistryError> {
        let name = v["name"].as_str().ok_or(RegistryError::Storage("table missing name".into()))?;
        let unique: Vec<&str> =
            v["unique"].as_array().unwrap_or(&[]).iter().filter_map(|u| u.as_str()).collect();
        let mut t = Table::new(name, &unique);
        for entry in v["rows"].as_array().unwrap_or(&[]) {
            let id = entry["id"].as_i64().ok_or(RegistryError::Storage("row missing id".into()))?;
            t.insert_with_id(id, entry["row"].clone())?;
        }
        t.next_id = v["next_id"].as_i64().unwrap_or(t.next_id);
        Ok(t)
    }
}

/// A many-to-many junction table (unordered pairs of foreign keys).
#[derive(Debug, Clone, Default)]
pub struct Junction {
    pairs: BTreeSet<(i64, i64)>,
}

impl Junction {
    /// Empty junction.
    pub fn new() -> Junction {
        Junction::default()
    }

    /// Link `left` and `right`. Returns false if already linked.
    pub fn link(&mut self, left: i64, right: i64) -> bool {
        self.pairs.insert((left, right))
    }

    /// Remove a link.
    pub fn unlink(&mut self, left: i64, right: i64) -> bool {
        self.pairs.remove(&(left, right))
    }

    /// Is the pair linked?
    pub fn linked(&self, left: i64, right: i64) -> bool {
        self.pairs.contains(&(left, right))
    }

    /// All right-ids linked to `left`.
    pub fn rights_of(&self, left: i64) -> Vec<i64> {
        self.pairs.iter().filter(|(l, _)| *l == left).map(|(_, r)| *r).collect()
    }

    /// All left-ids linked to `right`.
    pub fn lefts_of(&self, right: i64) -> Vec<i64> {
        self.pairs.iter().filter(|(_, r)| *r == right).map(|(l, _)| *l).collect()
    }

    /// Remove every pair touching `left` on the left side.
    pub fn remove_left(&mut self, left: i64) {
        self.pairs.retain(|(l, _)| *l != left);
    }

    /// Remove every pair touching `right` on the right side.
    pub fn remove_right(&mut self, right: i64) {
        self.pairs.retain(|(_, r)| *r != right);
    }

    /// Iterate every `(left, right)` pair in ascending order (used to
    /// rebuild derived structures like the search index after recovery).
    pub fn iter(&self) -> impl Iterator<Item = (i64, i64)> + '_ {
        self.pairs.iter().copied()
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no links exist.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Serialize for snapshots.
    pub fn to_value(&self) -> Value {
        self.pairs.iter().map(|(l, r)| Value::Array(vec![Value::Int(*l), Value::Int(*r)])).collect()
    }

    /// Rebuild from a snapshot value.
    pub fn from_value(v: &Value) -> Junction {
        let mut j = Junction::new();
        for pair in v.as_array().unwrap_or(&[]) {
            if let (Some(l), Some(r)) = (pair[0].as_i64(), pair[1].as_i64()) {
                j.link(l, r);
            }
        }
        j
    }
}

/// The registry's full schema (paper Figure 4): three entity tables and
/// three junction tables.
#[derive(Debug, Clone)]
pub struct Store {
    /// Users (unique `userName`).
    pub users: Table,
    /// Processing Elements (unique `peName`).
    pub pes: Table,
    /// Workflows (unique `entryPoint`).
    pub workflows: Table,
    /// user ↔ PE ownership (one-way many-to-many).
    pub user_pes: Junction,
    /// user ↔ workflow ownership.
    pub user_workflows: Junction,
    /// workflow ↔ PE membership (two-way many-to-many).
    pub workflow_pes: Junction,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    /// Empty store with the registry schema.
    pub fn new() -> Store {
        Store {
            users: Table::new("users", &["userName"]),
            pes: Table::new("pes", &["peName"]),
            workflows: Table::new("workflows", &["entryPoint"]),
            user_pes: Junction::new(),
            user_workflows: Junction::new(),
            workflow_pes: Junction::new(),
        }
    }

    /// Serialize the whole store (snapshot format).
    pub fn to_value(&self) -> Value {
        let mut v = Value::Null;
        v.set("users", self.users.to_value())
            .set("pes", self.pes.to_value())
            .set("workflows", self.workflows.to_value())
            .set("user_pes", self.user_pes.to_value())
            .set("user_workflows", self.user_workflows.to_value())
            .set("workflow_pes", self.workflow_pes.to_value());
        v
    }

    /// Rebuild from a snapshot.
    pub fn from_value(v: &Value) -> Result<Store, RegistryError> {
        Ok(Store {
            users: Table::from_value(&v["users"])?,
            pes: Table::from_value(&v["pes"])?,
            workflows: Table::from_value(&v["workflows"])?,
            user_pes: Junction::from_value(&v["user_pes"]),
            user_workflows: Junction::from_value(&v["user_workflows"]),
            workflow_pes: Junction::from_value(&v["workflow_pes"]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_json::jobj;

    #[test]
    fn insert_get_update_delete() {
        let mut t = Table::new("pes", &["peName"]);
        let id = t.insert(jobj! { "peName" => "IsPrime", "description" => "d" }, "peId").unwrap();
        assert_eq!(id, 1);
        assert_eq!(t.get(id).unwrap()["peId"].as_i64(), Some(1));
        assert_eq!(t.find_unique("peName", "IsPrime"), Some(1));

        let mut row = t.get(id).unwrap().clone();
        row.set("description", "updated");
        t.update(id, row).unwrap();
        assert_eq!(t.get(id).unwrap()["description"].as_str(), Some("updated"));

        let removed = t.delete(id).unwrap();
        assert_eq!(removed["peName"].as_str(), Some("IsPrime"));
        assert_eq!(t.find_unique("peName", "IsPrime"), None);
        assert!(t.delete(id).is_err());
    }

    #[test]
    fn unique_violation() {
        let mut t = Table::new("users", &["userName"]);
        t.insert(jobj! { "userName" => "zz46" }, "userId").unwrap();
        let err = t.insert(jobj! { "userName" => "zz46" }, "userId").unwrap_err();
        assert_eq!(err.code(), 409);
    }

    #[test]
    fn unique_index_follows_rename() {
        let mut t = Table::new("pes", &["peName"]);
        let id = t.insert(jobj! { "peName" => "A" }, "peId").unwrap();
        let mut row = t.get(id).unwrap().clone();
        row.set("peName", "B");
        t.update(id, row).unwrap();
        assert_eq!(t.find_unique("peName", "A"), None);
        assert_eq!(t.find_unique("peName", "B"), Some(id));
        // Renaming onto an existing unique key fails.
        let id2 = t.insert(jobj! { "peName" => "C" }, "peId").unwrap();
        let mut row2 = t.get(id2).unwrap().clone();
        row2.set("peName", "B");
        assert!(t.update(id2, row2).is_err());
    }

    #[test]
    fn ids_monotonic_after_delete() {
        let mut t = Table::new("t", &[]);
        let a = t.insert(jobj! { "x" => 1 }, "id").unwrap();
        t.delete(a).unwrap();
        let b = t.insert(jobj! { "x" => 2 }, "id").unwrap();
        assert!(b > a, "ids never reused");
    }

    #[test]
    fn snapshot_round_trip() {
        let mut s = Store::new();
        let uid = s.users.insert(jobj! { "userName" => "zz46" }, "userId").unwrap();
        let pid = s.pes.insert(jobj! { "peName" => "IsPrime" }, "peId").unwrap();
        let wid = s.workflows.insert(jobj! { "entryPoint" => "isPrime" }, "workflowId").unwrap();
        s.user_pes.link(uid, pid);
        s.workflow_pes.link(wid, pid);
        let v = s.to_value();
        let back = Store::from_value(&v).unwrap();
        assert_eq!(back.users.find_unique("userName", "zz46"), Some(uid));
        assert!(back.user_pes.linked(uid, pid));
        assert!(back.workflow_pes.linked(wid, pid));
        // next_id preserved: a new insert gets a fresh id.
        let mut back = back;
        let pid2 = back.pes.insert(jobj! { "peName" => "Other" }, "peId").unwrap();
        assert!(pid2 > pid);
    }

    #[test]
    fn junction_queries() {
        let mut j = Junction::new();
        assert!(j.link(1, 10));
        assert!(!j.link(1, 10));
        j.link(1, 11);
        j.link(2, 10);
        assert_eq!(j.rights_of(1), vec![10, 11]);
        assert_eq!(j.lefts_of(10), vec![1, 2]);
        assert!(j.linked(2, 10));
        j.unlink(2, 10);
        assert!(!j.linked(2, 10));
        j.remove_left(1);
        assert!(j.rights_of(1).is_empty());
    }
}
