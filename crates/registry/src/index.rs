//! The incrementally-maintained search index (ROADMAP item 4).
//!
//! Registry search used to be a linear scan: every query cloned the
//! user's whole PE set out of the store (`pes_of_user` re-parses each
//! row's JSON embeddings), re-normalized text per entity per field, and
//! sorted *all* hits. This module makes each search mode sub-linear in
//! everything but the unavoidable score loop:
//!
//! * **Text** — a per-user inverted token index: posting lists keyed by
//!   [`normalize_text`] tokens over the searchable fields (PE name +
//!   description; workflow name + entry point + description), plus the
//!   cached normalized field strings per entity. A space-free normalized
//!   needle can never cross a token boundary (normalization joins tokens
//!   with single spaces), so single-token queries reduce to a vocabulary
//!   scan — no row touched until hit materialization. Multi-token
//!   needles fall back to a substring scan over the *cached* normalized
//!   fields, still never re-normalizing or re-parsing a row.
//! * **Semantic / code** — per-user structure-of-arrays `f32` matrices
//!   (one row per PE, `desc`/`code` embedding spaces kept separately)
//!   with per-row L2 norms cached at insert. Ranking is one fused
//!   dot/norm cosine kernel pass and a bounded top-`k` heap: no entity
//!   clone, no JSON parse, no full sort. Matrices live behind `Arc`, so
//!   cloning an index (e.g. snapshotting for an offline consumer) shares
//!   the vector storage copy-on-write.
//!
//! **Consistency.** The index is owned by the DAO and mutated in the
//! same call that journals the mutation, under the registry's outer
//! `RwLock` write guard — readers never observe an index that disagrees
//! with the store. WAL replay rebuilds the store *below* the DAO, so
//! recovery rebuilds the index from the recovered store
//! ([`SearchIndex::build`]); JSON float serialization is
//! shortest-round-trip, so rebuilt vectors (and therefore scores) are
//! bit-identical to the pre-crash ones.
//!
//! **Exactness.** Every query path here is an exact replacement for the
//! linear scan it shadows — same hits, same scores (the scan and the
//! index share one cosine kernel), same score-then-id order — which is
//! pinned by the differential proptest in `tests/proptest_search.rs`.
//! When a user's vectors are heterogeneous in dimension (possible only
//! for hand-built entities; real models are fixed-dimension) the vector
//! side marks itself degraded and search falls back to the scan.

use crate::entities::{PeEntity, WorkflowEntity};
use crate::search::normalize_text;
use crate::store::Store;
use laminar_embed::embedding::{cosine_prenorm, l2_norm, TopK};
use laminar_embed::Embedding;
use laminar_json::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Which embedding space a ranked query runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VecField {
    /// `descEmbedding` — the search-model space (Figure 7).
    Desc,
    /// `codeEmbedding` — the completion-model space (Figure 8).
    Code,
}

impl VecField {
    /// Project the field out of an entity.
    pub fn of(self, pe: &PeEntity) -> &Embedding {
        match self {
            VecField::Desc => &pe.desc_embedding,
            VecField::Code => &pe.code_embedding,
        }
    }
}

/// Per-user inverted token index over one entity kind's text fields.
#[derive(Debug, Clone, Default)]
struct TextIndex {
    /// token → ids of entities containing it (in any indexed field).
    postings: BTreeMap<Box<str>, BTreeSet<i64>>,
    /// id → normalized field strings (the multi-token fallback corpus).
    docs: BTreeMap<i64, Vec<String>>,
}

impl TextIndex {
    fn add(&mut self, id: i64, fields: &[&str]) {
        let normalized: Vec<String> = fields.iter().map(|f| normalize_text(f)).collect();
        for field in &normalized {
            for token in field.split(' ').filter(|t| !t.is_empty()) {
                self.postings.entry(token.into()).or_default().insert(id);
            }
        }
        self.docs.insert(id, normalized);
    }

    fn remove(&mut self, id: i64) {
        let Some(fields) = self.docs.remove(&id) else { return };
        for field in &fields {
            for token in field.split(' ').filter(|t| !t.is_empty()) {
                let emptied = match self.postings.get_mut(token) {
                    Some(ids) => {
                        ids.remove(&id);
                        ids.is_empty()
                    }
                    None => false,
                };
                if emptied {
                    self.postings.remove(token);
                }
            }
        }
    }

    /// Ids whose normalized fields contain `needle` (itself already
    /// normalized and non-empty), ascending, at most `limit`.
    fn matching(&self, needle: &str, limit: usize) -> Vec<i64> {
        if needle.contains(' ') {
            // A needle with internal spaces can span token boundaries:
            // scan the cached normalized fields in id order.
            let mut out = Vec::new();
            for (id, fields) in &self.docs {
                if out.len() >= limit {
                    break;
                }
                if fields.iter().any(|f| f.contains(needle)) {
                    out.push(*id);
                }
            }
            out
        } else {
            // Space-free needle: any occurrence lies inside a single
            // token, so scanning the vocabulary is exactly the oracle's
            // substring scan. Union preserves ascending id order.
            let mut out = BTreeSet::new();
            for (token, ids) in &self.postings {
                if token.contains(needle) {
                    out.extend(ids.iter().copied());
                }
            }
            out.into_iter().take(limit).collect()
        }
    }

    fn token_count(&self) -> usize {
        self.postings.len()
    }
}

/// Per-user dense-vector matrix for one embedding space: row-major
/// structure-of-arrays with cached norms and a dense-row ↔ peId map.
#[derive(Debug, Clone)]
struct VecIndex {
    dim: usize,
    /// `ids.len() * dim` floats, row-major; Arc for copy-on-write shares.
    data: Arc<Vec<f32>>,
    /// Per-row L2 norm, computed once at insert by the same kernel the
    /// scoring kernel divides by — scores stay bit-identical to a
    /// from-scratch cosine.
    norms: Arc<Vec<f32>>,
    /// Row → peId.
    ids: Vec<i64>,
    /// peId → row.
    row_of: HashMap<i64, usize>,
    /// Set when an insert saw a dimension mismatching the matrix; ranked
    /// queries then decline (`None`) and search falls back to the scan.
    degraded: bool,
}

impl Default for VecIndex {
    fn default() -> Self {
        VecIndex {
            dim: 0,
            data: Arc::new(Vec::new()),
            norms: Arc::new(Vec::new()),
            ids: Vec::new(),
            row_of: HashMap::new(),
            degraded: false,
        }
    }
}

impl VecIndex {
    fn add(&mut self, id: i64, e: &Embedding) {
        if self.row_of.contains_key(&id) {
            self.remove(id);
        }
        if self.ids.is_empty() {
            self.dim = e.dim();
        }
        if e.dim() != self.dim {
            self.degraded = true;
            return;
        }
        Arc::make_mut(&mut self.data).extend_from_slice(&e.values);
        Arc::make_mut(&mut self.norms).push(l2_norm(&e.values));
        self.row_of.insert(id, self.ids.len());
        self.ids.push(id);
    }

    /// Swap-remove: the last row moves into the vacated slot.
    fn remove(&mut self, id: i64) {
        let Some(row) = self.row_of.remove(&id) else { return };
        let last = self.ids.len() - 1;
        let data = Arc::make_mut(&mut self.data);
        let norms = Arc::make_mut(&mut self.norms);
        if row != last {
            let (head, tail) = data.split_at_mut(last * self.dim);
            head[row * self.dim..(row + 1) * self.dim].copy_from_slice(&tail[..self.dim]);
            norms[row] = norms[last];
            let moved = self.ids[last];
            self.ids[row] = moved;
            self.row_of.insert(moved, row);
        }
        self.ids.pop();
        norms.pop();
        data.truncate(last * self.dim);
    }

    /// Best `k` rows by cosine against `query`, best-first with ties
    /// toward the lower id — the oracle's sort-then-truncate order.
    /// `None` when degraded or the query dimension mismatches the matrix
    /// (the scan then reproduces the legacy behaviour, including the
    /// dimension-mismatch panic).
    fn top(&self, query: &Embedding, k: usize) -> Option<Vec<(i64, f64)>> {
        if self.degraded {
            return None;
        }
        if self.ids.is_empty() {
            return Some(Vec::new());
        }
        if query.dim() != self.dim {
            return None;
        }
        let qnorm = l2_norm(&query.values);
        let mut top = TopK::new(k);
        for (row, &id) in self.ids.iter().enumerate() {
            let start = row * self.dim;
            let score =
                cosine_prenorm(&query.values, qnorm, &self.data[start..start + self.dim], self.norms[row])
                    as f64;
            top.push(id, score);
        }
        Some(top.into_sorted())
    }
}

/// One user's slice of the index.
#[derive(Debug, Clone, Default)]
struct UserIndex {
    pe_text: TextIndex,
    wf_text: TextIndex,
    desc: VecIndex,
    code: VecIndex,
}

/// The registry-wide search index: one [`UserIndex`] per user that owns
/// at least one entity. Owned and maintained by the DAO.
#[derive(Debug, Clone)]
pub struct SearchIndex {
    enabled: bool,
    users: HashMap<i64, UserIndex>,
}

impl SearchIndex {
    /// An empty, enabled index.
    pub fn new() -> SearchIndex {
        SearchIndex { enabled: true, users: HashMap::new() }
    }

    /// A disabled index: maintenance hooks no-op and every query
    /// declines, forcing the scan path (the bench baseline).
    pub fn disabled() -> SearchIndex {
        SearchIndex { enabled: false, users: HashMap::new() }
    }

    /// Rebuild from a (recovered) store — the WAL-replay consistency
    /// story: replay mutates the store below the DAO, so the DAO
    /// reconstructs the index from what replay produced.
    pub fn build(store: &Store) -> SearchIndex {
        let mut index = SearchIndex::new();
        for (user_id, pe_id) in store.user_pes.iter() {
            if let Some(pe) = store.pes.get(pe_id).and_then(PeEntity::from_row) {
                index.add_pe(user_id, &pe);
            }
        }
        for (user_id, wf_id) in store.user_workflows.iter() {
            if let Some(wf) = store.workflows.get(wf_id).and_then(WorkflowEntity::from_row) {
                index.add_workflow(user_id, &wf);
            }
        }
        index
    }

    /// Whether queries are served from the index.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    // ---- maintenance (DAO write path) ---------------------------------

    /// Index a PE for one owner (registration or shared-owner link).
    pub fn add_pe(&mut self, user_id: i64, pe: &PeEntity) {
        if !self.enabled {
            return;
        }
        let user = self.users.entry(user_id).or_default();
        user.pe_text.add(pe.pe_id, &[&pe.pe_name, &pe.description]);
        user.desc.add(pe.pe_id, &pe.desc_embedding);
        user.code.add(pe.pe_id, &pe.code_embedding);
    }

    /// Drop a PE from one owner's slice (unlink or deletion).
    pub fn remove_pe(&mut self, user_id: i64, pe_id: i64) {
        if !self.enabled {
            return;
        }
        if let Some(user) = self.users.get_mut(&user_id) {
            user.pe_text.remove(pe_id);
            user.desc.remove(pe_id);
            user.code.remove(pe_id);
        }
    }

    /// Re-index a PE after an in-place row update, for one owner.
    pub fn update_pe(&mut self, user_id: i64, pe: &PeEntity) {
        self.remove_pe(user_id, pe.pe_id);
        self.add_pe(user_id, pe);
    }

    /// Index a workflow for one owner.
    pub fn add_workflow(&mut self, user_id: i64, wf: &WorkflowEntity) {
        if !self.enabled {
            return;
        }
        let user = self.users.entry(user_id).or_default();
        user.wf_text.add(wf.workflow_id, &[&wf.workflow_name, &wf.entry_point, &wf.description]);
    }

    /// Drop a workflow from one owner's slice.
    pub fn remove_workflow(&mut self, user_id: i64, workflow_id: i64) {
        if !self.enabled {
            return;
        }
        if let Some(user) = self.users.get_mut(&user_id) {
            user.wf_text.remove(workflow_id);
        }
    }

    // ---- queries ------------------------------------------------------

    /// PE ids text-matching `needle` (already normalized, non-empty),
    /// ascending, at most `limit`. `None` when the index is disabled.
    pub fn text_pes(&self, user_id: i64, needle: &str, limit: usize) -> Option<Vec<i64>> {
        if !self.enabled {
            return None;
        }
        Some(self.users.get(&user_id).map(|u| u.pe_text.matching(needle, limit)).unwrap_or_default())
    }

    /// Workflow ids text-matching `needle`, ascending, at most `limit`.
    pub fn text_workflows(&self, user_id: i64, needle: &str, limit: usize) -> Option<Vec<i64>> {
        if !self.enabled {
            return None;
        }
        Some(self.users.get(&user_id).map(|u| u.wf_text.matching(needle, limit)).unwrap_or_default())
    }

    /// Best `limit` PEs by cosine in `field` space, best-first. `None`
    /// when the index is disabled or that user's matrix is degraded /
    /// dimension-mismatched (callers fall back to the scan).
    pub fn top_pes(
        &self,
        user_id: i64,
        field: VecField,
        query: &Embedding,
        limit: usize,
    ) -> Option<Vec<(i64, f64)>> {
        if !self.enabled {
            return None;
        }
        match self.users.get(&user_id) {
            None => Some(Vec::new()),
            Some(user) => match field {
                VecField::Desc => user.desc.top(query, limit),
                VecField::Code => user.code.top(query, limit),
            },
        }
    }

    /// Observability snapshot for `/registry/stats`.
    pub fn stats(&self) -> Value {
        let mut tokens = 0usize;
        let mut vectors = 0usize;
        for user in self.users.values() {
            tokens += user.pe_text.token_count() + user.wf_text.token_count();
            vectors += user.desc.ids.len() + user.code.ids.len();
        }
        let mut v = Value::Null;
        v.set("enabled", self.enabled)
            .set("indexed_users", self.users.len() as i64)
            .set("text_tokens", tokens as i64)
            .set("vectors", vectors as i64);
        v
    }
}

impl Default for SearchIndex {
    fn default() -> Self {
        SearchIndex::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_embed::cosine;

    fn emb(values: &[f32]) -> Embedding {
        Embedding { values: values.to_vec() }
    }

    fn pe(id: i64, name: &str, desc: &str, dvec: &[f32], cvec: &[f32]) -> PeEntity {
        PeEntity {
            pe_id: id,
            pe_name: name.into(),
            description: desc.into(),
            description_generated: false,
            pe_code: String::new(),
            pe_imports: vec![],
            code_embedding: emb(cvec),
            desc_embedding: emb(dvec),
        }
    }

    fn wf(id: i64, name: &str, entry: &str, desc: &str) -> WorkflowEntity {
        WorkflowEntity {
            workflow_id: id,
            workflow_name: name.into(),
            entry_point: entry.into(),
            description: desc.into(),
            workflow_code: String::new(),
        }
    }

    #[test]
    fn text_single_token_matches_inside_tokens() {
        let mut idx = SearchIndex::new();
        idx.add_pe(1, &pe(10, "IsPrime", "checks primality", &[1.0], &[1.0]));
        idx.add_pe(1, &pe(11, "WordCount", "counts words", &[1.0], &[1.0]));
        // "prime" occurs inside the token "isprime".
        assert_eq!(idx.text_pes(1, "prime", 25).unwrap(), vec![10]);
        // Substring of a description token.
        assert_eq!(idx.text_pes(1, "ount", 25).unwrap(), vec![11]);
        // Both match "s": ascending id order, limit applies.
        assert_eq!(idx.text_pes(1, "s", 1).unwrap(), vec![10]);
        // Other users see nothing.
        assert_eq!(idx.text_pes(2, "prime", 25).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn text_multi_token_spans_boundaries() {
        let mut idx = SearchIndex::new();
        idx.add_pe(1, &pe(10, "IsPrime", "checks prime numbers fast", &[1.0], &[1.0]));
        assert_eq!(idx.text_pes(1, "prime numbers", 25).unwrap(), vec![10]);
        assert_eq!(idx.text_pes(1, "numbers prime", 25).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn text_remove_cleans_postings() {
        let mut idx = SearchIndex::new();
        idx.add_pe(1, &pe(10, "IsPrime", "d", &[1.0], &[1.0]));
        idx.add_pe(1, &pe(11, "IsPrimeFast", "d", &[1.0], &[1.0]));
        idx.remove_pe(1, 10);
        assert_eq!(idx.text_pes(1, "prime", 25).unwrap(), vec![11]);
        idx.remove_pe(1, 11);
        assert_eq!(idx.text_pes(1, "prime", 25).unwrap(), Vec::<i64>::new());
        let user = idx.users.get(&1).unwrap();
        assert_eq!(user.pe_text.token_count(), 0, "posting lists garbage-collected");
    }

    #[test]
    fn workflow_text_covers_entry_point() {
        let mut idx = SearchIndex::new();
        idx.add_workflow(1, &wf(5, "IsPrimeFlow", "isPrime", "prints random primes"));
        assert_eq!(idx.text_workflows(1, "isprime", 25).unwrap(), vec![5]);
        idx.remove_workflow(1, 5);
        assert_eq!(idx.text_workflows(1, "isprime", 25).unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn vector_top_matches_scan_bitwise() {
        let mut idx = SearchIndex::new();
        let pes: Vec<PeEntity> = (0..20)
            .map(|i| {
                let f = i as f32;
                pe(i, &format!("P{i}"), "d", &[f, 1.0, 2.0 - f, 0.5 * f], &[1.0, f, f * f, 0.25])
            })
            .collect();
        for p in &pes {
            idx.add_pe(1, p);
        }
        let q = emb(&[0.3, -1.2, 0.7, 2.0]);
        for field in [VecField::Desc, VecField::Code] {
            let got = idx.top_pes(1, field, &q, 5).unwrap();
            let mut oracle: Vec<(i64, f64)> =
                pes.iter().map(|p| (p.pe_id, cosine(&q, field.of(p)) as f64)).collect();
            oracle.sort_by(|a, b| {
                b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
            });
            oracle.truncate(5);
            assert_eq!(got, oracle, "field {field:?} diverged from scan");
        }
    }

    #[test]
    fn vector_swap_remove_keeps_rows_consistent() {
        let mut idx = SearchIndex::new();
        for i in 0..4 {
            idx.add_pe(1, &pe(i, &format!("P{i}"), "d", &[i as f32, 1.0], &[1.0, i as f32]));
        }
        idx.remove_pe(1, 1); // middle row: row 3 swaps into slot 1
        let q = emb(&[1.0, 0.0]);
        let top = idx.top_pes(1, VecField::Desc, &q, 10).unwrap();
        let ids: Vec<i64> = top.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 3);
        assert!(!ids.contains(&1));
        // Scores still match a from-scratch cosine per id.
        for (id, score) in top {
            let p = pe(id, "x", "d", &[id as f32, 1.0], &[1.0, id as f32]);
            assert_eq!(score, cosine(&q, &p.desc_embedding) as f64);
        }
    }

    #[test]
    fn mixed_dimensions_degrade_to_scan() {
        let mut idx = SearchIndex::new();
        idx.add_pe(1, &pe(1, "A", "d", &[1.0, 0.0], &[1.0, 0.0]));
        idx.add_pe(1, &pe(2, "B", "d", &[1.0, 0.0, 0.0], &[1.0, 0.0]));
        assert!(idx.top_pes(1, VecField::Desc, &emb(&[1.0, 0.0]), 5).is_none(), "degraded");
        // The code space stayed homogeneous and still serves.
        assert_eq!(idx.top_pes(1, VecField::Code, &emb(&[1.0, 0.0]), 5).unwrap().len(), 2);
        // Query dimension mismatch also declines instead of panicking.
        assert!(idx.top_pes(1, VecField::Code, &emb(&[1.0]), 5).is_none());
    }

    #[test]
    fn disabled_index_declines_everything() {
        let mut idx = SearchIndex::disabled();
        idx.add_pe(1, &pe(1, "A", "d", &[1.0], &[1.0]));
        assert!(idx.text_pes(1, "a", 25).is_none());
        assert!(idx.top_pes(1, VecField::Desc, &emb(&[1.0]), 5).is_none());
        assert_eq!(idx.stats()["enabled"].as_bool(), Some(false));
    }

    #[test]
    fn stats_counts() {
        let mut idx = SearchIndex::new();
        idx.add_pe(1, &pe(1, "IsPrime", "checks primality", &[1.0], &[1.0]));
        idx.add_workflow(2, &wf(7, "Flow", "flow", ""));
        let s = idx.stats();
        assert_eq!(s["indexed_users"].as_i64(), Some(2));
        assert_eq!(s["vectors"].as_i64(), Some(2));
        assert!(s["text_tokens"].as_i64().unwrap() >= 3);
    }
}
