//! Registry error type — mirrors the server's structured error design
//! (paper §3.2.5): every error carries a type, a code and the failing
//! parameter, and serializes to the unified v1 JSON envelope
//! `{"error":{"code","status","message","parameter"?,"retryAfterMs"?}}`
//! shared by every endpoint.

use laminar_json::{jobj, Value};
use std::fmt;

/// Errors surfaced by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Entity not found; carries (entity kind, key).
    NotFound { entity: &'static str, key: String },
    /// Unique constraint violated; carries (table, column, value).
    Duplicate { entity: &'static str, field: &'static str, value: String },
    /// Login failed or session invalid.
    Unauthorized(String),
    /// Input failed validation (bad name, unparsable code…).
    Invalid { field: &'static str, message: String },
    /// The storage engine failed (I/O, corruption).
    Storage(String),
    /// The server is saturated (admission control); retry later.
    Busy(String),
    /// Admission control with a concrete backoff: queue-full and
    /// per-tenant rate-limit 429s carry the server's own estimate of
    /// when a retry could succeed (`retryAfterMs` on the wire).
    Throttled { message: String, retry_after_ms: u64 },
    /// The requested work was cancelled on purpose (job cancel, pool
    /// shutdown) — terminal, but not a failure: the job's event log
    /// holds the valid prefix it produced.
    Cancelled(String),
}

impl RegistryError {
    /// Stable machine-readable error code (used by clients and tests).
    pub fn code(&self) -> u32 {
        match self {
            RegistryError::NotFound { .. } => 404,
            RegistryError::Duplicate { .. } => 409,
            RegistryError::Unauthorized(_) => 401,
            RegistryError::Invalid { .. } => 400,
            RegistryError::Storage(_) => 500,
            RegistryError::Busy(_) => 429,
            RegistryError::Throttled { .. } => 429,
            RegistryError::Cancelled(_) => 409,
        }
    }

    /// Short type tag.
    pub fn kind(&self) -> &'static str {
        match self {
            RegistryError::NotFound { .. } => "NotFound",
            RegistryError::Duplicate { .. } => "Duplicate",
            RegistryError::Unauthorized(_) => "Unauthorized",
            RegistryError::Invalid { .. } => "Invalid",
            RegistryError::Storage(_) => "Storage",
            RegistryError::Busy(_) => "Busy",
            RegistryError::Throttled { .. } => "Busy",
            RegistryError::Cancelled(_) => "Cancelled",
        }
    }

    /// The server's advised retry backoff, when it has one (429s).
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            RegistryError::Throttled { retry_after_ms, .. } => Some(*retry_after_ms),
            _ => None,
        }
    }

    /// The unified v1 error envelope (paper §3.2.5, redesigned in
    /// PR 10): every endpoint answers errors as one nested object —
    /// `code` is the stable machine-readable kind, `status` the HTTP
    /// status it rides on, `parameter` the failing input when there is
    /// one, and `retryAfterMs` the server's backoff advice on 429s.
    pub fn to_value(&self) -> Value {
        let mut detail = jobj! {
            "code" => self.kind(),
            "status" => self.code() as i64,
            "message" => self.to_string(),
        };
        match self {
            RegistryError::NotFound { key, .. } => {
                detail.set("parameter", key.as_str());
            }
            RegistryError::Duplicate { value, .. } => {
                detail.set("parameter", value.as_str());
            }
            RegistryError::Invalid { field, .. } => {
                detail.set("parameter", *field);
            }
            RegistryError::Throttled { retry_after_ms, .. } => {
                detail.set("retryAfterMs", *retry_after_ms as i64);
            }
            _ => {}
        }
        let mut v = Value::Null;
        v.set("error", detail);
        v
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NotFound { entity, key } => write!(f, "{entity} '{key}' not found"),
            RegistryError::Duplicate { entity, field, value } => {
                write!(f, "{entity} with {field} '{value}' already exists")
            }
            RegistryError::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            RegistryError::Invalid { field, message } => write!(f, "invalid {field}: {message}"),
            RegistryError::Storage(m) => write!(f, "storage error: {m}"),
            RegistryError::Busy(m) => write!(f, "server busy: {m}"),
            RegistryError::Throttled { message, retry_after_ms } => {
                write!(f, "server busy: {message}; retry in {retry_after_ms}ms")
            }
            RegistryError::Cancelled(m) => write!(f, "cancelled: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_envelope() {
        let e = RegistryError::NotFound { entity: "PE", key: "IsPrime".into() };
        assert_eq!(e.code(), 404);
        let v = e.to_value();
        assert_eq!(v["error"]["code"].as_str(), Some("NotFound"));
        assert_eq!(v["error"]["status"].as_i64(), Some(404));
        assert_eq!(v["error"]["parameter"].as_str(), Some("IsPrime"));
        assert!(v["error"]["message"].as_str().unwrap().contains("IsPrime"));
        assert!(v["error"]["retryAfterMs"].as_i64().is_none());
    }

    #[test]
    fn throttled_envelope_carries_retry_hint() {
        let e = RegistryError::Throttled { message: "queue full".into(), retry_after_ms: 125 };
        assert_eq!(e.code(), 429);
        assert_eq!(e.kind(), "Busy");
        assert_eq!(e.retry_after_ms(), Some(125));
        let v = e.to_value();
        assert_eq!(v["error"]["code"].as_str(), Some("Busy"));
        assert_eq!(v["error"]["status"].as_i64(), Some(429));
        assert_eq!(v["error"]["retryAfterMs"].as_i64(), Some(125));
        assert!(v["error"]["message"].as_str().unwrap().contains("retry in 125ms"));
        // Hint-less Busy omits the field rather than writing a zero.
        let plain = RegistryError::Busy("shutting down".into()).to_value();
        assert!(plain["error"]["retryAfterMs"].as_i64().is_none());
    }

    #[test]
    fn all_variants_display() {
        let variants = [
            RegistryError::NotFound { entity: "User", key: "x".into() },
            RegistryError::Duplicate { entity: "User", field: "userName", value: "x".into() },
            RegistryError::Unauthorized("bad password".into()),
            RegistryError::Invalid { field: "peCode", message: "parse error".into() },
            RegistryError::Storage("disk".into()),
            RegistryError::Busy("queue full".into()),
            RegistryError::Throttled { message: "rate limit".into(), retry_after_ms: 50 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(v.code() >= 400);
        }
    }
}
