//! Registry error type — mirrors the server's structured error design
//! (paper §3.2.5): every error carries a type, a code and the failing
//! parameter, and serializes to the standard JSON envelope.

use laminar_json::{jobj, Value};
use std::fmt;

/// Errors surfaced by registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// Entity not found; carries (entity kind, key).
    NotFound { entity: &'static str, key: String },
    /// Unique constraint violated; carries (table, column, value).
    Duplicate { entity: &'static str, field: &'static str, value: String },
    /// Login failed or session invalid.
    Unauthorized(String),
    /// Input failed validation (bad name, unparsable code…).
    Invalid { field: &'static str, message: String },
    /// The storage engine failed (I/O, corruption).
    Storage(String),
    /// The server is saturated (admission control); retry later.
    Busy(String),
    /// The requested work was cancelled on purpose (job cancel, pool
    /// shutdown) — terminal, but not a failure: the job's event log
    /// holds the valid prefix it produced.
    Cancelled(String),
}

impl RegistryError {
    /// Stable machine-readable error code (used by clients and tests).
    pub fn code(&self) -> u32 {
        match self {
            RegistryError::NotFound { .. } => 404,
            RegistryError::Duplicate { .. } => 409,
            RegistryError::Unauthorized(_) => 401,
            RegistryError::Invalid { .. } => 400,
            RegistryError::Storage(_) => 500,
            RegistryError::Busy(_) => 429,
            RegistryError::Cancelled(_) => 409,
        }
    }

    /// Short type tag.
    pub fn kind(&self) -> &'static str {
        match self {
            RegistryError::NotFound { .. } => "NotFound",
            RegistryError::Duplicate { .. } => "Duplicate",
            RegistryError::Unauthorized(_) => "Unauthorized",
            RegistryError::Invalid { .. } => "Invalid",
            RegistryError::Storage(_) => "Storage",
            RegistryError::Busy(_) => "Busy",
            RegistryError::Cancelled(_) => "Cancelled",
        }
    }

    /// The standardized JSON error envelope of paper §3.2.5.
    pub fn to_value(&self) -> Value {
        let mut v = jobj! {
            "error" => self.kind(),
            "code" => self.code() as i64,
            "message" => self.to_string(),
        };
        match self {
            RegistryError::NotFound { key, .. } => {
                v.set("parameter", key.as_str());
            }
            RegistryError::Duplicate { value, .. } => {
                v.set("parameter", value.as_str());
            }
            RegistryError::Invalid { field, .. } => {
                v.set("parameter", *field);
            }
            _ => {}
        }
        v
    }
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::NotFound { entity, key } => write!(f, "{entity} '{key}' not found"),
            RegistryError::Duplicate { entity, field, value } => {
                write!(f, "{entity} with {field} '{value}' already exists")
            }
            RegistryError::Unauthorized(m) => write!(f, "unauthorized: {m}"),
            RegistryError::Invalid { field, message } => write!(f, "invalid {field}: {message}"),
            RegistryError::Storage(m) => write!(f, "storage error: {m}"),
            RegistryError::Busy(m) => write!(f, "server busy: {m}"),
            RegistryError::Cancelled(m) => write!(f, "cancelled: {m}"),
        }
    }
}

impl std::error::Error for RegistryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_envelope() {
        let e = RegistryError::NotFound { entity: "PE", key: "IsPrime".into() };
        assert_eq!(e.code(), 404);
        let v = e.to_value();
        assert_eq!(v["error"].as_str(), Some("NotFound"));
        assert_eq!(v["code"].as_i64(), Some(404));
        assert_eq!(v["parameter"].as_str(), Some("IsPrime"));
        assert!(v["message"].as_str().unwrap().contains("IsPrime"));
    }

    #[test]
    fn all_variants_display() {
        let variants = [
            RegistryError::NotFound { entity: "User", key: "x".into() },
            RegistryError::Duplicate { entity: "User", field: "userName", value: "x".into() },
            RegistryError::Unauthorized("bad password".into()),
            RegistryError::Invalid { field: "peCode", message: "parse error".into() },
            RegistryError::Storage("disk".into()),
            RegistryError::Busy("queue full".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(v.code() >= 400);
        }
    }
}
