//! Durability: snapshot files plus a write-ahead log of JSON lines.
//!
//! The store persists as `<dir>/registry.snapshot` (full JSON) and
//! `<dir>/registry.wal` (one JSON op per line, appended before each
//! mutation is acknowledged). Recovery loads the snapshot then replays the
//! WAL; a torn final line (simulated crash) is tolerated and discarded.

use crate::error::RegistryError;
use crate::store::Store;
use laminar_json::{parse, to_string, Value};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Snapshot + WAL persistence for a [`Store`].
pub struct WalStore {
    dir: PathBuf,
    wal: Option<File>,
    ops_since_snapshot: usize,
    /// Snapshot automatically after this many WAL ops (compaction).
    pub snapshot_every: usize,
}

impl WalStore {
    fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("registry.snapshot")
    }

    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("registry.wal")
    }

    /// Open (or create) persistence under `dir`. Returns the recovered
    /// store and the handler.
    pub fn open(dir: &Path) -> Result<(Store, WalStore), RegistryError> {
        std::fs::create_dir_all(dir).map_err(|e| RegistryError::Storage(e.to_string()))?;
        let mut store = Store::new();
        let snap_path = Self::snapshot_path(dir);
        if snap_path.exists() {
            let text =
                std::fs::read_to_string(&snap_path).map_err(|e| RegistryError::Storage(e.to_string()))?;
            let v = parse(&text).map_err(|e| RegistryError::Storage(format!("corrupt snapshot: {e}")))?;
            store = Store::from_value(&v)?;
        }
        let wal_path = Self::wal_path(dir);
        if wal_path.exists() {
            let bytes = std::fs::read(&wal_path).map_err(|e| RegistryError::Storage(e.to_string()))?;
            // A crash can tear the final append mid-record — even inside a
            // multi-byte character — so decode the longest valid prefix
            // and let the tail rule below judge the remainder.
            let text = match String::from_utf8(bytes) {
                Ok(t) => t,
                Err(e) => {
                    let valid = e.utf8_error().valid_up_to();
                    let mut b = e.into_bytes();
                    b.truncate(valid);
                    String::from_utf8(b).expect("prefix up to valid_up_to is valid utf8")
                }
            };
            // Bytes of fully-applied records: everything after them is a
            // torn tail to be cut off so the next append starts clean.
            let mut good_len = 0u64;
            let segments: Vec<&str> = text.split_inclusive('\n').collect();
            for (i, seg) in segments.iter().enumerate() {
                let line = seg.trim_end_matches('\n').trim_end_matches('\r');
                if line.trim().is_empty() {
                    good_len += seg.len() as u64;
                    continue;
                }
                match parse(line) {
                    Ok(op) => {
                        apply_op(&mut store, &op)?;
                        good_len += seg.len() as u64;
                    }
                    // A torn *final* record is a crash artifact (the
                    // append never completed), not corruption: stop
                    // replaying at the last acknowledged op and log the
                    // discard. Anything unparseable *before* other
                    // records is real corruption — replaying past it
                    // would silently resurrect a partial history.
                    Err(_) if i + 1 == segments.len() => {
                        eprintln!(
                            "registry wal: discarding torn final record ({} bytes) after crash",
                            line.len()
                        );
                        break;
                    }
                    Err(e) => {
                        return Err(RegistryError::Storage(format!(
                            "corrupt WAL record at line {}: {e}",
                            i + 1
                        )));
                    }
                }
            }
            // Drop the torn tail (if any) before reopening for append, so
            // the next record is not glued onto garbage.
            let disk_len =
                std::fs::metadata(&wal_path).map_err(|e| RegistryError::Storage(e.to_string()))?.len();
            if good_len < disk_len {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&wal_path)
                    .map_err(|e| RegistryError::Storage(e.to_string()))?;
                f.set_len(good_len).map_err(|e| RegistryError::Storage(e.to_string()))?;
            } else if !text.is_empty() && !text.ends_with('\n') {
                // A complete final record that lost only its newline (the
                // crash landed between the bytes and the terminator): keep
                // the op, restore the separator so the next append starts
                // its own line.
                let mut f = OpenOptions::new()
                    .append(true)
                    .open(&wal_path)
                    .map_err(|e| RegistryError::Storage(e.to_string()))?;
                writeln!(f).map_err(|e| RegistryError::Storage(e.to_string()))?;
            }
        }
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| RegistryError::Storage(e.to_string()))?;
        Ok((
            store,
            WalStore { dir: dir.to_path_buf(), wal: Some(wal), ops_since_snapshot: 0, snapshot_every: 256 },
        ))
    }

    /// In-memory mode: no files, appends are no-ops.
    pub fn ephemeral() -> WalStore {
        WalStore { dir: PathBuf::new(), wal: None, ops_since_snapshot: 0, snapshot_every: usize::MAX }
    }

    /// Record one mutation. Call *before* acknowledging the mutation.
    /// Triggers snapshot compaction when the WAL grows long.
    pub fn append(&mut self, store: &Store, op: &Value) -> Result<(), RegistryError> {
        let Some(wal) = self.wal.as_mut() else { return Ok(()) };
        writeln!(wal, "{}", to_string(op)).map_err(|e| RegistryError::Storage(e.to_string()))?;
        wal.flush().map_err(|e| RegistryError::Storage(e.to_string()))?;
        self.ops_since_snapshot += 1;
        if self.ops_since_snapshot >= self.snapshot_every {
            self.snapshot(store)?;
        }
        Ok(())
    }

    /// Write a full snapshot and truncate the WAL.
    pub fn snapshot(&mut self, store: &Store) -> Result<(), RegistryError> {
        if self.wal.is_none() {
            return Ok(());
        }
        let tmp = self.dir.join("registry.snapshot.tmp");
        std::fs::write(&tmp, to_string(&store.to_value()))
            .map_err(|e| RegistryError::Storage(e.to_string()))?;
        std::fs::rename(&tmp, Self::snapshot_path(&self.dir))
            .map_err(|e| RegistryError::Storage(e.to_string()))?;
        // Truncate the WAL now that the snapshot covers it.
        self.wal = Some(
            OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(Self::wal_path(&self.dir))
                .map_err(|e| RegistryError::Storage(e.to_string()))?,
        );
        self.ops_since_snapshot = 0;
        Ok(())
    }
}

/// Replay one WAL op onto a store. Ops are self-describing:
/// `{"op": "...", ...}`.
pub fn apply_op(store: &mut Store, op: &Value) -> Result<(), RegistryError> {
    fn table<'a>(store: &'a mut Store, name: &str) -> Result<&'a mut crate::store::Table, RegistryError> {
        match name {
            "users" => Ok(&mut store.users),
            "pes" => Ok(&mut store.pes),
            "workflows" => Ok(&mut store.workflows),
            other => Err(RegistryError::Storage(format!("unknown table '{other}'"))),
        }
    }
    fn junction<'a>(
        store: &'a mut Store,
        name: &str,
    ) -> Result<&'a mut crate::store::Junction, RegistryError> {
        match name {
            "user_pes" => Ok(&mut store.user_pes),
            "user_workflows" => Ok(&mut store.user_workflows),
            "workflow_pes" => Ok(&mut store.workflow_pes),
            other => Err(RegistryError::Storage(format!("unknown junction '{other}'"))),
        }
    }
    match op["op"].as_str() {
        Some("insert") => {
            let id = op["id"].as_i64().ok_or(RegistryError::Storage("insert missing id".into()))?;
            table(store, op["table"].as_str().unwrap_or(""))?.insert_with_id(id, op["row"].clone())?;
        }
        Some("update") => {
            let id = op["id"].as_i64().ok_or(RegistryError::Storage("update missing id".into()))?;
            table(store, op["table"].as_str().unwrap_or(""))?.update(id, op["row"].clone())?;
        }
        Some("delete") => {
            let id = op["id"].as_i64().ok_or(RegistryError::Storage("delete missing id".into()))?;
            let _ = table(store, op["table"].as_str().unwrap_or(""))?.delete(id);
        }
        Some("link") => {
            junction(store, op["junction"].as_str().unwrap_or(""))?
                .link(op["left"].as_i64().unwrap_or(0), op["right"].as_i64().unwrap_or(0));
        }
        Some("unlink") => {
            junction(store, op["junction"].as_str().unwrap_or(""))?
                .unlink(op["left"].as_i64().unwrap_or(0), op["right"].as_i64().unwrap_or(0));
        }
        Some("remove_right") => {
            junction(store, op["junction"].as_str().unwrap_or(""))?
                .remove_right(op["right"].as_i64().unwrap_or(0));
        }
        Some("remove_left") => {
            junction(store, op["junction"].as_str().unwrap_or(""))?
                .remove_left(op["left"].as_i64().unwrap_or(0));
        }
        other => return Err(RegistryError::Storage(format!("unknown WAL op {other:?}"))),
    }
    Ok(())
}

/// Helper to build WAL op records.
pub mod ops {
    use laminar_json::Value;

    /// Insert record.
    pub fn insert(table: &str, id: i64, row: &Value) -> Value {
        let mut v = Value::Null;
        v.set("op", "insert").set("table", table).set("id", id).set("row", row.clone());
        v
    }

    /// Update record.
    pub fn update(table: &str, id: i64, row: &Value) -> Value {
        let mut v = Value::Null;
        v.set("op", "update").set("table", table).set("id", id).set("row", row.clone());
        v
    }

    /// Delete record.
    pub fn delete(table: &str, id: i64) -> Value {
        let mut v = Value::Null;
        v.set("op", "delete").set("table", table).set("id", id);
        v
    }

    /// Link record.
    pub fn link(junction: &str, left: i64, right: i64) -> Value {
        let mut v = Value::Null;
        v.set("op", "link").set("junction", junction).set("left", left).set("right", right);
        v
    }

    /// Unlink record.
    pub fn unlink(junction: &str, left: i64, right: i64) -> Value {
        let mut v = Value::Null;
        v.set("op", "unlink").set("junction", junction).set("left", left).set("right", right);
        v
    }

    /// Remove-right record (cascade deletes).
    pub fn remove_right(junction: &str, right: i64) -> Value {
        let mut v = Value::Null;
        v.set("op", "remove_right").set("junction", junction).set("right", right);
        v
    }

    /// Remove-left record (cascade deletes from the owning side).
    pub fn remove_left(junction: &str, left: i64) -> Value {
        let mut v = Value::Null;
        v.set("op", "remove_left").set("junction", junction).set("left", left);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_json::jobj;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("laminar-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn recovery_replays_wal() {
        let dir = tmpdir("replay");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            let id = store.users.insert(jobj! { "userName" => "zz46" }, "userId").unwrap();
            wal.append(&store, &ops::insert("users", id, store.users.get(id).unwrap())).unwrap();
            store.user_pes.link(id, 7);
            wal.append(&store, &ops::link("user_pes", id, 7)).unwrap();
            // No snapshot: recovery must come from the WAL alone.
        }
        let (store, _) = WalStore::open(&dir).unwrap();
        assert_eq!(store.users.find_unique("userName", "zz46"), Some(1));
        assert!(store.user_pes.linked(1, 7));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compacts_wal() {
        let dir = tmpdir("snap");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            for i in 0..5 {
                let id = store.users.insert(jobj! { "userName" => format!("u{i}") }, "userId").unwrap();
                wal.append(&store, &ops::insert("users", id, store.users.get(id).unwrap())).unwrap();
            }
            wal.snapshot(&store).unwrap();
            // WAL is now empty.
            let wal_len = std::fs::metadata(dir.join("registry.wal")).unwrap().len();
            assert_eq!(wal_len, 0);
        }
        let (store, _) = WalStore::open(&dir).unwrap();
        assert_eq!(store.users.len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_tolerated() {
        let dir = tmpdir("torn");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            let id = store.users.insert(jobj! { "userName" => "ok" }, "userId").unwrap();
            wal.append(&store, &ops::insert("users", id, store.users.get(id).unwrap())).unwrap();
        }
        // Simulate a crash mid-append: garbage partial line at the end.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(dir.join("registry.wal")).unwrap();
            write!(f, "{{\"op\":\"insert\",\"table\":\"users\",\"id\":2,\"row\"").unwrap();
        }
        let (store, _) = WalStore::open(&dir).unwrap();
        assert_eq!(store.users.len(), 1, "torn record discarded, prior ops kept");
        // Recovery cut the torn tail off, so appending resumes cleanly
        // and a second recovery sees a healthy log.
        let (store, _) = WalStore::open(&dir).unwrap();
        assert_eq!(store.users.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_byte_of_the_last_record_recovers() {
        // Crash-consistency sweep: tear the WAL at *every* byte offset of
        // its final record (newline included). Recovery must never fail,
        // must keep every op before the tear, and must keep the final op
        // exactly when its record survived complete (modulo the newline,
        // which recovery restores).
        let dir = tmpdir("everybyte");
        let (full, second_start) = {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            let a = store.users.insert(jobj! { "userName" => "first" }, "userId").unwrap();
            wal.append(&store, &ops::insert("users", a, store.users.get(a).unwrap())).unwrap();
            let second_start = std::fs::metadata(dir.join("registry.wal")).unwrap().len();
            let b = store.users.insert(jobj! { "userName" => "second" }, "userId").unwrap();
            wal.append(&store, &ops::insert("users", b, store.users.get(b).unwrap())).unwrap();
            (std::fs::metadata(dir.join("registry.wal")).unwrap().len(), second_start)
        };
        let pristine = std::fs::read(dir.join("registry.wal")).unwrap();
        for cut in second_start..=full {
            std::fs::write(dir.join("registry.wal"), &pristine[..cut as usize]).unwrap();
            let (store, _) = WalStore::open(&dir).unwrap();
            // The record is whole once all its bytes short of the newline
            // are on disk.
            let expected = if cut >= full - 1 { 2 } else { 1 };
            assert_eq!(store.users.len(), expected, "cut at byte {cut} of {full}");
            assert_eq!(store.users.find_unique("userName", "first"), Some(1));
            // Whatever recovery left behind must itself recover: the torn
            // tail was cut (or the newline restored), so a *second* open
            // sees a clean log and agrees.
            let (again, _) = WalStore::open(&dir).unwrap();
            assert_eq!(again.users.len(), expected, "re-recovery after cut at {cut}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_an_error_not_a_silent_truncation() {
        // Only the *final* record may be torn (a crash artifact). Garbage
        // in the middle of the log means real corruption — replaying past
        // it (or silently stopping at it, as the recovery used to) would
        // resurrect a partial history behind the caller's back.
        let dir = tmpdir("midfile");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            let a = store.users.insert(jobj! { "userName" => "ok" }, "userId").unwrap();
            wal.append(&store, &ops::insert("users", a, store.users.get(a).unwrap())).unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(dir.join("registry.wal")).unwrap();
            writeln!(f, "this is not json").unwrap();
            let op = ops::insert("users", 2, &jobj! { "userName" => "after", "userId" => 2 });
            writeln!(f, "{}", to_string(&op)).unwrap();
        }
        match WalStore::open(&dir) {
            Err(RegistryError::Storage(m)) => assert!(m.contains("corrupt WAL record"), "{m}"),
            Err(other) => panic!("expected a Storage error, got {other:?}"),
            Ok(_) => panic!("expected a corruption error, got a successful recovery"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_snapshot_after_threshold() {
        let dir = tmpdir("auto");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            wal.snapshot_every = 3;
            for i in 0..4 {
                let id = store.users.insert(jobj! { "userName" => format!("u{i}") }, "userId").unwrap();
                wal.append(&store, &ops::insert("users", id, store.users.get(id).unwrap())).unwrap();
            }
            // Threshold crossed at op 3: snapshot exists and WAL was reset.
            assert!(dir.join("registry.snapshot").exists());
        }
        let (store, _) = WalStore::open(&dir).unwrap();
        assert_eq!(store.users.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_and_unlink_replay() {
        let dir = tmpdir("del");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            let a = store.users.insert(jobj! { "userName" => "a" }, "userId").unwrap();
            wal.append(&store, &ops::insert("users", a, store.users.get(a).unwrap())).unwrap();
            let b = store.users.insert(jobj! { "userName" => "b" }, "userId").unwrap();
            wal.append(&store, &ops::insert("users", b, store.users.get(b).unwrap())).unwrap();
            store.users.delete(a).unwrap();
            wal.append(&store, &ops::delete("users", a)).unwrap();
        }
        let (store, _) = WalStore::open(&dir).unwrap();
        assert_eq!(store.users.len(), 1);
        assert_eq!(store.users.find_unique("userName", "b"), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_left_replay() {
        // Regression: deleting a workflow removes its PE links via
        // remove_left; the op must journal, or recovery resurrects the
        // dead links (found by tests/proptest_interleaved.rs).
        let dir = tmpdir("removeleft");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            store.workflow_pes.link(1, 10);
            wal.append(&store, &ops::link("workflow_pes", 1, 10)).unwrap();
            store.workflow_pes.link(1, 11);
            wal.append(&store, &ops::link("workflow_pes", 1, 11)).unwrap();
            store.workflow_pes.link(2, 10);
            wal.append(&store, &ops::link("workflow_pes", 2, 10)).unwrap();
            store.workflow_pes.remove_left(1);
            wal.append(&store, &ops::remove_left("workflow_pes", 1)).unwrap();
        }
        let (store, _) = WalStore::open(&dir).unwrap();
        assert!(!store.workflow_pes.linked(1, 10));
        assert!(!store.workflow_pes.linked(1, 11));
        assert!(store.workflow_pes.linked(2, 10), "other workflows keep their links");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ephemeral_mode_never_touches_disk() {
        let mut wal = WalStore::ephemeral();
        let store = Store::new();
        wal.append(&store, &ops::delete("users", 1)).unwrap();
        wal.snapshot(&store).unwrap();
    }
}
