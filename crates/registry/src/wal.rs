//! Durability: snapshot files plus a write-ahead log of JSON lines.
//!
//! The store persists as `<dir>/registry.snapshot` (full JSON) and
//! `<dir>/registry.wal` (one JSON op per line, appended before each
//! mutation is acknowledged). Recovery loads the snapshot then replays the
//! WAL; a torn final line (simulated crash) is tolerated and discarded.

use crate::error::RegistryError;
use crate::store::Store;
use laminar_json::{parse, to_string, Value};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Snapshot + WAL persistence for a [`Store`].
pub struct WalStore {
    dir: PathBuf,
    wal: Option<File>,
    ops_since_snapshot: usize,
    /// Snapshot automatically after this many WAL ops (compaction).
    pub snapshot_every: usize,
}

impl WalStore {
    fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("registry.snapshot")
    }

    fn wal_path(dir: &Path) -> PathBuf {
        dir.join("registry.wal")
    }

    /// Open (or create) persistence under `dir`. Returns the recovered
    /// store and the handler.
    pub fn open(dir: &Path) -> Result<(Store, WalStore), RegistryError> {
        std::fs::create_dir_all(dir).map_err(|e| RegistryError::Storage(e.to_string()))?;
        let mut store = Store::new();
        let snap_path = Self::snapshot_path(dir);
        if snap_path.exists() {
            let text =
                std::fs::read_to_string(&snap_path).map_err(|e| RegistryError::Storage(e.to_string()))?;
            let v = parse(&text).map_err(|e| RegistryError::Storage(format!("corrupt snapshot: {e}")))?;
            store = Store::from_value(&v)?;
        }
        let wal_path = Self::wal_path(dir);
        if wal_path.exists() {
            let file = File::open(&wal_path).map_err(|e| RegistryError::Storage(e.to_string()))?;
            for line in BufReader::new(file).lines() {
                let line = line.map_err(|e| RegistryError::Storage(e.to_string()))?;
                if line.trim().is_empty() {
                    continue;
                }
                // A torn final line is a crash artifact, not corruption.
                let Ok(op) = parse(&line) else { break };
                apply_op(&mut store, &op)?;
            }
        }
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| RegistryError::Storage(e.to_string()))?;
        Ok((
            store,
            WalStore { dir: dir.to_path_buf(), wal: Some(wal), ops_since_snapshot: 0, snapshot_every: 256 },
        ))
    }

    /// In-memory mode: no files, appends are no-ops.
    pub fn ephemeral() -> WalStore {
        WalStore { dir: PathBuf::new(), wal: None, ops_since_snapshot: 0, snapshot_every: usize::MAX }
    }

    /// Record one mutation. Call *before* acknowledging the mutation.
    /// Triggers snapshot compaction when the WAL grows long.
    pub fn append(&mut self, store: &Store, op: &Value) -> Result<(), RegistryError> {
        let Some(wal) = self.wal.as_mut() else { return Ok(()) };
        writeln!(wal, "{}", to_string(op)).map_err(|e| RegistryError::Storage(e.to_string()))?;
        wal.flush().map_err(|e| RegistryError::Storage(e.to_string()))?;
        self.ops_since_snapshot += 1;
        if self.ops_since_snapshot >= self.snapshot_every {
            self.snapshot(store)?;
        }
        Ok(())
    }

    /// Write a full snapshot and truncate the WAL.
    pub fn snapshot(&mut self, store: &Store) -> Result<(), RegistryError> {
        if self.wal.is_none() {
            return Ok(());
        }
        let tmp = self.dir.join("registry.snapshot.tmp");
        std::fs::write(&tmp, to_string(&store.to_value()))
            .map_err(|e| RegistryError::Storage(e.to_string()))?;
        std::fs::rename(&tmp, Self::snapshot_path(&self.dir))
            .map_err(|e| RegistryError::Storage(e.to_string()))?;
        // Truncate the WAL now that the snapshot covers it.
        self.wal = Some(
            OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(Self::wal_path(&self.dir))
                .map_err(|e| RegistryError::Storage(e.to_string()))?,
        );
        self.ops_since_snapshot = 0;
        Ok(())
    }
}

/// Replay one WAL op onto a store. Ops are self-describing:
/// `{"op": "...", ...}`.
pub fn apply_op(store: &mut Store, op: &Value) -> Result<(), RegistryError> {
    fn table<'a>(store: &'a mut Store, name: &str) -> Result<&'a mut crate::store::Table, RegistryError> {
        match name {
            "users" => Ok(&mut store.users),
            "pes" => Ok(&mut store.pes),
            "workflows" => Ok(&mut store.workflows),
            other => Err(RegistryError::Storage(format!("unknown table '{other}'"))),
        }
    }
    fn junction<'a>(
        store: &'a mut Store,
        name: &str,
    ) -> Result<&'a mut crate::store::Junction, RegistryError> {
        match name {
            "user_pes" => Ok(&mut store.user_pes),
            "user_workflows" => Ok(&mut store.user_workflows),
            "workflow_pes" => Ok(&mut store.workflow_pes),
            other => Err(RegistryError::Storage(format!("unknown junction '{other}'"))),
        }
    }
    match op["op"].as_str() {
        Some("insert") => {
            let id = op["id"].as_i64().ok_or(RegistryError::Storage("insert missing id".into()))?;
            table(store, op["table"].as_str().unwrap_or(""))?.insert_with_id(id, op["row"].clone())?;
        }
        Some("update") => {
            let id = op["id"].as_i64().ok_or(RegistryError::Storage("update missing id".into()))?;
            table(store, op["table"].as_str().unwrap_or(""))?.update(id, op["row"].clone())?;
        }
        Some("delete") => {
            let id = op["id"].as_i64().ok_or(RegistryError::Storage("delete missing id".into()))?;
            let _ = table(store, op["table"].as_str().unwrap_or(""))?.delete(id);
        }
        Some("link") => {
            junction(store, op["junction"].as_str().unwrap_or(""))?
                .link(op["left"].as_i64().unwrap_or(0), op["right"].as_i64().unwrap_or(0));
        }
        Some("unlink") => {
            junction(store, op["junction"].as_str().unwrap_or(""))?
                .unlink(op["left"].as_i64().unwrap_or(0), op["right"].as_i64().unwrap_or(0));
        }
        Some("remove_right") => {
            junction(store, op["junction"].as_str().unwrap_or(""))?
                .remove_right(op["right"].as_i64().unwrap_or(0));
        }
        Some("remove_left") => {
            junction(store, op["junction"].as_str().unwrap_or(""))?
                .remove_left(op["left"].as_i64().unwrap_or(0));
        }
        other => return Err(RegistryError::Storage(format!("unknown WAL op {other:?}"))),
    }
    Ok(())
}

/// Helper to build WAL op records.
pub mod ops {
    use laminar_json::Value;

    /// Insert record.
    pub fn insert(table: &str, id: i64, row: &Value) -> Value {
        let mut v = Value::Null;
        v.set("op", "insert").set("table", table).set("id", id).set("row", row.clone());
        v
    }

    /// Update record.
    pub fn update(table: &str, id: i64, row: &Value) -> Value {
        let mut v = Value::Null;
        v.set("op", "update").set("table", table).set("id", id).set("row", row.clone());
        v
    }

    /// Delete record.
    pub fn delete(table: &str, id: i64) -> Value {
        let mut v = Value::Null;
        v.set("op", "delete").set("table", table).set("id", id);
        v
    }

    /// Link record.
    pub fn link(junction: &str, left: i64, right: i64) -> Value {
        let mut v = Value::Null;
        v.set("op", "link").set("junction", junction).set("left", left).set("right", right);
        v
    }

    /// Unlink record.
    pub fn unlink(junction: &str, left: i64, right: i64) -> Value {
        let mut v = Value::Null;
        v.set("op", "unlink").set("junction", junction).set("left", left).set("right", right);
        v
    }

    /// Remove-right record (cascade deletes).
    pub fn remove_right(junction: &str, right: i64) -> Value {
        let mut v = Value::Null;
        v.set("op", "remove_right").set("junction", junction).set("right", right);
        v
    }

    /// Remove-left record (cascade deletes from the owning side).
    pub fn remove_left(junction: &str, left: i64) -> Value {
        let mut v = Value::Null;
        v.set("op", "remove_left").set("junction", junction).set("left", left);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_json::jobj;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("laminar-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn recovery_replays_wal() {
        let dir = tmpdir("replay");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            let id = store.users.insert(jobj! { "userName" => "zz46" }, "userId").unwrap();
            wal.append(&store, &ops::insert("users", id, store.users.get(id).unwrap())).unwrap();
            store.user_pes.link(id, 7);
            wal.append(&store, &ops::link("user_pes", id, 7)).unwrap();
            // No snapshot: recovery must come from the WAL alone.
        }
        let (store, _) = WalStore::open(&dir).unwrap();
        assert_eq!(store.users.find_unique("userName", "zz46"), Some(1));
        assert!(store.user_pes.linked(1, 7));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compacts_wal() {
        let dir = tmpdir("snap");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            for i in 0..5 {
                let id = store.users.insert(jobj! { "userName" => format!("u{i}") }, "userId").unwrap();
                wal.append(&store, &ops::insert("users", id, store.users.get(id).unwrap())).unwrap();
            }
            wal.snapshot(&store).unwrap();
            // WAL is now empty.
            let wal_len = std::fs::metadata(dir.join("registry.wal")).unwrap().len();
            assert_eq!(wal_len, 0);
        }
        let (store, _) = WalStore::open(&dir).unwrap();
        assert_eq!(store.users.len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_tolerated() {
        let dir = tmpdir("torn");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            let id = store.users.insert(jobj! { "userName" => "ok" }, "userId").unwrap();
            wal.append(&store, &ops::insert("users", id, store.users.get(id).unwrap())).unwrap();
        }
        // Simulate a crash mid-append: garbage partial line at the end.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(dir.join("registry.wal")).unwrap();
            write!(f, "{{\"op\":\"insert\",\"table\":\"users\",\"id\":2,\"row\"").unwrap();
        }
        let (store, _) = WalStore::open(&dir).unwrap();
        assert_eq!(store.users.len(), 1, "torn record discarded, prior ops kept");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_snapshot_after_threshold() {
        let dir = tmpdir("auto");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            wal.snapshot_every = 3;
            for i in 0..4 {
                let id = store.users.insert(jobj! { "userName" => format!("u{i}") }, "userId").unwrap();
                wal.append(&store, &ops::insert("users", id, store.users.get(id).unwrap())).unwrap();
            }
            // Threshold crossed at op 3: snapshot exists and WAL was reset.
            assert!(dir.join("registry.snapshot").exists());
        }
        let (store, _) = WalStore::open(&dir).unwrap();
        assert_eq!(store.users.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_and_unlink_replay() {
        let dir = tmpdir("del");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            let a = store.users.insert(jobj! { "userName" => "a" }, "userId").unwrap();
            wal.append(&store, &ops::insert("users", a, store.users.get(a).unwrap())).unwrap();
            let b = store.users.insert(jobj! { "userName" => "b" }, "userId").unwrap();
            wal.append(&store, &ops::insert("users", b, store.users.get(b).unwrap())).unwrap();
            store.users.delete(a).unwrap();
            wal.append(&store, &ops::delete("users", a)).unwrap();
        }
        let (store, _) = WalStore::open(&dir).unwrap();
        assert_eq!(store.users.len(), 1);
        assert_eq!(store.users.find_unique("userName", "b"), Some(2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_left_replay() {
        // Regression: deleting a workflow removes its PE links via
        // remove_left; the op must journal, or recovery resurrects the
        // dead links (found by tests/proptest_interleaved.rs).
        let dir = tmpdir("removeleft");
        {
            let (mut store, mut wal) = WalStore::open(&dir).unwrap();
            store.workflow_pes.link(1, 10);
            wal.append(&store, &ops::link("workflow_pes", 1, 10)).unwrap();
            store.workflow_pes.link(1, 11);
            wal.append(&store, &ops::link("workflow_pes", 1, 11)).unwrap();
            store.workflow_pes.link(2, 10);
            wal.append(&store, &ops::link("workflow_pes", 2, 10)).unwrap();
            store.workflow_pes.remove_left(1);
            wal.append(&store, &ops::remove_left("workflow_pes", 1)).unwrap();
        }
        let (store, _) = WalStore::open(&dir).unwrap();
        assert!(!store.workflow_pes.linked(1, 10));
        assert!(!store.workflow_pes.linked(1, 11));
        assert!(store.workflow_pes.linked(2, 10), "other workflows keep their links");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ephemeral_mode_never_touches_disk() {
        let mut wal = WalStore::ephemeral();
        let store = Store::new();
        wal.append(&store, &ops::delete("users", 1)).unwrap();
        wal.snapshot(&store).unwrap();
    }
}
