//! # laminar-registry
//!
//! The central repository of Laminar (paper §3.1): users, Processing
//! Elements and workflows, their ownership relations, their code and their
//! embeddings — plus the three registry search modes of §4:
//!
//! * **text search** — normalized partial matching on names/descriptions
//!   (Figure 6);
//! * **semantic code search** — cosine over stored description embeddings
//!   (Figure 7);
//! * **code completion** — cosine over stored code embeddings (Figure 8).
//!
//! The storage engine is an embedded table store with unique indexes,
//! auto-increment keys, junction tables for the many-to-many relations,
//! and durability via snapshot + write-ahead log — the substitution for
//! the paper's remotely-hosted MySQL database.
//!
//! ```
//! use laminar_registry::{Registry, SearchType, QueryType};
//!
//! let mut reg = Registry::in_memory();
//! let user = reg.register_user("zz46", "password").unwrap();
//! let src = r#"pe IsPrime : iterative { input num; output output;
//!     process { if num > 1 { emit(num); } } }"#;
//! let pe = reg.register_pe(&user.user_name, src, Some("Checks if a number is prime")).unwrap();
//! let hits = reg.search(&user.user_name, "prime", SearchType::Pe, QueryType::Text).unwrap();
//! assert_eq!(hits[0].id, pe.pe_id);
//! ```

pub mod dao;
pub mod entities;
pub mod error;
pub mod index;
pub mod search;
pub mod service;
pub mod store;
pub mod wal;

pub use entities::{PeEntity, UserEntity, WorkflowEntity};
pub use error::RegistryError;
pub use index::{SearchIndex, VecField};
pub use search::{QueryType, SearchHit, SearchOptions, SearchType, DEFAULT_SEARCH_LIMIT};
pub use service::{Registry, SearchResponse};
pub use store::{Store, Table};
