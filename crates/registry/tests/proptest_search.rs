//! Property: the incrementally-maintained search index answers every
//! query *identically* to the linear-scan oracle — same hits, same
//! (bit-exact) scores, same score-then-id order — no matter what
//! register / shared-owner link / remove history produced the registry,
//! and the index a WAL recovery rebuilds answers identically to the
//! live one it replaced.
//!
//! This is the read-path analogue of `proptest_interleaved` (which pins
//! the WAL journal itself) and the same differential-oracle pattern the
//! script VM uses against the tree-walker.

use laminar_registry::service::EntityKey;
use laminar_registry::{QueryType, Registry, SearchHit, SearchOptions, SearchType};
use proptest::prelude::*;
use std::path::PathBuf;

/// One registry mutation. Indices select from small pools so users
/// collide on names — exercising shared-owner links, duplicate
/// rejections and delete/re-register churn, all of which the index must
/// track per owner.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// (user, pe template, description template)
    RegisterPe(u8, u8, u8),
    RemovePe(u8, u8),
    RegisterWorkflow(u8, u8),
    RemoveWorkflow(u8, u8),
}

const USERS: u8 = 3;

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..USERS, 0u8..5, 0u8..4).prop_map(|(u, p, d)| Op::RegisterPe(u, p, d)),
        (0u8..USERS, 0u8..5).prop_map(|(u, p)| Op::RemovePe(u, p)),
        (0u8..USERS, 0u8..3).prop_map(|(u, w)| Op::RegisterWorkflow(u, w)),
        (0u8..USERS, 0u8..3).prop_map(|(u, w)| Op::RemoveWorkflow(u, w)),
    ]
}

/// Identical source per template index, so re-registration by another
/// user takes the shared-owner link path instead of erroring.
fn pe_source(idx: u8) -> String {
    format!("pe Prop{idx} : iterative {{ input x; output output; process {{ emit(x * {idx} + 1); }} }}")
}

/// Some templates carry an explicit description (distinct token mixes),
/// some trigger the auto-summarizer.
fn description(idx: u8) -> Option<&'static str> {
    match idx {
        0 => Some("checks prime numbers quickly"),
        1 => Some("counts the words of a stream"),
        2 => Some("emits scaled sensor values"),
        _ => None,
    }
}

fn wf_source(idx: u8) -> String {
    format!(
        r#"
        pe WfProp{idx} : producer {{ output output; process {{ emit(iteration + {idx}); }} }}
        workflow PropFlow{idx} {{ doc "prime stream flow {idx}"; nodes {{ p = WfProp{idx}; }} }}
    "#
    )
}

fn apply(reg: &mut Registry, op: Op) {
    // Outcomes are ignored: duplicates and not-founds are legal under
    // colliding scripts. The property is about whatever state results.
    match op {
        Op::RegisterPe(u, p, d) => {
            let _ = reg.register_pe(&format!("user{u}"), &pe_source(p), description(d));
        }
        Op::RemovePe(u, p) => {
            let _ = reg.remove_pe(&format!("user{u}"), &EntityKey::Name(format!("Prop{p}")));
        }
        Op::RegisterWorkflow(u, w) => {
            let _ = reg.register_workflow(&format!("user{u}"), &wf_source(w), &format!("pflow{w}"), None);
        }
        Op::RemoveWorkflow(u, w) => {
            let _ = reg.remove_workflow(&format!("user{u}"), &EntityKey::Name(format!("pflow{w}")));
        }
    }
}

/// Query pool spanning the interesting shapes: single-token (vocabulary
/// scan), multi-token (cached-doc scan), code snippets (vector path),
/// punctuation (normalization), empty, and no-match.
const QUERIES: [&str; 8] = [
    "prime",
    "prop",
    "prime numbers",
    "scaled sensor",
    "emit(x * 2 + 1)",
    "Prop-3!",
    "",
    "zzz-no-such-token",
];

const MODES: [(SearchType, QueryType); 5] = [
    (SearchType::Workflow, QueryType::Text),
    (SearchType::Pe, QueryType::Text),
    (SearchType::Pe, QueryType::Code),
    (SearchType::Both, QueryType::Text),
    (SearchType::Both, QueryType::Code),
];

/// Every (user, query, mode, limit) answered by the index vs the scan.
fn assert_index_matches_scan(reg: &Registry) {
    for u in 0..USERS {
        let user = format!("user{u}");
        for query in QUERIES {
            for (st, qt) in MODES {
                for limit in [2usize, 25] {
                    let indexed = reg
                        .search_with(&user, query, st, qt, &SearchOptions { limit, force_scan: false })
                        .unwrap()
                        .hits;
                    let scanned = reg
                        .search_with(&user, query, st, qt, &SearchOptions { limit, force_scan: true })
                        .unwrap()
                        .hits;
                    prop_assert_eq!(
                        &indexed,
                        &scanned,
                        "index != scan for user {} query {:?} mode {:?}/{:?} limit {}",
                        user,
                        query,
                        st,
                        qt,
                        limit
                    );
                }
            }
        }
    }
}

/// All search answers for a registry, used to compare live vs recovered.
fn all_answers(reg: &Registry) -> Vec<(String, Vec<SearchHit>)> {
    let mut out = Vec::new();
    for u in 0..USERS {
        let user = format!("user{u}");
        for query in QUERIES {
            for (st, qt) in MODES {
                let hits = reg.search(&user, query, st, qt).unwrap();
                out.push((format!("{user}/{query}/{st:?}/{qt:?}"), hits));
            }
        }
    }
    out
}

fn tmpdir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("laminar-search-{tag}-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Randomized mutation scripts; the index must equal the scan both
    /// mid-history and at the end.
    #[test]
    fn indexed_search_equals_linear_scan(script in prop::collection::vec(arb_op(), 1..40)) {
        let mut reg = Registry::in_memory();
        for u in 0..USERS {
            reg.register_user(&format!("user{u}"), "password").unwrap();
        }
        let midpoint = script.len() / 2;
        for (i, op) in script.into_iter().enumerate() {
            apply(&mut reg, op);
            if i + 1 == midpoint {
                assert_index_matches_scan(&reg);
            }
        }
        assert_index_matches_scan(&reg);
    }

    /// A recovered registry's rebuilt index answers every query exactly
    /// as the live one did — and still matches its own scan oracle.
    #[test]
    fn wal_replay_rebuilds_identical_index(
        script in prop::collection::vec(arb_op(), 1..25),
        case in 0u64..1_000_000,
    ) {
        let dir = tmpdir("replay", case);
        let before = {
            let mut reg = Registry::open(&dir).unwrap();
            for u in 0..USERS {
                reg.register_user(&format!("user{u}"), "password").unwrap();
            }
            for op in script {
                apply(&mut reg, op);
            }
            all_answers(&reg)
        };
        let reopened = Registry::open(&dir).unwrap();
        let after = all_answers(&reopened);
        prop_assert_eq!(before, after, "recovered index diverged from the live one");
        assert_index_matches_scan(&reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
