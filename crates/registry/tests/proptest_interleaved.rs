//! Property: the registry's WAL is a faithful journal even under
//! interleaved writers. Random register/re-register/delete scripts run
//! from multiple threads against one durable registry; afterwards a fresh
//! recovery (snapshot + sequential WAL replay) must reconstruct exactly
//! the live store — pinning crash-recovery and concurrency semantics
//! together.

use laminar_registry::service::EntityKey;
use laminar_registry::Registry;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::{Arc, Barrier, RwLock};

const THREADS: usize = 3;

/// One mutation in a thread's script. Indices select from small pools so
/// threads collide on names — exercising the shared-owner link path, the
/// duplicate rejections and delete/re-register races.
#[derive(Debug, Clone, Copy)]
enum Op {
    RegisterPe(u8),
    RemovePe(u8),
    RegisterWorkflow(u8),
    RemoveWorkflow(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::RegisterPe),
        (0u8..4).prop_map(Op::RemovePe),
        (0u8..3).prop_map(Op::RegisterWorkflow),
        (0u8..3).prop_map(Op::RemoveWorkflow),
    ]
}

/// All threads register the same PE code for a given index: identical
/// re-registration takes the shared-owner path (a WAL `link` op) instead
/// of erroring.
fn pe_source(idx: u8) -> String {
    format!("pe Shared{idx} : iterative {{ input x; output output; process {{ emit(x + {idx}); }} }}")
}

fn wf_source(idx: u8) -> String {
    format!(
        r#"
        pe WfPe{idx} : producer {{ output output; process {{ emit(iteration * {idx} + 1); }} }}
        workflow Flow{idx} {{ nodes {{ p = WfPe{idx}; }} }}
    "#
    )
}

fn apply(registry: &RwLock<Registry>, user: &str, op: Op) {
    // Outcomes are deliberately ignored: duplicates, not-founds and
    // mid-workflow failures are all legal under interleaving. The property
    // under test is that whatever the live store ended up as, the WAL
    // replays to the same thing.
    let mut reg = registry.write().unwrap();
    match op {
        Op::RegisterPe(i) => {
            let _ = reg.register_pe(user, &pe_source(i), Some("shared pe"));
        }
        Op::RemovePe(i) => {
            let _ = reg.remove_pe(user, &EntityKey::Name(format!("Shared{i}")));
        }
        Op::RegisterWorkflow(i) => {
            let _ = reg.register_workflow(user, &wf_source(i), &format!("flow{i}"), None);
        }
        Op::RemoveWorkflow(i) => {
            let _ = reg.remove_workflow(user, &EntityKey::Name(format!("flow{i}")));
        }
    }
}

fn tmpdir(case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("laminar-interleaved-{}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Concurrent writer scripts, then: live store == sequential WAL replay.
    #[test]
    fn wal_replay_equals_live_store(
        scripts in prop::collection::vec(prop::collection::vec(arb_op(), 1..10), THREADS..THREADS + 1),
        case in 0u64..1_000_000,
    ) {
        let dir = tmpdir(case);
        let registry = Registry::open(&dir).unwrap();
        let registry = Arc::new(RwLock::new(registry));
        {
            let mut reg = registry.write().unwrap();
            for t in 0..THREADS {
                reg.register_user(&format!("writer{t}"), "password").unwrap();
            }
        }

        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = scripts
            .into_iter()
            .enumerate()
            .map(|(t, script)| {
                let registry = Arc::clone(&registry);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let user = format!("writer{t}");
                    barrier.wait();
                    for op in script {
                        apply(&registry, &user, op);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // What the concurrent writers produced in memory…
        let live = registry.read().unwrap().dao().store.to_value();
        // …must equal a cold sequential recovery from disk.
        let (recovered, _) = laminar_registry::wal::WalStore::open(&dir).unwrap();
        prop_assert_eq!(
            laminar_json::to_string(&recovered.to_value()),
            laminar_json::to_string(&live),
            "sequential WAL replay diverged from the live store"
        );

        // Users still see a consistent per-tenant view after recovery.
        drop(registry);
        let reopened = Registry::open(&dir).unwrap();
        for t in 0..THREADS {
            let user = format!("writer{t}");
            for pe in reopened.all_pes(&user).unwrap() {
                prop_assert!(pe.pe_name.starts_with("Shared") || pe.pe_name.starts_with("WfPe"));
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
