//! Shared harness code for the table/figure regeneration binaries and the
//! criterion benches. Each function reproduces one experiment from the
//! paper's evaluation (see DESIGN.md §5 for the index).

use laminar_dataflow::mapping::{Mapping, MultiMapping, SimpleMapping};
use laminar_dataflow::{RunOptions, WorkflowGraph};
use laminar_json::Value;
use laminar_script::Host;
use laminar_workloads::astro::{coordinates_file, VoService, SOURCE as ASTRO_SOURCE};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of one Table 5 run.
#[derive(Debug, Clone, Copy)]
pub struct Table5Config {
    /// Number of coordinates in the input file.
    pub coordinates: usize,
    /// Simulated VO service latency per query.
    pub vo_latency: Duration,
    /// Processes for the Multi mapping (paper: 5).
    pub processes: usize,
}

impl Table5Config {
    /// The default profile used by the `table5` binary: large enough for
    /// stable ratios, small enough to run in seconds.
    pub fn default_profile() -> Table5Config {
        Table5Config { coordinates: 60, vo_latency: Duration::from_millis(12), processes: 5 }
    }

    /// Fast profile for criterion (sub-second per iteration).
    pub fn quick() -> Table5Config {
        Table5Config { coordinates: 10, vo_latency: Duration::from_millis(2), processes: 5 }
    }
}

/// Build the Internal Extinction workflow graph with an in-process host
/// serving the coordinates file and the (simulated) VO service.
pub fn astro_graph(cfg: &Table5Config) -> WorkflowGraph {
    struct Shim {
        text: String,
        vo: VoService,
    }
    impl Host for Shim {
        fn call(
            &self,
            module: &str,
            name: &str,
            args: &[Value],
        ) -> Result<Value, laminar_script::ScriptError> {
            if module == "resources" && name == "lines" {
                return Ok(Value::Array(
                    self.text.lines().filter(|l| !l.is_empty()).map(|l| Value::Str(l.into())).collect(),
                ));
            }
            self.vo.call(module, name, args)
        }
    }
    let host: Arc<dyn Host + Send + Sync> =
        Arc::new(Shim { text: coordinates_file(cfg.coordinates), vo: VoService::new(cfg.vo_latency, 4) });
    WorkflowGraph::from_script_with_host(ASTRO_SOURCE, "Astrophysics", host).unwrap()
}

/// Run the Internal Extinction workflow directly on the dataflow engine —
/// the "original dispel4py" baseline rows of Table 5.
pub fn run_astro_direct(cfg: &Table5Config, multi: bool) -> Duration {
    let graph = astro_graph(cfg);
    let options = RunOptions::data(vec![Value::Str("coordinates.txt".into())]).with_processes(cfg.processes);
    let t0 = std::time::Instant::now();
    if multi {
        MultiMapping.execute(&graph, &options).unwrap();
    } else {
        SimpleMapping.execute(&graph, &options).unwrap();
    }
    t0.elapsed()
}

/// Run the workflow through the full Laminar stack (client → server →
/// registry → engine) — the "with Laminar" rows of Table 5.
///
/// `remote` switches the in-process transport for HTTP over loopback plus
/// the WAN-modelled engine.
pub fn run_astro_laminar(cfg: &Table5Config, multi: bool, remote: bool) -> Duration {
    run_astro_laminar_detailed(cfg, multi, remote).0
}

/// Like [`run_astro_laminar`], additionally returning the engine's
/// [`laminar_engine::ExecutionOutput`] whose stage timings
/// (`stages.plan`/`enact`/`collect`, plus provisioning) break the elapsed
/// time into the overhead structure Table 5 measures.
pub fn run_astro_laminar_detailed(
    cfg: &Table5Config,
    multi: bool,
    remote: bool,
) -> (Duration, laminar_engine::ExecutionOutput) {
    use laminar_client::{LaminarClient, RunConfig};
    use laminar_engine::{ExecutionEngine, NetModel};
    use laminar_registry::Registry;
    use laminar_server::{HttpServer, LaminarServer};

    let engine =
        if remote { ExecutionEngine::new().with_net(NetModel::wan()) } else { ExecutionEngine::new() };
    engine.hosts().register("vo", Arc::new(VoService::new(cfg.vo_latency, 4)));
    engine.hosts().register("astropy", Arc::new(VoService::new(Duration::ZERO, 4)));
    let server = LaminarServer::new(Registry::in_memory(), engine);

    let (mut client, http) = if remote {
        let http = HttpServer::start(server).unwrap();
        (LaminarClient::connect(http.addr()), Some(http))
    } else {
        (LaminarClient::in_process(server), None)
    };
    client.register("bench", "password").unwrap();
    client.login("bench", "password").unwrap();
    // Register once (outside the timed window, like the paper's setup).
    client.register_workflow(ASTRO_SOURCE, "Astrophysics", Some("internal extinction")).unwrap();

    let mapping =
        if multi { laminar_dataflow::MappingKind::Multi } else { laminar_dataflow::MappingKind::Simple };
    let config = RunConfig::data(vec![Value::Str("coordinates.txt".into())])
        .with_mapping(mapping, cfg.processes)
        .with_resource("coordinates.txt", coordinates_file(cfg.coordinates).into_bytes());

    let t0 = std::time::Instant::now();
    let output = client.run_registered("Astrophysics", config).unwrap();
    let elapsed = t0.elapsed();
    if let Some(h) = http {
        h.stop();
    }
    (elapsed, output)
}

/// Table 6 driver: zero-shot text-to-code MRR for one model on one
/// dataset.
pub fn table6_mrr(model_name: &str, dataset: &str, n: usize, seed: u64) -> f64 {
    let model = laminar_embed::model_by_name(model_name).expect("model exists");
    let ds = match dataset {
        "CosQA" => laminar_embed::datasets::gen_cosqa(n, seed),
        "CSN" => laminar_embed::datasets::gen_csn(n, seed),
        other => panic!("unknown dataset {other}"),
    };
    laminar_embed::datasets::eval_search(model.as_ref(), &ds)
}

/// Table 7 driver: zero-shot clone retrieval (MAP@100, P@1) for one model.
pub fn table7_clone(model_name: &str, problems: usize, variants: usize, seed: u64) -> (f64, f64) {
    let model = laminar_embed::model_by_name(model_name).expect("model exists");
    let ds = laminar_embed::datasets::gen_codenet(problems, variants, seed);
    laminar_embed::datasets::eval_clone(model.as_ref(), &ds, 100)
}

/// Format a duration like the paper's "642 sec." column.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.2} sec.", d.as_secs_f64())
}

// ---------------------------------------------------------------------------
// Perf-report harness (BENCH_*.json trajectory)
// ---------------------------------------------------------------------------

/// The paper's Figure 1 topology (PE1 → PE2 → PE3) built from native PEs so
/// that the measured cost is the enactment datapath itself, not the script
/// interpreter. The payload is a small structured document: deep-cloning it
/// per destination is exactly the overhead the datapath must avoid.
pub fn figure1_graph() -> WorkflowGraph {
    use laminar_dataflow::pe::{iterative_fn, producer_fn};
    use laminar_json::{jarr, jobj};
    let mut g = WorkflowGraph::new("figure1");
    let p1 = g.add(producer_fn("PE1", |i| {
        jobj! {
            "id" => i,
            "tags" => jarr!["alpha", "beta", "gamma", "delta"],
            "xs" => Value::Array((i..i + 8).map(Value::Int).collect())
        }
    }));
    let p2 = g.add(iterative_fn("PE2", |mut v| {
        let sum: i64 = v["xs"].as_array().unwrap_or(&[]).iter().filter_map(Value::as_i64).sum();
        v.set("sum", sum);
        Some(v)
    }));
    let p3 = g.add(iterative_fn("PE3", |v| {
        Some(Value::Int(v["sum"].as_i64().unwrap_or(0) + v["id"].as_i64().unwrap_or(0)))
    }));
    g.connect(p1, "output", p2, "input").unwrap();
    g.connect(p2, "output", p3, "input").unwrap();
    g
}

/// The Figure 1 topology again, but with the PE bodies written in
/// LamScript, so the measured cost is dominated by script execution —
/// the workload the PR-6 bytecode VM targets. Same shape as
/// [`figure1_graph`]: structured payload, per-datum field arithmetic,
/// a reduce to a scalar.
pub const FIGURE1_SCRIPT: &str = r#"
pe PE1 : producer {
    output output;
    process {
        let xs = [];
        let j = 0;
        while j < 8 {
            xs = xs + [iteration + j];
            j = j + 1;
        }
        emit({"id": iteration, "tags": ["alpha", "beta", "gamma", "delta"], "xs": xs});
    }
}
pe PE2 : iterative {
    input input;
    output output;
    process {
        let total = 0;
        for v in input.xs { total = total + v; }
        input.sum = total;
        emit(input);
    }
}
pe PE3 : iterative {
    input input;
    output output;
    process { emit(input.sum + input.id); }
}
"#;

/// Build the scripted Figure 1 pipeline ([`FIGURE1_SCRIPT`]).
pub fn figure1_script_graph() -> WorkflowGraph {
    let mut g = WorkflowGraph::new("figure1_script");
    let p1 = g.add_script_pe(FIGURE1_SCRIPT, "PE1").unwrap();
    let p2 = g.add_script_pe(FIGURE1_SCRIPT, "PE2").unwrap();
    let p3 = g.add_script_pe(FIGURE1_SCRIPT, "PE3").unwrap();
    g.connect(p1, "output", p2, "input").unwrap();
    g.connect(p2, "output", p3, "input").unwrap();
    g
}

/// One measured enactment: the median over `reps` repetitions.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Mapping measured.
    pub mapping: String,
    /// Producer invocations per repetition.
    pub invocations: usize,
    /// Requested process count.
    pub processes: usize,
    /// Repetitions measured (median reported).
    pub reps: usize,
    /// Median wall-clock per repetition, microseconds.
    pub elapsed_us: u64,
    /// Stage timings of the median repetition, microseconds.
    pub plan_us: u64,
    /// See [`BenchRun::plan_us`].
    pub enact_us: u64,
    /// See [`BenchRun::plan_us`].
    pub collect_us: u64,
    /// One-time script-compilation cost the graph paid at construction
    /// (zero for native-PE workloads; near-zero on compile-cache hits).
    pub compile_us: u64,
    /// Producer invocations per second (median repetition).
    pub throughput: f64,
}

impl BenchRun {
    /// Serialize for the `BENCH_*.json` report.
    pub fn to_value(&self) -> Value {
        let mut v = Value::Null;
        v.set("mapping", self.mapping.as_str())
            .set("invocations", self.invocations)
            .set("processes", self.processes)
            .set("reps", self.reps)
            .set("elapsed_us", self.elapsed_us as i64)
            .set("plan_us", self.plan_us as i64)
            .set("enact_us", self.enact_us as i64)
            .set("collect_us", self.collect_us as i64)
            .set("compile_us", self.compile_us as i64)
            .set("throughput_per_sec", (self.throughput * 100.0).round() / 100.0);
        v
    }
}

/// Measure `kind` enacting `graph` under `options`, `reps` times; report
/// the repetition with the median elapsed time. One untimed warm-up run
/// precedes the measurements.
pub fn bench_mapping(
    graph: &WorkflowGraph,
    kind: laminar_dataflow::MappingKind,
    options: &RunOptions,
    reps: usize,
) -> BenchRun {
    let mapping = kind.build();
    mapping.execute(graph, options).expect("warm-up run");
    let mut stats: Vec<laminar_dataflow::mapping::RunStats> =
        (0..reps.max(1)).map(|_| mapping.execute(graph, options).expect("bench run").stats).collect();
    stats.sort_by_key(|s| s.elapsed);
    let median = stats.swap_remove(stats.len() / 2);
    let secs = median.elapsed.as_secs_f64().max(1e-9);
    BenchRun {
        mapping: kind.as_str().to_string(),
        invocations: options.invocations(),
        processes: options.processes,
        reps: reps.max(1),
        elapsed_us: median.elapsed.as_micros() as u64,
        plan_us: median.timings.plan.as_micros() as u64,
        enact_us: median.timings.enact.as_micros() as u64,
        collect_us: median.timings.collect.as_micros() as u64,
        compile_us: median.timings.compile.as_micros() as u64,
        throughput: options.invocations() as f64 / secs,
    }
}
