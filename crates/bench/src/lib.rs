//! Shared harness code for the table/figure regeneration binaries and the
//! criterion benches. Each function reproduces one experiment from the
//! paper's evaluation (see DESIGN.md §5 for the index).

use laminar_dataflow::mapping::{Mapping, MultiMapping, SimpleMapping};
use laminar_dataflow::{RunOptions, WorkflowGraph};
use laminar_json::Value;
use laminar_script::Host;
use laminar_workloads::astro::{coordinates_file, VoService, SOURCE as ASTRO_SOURCE};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of one Table 5 run.
#[derive(Debug, Clone, Copy)]
pub struct Table5Config {
    /// Number of coordinates in the input file.
    pub coordinates: usize,
    /// Simulated VO service latency per query.
    pub vo_latency: Duration,
    /// Processes for the Multi mapping (paper: 5).
    pub processes: usize,
}

impl Table5Config {
    /// The default profile used by the `table5` binary: large enough for
    /// stable ratios, small enough to run in seconds.
    pub fn default_profile() -> Table5Config {
        Table5Config { coordinates: 60, vo_latency: Duration::from_millis(12), processes: 5 }
    }

    /// Fast profile for criterion (sub-second per iteration).
    pub fn quick() -> Table5Config {
        Table5Config { coordinates: 10, vo_latency: Duration::from_millis(2), processes: 5 }
    }
}

/// Run the Internal Extinction workflow directly on the dataflow engine —
/// the "original dispel4py" baseline rows of Table 5.
pub fn run_astro_direct(cfg: &Table5Config, multi: bool) -> Duration {
    struct Shim {
        text: String,
        vo: VoService,
    }
    impl Host for Shim {
        fn call(
            &self,
            module: &str,
            name: &str,
            args: &[Value],
        ) -> Result<Value, laminar_script::ScriptError> {
            if module == "resources" && name == "lines" {
                return Ok(Value::Array(
                    self.text.lines().filter(|l| !l.is_empty()).map(|l| Value::Str(l.into())).collect(),
                ));
            }
            self.vo.call(module, name, args)
        }
    }
    let host: Arc<dyn Host + Send + Sync> =
        Arc::new(Shim { text: coordinates_file(cfg.coordinates), vo: VoService::new(cfg.vo_latency, 4) });
    let graph = WorkflowGraph::from_script_with_host(ASTRO_SOURCE, "Astrophysics", host).unwrap();
    let options = RunOptions::data(vec![Value::Str("coordinates.txt".into())]).with_processes(cfg.processes);
    let t0 = std::time::Instant::now();
    if multi {
        MultiMapping.execute(&graph, &options).unwrap();
    } else {
        SimpleMapping.execute(&graph, &options).unwrap();
    }
    t0.elapsed()
}

/// Run the workflow through the full Laminar stack (client → server →
/// registry → engine) — the "with Laminar" rows of Table 5.
///
/// `remote` switches the in-process transport for HTTP over loopback plus
/// the WAN-modelled engine.
pub fn run_astro_laminar(cfg: &Table5Config, multi: bool, remote: bool) -> Duration {
    run_astro_laminar_detailed(cfg, multi, remote).0
}

/// Like [`run_astro_laminar`], additionally returning the engine's
/// [`laminar_engine::ExecutionOutput`] whose stage timings
/// (`stages.plan`/`enact`/`collect`, plus provisioning) break the elapsed
/// time into the overhead structure Table 5 measures.
pub fn run_astro_laminar_detailed(
    cfg: &Table5Config,
    multi: bool,
    remote: bool,
) -> (Duration, laminar_engine::ExecutionOutput) {
    use laminar_client::{LaminarClient, RunConfig};
    use laminar_engine::{ExecutionEngine, NetModel};
    use laminar_registry::Registry;
    use laminar_server::{HttpServer, LaminarServer};

    let engine =
        if remote { ExecutionEngine::new().with_net(NetModel::wan()) } else { ExecutionEngine::new() };
    engine.hosts().register("vo", Arc::new(VoService::new(cfg.vo_latency, 4)));
    engine.hosts().register("astropy", Arc::new(VoService::new(Duration::ZERO, 4)));
    let server = LaminarServer::new(Registry::in_memory(), engine);

    let (mut client, http) = if remote {
        let http = HttpServer::start(server).unwrap();
        (LaminarClient::connect(http.addr()), Some(http))
    } else {
        (LaminarClient::in_process(server), None)
    };
    client.register("bench", "password").unwrap();
    client.login("bench", "password").unwrap();
    // Register once (outside the timed window, like the paper's setup).
    client.register_workflow(ASTRO_SOURCE, "Astrophysics", Some("internal extinction")).unwrap();

    let mapping =
        if multi { laminar_dataflow::MappingKind::Multi } else { laminar_dataflow::MappingKind::Simple };
    let config = RunConfig::data(vec![Value::Str("coordinates.txt".into())])
        .with_mapping(mapping, cfg.processes)
        .with_resource("coordinates.txt", coordinates_file(cfg.coordinates).into_bytes());

    let t0 = std::time::Instant::now();
    let output = client.run_registered("Astrophysics", config).unwrap();
    let elapsed = t0.elapsed();
    if let Some(h) = http {
        h.stop();
    }
    (elapsed, output)
}

/// Table 6 driver: zero-shot text-to-code MRR for one model on one
/// dataset.
pub fn table6_mrr(model_name: &str, dataset: &str, n: usize, seed: u64) -> f64 {
    let model = laminar_embed::model_by_name(model_name).expect("model exists");
    let ds = match dataset {
        "CosQA" => laminar_embed::datasets::gen_cosqa(n, seed),
        "CSN" => laminar_embed::datasets::gen_csn(n, seed),
        other => panic!("unknown dataset {other}"),
    };
    laminar_embed::datasets::eval_search(model.as_ref(), &ds)
}

/// Table 7 driver: zero-shot clone retrieval (MAP@100, P@1) for one model.
pub fn table7_clone(model_name: &str, problems: usize, variants: usize, seed: u64) -> (f64, f64) {
    let model = laminar_embed::model_by_name(model_name).expect("model exists");
    let ds = laminar_embed::datasets::gen_codenet(problems, variants, seed);
    laminar_embed::datasets::eval_clone(model.as_ref(), &ds, 100)
}

/// Format a duration like the paper's "642 sec." column.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.2} sec.", d.as_secs_f64())
}
