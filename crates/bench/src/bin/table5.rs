//! Regenerates **Table 5** (and the Table 4 environment header): execution
//! times of the Internal Extinction workflow under
//! {original dispel4py, Laminar local, Laminar remote} × {Simple, Multi}.
//!
//! ```text
//! cargo run -p laminar-bench --bin table5 --release
//! ```

use laminar_bench::{fmt_secs, run_astro_direct, run_astro_laminar_detailed, Table5Config};

fn main() {
    let cfg = Table5Config::default_profile();

    println!("== Table 4: Execution Engines Configuration (this reproduction) ==");
    println!("{:<22} {:<34} Remote Ex. Engine", "Property", "Local Ex. Engine");
    println!("{:<22} {:<34} HTTP loopback + WAN model", "Substrate", "in-process transport");
    println!("{:<22} {:<34} 25ms one-way, 5MB/s", "WAN model", "none");
    println!("{:<22} {:<34} same", "Env provisioning", "simulated conda (40ms setup)");
    println!(
        "{:<22} {:<34} same",
        "Workload",
        format!("{} coords, {}ms VO latency", cfg.coordinates, cfg.vo_latency.as_millis()),
    );
    println!();

    println!("== Table 5: Execution times of the Internal Extinction ==");
    println!("(paper: 642 / 7.32 | 928.2 / 11.31 | 1002 / 12.94 — shape target:");
    println!(" Multi ≪ Simple; Laminar > dispel4py; remote ≥ local)\n");
    println!("{:<38} {:>14} {:>14}", "Execution Method", "Simple", "Multi");

    let d_simple = run_astro_direct(&cfg, false);
    let d_multi = run_astro_direct(&cfg, true);
    println!("{:<38} {:>14} {:>14}", "original dispel4py", fmt_secs(d_simple), fmt_secs(d_multi));

    let (l_simple, l_simple_out) = run_astro_laminar_detailed(&cfg, false, false);
    let (l_multi, l_multi_out) = run_astro_laminar_detailed(&cfg, true, false);
    println!("{:<38} {:>14} {:>14}", "Local Execution (with Laminar)", fmt_secs(l_simple), fmt_secs(l_multi));

    let (r_simple, _) = run_astro_laminar_detailed(&cfg, false, true);
    let (r_multi, r_multi_out) = run_astro_laminar_detailed(&cfg, true, true);
    println!(
        "{:<38} {:>14} {:>14}",
        "Remote Execution (with Laminar)",
        fmt_secs(r_simple),
        fmt_secs(r_multi)
    );

    println!("\n== Overhead structure (what surrounds pure enactment) ==");
    for (label, out) in
        [("local/simple", &l_simple_out), ("local/multi", &l_multi_out), ("remote/multi", &r_multi_out)]
    {
        println!("{label:<14} {}", out.overhead_report());
    }

    println!("\n== Shape checks ==");
    let speedup = d_simple.as_secs_f64() / d_multi.as_secs_f64().max(1e-9);
    println!("Simple/Multi speedup (dispel4py): {speedup:.1}x  (paper: 87.7x at their scale)");
    let overhead_local = l_simple.as_secs_f64() / d_simple.as_secs_f64().max(1e-9);
    println!("Laminar local overhead vs dispel4py (Simple): {overhead_local:.2}x  (paper: 1.45x)");
    let remote_delta = r_simple.as_secs_f64() / l_simple.as_secs_f64().max(1e-9);
    println!("Remote vs local (Simple): {remote_delta:.2}x  (paper: 1.08x — 'no substantial increase')");

    let ok = d_multi < d_simple && l_simple > d_simple && r_simple >= l_simple.mul_f64(0.9);
    println!("\nshape {}", if ok { "HOLDS" } else { "VIOLATED" });
}
