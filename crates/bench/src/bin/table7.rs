//! Regenerates **Table 7**: zero-shot clone detection (MAP@100 and
//! Precision@1) for the seven candidate models on the CodeNet-like clone
//! corpus.
//!
//! ```text
//! cargo run -p laminar-bench --bin table7 --release
//! ```

use laminar_bench::table7_clone;

/// The models of Table 7, in the paper's row order, with the paper's
/// reported (MAP@100, P@1).
const ROWS: &[(&str, f64, f64)] = &[
    ("CodeBERT", 1.47, 4.75),
    ("GraphCodeBERT", 5.31, 15.68),
    ("ReACC-retriever-py", 9.60, 27.04),
    ("thenlper/gte-large", 1.9, 7.0),
    ("BAAI/bge-large-en", 8.17, 20.0),
    ("unixcoder-clone-detection", 10.4, 17.0),
    ("unixcoder-code-search", 8.53, 22.84),
];

fn main() {
    const PROBLEMS: usize = 120;
    const VARIANTS: usize = 6;
    const SEED: u64 = 7;

    println!("== Table 7: Zero-shot clone detection evaluation results ==");
    println!("(measured on the synthetic CodeNet-like corpus: {PROBLEMS} problems x {VARIANTS} variants)");
    println!("(shape targets: ReACC best P@1; CodeBERT & gte worst; structure models strong MAP)\n");
    println!("{:<28} {:>9} {:>7}   {:>11} {:>9}", "Model", "MAP@100", "P@1", "paper MAP", "paper P@1");

    let mut measured = Vec::new();
    for (model, paper_map, paper_p1) in ROWS {
        let (map, p1) = table7_clone(model, PROBLEMS, VARIANTS, SEED);
        println!("{model:<28} {:>9.2} {:>7.2}   {paper_map:>11.2} {paper_p1:>9.2}", map * 100.0, p1 * 100.0);
        measured.push((*model, map * 100.0, p1 * 100.0));
    }

    // Shape checks against the paper's key qualitative claims.
    let get = |name: &str| measured.iter().find(|(m, _, _)| *m == name).expect("model in table");
    let reacc = get("ReACC-retriever-py");
    let codebert = get("CodeBERT");
    let gte = get("thenlper/gte-large");
    let best_p1 = measured.iter().all(|(m, _, p1)| *m == "ReACC-retriever-py" || *p1 <= reacc.2);
    let worst_pair = measured
        .iter()
        .all(|(m, map, _)| *m == "CodeBERT" || *m == "thenlper/gte-large" || *map >= codebert.1.min(gte.1));
    println!("\nReACC has best Precision@1: {}", if best_p1 { "yes" } else { "NO" });
    println!("CodeBERT/gte-large weakest MAP: {}", if worst_pair { "yes" } else { "NO" });
    println!("\nshape {}", if best_p1 && worst_pair { "HOLDS" } else { "VIOLATED" });
}
