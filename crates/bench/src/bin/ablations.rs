//! Ablation benches for the design choices DESIGN.md §4 calls out:
//!
//! * **D1** — stored embeddings (embed-once at registration) vs
//!   recomputing the corpus embedding per query;
//! * **D2** — bi-encoder cosine retrieval vs cross-encoder pair scoring;
//! * **D4** — mapping choice on the same abstract graph;
//! * **D5** — cold vs warm engine environments.
//!
//! ```text
//! cargo run -p laminar-bench --bin ablations --release
//! ```

use laminar_dataflow::mapping::{Mapping, MpiMapping, MultiMapping, RedisMapping, SimpleMapping};
use laminar_dataflow::{RunOptions, WorkflowGraph};
use laminar_embed::xencoder::cross_rank;
use laminar_embed::{cosine, model_by_name};
use std::time::Instant;

fn main() {
    d1_stored_embeddings();
    d2_bi_vs_cross();
    d4_mapping_choice();
    d5_warm_environments();
}

fn corpus() -> Vec<String> {
    let ds = laminar_embed::datasets::gen_csn(200, 9);
    ds.examples.into_iter().map(|e| e.code).collect()
}

fn d1_stored_embeddings() {
    println!("== D1: embeddings stored at registration vs recomputed per query ==");
    let model = model_by_name("unixcoder-code-search").unwrap();
    let corpus = corpus();
    let queries = ["check if a number is prime", "count the words", "running average of values"];

    // Stored: embed the corpus once (registration), then query.
    let t0 = Instant::now();
    let stored: Vec<_> = corpus.iter().map(|c| model.embed_code(c)).collect();
    let registration = t0.elapsed();
    let t0 = Instant::now();
    for q in &queries {
        let qe = model.embed_text(q);
        let _best = stored.iter().map(|e| cosine(&qe, e)).fold(f32::MIN, f32::max);
    }
    let stored_query = t0.elapsed() / queries.len() as u32;

    // Naive: recompute the corpus embedding on every query.
    let t0 = Instant::now();
    for q in &queries {
        let qe = model.embed_text(q);
        let _best = corpus.iter().map(|c| cosine(&qe, &model.embed_code(c))).fold(f32::MIN, f32::max);
    }
    let naive_query = t0.elapsed() / queries.len() as u32;

    println!("  one-time registration embedding of {} PEs: {registration:?}", corpus.len());
    println!("  per-query latency, stored embeddings:   {stored_query:?}");
    println!("  per-query latency, recomputed corpus:   {naive_query:?}");
    println!(
        "  speedup from storing: {:.0}x\n",
        naive_query.as_secs_f64() / stored_query.as_secs_f64().max(1e-9)
    );
}

fn d2_bi_vs_cross() {
    println!("== D2: bi-encoder vs cross-encoder (paper §2.4 trade-off) ==");
    let model = model_by_name("unixcoder-code-search").unwrap();
    let ds = laminar_embed::datasets::gen_csn(150, 13);
    let corpus: Vec<String> = ds.examples.iter().map(|e| e.code.clone()).collect();
    let embedded: Vec<_> = corpus.iter().map(|c| model.embed_code(c)).collect();

    let mut bi_rank_sum = 0.0;
    let t0 = Instant::now();
    for (i, ex) in ds.examples.iter().enumerate() {
        let qe = model.embed_text(&ex.query);
        let ranked = laminar_embed::top_k(&qe, &embedded, embedded.len());
        let rank = ranked.iter().position(|(idx, _)| *idx == i).unwrap() + 1;
        bi_rank_sum += 1.0 / rank as f64;
    }
    let bi_time = t0.elapsed() / ds.examples.len() as u32;
    let bi_mrr = bi_rank_sum / ds.examples.len() as f64;

    let mut cross_rank_sum = 0.0;
    let t0 = Instant::now();
    for (i, ex) in ds.examples.iter().enumerate() {
        let ranked = cross_rank(&ex.query, &corpus);
        let rank = ranked.iter().position(|(idx, _)| *idx == i).unwrap() + 1;
        cross_rank_sum += 1.0 / rank as f64;
    }
    let cross_time = t0.elapsed() / ds.examples.len() as u32;
    let cross_mrr = cross_rank_sum / ds.examples.len() as f64;

    println!("  bi-encoder    MRR {:.3}  per-query {:?}", bi_mrr, bi_time);
    println!("  cross-encoder MRR {:.3}  per-query {:?}", cross_mrr, cross_time);
    println!(
        "  cross-encoder is {:.1}x slower per query (the reason Laminar chose bi-encoders)\n",
        cross_time.as_secs_f64() / bi_time.as_secs_f64().max(1e-9)
    );
}

fn d4_mapping_choice() {
    println!("== D4: mapping choice on the IsPrime graph (Figure 1 semantics) ==");
    let graph = WorkflowGraph::from_script(laminar_workloads::isprime::SOURCE_SEQUENTIAL, "IsPrime").unwrap();
    let iters = 4000;
    for (name, mapping) in [
        ("SIMPLE", &SimpleMapping as &dyn Mapping),
        ("MULTI", &MultiMapping),
        ("MPI", &MpiMapping),
        ("REDIS", &RedisMapping::default()),
    ] {
        let opts = RunOptions::iterations(iters).with_processes(5);
        let t0 = Instant::now();
        let r = mapping.execute(&graph, &opts).unwrap();
        println!(
            "  {name:<7} {:>10.3} ms   ({} data processed by IsPrime)",
            t0.elapsed().as_secs_f64() * 1000.0,
            r.stats.processed["IsPrime"]
        );
    }
    println!("  (CPU-bound interpreter workload: transport overhead ranks SIMPLE < MULTI < MPI < REDIS)\n");
}

fn d5_warm_environments() {
    println!("== D5: cold vs warm engine environments (auto-import cache) ==");
    use laminar_engine::{ExecutionEngine, ExecutionRequest};
    let src = r#"
        pe A : producer {
            import astropy; import requests; import pandas;
            output output; process { emit(1); }
        }
        workflow W { nodes { a = A; } }
    "#;
    for warm in [false, true] {
        let mut engine = ExecutionEngine::new().keep_warm(warm);
        let mut first = None;
        let mut rest = std::time::Duration::ZERO;
        for i in 0..4 {
            let out = engine.run(&ExecutionRequest::simple("bench", src, 1)).unwrap();
            if i == 0 {
                first = Some(out.provision_time);
            } else {
                rest += out.provision_time;
            }
        }
        println!(
            "  {}: first-run provisioning {:?}, later runs avg {:?}",
            if warm { "warm" } else { "cold" },
            first.unwrap(),
            rest / 3
        );
    }
    println!();
}
