//! `bench_check`: the CI bench-regression guard.
//!
//! Compares a fresh set of `--smoke` bench reports (produced earlier in
//! the `bench-smoke` tier) against the committed `BENCH_PR*.json`
//! trajectory and fails — non-zero exit — when a headline metric
//! regressed by more than [`REGRESSION_FACTOR`]×:
//!
//! * **throughput** — `perf_report` figure1 datums/s per mapping vs.
//!   `BENCH_PR2.json`, and `concurrent_serving` pooled-vs-mutex speedup
//!   vs. `BENCH_PR3.json`;
//! * **VM speedup** — `perf_report` figure1_script VM-vs-interpreter
//!   throughput ratio must stay at or above [`VM_SPEEDUP_FLOOR`]× (this
//!   one compares two backends measured in the *same* fresh run, so it
//!   needs no committed baseline and no noise margin);
//! * **first-result latency** — `streaming_latency` time-to-first-result
//!   as a *fraction of total runtime* per mapping vs. `BENCH_PR4.json`
//!   (the fraction is dimensionless, so the comparison is robust to the
//!   smoke configs' smaller workloads), floored at
//!   [`MIN_FRACTION_LIMIT`] to absorb startup jitter on tiny runs;
//! * **checkpoint overhead** — `durability_overhead` checkpointed-vs-plain
//!   runtime ratio per mapping must stay at or below
//!   [`CHECKPOINT_OVERHEAD_CEILING`] (both sides from the same fresh
//!   run, interleaved best-of-n, so no committed baseline is needed);
//! * **slow-consumer policy** — `slow_consumer` must report zero lost
//!   events, a matching refold, and a retained window within its own
//!   configured horizon bound (all fresh-vs-config, no baseline: these
//!   gate the backpressure *policy*, not machine speed);
//! * **sustained load** — `sustained_load` push-mode p99 first-event
//!   latency must stay at or below [`SUSTAINED_RATIO_CEILING`]× the
//!   polling baseline's, the cross-tenant fairness spread at or below
//!   [`FAIRNESS_SPREAD_CEILING`], and lost events at zero (fresh run vs
//!   its own polling leg and config); the committed `BENCH_PR10.json`
//!   full run must additionally hold the tighter 0.5× ratio it was
//!   gated on when it was produced;
//! * **registry search** — `search_scale` indexed-vs-scan speedup must
//!   stay at or above [`SEARCH_SPEEDUP_FLOOR`] per mode, indexed p99
//!   at or below [`SEARCH_P99_CEILING_US`], per-registration index
//!   maintenance at or below [`INDEX_MAINTENANCE_CEILING`], and the
//!   indexed hits must match the scan oracle exactly (all from the same
//!   fresh smoke run; the tighter full-corpus gates — 5x speedup,
//!   sub-ms p99 — are enforced by `search_scale` itself on full runs).
//!
//! The 5× margin is deliberately coarse: smoke configs are smaller than
//! the committed full runs and CI machines are noisy — this gate exists
//! to catch order-of-magnitude regressions (a serialized pool, a
//! batch-buffered stream), not percent-level drift, which the committed
//! full reports track across PRs.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin bench_check
//! cargo run -p laminar-bench --release --bin bench_check -- \
//!     --fresh-perf target/bench_smoke.json --baseline-dir .
//! ```

use laminar_json::Value;

/// A metric must stay within this factor of the committed trajectory.
const REGRESSION_FACTOR: f64 = 5.0;

/// The compiled bytecode VM must beat the tree-walking interpreter by at
/// least this factor on the figure1_script workload. Both sides are
/// measured in the same smoke run on the same machine, so the bound is
/// tight by design: the VM's full-run advantage is well above 1.5x, and
/// falling below it means the compiled path regressed (or silently fell
/// back to the interpreter).
const VM_SPEEDUP_FLOOR: f64 = 1.5;

/// Floor for the streaming first-result-fraction limit: smoke runs are
/// short enough that startup noise dominates below this.
const MIN_FRACTION_LIMIT: f64 = 0.20;

/// Epoch checkpointing may cost at most this factor over the same run
/// uncheckpointed. Like the VM floor, both sides come from the *same*
/// fresh `durability_overhead` smoke run (interleaved, best-of-n), so
/// the bound is tight by design: blowing past it means an epoch started
/// costing a re-enactment instead of a snapshot and a reconnect.
const CHECKPOINT_OVERHEAD_CEILING: f64 = 1.25;

/// Indexed search must beat the linear scan by at least this factor in
/// the smoke run. The full-corpus floor is 5x (enforced by
/// `search_scale` on full runs); the smoke corpus is 50x smaller, so the
/// scan side is proportionally cheaper and the observable gap narrower —
/// this bound catches the index silently degrading to the scan path.
const SEARCH_SPEEDUP_FLOOR: f64 = 2.0;

/// Indexed search p99 in the smoke run must stay below this (µs). The
/// committed full-corpus bound is 1ms at 100k PEs; a smoke corpus that
/// can't answer in 2ms means the indexed path itself regressed.
const SEARCH_P99_CEILING_US: f64 = 2000.0;

/// Incremental index maintenance may cost at most this factor over
/// registration with the index disabled. Both sides come from the same
/// fresh `search_scale` run, warm-cache best-of-n, so the bound is tight
/// by design.
const INDEX_MAINTENANCE_CEILING: f64 = 1.25;

/// Push-mode p99 first-event latency in the sustained_load smoke run may
/// cost at most this fraction of the polling baseline's. The full-run
/// acceptance bound is 0.5 (enforced in-bin); the smoke run measures far
/// fewer jobs on a noisy CI machine, so its bound is looser — it exists
/// to catch push delivery silently degrading to polling, not drift.
const SUSTAINED_RATIO_CEILING: f64 = 0.75;

/// Cross-tenant fairness spread (max/min per-tenant completed jobs at
/// the 50% drain mark) must stay at or below this, smoke and full alike:
/// the deficit-round-robin scheduler serves equal-weight lanes equally
/// or it is broken.
const FAIRNESS_SPREAD_CEILING: f64 = 2.0;

const MAPPINGS: [&str; 4] = ["SIMPLE", "MULTI", "MPI", "REDIS"];

struct Check {
    name: String,
    fresh: f64,
    limit: f64,
    /// True when the metric must stay *above* the limit (throughput),
    /// false when it must stay *below* (latency fraction).
    higher_is_better: bool,
}

impl Check {
    fn pass(&self) -> bool {
        if self.higher_is_better {
            self.fresh >= self.limit
        } else {
            self.fresh <= self.limit
        }
    }
}

fn load(path: &str) -> Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| panic!("bench_check: cannot read {path}: {e}"));
    laminar_json::parse(&text).unwrap_or_else(|e| panic!("bench_check: {path} is not JSON: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::to_string);
    let fresh_perf = flag_value("--fresh-perf").unwrap_or_else(|| "target/bench_smoke.json".into());
    let fresh_streaming =
        flag_value("--fresh-streaming").unwrap_or_else(|| "target/bench_streaming_smoke.json".into());
    let fresh_concurrent =
        flag_value("--fresh-concurrent").unwrap_or_else(|| "target/bench_concurrent_smoke.json".into());
    let fresh_durability =
        flag_value("--fresh-durability").unwrap_or_else(|| "target/bench_durability_smoke.json".into());
    let fresh_slow_consumer =
        flag_value("--fresh-slow-consumer").unwrap_or_else(|| "target/bench_slow_consumer_smoke.json".into());
    let fresh_search =
        flag_value("--fresh-search").unwrap_or_else(|| "target/bench_search_smoke.json".into());
    let fresh_sustained =
        flag_value("--fresh-sustained").unwrap_or_else(|| "target/bench_sustained_smoke.json".into());
    let baseline_dir = flag_value("--baseline-dir").unwrap_or_else(|| ".".into());
    let out_path = flag_value("--out").unwrap_or_else(|| "target/bench_check.json".into());

    let perf = load(&fresh_perf);
    let streaming = load(&fresh_streaming);
    let concurrent = load(&fresh_concurrent);
    let durability = load(&fresh_durability);
    let slow_consumer = load(&fresh_slow_consumer);
    let search = load(&fresh_search);
    let sustained = load(&fresh_sustained);
    let committed_perf = load(&format!("{baseline_dir}/BENCH_PR2.json"));
    let committed_sustained = load(&format!("{baseline_dir}/BENCH_PR10.json"));
    let committed_concurrent = load(&format!("{baseline_dir}/BENCH_PR3.json"));
    let committed_streaming = load(&format!("{baseline_dir}/BENCH_PR4.json"));

    let mut checks: Vec<Check> = Vec::new();

    // Enactment throughput per mapping (datums/s, figure1).
    for mapping in MAPPINGS {
        let fresh = perf["runs"]["figure1"][mapping]["throughput_per_sec"]
            .as_f64()
            .unwrap_or_else(|| panic!("{fresh_perf}: missing figure1 throughput for {mapping}"));
        let committed = committed_perf["runs"]["figure1"][mapping]["throughput_per_sec"]
            .as_f64()
            .unwrap_or_else(|| panic!("BENCH_PR2.json: missing figure1 throughput for {mapping}"));
        checks.push(Check {
            name: format!("figure1 throughput [{mapping}] (datums/s)"),
            fresh,
            limit: committed / REGRESSION_FACTOR,
            higher_is_better: true,
        });
    }

    // Scripted figure1: compiled-VM throughput vs the interpreter's, from
    // the same fresh report.
    let vm_speedup = perf["runs"]["figure1_script"]["vm_speedup_vs_interp"]
        .as_f64()
        .unwrap_or_else(|| panic!("{fresh_perf}: missing figure1_script vm_speedup_vs_interp"));
    checks.push(Check {
        name: "figure1_script VM speedup vs interpreter".into(),
        fresh: vm_speedup,
        limit: VM_SPEEDUP_FLOOR,
        higher_is_better: true,
    });

    // Streaming time-to-first-result as a fraction of total runtime.
    // Driven off the MAPPINGS constant (like the figure1 block), so a
    // report that dropped a mapping or renamed a key fails loudly
    // instead of silently removing the guard.
    let fraction = |report: &Value, source: &str, mapping: &str| {
        report["mappings"]
            .as_array()
            .into_iter()
            .flatten()
            .find(|m| m["mapping"].as_str() == Some(mapping))
            .and_then(|m| m["first_result_fraction"].as_f64())
            .unwrap_or_else(|| panic!("{source}: missing first_result_fraction for {mapping}"))
    };
    for mapping in MAPPINGS {
        let fresh = fraction(&streaming, &fresh_streaming, mapping);
        let committed = fraction(&committed_streaming, "BENCH_PR4.json", mapping);
        checks.push(Check {
            name: format!("streaming first-result fraction [{mapping}]"),
            fresh,
            limit: (committed * REGRESSION_FACTOR).max(MIN_FRACTION_LIMIT),
            higher_is_better: false,
        });
    }

    // Durability: epoch checkpointing overhead per mapping, fresh-vs-fresh
    // from the durability_overhead smoke run.
    for mapping in MAPPINGS {
        let fresh = durability["mappings"]
            .as_array()
            .into_iter()
            .flatten()
            .find(|m| m["mapping"].as_str() == Some(mapping))
            .and_then(|m| m["checkpoint_overhead_ratio"].as_f64())
            .unwrap_or_else(|| panic!("{fresh_durability}: missing checkpoint_overhead_ratio for {mapping}"));
        checks.push(Check {
            name: format!("checkpoint overhead ratio [{mapping}]"),
            fresh,
            limit: CHECKPOINT_OVERHEAD_CEILING,
            higher_is_better: false,
        });
    }

    // Slow consumer: the checkpoint-horizon backpressure policy. All
    // three bounds compare the fresh run against its own configuration —
    // they hold at any machine speed or fail because the policy broke.
    let paced = |key: &str| {
        slow_consumer["paced"][key]
            .as_f64()
            .or_else(|| slow_consumer["paced"][key].as_i64().map(|v| v as f64))
            .unwrap_or_else(|| panic!("{fresh_slow_consumer}: missing paced.{key}"))
    };
    checks.push(Check {
        name: "slow consumer lost events (live reader)".into(),
        fresh: paced("lost_events"),
        limit: 0.0,
        higher_is_better: false,
    });
    checks.push(Check {
        name: "slow consumer max window / horizon bound".into(),
        fresh: paced("max_window_ratio"),
        limit: 1.0,
        higher_is_better: false,
    });
    checks.push(Check {
        name: "slow consumer refold matches batch (1 = yes)".into(),
        fresh: if slow_consumer["paced"]["refold_matches"].as_bool() == Some(true) { 1.0 } else { 0.0 },
        limit: 1.0,
        higher_is_better: true,
    });

    // Registry search: indexed-vs-scan speedup, indexed tail latency,
    // index-maintenance overhead and the differential oracle verdict —
    // all fresh-vs-fresh from the same search_scale smoke run.
    for mode in ["semantic", "text"] {
        let metric = |key: &str| {
            search[mode][key]
                .as_f64()
                .or_else(|| search[mode][key].as_i64().map(|v| v as f64))
                .unwrap_or_else(|| panic!("{fresh_search}: missing {mode}.{key}"))
        };
        checks.push(Check {
            name: format!("search speedup indexed vs scan [{mode}]"),
            fresh: metric("speedup"),
            limit: SEARCH_SPEEDUP_FLOOR,
            higher_is_better: true,
        });
        checks.push(Check {
            name: format!("search indexed p99 [{mode}] (us)"),
            fresh: metric("indexed_p99_us"),
            limit: SEARCH_P99_CEILING_US,
            higher_is_better: false,
        });
    }
    checks.push(Check {
        name: "search index maintenance overhead per registration".into(),
        fresh: search["registration"]["overhead_ratio"]
            .as_f64()
            .unwrap_or_else(|| panic!("{fresh_search}: missing registration.overhead_ratio")),
        limit: INDEX_MAINTENANCE_CEILING,
        higher_is_better: false,
    });
    checks.push(Check {
        name: "search indexed hits match scan oracle (1 = yes)".into(),
        fresh: if search["differential_match"].as_bool() == Some(true) { 1.0 } else { 0.0 },
        limit: 1.0,
        higher_is_better: true,
    });

    // Sustained load: push delivery must beat the polling baseline and
    // the fair scheduler must serve tenants equally — fresh-vs-fresh
    // (the push and poll legs come interleaved from the same smoke run).
    let sustained_metric = |report: &Value, source: &str, section: &str, key: &str| {
        report[section][key]
            .as_f64()
            .or_else(|| report[section][key].as_i64().map(|v| v as f64))
            .unwrap_or_else(|| panic!("{source}: missing {section}.{key}"))
    };
    checks.push(Check {
        name: "sustained push p99 / poll p99 first-event ratio".into(),
        fresh: sustained_metric(&sustained, &fresh_sustained, "latency", "p99_ratio_push_vs_poll"),
        limit: SUSTAINED_RATIO_CEILING,
        higher_is_better: false,
    });
    checks.push(Check {
        name: "sustained fairness spread (max/min tenant completions)".into(),
        fresh: sustained_metric(&sustained, &fresh_sustained, "fairness", "spread"),
        limit: FAIRNESS_SPREAD_CEILING,
        higher_is_better: false,
    });
    checks.push(Check {
        name: "sustained lost events".into(),
        fresh: sustained_metric(&sustained, &fresh_sustained, "latency", "lost_events"),
        limit: 0.0,
        higher_is_better: false,
    });
    // And the committed full-run trajectory must itself still carry the
    // tighter acceptance it was produced under.
    checks.push(Check {
        name: "committed BENCH_PR10 push/poll p99 ratio (full run)".into(),
        fresh: sustained_metric(&committed_sustained, "BENCH_PR10.json", "latency", "p99_ratio_push_vs_poll"),
        limit: 0.5,
        higher_is_better: false,
    });

    // Concurrent serving: pooled vs single-mutex jobs/s speedup.
    let fresh_speedup = concurrent["jobs_per_sec_speedup"]
        .as_f64()
        .unwrap_or_else(|| panic!("{fresh_concurrent}: missing jobs_per_sec_speedup"));
    let committed_speedup = committed_concurrent["jobs_per_sec_speedup"]
        .as_f64()
        .expect("BENCH_PR3.json: missing jobs_per_sec_speedup");
    checks.push(Check {
        name: "concurrent serving speedup (pooled / mutex jobs per s)".into(),
        fresh: fresh_speedup,
        limit: committed_speedup / REGRESSION_FACTOR,
        higher_is_better: true,
    });

    // Report.
    let mut failed = 0usize;
    let mut rows = Vec::new();
    eprintln!("bench_check: fresh smoke vs committed trajectory ({REGRESSION_FACTOR}x guard)");
    for c in &checks {
        let verdict = if c.pass() { "ok  " } else { "FAIL" };
        let bound = if c.higher_is_better { ">=" } else { "<=" };
        eprintln!("  [{verdict}] {:<52} {:>12.4} (must be {bound} {:.4})", c.name, c.fresh, c.limit);
        if !c.pass() {
            failed += 1;
        }
        let mut row = Value::Null;
        row.set("check", c.name.as_str())
            .set("fresh", (c.fresh * 10000.0).round() / 10000.0)
            .set("limit", (c.limit * 10000.0).round() / 10000.0)
            .set("pass", c.pass());
        rows.push(row);
    }

    let mut report = Value::Null;
    report
        .set("report", "laminar bench regression guard")
        .set("regression_factor", REGRESSION_FACTOR)
        .set("checks", Value::Array(rows))
        .set("failed", failed as i64);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, laminar_json::to_string_pretty(&report)).expect("write report");
    eprintln!("report written to {out_path}");

    if failed > 0 {
        eprintln!("bench_check: {failed} metric(s) regressed past the {REGRESSION_FACTOR}x guard");
        std::process::exit(1);
    }
    eprintln!("bench_check: all {} metrics within bounds", checks.len());
}
