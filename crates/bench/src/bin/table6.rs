//! Regenerates **Table 6**: zero-shot text-to-code search MRR on the
//! CosQA-like and CSN-like datasets for unixcoder-base vs the fine-tuned
//! unixcoder-code-search.
//!
//! ```text
//! cargo run -p laminar-bench --bin table6 --release
//! ```

use laminar_bench::table6_mrr;

fn main() {
    const N: usize = 400;
    const SEED: u64 = 42;

    println!("== Table 6: Results on zero-shot text-to-code search (MRR x100) ==");
    println!("(paper: unixcoder-base 43.1 / 44.7 ; unixcoder-code-search 58.8 / 72.2)");
    println!("(shape target: fine-tuned > base on both; CSN > CosQA for fine-tuned)\n");
    println!("{:<28} {:>10} {:>10}", "Model", "CosQA", "CSN");

    let mut scores = std::collections::BTreeMap::new();
    for model in ["unixcoder-base", "unixcoder-code-search"] {
        let cosqa = table6_mrr(model, "CosQA", N, SEED) * 100.0;
        let csn = table6_mrr(model, "CSN", N, SEED) * 100.0;
        println!("{model:<28} {cosqa:>10.1} {csn:>10.1}");
        scores.insert(model, (cosqa, csn));
    }

    let base = scores["unixcoder-base"];
    let tuned = scores["unixcoder-code-search"];
    let ok = tuned.0 > base.0 && tuned.1 > base.1 && tuned.1 > tuned.0;
    println!("\nshape {}", if ok { "HOLDS" } else { "VIOLATED" });
}
