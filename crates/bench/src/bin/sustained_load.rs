//! `sustained_load`: serving under sustained multi-tenant load — the
//! PR 10 acceptance bench for push delivery and fair admission control.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin sustained_load             # BENCH_PR10.json
//! cargo run -p laminar-bench --release --bin sustained_load -- --smoke # quick CI gate
//! ```
//!
//! Three phases:
//!
//! 1. **Fairness** (pool level): 16 tenants submit an open-loop arrival
//!    of 10k jobs total (625 each, fixed inter-arrival, nobody waits for
//!    completions) into a 2-worker pool whose service rate is well below
//!    the aggregate arrival rate, so a deep backlog forms. At the 50%
//!    completion mark the per-tenant completed counts are snapshotted;
//!    the deficit-round-robin scheduler must have served every lane
//!    near-equally: **spread = max/min completed ≤ 2×**. Every job must
//!    then drain to `done` — nothing lost, nothing failed.
//! 2. **First-event latency** (full HTTP stack): jobs stream their
//!    events; a push client long-polls (`wait_ms`) while the polling
//!    baseline re-reads the cursor every 50 ms — the steady-state cap of
//!    the pre-PR client's 2→50 ms ladder, i.e. the rate any poller
//!    converges to on a stream older than ~100 ms. Gate: **p99 push
//!    first-event latency ≤ 0.5× the polling baseline's**. Both modes
//!    then drain their streams to the seal and must observe every
//!    `output` event exactly once, gap-free: **zero lost events**.
//! 3. **Admission** (pool level): one greedy tenant submits far past its
//!    token bucket; the pool must throttle with 429s that carry a
//!    positive `retryAfterMs` hint while admitted work still completes.
//!
//! The in-bin asserts run on full runs; `bench_check` re-gates the smoke
//! run in CI against the same bounds (0.75× for the latency ratio —
//! smoke samples are small).

use laminar_engine::{EnginePool, ExecutionEngine, ExecutionRequest, JobPhase, PoolError};
use laminar_json::Value;
use laminar_server::api::Method;
use laminar_server::http::http_call;
use laminar_server::{ApiRequest, HttpServer, LaminarServer};
use laminar_workloads::sustained;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Per-job request: the sustained pulse, events optional.
fn request(iterations: i64, events: bool) -> ExecutionRequest {
    ExecutionRequest::simple("bench", sustained::SOURCE, iterations)
        .with_workflow(sustained::WORKFLOW)
        .with_events(events)
}

// ---- phase 1: fairness under open-loop arrival --------------------------

struct FairnessRun {
    arrival: Duration,
    drain: Duration,
    per_tenant_completed: Vec<u64>,
    snapshot_completed: u64,
    spread: f64,
    unfinished: u64,
    failed: u64,
}

fn fairness_phase(
    tenants: usize,
    jobs_per_tenant: usize,
    inter_arrival: Duration,
    provision_scale: u64,
) -> FairnessRun {
    let total = tenants * jobs_per_tenant;
    let engine = ExecutionEngine::instant().with_provision_scale(provision_scale);
    let mut pool = EnginePool::start(engine, 2, total + 64);

    // Open-loop arrival: every tenant thread submits its quota at a fixed
    // pace and never waits for a completion — the queue absorbs the
    // difference between arrival and service rate.
    let t0 = Instant::now();
    let ids: Vec<(String, Vec<i64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..tenants)
            .map(|t| {
                let pool = &pool;
                s.spawn(move || {
                    let owner = format!("tenant{t}");
                    let mut ids = Vec::with_capacity(jobs_per_tenant);
                    for _ in 0..jobs_per_tenant {
                        let id =
                            pool.submit(&owner, request(2, false)).expect("capacity covers the full arrival");
                        ids.push(id);
                        std::thread::sleep(inter_arrival);
                    }
                    (owner, ids)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let arrival = t0.elapsed();

    // Snapshot fairness mid-drain: wait for half the jobs to complete
    // (capped below the pool's finished-record retention window, so the
    // per-job status sweep below still sees every completion), then
    // count per-tenant completions. DRR with equal weights must have
    // served every backlogged lane near-equally.
    let snapshot_target = (total / 2).min(2000);
    while (pool.stats().completed as usize) < snapshot_target {
        std::thread::sleep(Duration::from_millis(2));
    }
    let per_tenant_completed: Vec<u64> = ids
        .iter()
        .map(|(owner, jobs)| {
            jobs.iter()
                .filter(|id| {
                    pool.status(owner, **id).map(|i| matches!(i.phase, JobPhase::Done)).unwrap_or(false)
                })
                .count() as u64
        })
        .collect();
    let snapshot_completed: u64 = per_tenant_completed.iter().sum();
    let max = *per_tenant_completed.iter().max().unwrap() as f64;
    let min = *per_tenant_completed.iter().min().unwrap() as f64;
    let spread = if min > 0.0 { max / min } else { f64::INFINITY };

    // Drain: every admitted job must reach `done`. Finished job records
    // are evicted once the pool's retention window fills, so completion
    // is tracked through the monotonic pool counters, not per-job polls.
    let deadline = Instant::now() + Duration::from_secs(300);
    let (unfinished, failed) = loop {
        let stats = pool.stats();
        let terminal = stats.completed + stats.failed + stats.cancelled;
        if terminal as usize >= total || Instant::now() >= deadline {
            break ((total as u64).saturating_sub(terminal), stats.failed);
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    let drain = t0.elapsed();
    pool.stop();
    FairnessRun { arrival, drain, per_tenant_completed, snapshot_completed, spread, unfinished, failed }
}

// ---- phase 2: first-event latency, push vs poll -------------------------

const POLL_INTERVAL: Duration = Duration::from_millis(50);

fn call(addr: SocketAddr, method: Method, path: String, body: Value) -> Value {
    let r = http_call(addr, &ApiRequest::new(method, path, body)).expect("transport ok");
    assert!(r.is_ok(), "unexpected error response: {:?}", r.body);
    r.body
}

fn events_page(addr: SocketAddr, user: &str, id: i64, since: u64, wait_ms: u64) -> Value {
    let mut path = format!("/execution/{user}/job/{id}/events?since={since}");
    if wait_ms > 0 {
        path.push_str(&format!("&wait_ms={wait_ms}"));
    }
    call(addr, Method::Get, path, Value::Null)
}

struct LatencySample {
    first_event: Duration,
    outputs: usize,
    gap_free: bool,
}

/// Submit one streamed job and measure submit→first-event, then drain
/// the stream to the seal counting `output` events and seq gaps.
fn latency_job(addr: SocketAddr, user: &str, iterations: i64, push: bool) -> LatencySample {
    let body = laminar_json::jobj! {
        "source" => sustained::SOURCE,
        "workflow" => sustained::WORKFLOW,
        "input" => iterations,
        "options" => laminar_json::jobj! { "events" => true }
    };
    let t0 = Instant::now();
    let resp = call(addr, Method::Post, format!("/execution/{user}/submit"), body);
    let id = resp["jobId"].as_i64().expect("job id");

    let mut first_event = None;
    let mut outputs = 0usize;
    let mut gap_free = true;
    let mut since = 0u64;
    loop {
        let page = if push {
            events_page(addr, user, id, since, 10_000)
        } else {
            // The polling baseline only sleeps while it has nothing: the
            // measured quantity is delivery lag, not drain throughput.
            if first_event.is_none() && since == 0 && t0.elapsed() < POLL_INTERVAL {
                std::thread::sleep(POLL_INTERVAL.saturating_sub(t0.elapsed()));
            }
            events_page(addr, user, id, since, 0)
        };
        let events = page["events"].as_array().expect("event page").to_vec();
        if !events.is_empty() && first_event.is_none() {
            first_event = Some(t0.elapsed());
        }
        for e in &events {
            if e["seq"].as_i64() != Some(since as i64) {
                gap_free = false;
            }
            since += 1;
            if e["type"].as_str() == Some("output") {
                outputs += 1;
            }
        }
        if page["closed"].as_bool() == Some(true) {
            break;
        }
        if events.is_empty() && !push {
            std::thread::sleep(POLL_INTERVAL);
        }
    }
    LatencySample { first_event: first_event.expect("stream had events"), outputs, gap_free }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    let idx = ((sorted_us.len() as f64 * p).ceil() as usize).clamp(1, sorted_us.len()) - 1;
    sorted_us[idx]
}

struct LatencyRun {
    push_p50_us: u64,
    push_p99_us: u64,
    poll_p50_us: u64,
    poll_p99_us: u64,
    p99_ratio: f64,
    lost_events: u64,
    events_total: u64,
}

fn latency_phase(jobs_per_mode: usize, iterations: i64, provision_scale: u64) -> LatencyRun {
    let server = LaminarServer::with_pool(
        laminar_registry::Registry::in_memory(),
        ExecutionEngine::instant().with_provision_scale(provision_scale),
        2,
        64,
    );
    let http = HttpServer::start(server).unwrap();
    let addr = http.addr();
    let user = "latency";
    call(
        addr,
        Method::Post,
        "/auth/register".into(),
        laminar_json::jobj! { "userName" => user, "password" => "password" },
    );

    let mut push_us: Vec<u64> = Vec::new();
    let mut poll_us: Vec<u64> = Vec::new();
    let mut lost_events = 0u64;
    let mut events_total = 0u64;
    let expected = sustained::expected_outputs(iterations);
    // Interleave the modes so drift (cache warmth, CPU frequency) hits
    // both measurement series equally.
    for i in 0..jobs_per_mode * 2 {
        let push = i % 2 == 0;
        let sample = latency_job(addr, user, iterations, push);
        if sample.outputs != expected || !sample.gap_free {
            lost_events += expected.abs_diff(sample.outputs) as u64 + u64::from(!sample.gap_free);
        }
        events_total += sample.outputs as u64;
        let us = sample.first_event.as_micros() as u64;
        if push {
            push_us.push(us);
        } else {
            poll_us.push(us);
        }
    }
    http.stop();

    push_us.sort_unstable();
    poll_us.sort_unstable();
    let push_p99 = percentile(&push_us, 0.99);
    let poll_p99 = percentile(&poll_us, 0.99);
    LatencyRun {
        push_p50_us: percentile(&push_us, 0.50),
        push_p99_us: push_p99,
        poll_p50_us: percentile(&poll_us, 0.50),
        poll_p99_us: poll_p99,
        p99_ratio: push_p99 as f64 / poll_p99.max(1) as f64,
        lost_events,
        events_total,
    }
}

// ---- phase 3: admission control ------------------------------------------

struct AdmissionRun {
    attempts: u64,
    accepted: u64,
    throttled: u64,
    min_hint_ms: u64,
    max_hint_ms: u64,
}

fn admission_phase(attempts: u64) -> AdmissionRun {
    let mut pool = EnginePool::start(ExecutionEngine::instant(), 2, attempts as usize + 8);
    pool.set_tenant_rate(200.0, 8.0);
    let mut run = AdmissionRun { attempts, accepted: 0, throttled: 0, min_hint_ms: u64::MAX, max_hint_ms: 0 };
    let mut ids = Vec::new();
    for _ in 0..attempts {
        match pool.submit("greedy", request(1, false)) {
            Ok(id) => {
                run.accepted += 1;
                ids.push(id);
            }
            Err(PoolError::RateLimited { retry_after_ms }) => {
                run.throttled += 1;
                run.min_hint_ms = run.min_hint_ms.min(retry_after_ms);
                run.max_hint_ms = run.max_hint_ms.max(retry_after_ms);
            }
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    // Admitted work still completes while the excess is shed.
    for id in ids {
        match pool.wait("greedy", id, Duration::from_secs(60)) {
            Some(laminar_engine::JobResult::Done(..)) => {}
            other => panic!("admitted job did not finish: {other:?}"),
        }
    }
    pool.stop();
    if run.min_hint_ms == u64::MAX {
        run.min_hint_ms = 0;
    }
    run
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::to_string);
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR10.json".to_string());

    let tenants: usize = 16;
    let jobs_per_tenant: usize = if smoke { 24 } else { 625 };
    let inter_arrival = Duration::from_micros(if smoke { 1_000 } else { 3_000 });
    let fairness_scale: u64 = 5; // ~2ms of simulated provisioning per job
    let latency_jobs: usize = if smoke { 12 } else { 100 };
    let latency_scale: u64 = 20; // ~8ms to the first event: a real park for push
    eprintln!(
        "sustained_load: {tenants} tenants x {jobs_per_tenant} jobs open-loop, \
         {latency_jobs} latency jobs per mode, poll baseline {POLL_INTERVAL:?}"
    );

    let fairness = fairness_phase(tenants, jobs_per_tenant, inter_arrival, fairness_scale);
    eprintln!(
        "  fairness: {} jobs arrived in {:?}, drained in {:?}; at 50% the spread was {:.2} \
         (per tenant: min {} max {}), unfinished {} failed {}",
        tenants * jobs_per_tenant,
        fairness.arrival,
        fairness.drain,
        fairness.spread,
        fairness.per_tenant_completed.iter().min().unwrap(),
        fairness.per_tenant_completed.iter().max().unwrap(),
        fairness.unfinished,
        fairness.failed,
    );

    let latency = latency_phase(latency_jobs, 5, latency_scale);
    eprintln!(
        "  latency: push p50 {}us p99 {}us | poll p50 {}us p99 {}us | p99 ratio {:.3} | \
         {} events, {} lost",
        latency.push_p50_us,
        latency.push_p99_us,
        latency.poll_p50_us,
        latency.poll_p99_us,
        latency.p99_ratio,
        latency.events_total,
        latency.lost_events,
    );

    let admission = admission_phase(if smoke { 60 } else { 200 });
    eprintln!(
        "  admission: {}/{} accepted, {} throttled with hints {}..{}ms",
        admission.accepted,
        admission.attempts,
        admission.throttled,
        admission.min_hint_ms,
        admission.max_hint_ms,
    );

    let pass = latency.p99_ratio <= 0.5
        && fairness.spread <= 2.0
        && latency.lost_events == 0
        && fairness.unfinished == 0
        && fairness.failed == 0;

    // Acceptance on the full run (bench_check re-gates the smoke run with
    // a 0.75 latency-ratio bound — small samples, noisy CI).
    if !smoke {
        assert!(
            latency.p99_ratio <= 0.5,
            "acceptance: push p99 {}us must be <= 0.5x poll p99 {}us",
            latency.push_p99_us,
            latency.poll_p99_us
        );
        assert!(fairness.spread <= 2.0, "acceptance: fairness spread {} > 2", fairness.spread);
        assert_eq!(latency.lost_events, 0, "acceptance: no event may be lost under load");
        assert_eq!(fairness.unfinished + fairness.failed, 0, "acceptance: every admitted job drains");
        assert!(admission.throttled > 0, "acceptance: the greedy tenant must be throttled");
        assert!(admission.min_hint_ms >= 1, "acceptance: every 429 carries a positive retry hint");
    }

    let mut report = Value::Null;
    report
        .set("report", "laminar sustained load: push delivery + fair admission")
        .set("pr", "PR10: push delivery + per-tenant admission control behind the v1 API")
        .set("smoke", smoke)
        .set(
            "fairness",
            laminar_json::jobj! {
                "tenants" => tenants as i64,
                "jobs_per_tenant" => jobs_per_tenant as i64,
                "jobs_total" => (tenants * jobs_per_tenant) as i64,
                "workers" => 2i64,
                "inter_arrival_us" => inter_arrival.as_micros() as i64,
                "arrival_us" => fairness.arrival.as_micros() as i64,
                "drain_us" => fairness.drain.as_micros() as i64,
                "snapshot_completed" => fairness.snapshot_completed as i64,
                "min_completed" => *fairness.per_tenant_completed.iter().min().unwrap() as i64,
                "max_completed" => *fairness.per_tenant_completed.iter().max().unwrap() as i64,
                "spread" => (fairness.spread * 1000.0).round() / 1000.0,
                "unfinished" => fairness.unfinished as i64,
                "failed" => fairness.failed as i64
            },
        )
        .set(
            "latency",
            laminar_json::jobj! {
                "jobs_per_mode" => latency_jobs as i64,
                "poll_interval_ms" => POLL_INTERVAL.as_millis() as i64,
                "push_p50_us" => latency.push_p50_us as i64,
                "push_p99_us" => latency.push_p99_us as i64,
                "poll_p50_us" => latency.poll_p50_us as i64,
                "poll_p99_us" => latency.poll_p99_us as i64,
                "p99_ratio_push_vs_poll" => (latency.p99_ratio * 10000.0).round() / 10000.0,
                "events_total" => latency.events_total as i64,
                "lost_events" => latency.lost_events as i64
            },
        )
        .set(
            "admission",
            laminar_json::jobj! {
                "attempts" => admission.attempts as i64,
                "accepted" => admission.accepted as i64,
                "throttled" => admission.throttled as i64,
                "min_retry_hint_ms" => admission.min_hint_ms as i64,
                "max_retry_hint_ms" => admission.max_hint_ms as i64
            },
        )
        .set(
            "acceptance",
            laminar_json::jobj! {
                "criterion" => "push p99 <= 0.5x poll p99, spread <= 2x, zero lost events, full drain",
                "pass" => pass
            },
        );

    std::fs::write(&out_path, laminar_json::to_string_pretty(&report)).expect("write report");
    eprintln!("report written to {out_path}");
}
