//! The `durability_overhead` scenario: what does epoch checkpointing
//! cost? For each mapping, the same stateful workload runs twice —
//! plain, and with `checkpoint_every` carving the input into epochs
//! (snapshot + journal-shaped event marker + runner rebuild per epoch)
//! — and the report records the runtime ratio, plus the time a full
//! crash/resume cycle takes against the batch reference.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin durability_overhead             # BENCH_PR7.json
//! cargo run -p laminar-bench --release --bin durability_overhead -- --smoke # quick CI gate
//! ```
//!
//! Acceptance (enforced here on the full run and by `bench_check` on the
//! smoke run): checkpointed runtime ≤ 1.25× plain runtime per mapping.
//! Both sides are measured fresh in the same process, so the bound needs
//! no committed baseline — it guards the *structure* (an epoch must cost
//! a snapshot and a reconnect, not a re-enactment), not machine speed.

use laminar_dataflow::mapping::MappingKind;
use laminar_dataflow::{
    DataflowError, FaultPlan, RecordingObserver, ResumePoint, RunEvent, RunObserver, RunOptions,
    WorkflowGraph,
};
use laminar_json::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stateful group-by workload: per-key tables, RNG draws, and prints all
/// end up in every epoch snapshot, so the checkpoint is never trivially
/// empty.
const SOURCE: &str = r#"
    pe Feed : producer {
        output output;
        process {
            let key = "k" + str(iteration % 7);
            emit([key, iteration + randint(0, 3)]);
        }
    }
    pe Fold : generic {
        input input groupby 0;
        output output;
        init { state.sums = {}; state.count = 0; }
        process {
            let key = input[0];
            state.sums[key] = get(state.sums, key, 0) + input[1];
            state.count = state.count + 1;
            emit([key, state.sums[key], state.count]);
        }
    }
"#;

fn build() -> WorkflowGraph {
    let mut g = WorkflowGraph::new("durability");
    let a = g.add_script_pe(SOURCE, "Feed").unwrap();
    let b = g.add_script_pe(SOURCE, "Fold").unwrap();
    g.connect(a, "output", b, "input").unwrap();
    g
}

/// Best-of-n wall clock for the two run configurations, interleaved
/// (plain, checkpointed, plain, ...) so a noisy stretch on a shared CI
/// machine lands on both sides of the ratio. The minimum, not the
/// median: the ratio gate guards *structure* (an epoch must cost a
/// snapshot and a reconnect, not a re-enactment), and the fastest
/// observed run is the measurement least polluted by scheduler noise.
fn time_pair(
    kind: MappingKind,
    g: &WorkflowGraph,
    plain: &RunOptions,
    checkpointed: &RunOptions,
    reps: usize,
) -> (Duration, Duration) {
    let once = |opts: &RunOptions| {
        let t0 = Instant::now();
        kind.build().execute(g, opts).expect("bench run");
        t0.elapsed()
    };
    let mut best = (Duration::MAX, Duration::MAX);
    for _ in 0..reps {
        best.0 = best.0.min(once(plain));
        best.1 = best.1.min(once(checkpointed));
    }
    best
}

struct Row {
    mapping: String,
    plain: Duration,
    checkpointed: Duration,
    epochs: u64,
    recovery: Duration,
}

impl Row {
    fn ratio(&self) -> f64 {
        self.checkpointed.as_secs_f64() / self.plain.as_secs_f64().max(1e-9)
    }

    fn to_value(&self) -> Value {
        let mut v = Value::Null;
        v.set("mapping", self.mapping.as_str())
            .set("plain_us", self.plain.as_micros() as i64)
            .set("checkpointed_us", self.checkpointed.as_micros() as i64)
            .set("checkpoint_overhead_ratio", (self.ratio() * 10000.0).round() / 10000.0)
            .set("epochs", self.epochs as i64)
            .set("crash_resume_us", self.recovery.as_micros() as i64);
        v
    }
}

/// Crash at `kill_at`, then time the resume-to-completion leg — the
/// recovery cost a restarted engine pays, separate from steady-state
/// overhead.
fn time_recovery(kind: MappingKind, g: &WorkflowGraph, opts: &RunOptions, kill_at: u64) -> Duration {
    let recorder = RecordingObserver::new();
    let crash = opts.clone().with_faults(FaultPlan { kill_at_epoch: Some(kill_at), ..FaultPlan::none() });
    let err = kind
        .build()
        .execute_observed(g, &crash, Some(recorder.clone() as Arc<dyn RunObserver>))
        .expect_err("injected crash");
    assert_eq!(err, DataflowError::Injected { epoch: kill_at });
    let events: Vec<RunEvent> = recorder.take().into_iter().map(|(_, _, e)| e).collect();
    let snapshots = match events.last() {
        Some(RunEvent::Epoch { state, .. }) => state.clone(),
        other => panic!("journal should end with the epoch marker, got {other:?}"),
    };
    let resume = opts.clone().with_resume(ResumePoint { epoch: kill_at, snapshots, events });
    let t0 = Instant::now();
    kind.build().execute(g, &resume).expect("resumed run");
    t0.elapsed()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::to_string);
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR7.json".to_string());

    let iterations: i64 = if smoke { 20_000 } else { 40_000 };
    let chunk: usize = if smoke { 5_000 } else { 8_000 };
    let reps = if smoke { 4 } else { 6 };
    let processes = 4;
    let epochs = iterations as u64 / chunk as u64;
    eprintln!(
        "durability_overhead: {iterations} iterations, checkpoint every {chunk} ({epochs} epochs), \
         {processes} processes, best of {reps}"
    );

    let g = build();
    let mut rows = Vec::new();
    for kind in [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis] {
        let plain_opts = RunOptions::iterations(iterations).with_processes(processes);
        let ck_opts = plain_opts.clone().with_checkpoints(chunk);
        // Warm the script compile cache so neither side pays it.
        kind.build().execute(&g, &RunOptions::iterations(16).with_processes(processes)).unwrap();
        let (plain, checkpointed) = time_pair(kind, &g, &plain_opts, &ck_opts, reps);
        let recovery = time_recovery(kind, &g, &ck_opts, epochs / 2);
        let row = Row { mapping: kind.as_str().to_string(), plain, checkpointed, epochs, recovery };
        eprintln!(
            "  {:<6} plain {:>9.1?}  checkpointed {:>9.1?}  ratio {:>5.3}  crash+resume {:>9.1?}",
            row.mapping,
            row.plain,
            row.checkpointed,
            row.ratio(),
            row.recovery
        );
        rows.push(row);
    }

    let worst = rows.iter().map(Row::ratio).fold(0.0f64, f64::max);
    if !smoke {
        assert!(
            worst <= 1.25,
            "acceptance: checkpointed runtime must stay within 1.25x of plain (worst {worst:.3})"
        );
    }

    let mut report = Value::Null;
    report
        .set("report", "laminar durability: epoch checkpoint overhead")
        .set("pr", "PR7: durable streaming - epoch checkpoint/replay of enactment state")
        .set("smoke", smoke)
        .set(
            "config",
            laminar_json::jobj! {
                "iterations" => iterations,
                "checkpoint_every" => chunk,
                "epochs" => epochs as i64,
                "processes" => processes,
                "reps" => reps,
                "workload" => "Feed -> Fold (stateful group-by with RNG)"
            },
        )
        .set("mappings", rows.iter().map(Row::to_value).collect::<Value>())
        .set(
            "acceptance",
            laminar_json::jobj! {
                "criterion" => "checkpointed runtime <= 1.25x plain runtime, every mapping",
                "worst_ratio" => (worst * 10000.0).round() / 10000.0,
                "pass" => worst <= 1.25
            },
        );

    std::fs::write(&out_path, laminar_json::to_string_pretty(&report)).expect("write report");
    eprintln!("report written to {out_path}");
}
