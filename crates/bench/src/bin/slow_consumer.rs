//! The `slow_consumer` scenario: what happens when the event-stream
//! reader cannot keep up? A checkpointed job runs against a deliberately
//! small event log while a paced reader polls 10× slower than the
//! producer's natural rate — the checkpoint-horizon policy must throttle
//! the producer to the reader's pace rather than evict undelivered
//! events.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin slow_consumer             # BENCH_PR8.json
//! cargo run -p laminar-bench --release --bin slow_consumer -- --smoke # quick CI gate
//! ```
//!
//! Acceptance (enforced here on the full run and by `bench_check` on the
//! smoke run):
//! * **zero data loss** — the reader's cursor never falls off the
//!   retained window (`lost_events == 0`) and its refold is exactly the
//!   batch result;
//! * **bounded log memory** — the retained window never exceeds twice
//!   the configured capacity (one in-flight round of slack over the
//!   horizon), however far behind the reader is.
//!
//! Both bounds compare the run against its own configuration, so the
//! gate needs no committed baseline — it guards the *policy* (throttle,
//! don't drop), not machine speed.

use laminar_dataflow::{fold_events, RunEvent};
use laminar_engine::{EnginePool, ExecutionEngine, ExecutionRequest, JobResult};
use laminar_json::Value;
use std::time::{Duration, Instant};

/// Stateful group-by workload (the durability bench's shape): group-by
/// tables, a running scalar and PRNG draws all cross every epoch, so
/// losing a round would visibly corrupt the refold.
const SOURCE: &str = r#"
    pe Feed : producer {
        output output;
        process {
            let key = "k" + str(iteration % 7);
            emit([key, iteration + randint(0, 3)]);
        }
    }
    pe Fold : generic {
        input input groupby 0;
        output output;
        init { state.sums = {}; state.count = 0; }
        process {
            let key = input[0];
            state.sums[key] = get(state.sums, key, 0) + input[1];
            state.count = state.count + 1;
            emit([key, state.sums[key], state.count]);
        }
    }
    workflow Run {
        nodes { f = Feed; d = Fold; }
        connect f.output -> d.input;
    }
"#;

fn request(iterations: i64, checkpoint_every: usize) -> ExecutionRequest {
    ExecutionRequest::simple("bench", SOURCE, iterations)
        .with_workflow("Run")
        .with_checkpoints(checkpoint_every)
        .with_events(true)
}

/// Calibration: the producer's natural pace with nobody in its way —
/// a huge log, no reader. Per-event wall clock sets the paced reader's
/// 10×-slower budget.
fn calibrate(iterations: i64, checkpoint_every: usize) -> (Duration, u64) {
    let pool = EnginePool::start(ExecutionEngine::instant(), 1, 4);
    pool.set_event_log_capacity(1 << 20);
    let t0 = Instant::now();
    let id = pool.submit("bench", request(iterations, checkpoint_every)).unwrap();
    match pool.wait("bench", id, Duration::from_secs(120)).unwrap() {
        JobResult::Done(..) => {}
        other => panic!("calibration run failed: {other:?}"),
    }
    let elapsed = t0.elapsed();
    let (first, end) = pool.event_log_window("bench", id).expect("log retained");
    assert_eq!(first, 0, "calibration log must not evict");
    (elapsed, end)
}

struct PacedRun {
    elapsed: Duration,
    events: Vec<Value>,
    lost_events: u64,
    max_window: u64,
    pages: u64,
    degraded_recoveries: u64,
}

/// The measured leg: capacity-bounded log, reader paced to one tenth of
/// the producer's natural event rate.
fn paced_run(
    iterations: i64,
    checkpoint_every: usize,
    capacity: usize,
    per_event: Duration,
    slowdown: u32,
) -> PacedRun {
    let pool = EnginePool::start(ExecutionEngine::instant(), 1, 4);
    pool.set_event_log_capacity(capacity);
    // The reader is slow, not dead: backpressure must never time out
    // into degraded mode during the measurement.
    pool.set_backpressure_wait(Duration::from_secs(300));
    let t0 = Instant::now();
    let id = pool.submit("bench", request(iterations, checkpoint_every)).unwrap();

    let mut run = PacedRun {
        elapsed: Duration::ZERO,
        events: Vec::new(),
        lost_events: 0,
        max_window: 0,
        pages: 0,
        degraded_recoveries: 0,
    };
    let mut since = 0u64;
    loop {
        let page = pool.events("bench", id, since).unwrap();
        run.pages += 1;
        if since < page.first {
            run.lost_events += page.first - since;
        }
        if page.retained_epoch.is_some() {
            run.degraded_recoveries += 1;
        }
        if let Some((first, end)) = pool.event_log_window("bench", id) {
            run.max_window = run.max_window.max(end - first);
        }
        let got = page.events.len() as u32;
        run.events.extend(page.events);
        since = page.next;
        if page.closed {
            break;
        }
        // Pace: spend `slowdown`× the producer's per-event budget on
        // every event just consumed (plus a floor so an empty poll spins
        // at a sane rate rather than busy-waiting).
        let budget = per_event * slowdown * got.max(1);
        std::thread::sleep(budget.max(Duration::from_micros(50)));
    }
    run.elapsed = t0.elapsed();
    match pool.wait("bench", id, Duration::from_secs(120)).unwrap() {
        JobResult::Done(..) => {}
        other => panic!("paced run failed: {other:?}"),
    }
    run
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::to_string);
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR8.json".to_string());

    let iterations: i64 = if smoke { 600 } else { 3_000 };
    let checkpoint_every: usize = if smoke { 25 } else { 100 };
    let capacity: usize = if smoke { 128 } else { 512 };
    let slowdown: u32 = 10;
    eprintln!(
        "slow_consumer: {iterations} iterations, checkpoint every {checkpoint_every}, \
         log capacity {capacity}, reader {slowdown}x slower than the producer"
    );

    // Warm the compile cache, then calibrate the producer's natural pace.
    let _ = calibrate(32, 8);
    let (natural, total_events) = calibrate(iterations, checkpoint_every);
    let per_event = natural / (total_events.max(1) as u32);
    eprintln!(
        "  producer natural pace: {total_events} events in {natural:?} ({:.1} events/ms)",
        total_events as f64 / natural.as_secs_f64().max(1e-9) / 1000.0
    );

    let run = paced_run(iterations, checkpoint_every, capacity, per_event, slowdown);
    let received = run.events.len() as u64;
    let window_bound = (capacity * 2) as u64;
    let max_window_ratio = run.max_window as f64 / window_bound as f64;
    let throttle_factor = run.elapsed.as_secs_f64() / natural.as_secs_f64().max(1e-9);

    // Refold identity: the paced reader's stream folds to the batch run.
    let folded = fold_events(run.events.iter().filter_map(RunEvent::from_value));
    let batch = ExecutionEngine::instant()
        .run(&ExecutionRequest::simple("bench", SOURCE, iterations).with_workflow("Run"))
        .expect("batch reference");
    let refold_matches = folded.port_values("Fold", "output")
        == batch.port_values("Fold", "output").as_slice()
        && folded.printed == batch.printed;

    eprintln!(
        "  paced reader: {received} events over {} pages in {:?} ({}x the natural run)",
        run.pages,
        run.elapsed,
        (throttle_factor * 10.0).round() / 10.0
    );
    eprintln!(
        "  lost events {}  max window {} (bound {})  degraded recoveries {}  refold matches {}",
        run.lost_events, run.max_window, window_bound, run.degraded_recoveries, refold_matches
    );

    // Acceptance on the full run (bench_check re-gates the smoke run).
    if !smoke {
        assert_eq!(run.lost_events, 0, "acceptance: a live slow consumer must lose nothing");
        assert!(refold_matches, "acceptance: the slow consumer's refold must equal the batch result");
        assert!(
            run.max_window <= window_bound,
            "acceptance: retained window {} must stay within {window_bound}",
            run.max_window
        );
    }

    let mut report = Value::Null;
    report
        .set("report", "laminar slow consumer: checkpoint-horizon backpressure")
        .set("pr", "PR8: checkpoint-horizon backpressure - degrade, never lose data")
        .set("smoke", smoke)
        .set(
            "config",
            laminar_json::jobj! {
                "iterations" => iterations,
                "checkpoint_every" => checkpoint_every,
                "log_capacity" => capacity,
                "reader_slowdown" => slowdown as i64,
                "workload" => "Feed -> Fold (stateful group-by with RNG)"
            },
        )
        .set(
            "producer",
            laminar_json::jobj! {
                "natural_us" => natural.as_micros() as i64,
                "events" => total_events as i64,
                "events_per_sec" => (total_events as f64 / natural.as_secs_f64().max(1e-9)).round()
            },
        )
        .set(
            "paced",
            laminar_json::jobj! {
                "elapsed_us" => run.elapsed.as_micros() as i64,
                "events_received" => received as i64,
                "pages" => run.pages as i64,
                "lost_events" => run.lost_events as i64,
                "max_window" => run.max_window as i64,
                "window_bound" => window_bound as i64,
                "max_window_ratio" => (max_window_ratio * 10000.0).round() / 10000.0,
                "throttle_factor" => (throttle_factor * 100.0).round() / 100.0,
                "degraded_recoveries" => run.degraded_recoveries as i64,
                "refold_matches" => refold_matches
            },
        )
        .set(
            "acceptance",
            laminar_json::jobj! {
                "criterion" => "lost_events == 0, refold == batch, max window <= 2x capacity",
                "pass" => run.lost_events == 0 && refold_matches && run.max_window <= window_bound
            },
        );

    std::fs::write(&out_path, laminar_json::to_string_pretty(&report)).expect("write report");
    eprintln!("report written to {out_path}");
}
