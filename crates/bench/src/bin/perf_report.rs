//! Generates the `BENCH_*.json` perf trajectory report: throughput and
//! per-stage timings of the figure1 and table5 workloads across all four
//! mappings, plus the scripted-figure1 VM-vs-interpreter comparison
//! (PR 6's headline: the same LamScript pipeline enacted on the compiled
//! bytecode backend and on the tree-walking interpreter).
//!
//! ```text
//! cargo run -p laminar-bench --release --bin perf_report             # BENCH_PR6.json
//! cargo run -p laminar-bench --release --bin perf_report -- --smoke  # quick CI gate
//! ```
//!
//! Flags:
//! * `--smoke` — small iteration counts / few reps; exercises the harness,
//!   numbers are not meaningful.
//! * `--out PATH` — where to write the report (default `BENCH_PR6.json`).
//! * `--save-baseline PATH` — additionally save the measured runs (without
//!   the baseline section) to PATH; used to record a pre-refactor baseline
//!   that later reports embed for comparison.
//!
//! The committed `crates/bench/data/baseline_pre_pr2.json` was produced by
//! running this harness at the PR 1 tree (before the interned/batched
//! datapath) with `--save-baseline`; every fresh report embeds it under
//! `"baseline"` so the figure1 Multi throughput delta is visible in one
//! file.

use laminar_bench::{
    astro_graph, bench_mapping, figure1_graph, figure1_script_graph, BenchRun, Table5Config,
};
use laminar_dataflow::MappingKind;
use laminar_dataflow::RunOptions;
use laminar_json::Value;
use std::time::Duration;

const ALL_MAPPINGS: [MappingKind; 4] =
    [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis];

fn run_workload(graph: &laminar_dataflow::WorkflowGraph, options: &RunOptions, reps: usize) -> Value {
    let mut section = Value::Null;
    for kind in ALL_MAPPINGS {
        let run: BenchRun = bench_mapping(graph, kind, options, reps);
        eprintln!(
            "  {:<6} {:>9} inv  {:>12} us  {:>12.0}/s",
            run.mapping, run.invocations, run.elapsed_us, run.throughput
        );
        section.set(kind.as_str(), run.to_value());
    }
    section
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::to_string);
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR6.json".to_string());
    let baseline_out = flag_value("--save-baseline");

    // figure1: the paper's showcase deployment is 500 iterations over
    // 5 processes (Figure 1's 1/2/2 split).
    let (fig_iters, fig_reps, t5_reps) = if smoke { (50, 3, 1) } else { (500, 21, 7) };
    let fig_opts = RunOptions::iterations(fig_iters).with_processes(5);
    let fig_graph = figure1_graph();
    eprintln!("figure1 ({fig_iters} iterations x 5 processes, {fig_reps} reps):");
    let figure1 = run_workload(&fig_graph, &fig_opts, fig_reps);

    // table5: the Internal Extinction workflow. VO latency zero — the
    // report measures the orchestration datapath, not the simulated
    // service.
    let t5_cfg =
        Table5Config { coordinates: if smoke { 10 } else { 60 }, vo_latency: Duration::ZERO, processes: 5 };
    let t5_graph = astro_graph(&t5_cfg);
    let t5_opts =
        RunOptions::data(vec![Value::Str("coordinates.txt".into())]).with_processes(t5_cfg.processes);
    eprintln!("table5 ({} coordinates, {t5_reps} reps):", t5_cfg.coordinates);
    let table5 = run_workload(&t5_graph, &t5_opts, t5_reps);

    // figure1_script: the same pipeline with LamScript bodies, enacted on
    // the Simple mapping (single-threaded, so script execution dominates
    // and the backend comparison is clean) — once on the compiled VM
    // (the default) and once on the tree-walking interpreter.
    let (fs_iters, fs_reps) = if smoke { (300, 3) } else { (2000, 11) };
    let fs_graph = figure1_script_graph();
    let vm_opts = RunOptions::iterations(fs_iters);
    let interp_opts = RunOptions::iterations(fs_iters).with_interpreter(true);
    eprintln!("figure1_script ({fs_iters} iterations, Simple mapping, {fs_reps} reps):");
    let vm_run = bench_mapping(&fs_graph, MappingKind::Simple, &vm_opts, fs_reps);
    eprintln!(
        "  vm     {:>9} inv  {:>12} us  {:>12.0}/s",
        vm_run.invocations, vm_run.elapsed_us, vm_run.throughput
    );
    let interp_run = bench_mapping(&fs_graph, MappingKind::Simple, &interp_opts, fs_reps);
    eprintln!(
        "  interp {:>9} inv  {:>12} us  {:>12.0}/s",
        interp_run.invocations, interp_run.elapsed_us, interp_run.throughput
    );
    let vm_speedup = vm_run.throughput / interp_run.throughput.max(1e-9);
    eprintln!("  vm speedup vs interp: {vm_speedup:.2}x");
    let mut figure1_script = Value::Null;
    figure1_script
        .set("vm", vm_run.to_value())
        .set("interp", interp_run.to_value())
        .set("vm_speedup_vs_interp", (vm_speedup * 1000.0).round() / 1000.0);

    let mut runs = Value::Null;
    runs.set("figure1", figure1).set("figure1_script", figure1_script).set("table5", table5);

    if let Some(path) = &baseline_out {
        std::fs::write(path, laminar_json::to_string_pretty(&runs)).expect("write baseline");
        eprintln!("baseline saved to {path}");
    }

    let mut report = Value::Null;
    report
        .set("report", "laminar perf trajectory")
        .set("pr", "PR6: compiled LamScript bytecode VM")
        .set("smoke", smoke)
        .set(
            "workloads",
            laminar_json::jobj! {
                "figure1" => format!("native PE1->PE2->PE3 pipeline, {fig_iters} iterations, 5 processes"),
                "figure1_script" => format!("LamScript PE1->PE2->PE3 pipeline, {fs_iters} iterations, Simple mapping, VM vs interpreter"),
                "table5" => format!("Internal Extinction, {} coordinates, zero VO latency", t5_cfg.coordinates)
            },
        )
        .set("runs", runs);

    // Embed the recorded pre-refactor baseline, if present.
    let baseline_path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/baseline_pre_pr2.json");
    match std::fs::read_to_string(baseline_path) {
        Ok(text) => match laminar_json::parse(&text) {
            Ok(v) => {
                // Comparison headline: figure1/MULTI throughput now vs then.
                let now = report["runs"]["figure1"]["MULTI"]["throughput_per_sec"].as_f64();
                let then = v["figure1"]["MULTI"]["throughput_per_sec"].as_f64();
                if let (Some(now), Some(then)) = (now, then) {
                    let speedup = now / then.max(1e-9);
                    eprintln!("figure1/MULTI: {then:.0}/s (pre-PR2) -> {now:.0}/s  ({speedup:.2}x)");
                    report.set("figure1_multi_speedup_vs_baseline", (speedup * 1000.0).round() / 1000.0);
                }
                report.set("baseline", v);
            }
            Err(e) => eprintln!("warning: baseline file unparseable: {e}"),
        },
        Err(_) => eprintln!("note: no recorded baseline at {baseline_path}"),
    }

    std::fs::write(&out_path, laminar_json::to_string_pretty(&report)).expect("write report");
    eprintln!("report written to {out_path}");
}
