//! `search_scale`: the PR-9 registry-search benchmark.
//!
//! Registers a large multi-tenant PE corpus (100 tenants x 1000 PEs =
//! 100k PEs on the full run), then answers the same query pool twice per
//! mode — once through the incremental search index, once through the
//! linear-scan oracle (`force_scan`) — and reports p50/p99 wall latency
//! plus the indexed-vs-scan speedup for both the semantic (embedding
//! top-k) and text (inverted-token) paths. A separate pass times PE
//! registration with the index enabled vs. disabled to price the
//! incremental maintenance the write path now pays. Every measured query
//! pair is also compared hit-for-hit, so the run doubles as a
//! large-corpus differential check.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin search_scale                  # full, writes BENCH_PR9.json
//! cargo run -p laminar-bench --release --bin search_scale -- --smoke \
//!     --out target/bench_search_smoke.json
//! ```
//!
//! Full runs enforce the PR-9 acceptance gates in-process (indexed p99
//! under 1ms, speedup >= 5x, registration overhead <= 1.25x, differential
//! match); smoke runs only emit the report, which `bench_check` then
//! gates with looser smoke-sized bounds.

use laminar_json::Value;
use laminar_registry::{QueryType, Registry, SearchOptions, SearchType};
use std::time::Instant;

/// Vocabulary the generated descriptions draw from; queries reuse it so
/// both common tokens (fat posting lists) and rare ones are exercised.
const WORDS: [&str; 24] = [
    "prime",
    "stream",
    "sensor",
    "counter",
    "filter",
    "window",
    "median",
    "fourier",
    "anomaly",
    "threshold",
    "merge",
    "split",
    "average",
    "token",
    "packet",
    "image",
    "matrix",
    "signal",
    "batch",
    "alert",
    "cluster",
    "fft",
    // Rare tail: only every 97th / 89th PE mentions these.
    "quantile",
    "wavelet",
];

/// Semantic queries (SearchType::Pe + QueryType::Text): embedded, then
/// ranked by cosine over the stored description embeddings.
const SEMANTIC_QUERIES: [&str; 6] = [
    "prime stream processor",
    "detects sensor anomaly above a threshold",
    "sliding window median filter",
    "fourier transform of a signal batch",
    "merge and split packet clusters",
    "wavelet quantile summary",
];

/// Text queries (SearchType::Both + QueryType::Text): normalized
/// substring match over names, entry points and descriptions. Mix of
/// single-token (vocabulary scan), multi-token (cached-doc scan),
/// name-fragment and no-match shapes.
const TEXT_QUERIES: [&str; 6] =
    ["prime", "sensor anomaly", "wavelet", "scale0x1", "stream window", "zzz-none"];

fn pe_name(tenant: usize, i: usize) -> String {
    format!("Scale{tenant}x{i}")
}

fn pe_source(tenant: usize, i: usize) -> String {
    format!(
        "pe {} : iterative {{ input x; output output; process {{ emit(x * {} + {}); }} }}",
        pe_name(tenant, i),
        i % 7 + 1,
        tenant
    )
}

/// Deterministic three-word description, plus a rare tail word on a
/// sparse subset so some posting lists stay short.
fn description(tenant: usize, i: usize) -> String {
    let a = WORDS[(i * 7 + tenant) % 22];
    let b = WORDS[(i * 13 + tenant * 3) % 22];
    let c = WORDS[(i * 5 + tenant * 11) % 22];
    match i {
        i if i % 97 == 0 => format!("{a} {b} {c} quantile processor"),
        i if i % 89 == 0 => format!("{a} {b} {c} wavelet processor"),
        _ => format!("{a} {b} {c} processor"),
    }
}

fn build_corpus(reg: &mut Registry, tenants: usize, per_tenant: usize) {
    for t in 0..tenants {
        let user = format!("tenant{t}");
        reg.register_user(&user, "password").expect("register tenant");
        for i in 0..per_tenant {
            reg.register_pe(&user, &pe_source(t, i), Some(&description(t, i))).expect("register pe");
        }
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

struct ModeStats {
    indexed_us: Vec<u64>,
    /// Ranking-only slice of the indexed wall time (`rank_us` on the
    /// wire) — separates index cost from query-embedding cost.
    indexed_rank_us: Vec<u64>,
    scan_us: Vec<u64>,
    mismatches: usize,
}

impl ModeStats {
    fn into_value(mut self) -> Value {
        self.indexed_us.sort_unstable();
        self.indexed_rank_us.sort_unstable();
        self.scan_us.sort_unstable();
        let speedup =
            percentile(&self.scan_us, 50.0) as f64 / percentile(&self.indexed_us, 50.0).max(1) as f64;
        let mut v = Value::Null;
        v.set("indexed_p50_us", percentile(&self.indexed_us, 50.0) as i64)
            .set("indexed_p99_us", percentile(&self.indexed_us, 99.0) as i64)
            .set("indexed_rank_p50_us", percentile(&self.indexed_rank_us, 50.0) as i64)
            .set("indexed_rank_p99_us", percentile(&self.indexed_rank_us, 99.0) as i64)
            .set("scan_p50_us", percentile(&self.scan_us, 50.0) as i64)
            .set("scan_p99_us", percentile(&self.scan_us, 99.0) as i64)
            .set("speedup", (speedup * 100.0).round() / 100.0);
        v
    }
}

/// Time every (sample user, query) pair through both paths, checking the
/// hits match exactly. Each pair is measured `reps` times and the best
/// wall time kept (the corpus is immutable during measurement, so the
/// minimum is the honest cost). Each path's reps run consecutively so
/// both are measured at their own steady state: a scan rep streams the
/// user's entire row set and would otherwise evict the index's matrix
/// from cache right before every indexed rep — an artifact of the
/// interleaving, not a cost either path pays in serving.
fn measure_mode(
    reg: &Registry,
    sample_users: &[String],
    queries: &[&str],
    st: SearchType,
    qt: QueryType,
    reps: usize,
) -> ModeStats {
    let mut stats =
        ModeStats { indexed_us: Vec::new(), indexed_rank_us: Vec::new(), scan_us: Vec::new(), mismatches: 0 };
    let indexed_opts = SearchOptions::default();
    let scan_opts = SearchOptions { force_scan: true, ..SearchOptions::default() };
    for user in sample_users {
        for &query in queries {
            let mut best = (u64::MAX, u64::MAX, u64::MAX);
            let mut indexed_hits = Vec::new();
            for _ in 0..reps {
                let t0 = Instant::now();
                let indexed = reg.search_with(user, query, st, qt, &indexed_opts).expect("indexed search");
                best.0 = best.0.min(t0.elapsed().as_micros() as u64);
                best.2 = best.2.min(indexed.rank_us);
                indexed_hits = indexed.hits;
            }
            let mut matched = true;
            for _ in 0..reps {
                let t0 = Instant::now();
                let scanned = reg.search_with(user, query, st, qt, &scan_opts).expect("scan search");
                best.1 = best.1.min(t0.elapsed().as_micros() as u64);
                matched &= indexed_hits == scanned.hits;
            }
            stats.indexed_us.push(best.0);
            stats.scan_us.push(best.1);
            stats.indexed_rank_us.push(best.2);
            if !matched {
                stats.mismatches += 1;
                eprintln!("  MISMATCH: user {user} query {query:?} mode {st:?}/{qt:?}");
            }
        }
    }
    stats
}

/// Per-PE registration cost with the index maintained vs. disabled, best
/// of `reps` fresh registries each, interleaved so drift hits both sides.
fn registration_overhead(tenant_pes: usize, reps: usize) -> (f64, f64) {
    let mut best = (f64::MAX, f64::MAX);
    let time_build = |enabled: bool| {
        let mut reg = Registry::in_memory();
        reg.set_index_enabled(enabled);
        reg.register_user("regbench", "password").unwrap();
        let t0 = Instant::now();
        for i in 0..tenant_pes {
            reg.register_pe("regbench", &pe_source(0, i), Some(&description(0, i))).unwrap();
        }
        t0.elapsed().as_secs_f64() * 1e6 / tenant_pes as f64
    };
    for _ in 0..reps {
        best.1 = best.1.min(time_build(false));
        best.0 = best.0.min(time_build(true));
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::to_string);
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR9.json".to_string());

    // Corpus shape is overridable (`--tenants N --per-tenant M`) for quick
    // profiling runs; defaults are the committed configurations.
    let tenants: usize =
        flag_value("--tenants").and_then(|v| v.parse().ok()).unwrap_or(if smoke { 8 } else { 100 });
    let per_tenant: usize =
        flag_value("--per-tenant").and_then(|v| v.parse().ok()).unwrap_or(if smoke { 250 } else { 1000 });
    let reps = if smoke { 3 } else { 5 };
    let overhead_sample = if smoke { 500 } else { 2000 };
    eprintln!(
        "search_scale: {tenants} tenants x {per_tenant} PEs = {} PEs, best of {reps}",
        tenants * per_tenant
    );

    let mut reg = Registry::in_memory();
    let t0 = Instant::now();
    build_corpus(&mut reg, tenants, per_tenant);
    eprintln!("  corpus registered in {:.1?}", t0.elapsed());

    // Sample users spread across the tenant range: search cost is
    // per-tenant, so any tenant is representative; several guard against
    // per-user layout luck.
    let sample: Vec<String> =
        (0..tenants.min(8)).map(|k| format!("tenant{}", k * tenants / tenants.min(8))).collect();

    let semantic = measure_mode(&reg, &sample, &SEMANTIC_QUERIES, SearchType::Pe, QueryType::Text, reps);
    let text = measure_mode(&reg, &sample, &TEXT_QUERIES, SearchType::Both, QueryType::Text, reps);
    let (indexed_per_pe, baseline_per_pe) = registration_overhead(overhead_sample, if smoke { 2 } else { 3 });
    let overhead_ratio = indexed_per_pe / baseline_per_pe.max(1e-9);
    let differential_match = semantic.mismatches == 0 && text.mismatches == 0;

    let semantic_v = semantic.into_value();
    let text_v = text.into_value();
    for (name, v) in [("semantic", &semantic_v), ("text", &text_v)] {
        eprintln!(
            "  {:<8} indexed p50 {:>6}us p99 {:>6}us | scan p50 {:>7}us p99 {:>7}us | speedup {:>6.2}x",
            name,
            v["indexed_p50_us"].as_i64().unwrap(),
            v["indexed_p99_us"].as_i64().unwrap(),
            v["scan_p50_us"].as_i64().unwrap(),
            v["scan_p99_us"].as_i64().unwrap(),
            v["speedup"].as_f64().unwrap(),
        );
    }
    eprintln!(
        "  registration indexed {indexed_per_pe:.1}us/pe baseline {baseline_per_pe:.1}us/pe \
         ratio {overhead_ratio:.3} | differential {}",
        if differential_match { "MATCH" } else { "MISMATCH" }
    );

    let mut config = Value::Null;
    config
        .set("tenants", tenants as i64)
        .set("pes_per_tenant", per_tenant as i64)
        .set("total_pes", (tenants * per_tenant) as i64)
        .set("queries_per_mode", (sample.len() * SEMANTIC_QUERIES.len()) as i64)
        .set("smoke", smoke);
    let mut registration = Value::Null;
    registration
        .set("indexed_per_pe_us", (indexed_per_pe * 10.0).round() / 10.0)
        .set("baseline_per_pe_us", (baseline_per_pe * 10.0).round() / 10.0)
        .set("overhead_ratio", (overhead_ratio * 1000.0).round() / 1000.0)
        .set("sample_pes", overhead_sample as i64);
    let mut report = Value::Null;
    report
        .set("report", "search_scale")
        .set("config", config)
        .set("semantic", semantic_v)
        .set("text", text_v)
        .set("registration", registration)
        .set("differential_match", differential_match);

    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&out_path, laminar_json::to_string_pretty(&report)).expect("write report");
    eprintln!("  wrote {out_path}");

    // The acceptance gates, enforced only on the full configuration: the
    // smoke corpus is too small for the speedup floor to be meaningful
    // there (bench_check applies looser smoke bounds instead).
    if !smoke {
        let gate = |name: &str, ok: bool| {
            if !ok {
                eprintln!("search_scale: GATE FAILED: {name}");
                std::process::exit(1);
            }
        };
        gate("differential_match", differential_match);
        gate("semantic indexed p99 < 1000us", report["semantic"]["indexed_p99_us"].as_i64().unwrap() < 1000);
        gate("text indexed p99 < 1000us", report["text"]["indexed_p99_us"].as_i64().unwrap() < 1000);
        gate("semantic speedup >= 5x", report["semantic"]["speedup"].as_f64().unwrap() >= 5.0);
        gate("text speedup >= 5x", report["text"]["speedup"].as_f64().unwrap() >= 5.0);
        gate("registration overhead <= 1.25x", overhead_ratio <= 1.25);
    }
}
