//! The `streaming_latency` scenario: time-to-first-result vs. total
//! runtime for the streaming sensor workload, across all four mappings
//! and through the full submit→`/events` stack, reported into
//! `BENCH_PR4.json`.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin streaming_latency             # BENCH_PR4.json
//! cargo run -p laminar-bench --release --bin streaming_latency -- --smoke # quick CI gate
//! ```
//!
//! Before PR 4 the enactment pipeline was accumulate-then-collect:
//! nothing was observable until the whole run folded into a `RunResult`,
//! so time-to-first-output *equaled* total runtime. With the event
//! stream, the first window aggregate surfaces after ~`WINDOW × sensors`
//! readings while the source is still producing. The report asserts the
//! paper-shaped property: first result in **< 25% of total runtime** for
//! the Multi mapping (and records every mapping's ratio).

use laminar_dataflow::mapping::MappingKind;
use laminar_dataflow::{RecordingObserver, RunEvent, RunObserver, RunOptions};
use laminar_json::Value;
use laminar_workloads::streaming::{build_graph, expected_windows, SensorFleet, SOURCE, WINDOW};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Scenario {
    readings: i64,
    sensors: usize,
    processes: usize,
    poll_latency: Duration,
}

/// One mapping's measurement: when the first terminal output became
/// observable vs. when the run finished.
struct Measurement {
    mapping: String,
    first_output: Duration,
    total: Duration,
    windows: usize,
}

impl Measurement {
    fn ratio(&self) -> f64 {
        self.first_output.as_secs_f64() / self.total.as_secs_f64().max(1e-9)
    }

    fn to_value(&self) -> Value {
        let mut v = Value::Null;
        v.set("mapping", self.mapping.as_str())
            .set("first_result_us", self.first_output.as_micros() as i64)
            .set("total_us", self.total.as_micros() as i64)
            .set("first_result_fraction", (self.ratio() * 10000.0).round() / 10000.0)
            .set("windows", self.windows);
        v
    }
}

/// Direct-runtime measurement: observe the event stream of one enactment
/// and clock the first `Output` event's arrival.
fn measure_mapping(sc: &Scenario, kind: MappingKind) -> Measurement {
    let fleet = Arc::new(SensorFleet::new(sc.sensors, sc.poll_latency));
    let graph = build_graph(fleet);
    let options = RunOptions::iterations(sc.readings).with_processes(sc.processes);
    let recorder = RecordingObserver::new();
    let t0 = Instant::now();
    let result = kind
        .build()
        .execute_observed(&graph, &options, Some(recorder.clone() as Arc<dyn RunObserver>))
        .expect("streaming run");
    let total = t0.elapsed();
    let events = recorder.take();
    let first_output = events
        .iter()
        .find(|(_, _, e)| matches!(e, RunEvent::Output { .. }))
        .map(|(_, at, _)| *at)
        .expect("the windowed workload emits terminal outputs");
    Measurement {
        mapping: kind.as_str().to_string(),
        first_output,
        total,
        windows: result.port_values("WindowStats", "output").len(),
    }
}

/// Full-stack measurement: submit with `events=true` through the server,
/// poll `/execution/{user}/job/{id}/events`, and clock the first `output`
/// event's arrival at the *client*.
fn measure_full_stack(sc: &Scenario) -> (Measurement, i64) {
    use laminar_client::{LaminarClient, RunConfig, RunTarget};
    use laminar_engine::ExecutionEngine;
    use laminar_registry::Registry;
    use laminar_server::LaminarServer;

    let engine = ExecutionEngine::instant();
    engine.hosts().register("sensor", Arc::new(SensorFleet::new(sc.sensors, sc.poll_latency)));
    let server = LaminarServer::new(Registry::in_memory(), engine);
    let mut client = LaminarClient::in_process(server);
    client.register("bench", "password").unwrap();
    client.login("bench", "password").unwrap();
    client.register_workflow(SOURCE, "SensorWindows", Some("streaming sensor windows")).unwrap();

    let config =
        RunConfig::iterations(sc.readings).with_mapping(MappingKind::Multi, sc.processes).with_events(true);
    let t0 = Instant::now();
    let id = client.submit(RunTarget::Registered("SensorWindows".into()), config).unwrap();
    let mut first_output = None;
    let mut windows = 0usize;
    for event in client.event_stream(id, Duration::from_secs(600)) {
        let event = event.expect("event stream");
        if event["type"].as_str() == Some("output") {
            first_output.get_or_insert_with(|| t0.elapsed());
            windows += 1;
        }
    }
    let total = t0.elapsed();
    let output = client.wait_job(id, Duration::from_secs(10)).unwrap();
    let engine_first_us = output.first_output.map(|d| d.as_micros() as i64).unwrap_or(-1);
    (
        Measurement {
            mapping: "MULTI (client via /events)".into(),
            first_output: first_output.expect("windows streamed to the client"),
            total,
            windows,
        },
        engine_first_us,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::to_string);
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR4.json".to_string());

    let sc = Scenario {
        readings: if smoke { 240 } else { 600 },
        sensors: 2,
        processes: 5,
        poll_latency: Duration::from_micros(if smoke { 300 } else { 1500 }),
    };
    eprintln!(
        "streaming_latency: {} readings over {} sensors (window {}), poll inter-arrival {:?}",
        sc.readings, sc.sensors, WINDOW, sc.poll_latency
    );

    let mut rows = Vec::new();
    for kind in [MappingKind::Simple, MappingKind::Multi, MappingKind::Mpi, MappingKind::Redis] {
        let m = measure_mapping(&sc, kind);
        eprintln!(
            "  {:<6} first result {:>9.1?} / total {:>9.1?}  ({:>5.1}%)  [{} windows]",
            m.mapping,
            m.first_output,
            m.total,
            m.ratio() * 100.0,
            m.windows
        );
        assert_eq!(
            m.windows,
            expected_windows(sc.readings as usize, sc.sensors),
            "{}: window count wrong",
            m.mapping
        );
        rows.push(m);
    }
    let multi = rows.iter().find(|m| m.mapping == "MULTI").expect("Multi measured");
    assert!(
        multi.ratio() < 0.25,
        "acceptance: Multi time-to-first-result {:.1}% must be < 25% of total",
        multi.ratio() * 100.0
    );

    let (full, engine_first_us) = measure_full_stack(&sc);
    eprintln!(
        "  full stack: first result at client {:?} / total {:?} ({:.1}%), engine-side first output {}us",
        full.first_output,
        full.total,
        full.ratio() * 100.0,
        engine_first_us
    );

    let mut report = Value::Null;
    report
        .set("report", "laminar streaming enactment latency")
        .set("pr", "PR4: incremental event stream through the enactment pipeline")
        .set("smoke", smoke)
        .set(
            "config",
            laminar_json::jobj! {
                "readings" => sc.readings,
                "sensors" => sc.sensors,
                "window" => WINDOW,
                "processes" => sc.processes,
                "poll_latency_us" => sc.poll_latency.as_micros() as i64,
                "workload" => "SensorWindows (poll -> windowed stats -> alerts)"
            },
        )
        .set("mappings", rows.iter().map(Measurement::to_value).collect::<Value>())
        .set(
            "full_stack_multi",
            laminar_json::jobj! {
                "first_result_us" => full.first_output.as_micros() as i64,
                "total_us" => full.total.as_micros() as i64,
                "first_result_fraction" => (full.ratio() * 10000.0).round() / 10000.0,
                "engine_first_output_us" => engine_first_us,
                "windows_streamed" => full.windows
            },
        )
        .set(
            "acceptance",
            laminar_json::jobj! {
                "criterion" => "first result < 25% of total runtime (Multi mapping)",
                "multi_fraction" => (multi.ratio() * 10000.0).round() / 10000.0,
                "pass" => multi.ratio() < 0.25
            },
        );

    std::fs::write(&out_path, laminar_json::to_string_pretty(&report)).expect("write report");
    eprintln!("report written to {out_path}");
}
