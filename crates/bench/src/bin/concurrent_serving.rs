//! The `concurrent_serving` scenario: M clients × K jobs against the
//! engine-pooled server vs. the pre-PR3 single-mutex baseline, reported
//! as aggregate jobs/s into `BENCH_PR3.json`.
//!
//! ```text
//! cargo run -p laminar-bench --release --bin concurrent_serving             # BENCH_PR3.json
//! cargo run -p laminar-bench --release --bin concurrent_serving -- --smoke # quick CI gate
//! ```
//!
//! The workload engine simulates real provisioning cost (~40ms of
//! sleeping per cold run, DESIGN.md §2), so the comparison measures
//! serving-path architecture, not CPU count: the serialized baseline
//! admits one request at a time into the server, while the worker pool
//! overlaps the provisioning sleeps of independent jobs. The report also
//! measures search latency while executions are in flight — on the
//! baseline a read waits for the running job; on the pooled server it
//! answers immediately from the registry read lock.

use laminar_client::{LaminarClient, RunConfig, RunTarget};
use laminar_engine::ExecutionEngine;
use laminar_json::Value;
use laminar_registry::Registry;
use laminar_server::{ApiRequest, ApiResponse, LaminarServer};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const WF_SRC: &str = r#"
    pe Seq : producer { output output; process { emit(iteration + 1); } }
    pe IsPrime : iterative {
        input num; output output;
        process {
            let i = 2;
            let prime = num > 1;
            while i * i <= num { if num % i == 0 { prime = false; break; } i = i + 1; }
            if prime { emit(num); }
        }
    }
    workflow Primes {
        doc "Filters prime numbers";
        nodes { s = Seq; i = IsPrime; }
        connect s.output -> i.num;
    }
"#;

/// Re-creates the pre-PR3 serving path: every request — including a full
/// enactment — holds one global lock, so the server answers one request
/// at a time no matter how many clients connect.
struct SingleMutexTransport {
    inner: laminar_client::web::InProcessTransport,
    global: Arc<Mutex<()>>,
}

impl laminar_client::web::Transport for SingleMutexTransport {
    fn call(&self, request: &ApiRequest) -> Result<ApiResponse, String> {
        let _global = self.global.lock().unwrap_or_else(|e| e.into_inner());
        laminar_client::web::Transport::call(&self.inner, request)
    }

    fn endpoint(&self) -> String {
        "single-mutex in-process".to_string()
    }
}

struct Scenario {
    clients: usize,
    jobs_per_client: usize,
    workers: usize,
    provision_scale_us: u64,
    iterations: i64,
}

/// The workload engine: no network model, but real (simulated)
/// provisioning cost per cold run.
fn workload_engine(scale_us: u64) -> ExecutionEngine {
    ExecutionEngine::instant().with_provision_scale(scale_us)
}

fn setup_server(sc: &Scenario, workers: usize) -> laminar_client::web::InProcessTransport {
    let server = LaminarServer::with_pool(
        Registry::in_memory(),
        workload_engine(sc.provision_scale_us),
        workers,
        4096,
    );
    let transport = laminar_client::web::InProcessTransport::new(server);
    let mut admin = LaminarClient::with_transport(Box::new(transport.clone()));
    admin.register("bench", "password").unwrap();
    admin.login("bench", "password").unwrap();
    admin.register_workflow(WF_SRC, "primes", Some("prime filter workload")).unwrap();
    transport
}

fn client_for(
    transport: &laminar_client::web::InProcessTransport,
    serialized: Option<&Arc<Mutex<()>>>,
) -> LaminarClient {
    let boxed: Box<dyn laminar_client::web::Transport> = match serialized {
        Some(global) => {
            Box::new(SingleMutexTransport { inner: transport.clone(), global: Arc::clone(global) })
        }
        None => Box::new(transport.clone()),
    };
    let mut c = LaminarClient::with_transport(boxed);
    c.login("bench", "password").unwrap();
    c
}

/// Drive `clients` threads × `jobs_per_client` jobs; returns (elapsed,
/// aggregate jobs/s, printed-line count observed — a correctness check).
fn drive(
    sc: &Scenario,
    transport: &laminar_client::web::InProcessTransport,
    serialized: Option<&Arc<Mutex<()>>>,
    use_async_api: bool,
) -> (Duration, f64, usize) {
    let barrier = Arc::new(Barrier::new(sc.clients + 1));
    let iterations = sc.iterations;
    let jobs = sc.jobs_per_client;
    let handles: Vec<_> = (0..sc.clients)
        .map(|_| {
            let mut client = client_for(transport, serialized);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut printed = 0usize;
                if use_async_api {
                    // Submit the whole batch, then poll — the async path.
                    let ids: Vec<i64> = (0..jobs)
                        .map(|_| {
                            client
                                .submit(
                                    RunTarget::Registered("primes".into()),
                                    RunConfig::iterations(iterations),
                                )
                                .unwrap()
                        })
                        .collect();
                    for id in ids {
                        let out = client.wait_job(id, Duration::from_secs(600)).unwrap();
                        printed += out.printed.len();
                    }
                } else {
                    for _ in 0..jobs {
                        let out = client.run_registered("primes", RunConfig::iterations(iterations)).unwrap();
                        printed += out.printed.len();
                    }
                }
                printed
            })
        })
        .collect();
    barrier.wait();
    let t0 = Instant::now();
    let printed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = t0.elapsed();
    let total_jobs = sc.clients * sc.jobs_per_client;
    (elapsed, total_jobs as f64 / elapsed.as_secs_f64().max(1e-9), printed)
}

/// Worst-case latency of search requests sampled every couple of
/// milliseconds while slow executions are in flight. On the single-mutex
/// baseline a read issued mid-run waits for the whole enactment; on the
/// pooled server it answers from the registry read lock immediately.
fn search_latency_under_load(
    sc: &Scenario,
    transport: &laminar_client::web::InProcessTransport,
    serialized: Option<&Arc<Mutex<()>>>,
) -> Duration {
    use std::sync::atomic::{AtomicBool, Ordering};
    let reader = client_for(transport, serialized);
    let done = Arc::new(AtomicBool::new(false));
    let jobs = sc.clients.max(2);
    let bg = {
        let mut client = client_for(transport, serialized);
        let iterations = sc.iterations;
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for _ in 0..jobs {
                let _ = client.run_registered("primes", RunConfig::iterations(iterations));
            }
            done.store(true, Ordering::SeqCst);
        })
    };
    let mut worst = Duration::ZERO;
    while !done.load(Ordering::SeqCst) {
        let t0 = Instant::now();
        reader.search_registry("prime", "workflow", "text").unwrap();
        worst = worst.max(t0.elapsed());
        std::thread::sleep(Duration::from_millis(2));
    }
    bg.join().unwrap();
    worst
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag_value =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::to_string);
    let out_path = flag_value("--out").unwrap_or_else(|| "BENCH_PR3.json".to_string());

    let sc = Scenario {
        clients: if smoke { 4 } else { 8 },
        jobs_per_client: if smoke { 2 } else { 6 },
        workers: 8,
        provision_scale_us: if smoke { 50 } else { 100 },
        iterations: 25,
    };
    let total_jobs = sc.clients * sc.jobs_per_client;
    eprintln!(
        "concurrent_serving: {} clients x {} jobs, {} pool workers, provisioning {}us/unit",
        sc.clients, sc.jobs_per_client, sc.workers, sc.provision_scale_us
    );

    // ---- baseline: one worker, one global lock over every request --------
    let global = Arc::new(Mutex::new(()));
    let baseline_transport = setup_server(&sc, 1);
    let (base_elapsed, base_jps, base_printed) = drive(&sc, &baseline_transport, Some(&global), false);
    eprintln!("  single-mutex baseline: {base_elapsed:?}  {base_jps:.1} jobs/s");
    let base_search = search_latency_under_load(&sc, &baseline_transport, Some(&global));
    eprintln!("  worst search latency under load (baseline): {base_search:?}");

    // ---- pooled: N workers, lock-free routing, async job API -------------
    let pooled_transport = setup_server(&sc, sc.workers);
    let (pool_elapsed, pool_jps, pool_printed) = drive(&sc, &pooled_transport, None, true);
    eprintln!("  engine pool ({} workers): {pool_elapsed:?}  {pool_jps:.1} jobs/s", sc.workers);
    let pool_search = search_latency_under_load(&sc, &pooled_transport, None);
    eprintln!("  worst search latency under load (pooled): {pool_search:?}");
    let stats = pooled_transport.server().pool().stats();

    assert_eq!(base_printed, pool_printed, "both paths computed identical results");
    let speedup = pool_jps / base_jps.max(1e-9);
    eprintln!("  aggregate speedup: {speedup:.2}x");

    let mut report = Value::Null;
    report
        .set("report", "laminar concurrent serving")
        .set("pr", "PR3: engine worker pool + async job API")
        .set("smoke", smoke)
        .set(
            "config",
            laminar_json::jobj! {
                "clients" => sc.clients,
                "jobs_per_client" => sc.jobs_per_client,
                "total_jobs" => total_jobs,
                "pool_workers" => sc.workers,
                "provision_scale_us" => sc.provision_scale_us as i64,
                "iterations_per_job" => sc.iterations,
                "workload" => "Primes (Seq -> IsPrime), cold provisioning per run"
            },
        )
        .set(
            "baseline_single_mutex",
            laminar_json::jobj! {
                "elapsed_us" => base_elapsed.as_micros() as i64,
                "jobs_per_sec" => (base_jps * 100.0).round() / 100.0,
                "worst_search_under_load_us" => base_search.as_micros() as i64
            },
        )
        .set(
            "pooled",
            laminar_json::jobj! {
                "elapsed_us" => pool_elapsed.as_micros() as i64,
                "jobs_per_sec" => (pool_jps * 100.0).round() / 100.0,
                "worst_search_under_load_us" => pool_search.as_micros() as i64,
                "pool_stats" => stats.to_value()
            },
        )
        .set("jobs_per_sec_speedup", (speedup * 100.0).round() / 100.0)
        .set(
            "worst_search_under_load_speedup",
            ((base_search.as_secs_f64() / pool_search.as_secs_f64().max(1e-9)) * 100.0).round() / 100.0,
        );

    std::fs::write(&out_path, laminar_json::to_string_pretty(&report)).expect("write report");
    eprintln!("report written to {out_path}");
}
