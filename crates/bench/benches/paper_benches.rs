//! Criterion benches, one group per paper table/figure plus the D-series
//! ablations. Kept deliberately small-N so `cargo bench --workspace`
//! completes in minutes; the `table5`/`table6`/`table7` binaries run the
//! full-size configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use laminar_bench::{run_astro_direct, run_astro_laminar, table6_mrr, table7_clone, Table5Config};
use laminar_dataflow::mapping::{Mapping, MpiMapping, MultiMapping, RedisMapping, SimpleMapping};
use laminar_dataflow::{RunOptions, WorkflowGraph};
use std::time::Duration;

/// Table 5: Internal Extinction under each execution method.
fn bench_table5(c: &mut Criterion) {
    let cfg = Table5Config::quick();
    let mut g = c.benchmark_group("table5_internal_extinction");
    g.sample_size(10).measurement_time(Duration::from_secs(6));
    for multi in [false, true] {
        let tag = if multi { "multi" } else { "simple" };
        g.bench_with_input(BenchmarkId::new("dispel4py_direct", tag), &multi, |b, &m| {
            b.iter(|| run_astro_direct(&cfg, m))
        });
        g.bench_with_input(BenchmarkId::new("laminar_local", tag), &multi, |b, &m| {
            b.iter(|| run_astro_laminar(&cfg, m, false))
        });
    }
    g.finish();
}

/// Table 6: MRR evaluation cost per model (the retrieval pipeline itself).
fn bench_table6(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_code_search");
    g.sample_size(10).measurement_time(Duration::from_secs(6));
    for model in ["unixcoder-base", "unixcoder-code-search"] {
        g.bench_with_input(BenchmarkId::new("csn_mrr", model), &model, |b, m| {
            b.iter(|| table6_mrr(m, "CSN", 60, 1))
        });
    }
    g.finish();
}

/// Table 7: clone retrieval cost for the chosen completion model vs the
/// weakest baseline.
fn bench_table7(c: &mut Criterion) {
    let mut g = c.benchmark_group("table7_clone_detection");
    g.sample_size(10).measurement_time(Duration::from_secs(6));
    for model in ["ReACC-retriever-py", "CodeBERT"] {
        g.bench_with_input(BenchmarkId::new("map_p1", model), &model, |b, m| {
            b.iter(|| table7_clone(m, 25, 4, 3))
        });
    }
    g.finish();
}

/// Figure 1 / D4: the four mappings over the IsPrime pipeline.
fn bench_mappings(c: &mut Criterion) {
    let graph = WorkflowGraph::from_script(laminar_workloads::isprime::SOURCE_SEQUENTIAL, "IsPrime").unwrap();
    let mut g = c.benchmark_group("figure1_mappings");
    g.sample_size(10).measurement_time(Duration::from_secs(6));
    let mappings: Vec<(&str, Box<dyn Mapping>)> = vec![
        ("simple", Box::new(SimpleMapping)),
        ("multi", Box::new(MultiMapping)),
        ("mpi", Box::new(MpiMapping)),
        ("redis", Box::new(RedisMapping::default())),
    ];
    for (name, mapping) in &mappings {
        g.bench_function(*name, |b| {
            b.iter(|| mapping.execute(&graph, &RunOptions::iterations(500).with_processes(5)).unwrap())
        });
    }
    g.finish();
}

/// D1 ablation: query latency with stored vs recomputed embeddings.
fn bench_stored_embeddings(c: &mut Criterion) {
    let model = laminar_embed::model_by_name("unixcoder-code-search").unwrap();
    let ds = laminar_embed::datasets::gen_csn(80, 5);
    let corpus: Vec<String> = ds.examples.iter().map(|e| e.code.clone()).collect();
    let stored: Vec<_> = corpus.iter().map(|c| model.embed_code(c)).collect();
    let mut g = c.benchmark_group("d1_stored_embeddings");
    g.sample_size(20).measurement_time(Duration::from_secs(5));
    g.bench_function("stored", |b| {
        b.iter(|| {
            let q = model.embed_text("compute the running average");
            laminar_embed::top_k(&q, &stored, 5)
        })
    });
    g.bench_function("recomputed", |b| {
        b.iter(|| {
            let q = model.embed_text("compute the running average");
            let fresh: Vec<_> = corpus.iter().map(|c| model.embed_code(c)).collect();
            laminar_embed::top_k(&q, &fresh, 5)
        })
    });
    g.finish();
}

/// Registry operation throughput (the substrate behind every endpoint).
fn bench_registry(c: &mut Criterion) {
    let mut g = c.benchmark_group("registry_ops");
    g.sample_size(10).measurement_time(Duration::from_secs(5));
    g.bench_function("register_pe", |b| {
        b.iter_with_setup(
            || {
                let mut r = laminar_registry::Registry::in_memory();
                r.register_user("u", "password").unwrap();
                r
            },
            |mut r| {
                r.register_pe(
                    "u",
                    "pe Bench : producer { output output; process { emit(randint(1, 10)); } }",
                    Some("bench pe"),
                )
                .unwrap()
            },
        )
    });
    g.bench_function("semantic_search_20pes", |b| {
        let mut r = laminar_registry::Registry::in_memory();
        r.register_user("u", "password").unwrap();
        let ds = laminar_embed::datasets::gen_csn(20, 2);
        for (i, ex) in ds.examples.iter().enumerate() {
            let renamed = ex.code.replacen("pe ", &format!("pe N{i}"), 1).replacen(
                &format!("pe N{i}"),
                &format!("pe N{i}_"),
                1,
            );
            let _ = r.register_pe("u", &renamed, Some(&ex.doc));
        }
        b.iter(|| {
            r.search(
                "u",
                "a PE that checks if a number is prime",
                laminar_registry::SearchType::Pe,
                laminar_registry::QueryType::Text,
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table5,
    bench_table6,
    bench_table7,
    bench_mappings,
    bench_stored_embeddings,
    bench_registry
);
criterion_main!(benches);
