//! HTTP/1.0-subset front-end over TCP.
//!
//! Enough of HTTP for the Laminar client: request line, headers,
//! `Content-Length` bodies, JSON responses, connection-per-request. This
//! is the "remote" path of Table 5; local deployments use the in-process
//! transport instead.

use crate::api::{ApiRequest, ApiResponse, Method};
use crate::server::LaminarServer;
use laminar_json::{parse, to_string, Value};
use parking_lot::{Condvar, Mutex};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Percent-encode a path segment (RFC 3986 unreserved set passes through).
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Percent-decode; invalid escapes pass through literally.
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 {
            let hex = bytes.get(i + 1..i + 3);
            if let Some(hex) = hex {
                if let Ok(v) = u8::from_str_radix(std::str::from_utf8(hex).unwrap_or("zz"), 16) {
                    out.push(v);
                    i += 3;
                    continue;
                }
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Count of in-flight connection handlers, with a condvar for the drain
/// on shutdown.
#[derive(Default)]
struct HandlerTracker {
    active: Mutex<usize>,
    drained: Condvar,
}

impl HandlerTracker {
    fn enter(self: &Arc<Self>) -> HandlerGuard {
        *self.active.lock() += 1;
        HandlerGuard(Arc::clone(self))
    }

    /// Block until every handler finished or `timeout` passed; returns the
    /// number still active.
    fn drain(&self, timeout: Duration) -> usize {
        let deadline = Instant::now() + timeout;
        let mut active = self.active.lock();
        while *active > 0 {
            if self.drained.wait_until(&mut active, deadline).timed_out() {
                break;
            }
        }
        *active
    }
}

/// Decrements the active count even if the handler panics.
struct HandlerGuard(Arc<HandlerTracker>);

impl Drop for HandlerGuard {
    fn drop(&mut self) {
        *self.0.active.lock() -= 1;
        self.0.drained.notify_all();
    }
}

/// A running HTTP server wrapping a [`LaminarServer`].
///
/// Connection-per-thread, but with no global server lock: `LaminarServer::
/// handle` takes `&self`, so handlers route concurrently — reads share the
/// registry lock and executions go to the engine worker pool.
pub struct HttpServer {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
    handlers: Arc<HandlerTracker>,
}

impl HttpServer {
    /// Bind to `127.0.0.1:0` (ephemeral port) and start serving.
    pub fn start(server: LaminarServer) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let server = Arc::new(server);
        let handlers = Arc::new(HandlerTracker::default());
        let tracker = Arc::clone(&handlers);
        let join = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let server = Arc::clone(&server);
                // Connection-per-thread, like a classic app server. The
                // guard is claimed on the acceptor so `stop()` can never
                // miss a handler that is spawned but not yet running.
                let guard = tracker.enter();
                std::thread::spawn(move || {
                    let _guard = guard;
                    let _ = handle_connection(stream, &server);
                });
            }
        });
        Ok(HttpServer { addr, shutdown, join: Some(join), handlers })
    }

    /// Address the server listens on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Connection handlers currently in flight.
    pub fn active_handlers(&self) -> usize {
        *self.handlers.active.lock()
    }

    /// Stop accepting, join the acceptor thread, and drain in-flight
    /// handlers so shutdown is deterministic.
    pub fn stop(mut self) {
        self.shutdown_and_drain();
    }

    fn shutdown_and_drain(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
        // The deadline is a liveness escape hatch, not an invariant: a
        // handler legitimately stuck behind a saturated pool may outlive
        // it, and panicking here (this also runs from Drop) would abort.
        let leftover = self.handlers.drain(Duration::from_secs(30));
        if leftover > 0 {
            eprintln!("laminar-server: {leftover} handler(s) still in flight past the drain deadline");
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown_and_drain();
    }
}

fn handle_connection(stream: TcpStream, server: &LaminarServer) -> std::io::Result<()> {
    let peer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let request = match read_request(&mut reader) {
        Ok(r) => r,
        Err(msg) => {
            return write_response(peer, &ApiResponse::bad_request(&msg));
        }
    };
    let response = server.handle(&request);
    write_response(peer, &response)
}

fn read_request(reader: &mut BufReader<TcpStream>) -> Result<ApiRequest, String> {
    let mut line = String::new();
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    let mut parts = line.split_whitespace();
    let method = Method::parse(parts.next().ok_or("empty request line")?)
        .ok_or_else(|| format!("unsupported method in '{}'", line.trim()))?;
    let raw_path = parts.next().ok_or("request line missing path")?;
    let path: String = raw_path.split('/').map(percent_decode).collect::<Vec<_>>().join("/");

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).map_err(|e| e.to_string())?;
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|_| "bad content-length".to_string())?;
        }
    }
    // Bound request bodies: the registry stores code, not blobs.
    if content_length > 16 * 1024 * 1024 {
        return Err("request body too large".into());
    }
    let body = if content_length > 0 {
        let mut buf = vec![0u8; content_length];
        reader.read_exact(&mut buf).map_err(|e| e.to_string())?;
        let text = String::from_utf8(buf).map_err(|_| "body is not UTF-8".to_string())?;
        parse(&text).map_err(|e| format!("body is not valid JSON: {e}"))?
    } else {
        Value::Null
    };
    Ok(ApiRequest { method, path, body })
}

fn write_response(mut stream: TcpStream, response: &ApiResponse) -> std::io::Result<()> {
    let body = to_string(&response.body);
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        409 => "Conflict",
        429 => "Too Many Requests",
        _ => "Error",
    };
    // 429s advertise the envelope's backoff as standard headers too, so
    // plain HTTP clients back off without parsing the body. Retry-After
    // is whole seconds (ceiling); the millisecond-precision hint rides
    // the de-facto Retry-After-Ms extension.
    let retry_after = response.body["error"]["retryAfterMs"]
        .as_i64()
        .filter(|ms| *ms >= 0)
        .map(|ms| format!("Retry-After: {}\r\nRetry-After-Ms: {ms}\r\n", (ms as u64).div_ceil(1000)))
        .unwrap_or_default();
    write!(
        stream,
        "HTTP/1.0 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{}Connection: close\r\n\r\n{}",
        response.status,
        reason,
        body.len(),
        retry_after,
        body
    )?;
    stream.flush()
}

/// A blocking HTTP client for the subset above (used by the Laminar client
/// crate and tests).
pub fn http_call(addr: std::net::SocketAddr, request: &ApiRequest) -> std::io::Result<ApiResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let body = if request.body.is_null() { String::new() } else { to_string(&request.body) };
    let encoded_path: String = request.path.split('/').map(percent_encode).collect::<Vec<_>>().join("/");
    write!(
        stream,
        "{} {} HTTP/1.0\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        request.method.as_str(),
        encoded_path,
        body.len(),
        body
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
    }
    let mut buf = vec![0u8; content_length];
    reader.read_exact(&mut buf)?;
    let text = String::from_utf8(buf)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF8 body"))?;
    let body = parse(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("bad JSON body: {e}")))?;
    Ok(ApiResponse { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_json::jobj;

    #[test]
    fn percent_round_trip() {
        for s in ["plain", "has space", "a/b?c", "emoji 😀", "100% sure"] {
            assert_eq!(percent_decode(&percent_encode(s)), s, "round trip {s}");
        }
        assert_eq!(percent_encode("a b"), "a%20b");
        // Invalid escapes pass through.
        assert_eq!(percent_decode("100%zz"), "100%zz");
        assert_eq!(percent_decode("%2"), "%2");
    }

    #[test]
    fn end_to_end_over_tcp() {
        let server = LaminarServer::in_memory();
        let http = HttpServer::start(server).unwrap();
        let addr = http.addr();

        let r = http_call(
            addr,
            &ApiRequest::new(
                Method::Post,
                "/auth/register",
                jobj! { "userName" => "net", "password" => "password" },
            ),
        )
        .unwrap();
        assert!(r.is_ok(), "{r:?}");

        let r = http_call(
            addr,
            &ApiRequest::new(
                Method::Post,
                "/registry/net/pe/add",
                jobj! { "code" => "pe P : producer { output o; process { emit(1); } }" },
            ),
        )
        .unwrap();
        assert!(r.is_ok(), "{r:?}");

        let r = http_call(addr, &ApiRequest::new(Method::Get, "/registry/net/pe/all", Value::Null)).unwrap();
        assert_eq!(r.body.as_array().unwrap().len(), 1);

        // Search path with spaces exercises percent-encoding.
        let r = http_call(
            addr,
            &ApiRequest::new(Method::Get, "/registry/net/search/a PE that emits/type/pe", Value::Null),
        )
        .unwrap();
        assert!(r.is_ok(), "{r:?}");

        http.stop();
    }

    #[test]
    fn concurrent_clients() {
        let server = LaminarServer::in_memory();
        let http = HttpServer::start(server).unwrap();
        let addr = http.addr();
        http_call(
            addr,
            &ApiRequest::new(
                Method::Post,
                "/auth/register",
                jobj! { "userName" => "cc", "password" => "password" },
            ),
        )
        .unwrap();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let r = http_call(
                        addr,
                        &ApiRequest::new(
                            Method::Post,
                            "/registry/cc/pe/add",
                            jobj! { "code" => format!("pe P{i} : producer {{ output o; process {{ emit({i}); }} }}") },
                        ),
                    )
                    .unwrap();
                    assert!(r.is_ok(), "{r:?}");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let r = http_call(addr, &ApiRequest::new(Method::Get, "/registry/cc/pe/all", Value::Null)).unwrap();
        assert_eq!(r.body.as_array().unwrap().len(), 8);
        http.stop();
    }

    #[test]
    fn start_stop_loop_is_deterministic() {
        // Repeated start/stop cycles must neither hang nor leak handlers.
        for round in 0..5 {
            let http = HttpServer::start(LaminarServer::in_memory()).unwrap();
            let addr = http.addr();
            let r = http_call(addr, &ApiRequest::new(Method::Get, "/auth/all", Value::Null)).unwrap();
            assert!(r.is_ok(), "round {round}: {r:?}");
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while http.active_handlers() > 0 {
                assert!(std::time::Instant::now() < deadline, "round {round}: handler never drained");
                std::thread::yield_now();
            }
            http.stop();
        }
    }

    #[test]
    fn stop_drains_inflight_handlers() {
        use laminar_engine::ExecutionEngine;
        use laminar_registry::Registry;
        // Slow engine: the synchronous run holds its handler ~400ms.
        let server = LaminarServer::with_pool(
            Registry::in_memory(),
            ExecutionEngine::instant().with_provision_scale(1000),
            2,
            16,
        );
        let http = HttpServer::start(server).unwrap();
        let addr = http.addr();
        http_call(
            addr,
            &ApiRequest::new(
                Method::Post,
                "/auth/register",
                jobj! { "userName" => "drain", "password" => "password" },
            ),
        )
        .unwrap();
        // Let the register handler fully drain before measuring.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while http.active_handlers() > 0 {
            assert!(std::time::Instant::now() < deadline, "register handler never drained");
            std::thread::yield_now();
        }
        let t0 = std::time::Instant::now();
        let client = std::thread::spawn(move || {
            http_call(
                addr,
                &ApiRequest::new(
                    Method::Post,
                    "/execution/drain/run",
                    jobj! { "source" => "pe P : producer { output o; process { emit(1); } }", "input" => 1 },
                ),
            )
        });
        // Wait until the handler is in flight, then stop: stop must block
        // until the handler finished writing its response.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while http.active_handlers() == 0 {
            assert!(std::time::Instant::now() < deadline, "handler never started");
            std::thread::yield_now();
        }
        http.stop();
        assert!(
            t0.elapsed() >= Duration::from_millis(300),
            "stop() returned before the slow handler could have finished ({:?})",
            t0.elapsed()
        );
        let response = client.join().unwrap().expect("in-flight request completed during shutdown");
        assert!(response.is_ok(), "{response:?}");
        assert_eq!(response.body["printed"].as_array().map(<[Value]>::len), Some(0));
    }

    #[test]
    fn rate_limited_429_carries_retry_after_headers() {
        let server = LaminarServer::in_memory();
        server.pool().set_tenant_rate(1.0, 1.0);
        let http = HttpServer::start(server).unwrap();
        let addr = http.addr();
        http_call(
            addr,
            &ApiRequest::new(
                Method::Post,
                "/auth/register",
                jobj! { "userName" => "rl", "password" => "password" },
            ),
        )
        .unwrap();
        let body = to_string(
            &jobj! { "source" => "pe P : producer { output o; process { emit(1); } }", "input" => 1 },
        );
        let submit_raw = || {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "POST /execution/rl/submit HTTP/1.0\r\nContent-Length: {}\r\n\r\n{}", body.len(), body)
                .unwrap();
            s.flush().unwrap();
            let mut reader = BufReader::new(s);
            let mut lines = Vec::new();
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                if line.trim().is_empty() {
                    break;
                }
                lines.push(line.trim().to_string());
            }
            lines
        };
        // The first submit burns rl's only token; the second is limited.
        let first = submit_raw();
        assert!(first[0].contains("200"), "{first:?}");
        let headers = submit_raw();
        assert!(headers[0].contains("429"), "{headers:?}");
        let retry_ms = headers
            .iter()
            .find_map(|h| {
                h.to_ascii_lowercase().strip_prefix("retry-after-ms:").map(str::trim).map(String::from)
            })
            .expect("Retry-After-Ms header on a 429");
        assert!(retry_ms.parse::<u64>().unwrap() >= 1, "{headers:?}");
        assert!(
            headers.iter().any(|h| h.to_ascii_lowercase().starts_with("retry-after:")),
            "whole-second Retry-After too: {headers:?}"
        );
        http.stop();
    }

    #[test]
    fn malformed_requests_get_400() {
        let server = LaminarServer::in_memory();
        let http = HttpServer::start(server).unwrap();
        let addr = http.addr();
        // Raw socket with garbage.
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "BREW /teapot HTTP/1.0\r\n\r\n").unwrap();
        let mut buf = String::new();
        let mut reader = BufReader::new(s);
        reader.read_line(&mut buf).unwrap();
        assert!(buf.contains("400"), "got: {buf}");
        http.stop();
    }
}
