//! The Service layer: business logic behind every Table-3 endpoint.
//!
//! Concurrency layout (DESIGN.md §3.2): the registry sits behind one
//! `RwLock` — read endpoints (GETs, search, completion) run concurrently,
//! writes take the short exclusive path — while executions go to an
//! [`EnginePool`] whose workers run in parallel. `handle` takes `&self`,
//! so any number of connection handlers can route requests at once.

use crate::api::{ApiRequest, ApiResponse, Method};
use laminar_engine::{EnginePool, ExecutionEngine, ExecutionRequest, JobResult, PoolError};
use laminar_json::Value;
use laminar_registry::service::EntityKey;
use laminar_registry::{QueryType, Registry, RegistryError, SearchOptions, SearchType};
use parking_lot::RwLock;

/// Default engine-pool sizing: enough workers to overlap provisioning
/// sleeps on small machines without oversubscribing big ones.
pub const DEFAULT_POOL_WORKERS: usize = 4;
/// Default admission-control bound on queued (not yet running) jobs.
pub const DEFAULT_QUEUE_CAPACITY: usize = 256;

/// The Laminar server: registry + engine worker pool behind the REST API.
pub struct LaminarServer {
    registry: RwLock<Registry>,
    pool: EnginePool,
}

impl LaminarServer {
    /// Server with an in-memory registry and an instant (test-speed)
    /// engine pool.
    pub fn in_memory() -> LaminarServer {
        LaminarServer::new(Registry::in_memory(), ExecutionEngine::instant())
    }

    /// Server from parts (durable registry, calibrated engine…) with the
    /// default pool sizing. The engine is the prototype every pool worker
    /// is forked from; hosts registered on it are shared by all workers.
    pub fn new(registry: Registry, engine: ExecutionEngine) -> LaminarServer {
        LaminarServer::with_pool(registry, engine, DEFAULT_POOL_WORKERS, DEFAULT_QUEUE_CAPACITY)
    }

    /// Server with explicit engine-pool sizing (worker count and queue
    /// admission bound).
    pub fn with_pool(
        registry: Registry,
        engine: ExecutionEngine,
        workers: usize,
        queue_capacity: usize,
    ) -> LaminarServer {
        LaminarServer {
            registry: RwLock::new(registry),
            pool: EnginePool::start(engine, workers, queue_capacity),
        }
    }

    /// Server whose engine pool journals checkpointed jobs under
    /// `journal_root`: interrupted jobs are auto-resumed on start and can
    /// be resumed explicitly via `POST .../job/{id}/resume`.
    pub fn with_durable_pool(
        registry: Registry,
        engine: ExecutionEngine,
        workers: usize,
        queue_capacity: usize,
        journal_root: &std::path::Path,
    ) -> Result<LaminarServer, laminar_engine::JournalError> {
        Ok(LaminarServer {
            registry: RwLock::new(registry),
            pool: EnginePool::start_durable(engine, workers, queue_capacity, journal_root)?,
        })
    }

    /// Direct registry access (workload setup, tests).
    pub fn registry_mut(&mut self) -> &mut Registry {
        self.registry.get_mut()
    }

    /// The shared module-host registry. Module hosts registered here
    /// (simulated services) are visible to every pool worker; the
    /// *resource* store is NOT shared — each worker stages its own
    /// per-request resources, so `stage_resource` on this handle reaches
    /// no pooled engine (ship resources with the execution request).
    pub fn hosts(&self) -> &laminar_engine::HostRegistry {
        self.pool.hosts()
    }

    /// The engine worker pool (introspection, tests).
    pub fn pool(&self) -> &EnginePool {
        &self.pool
    }

    /// Controller entry point: route a request (paper §3.2.1).
    pub fn handle(&self, req: &ApiRequest) -> ApiResponse {
        let segments = req.segments();
        let result = match (req.method, segments.as_slice()) {
            // ---- User controller -----------------------------------------
            (Method::Get, ["auth", "all"]) => self.users_all(),
            (Method::Post, ["auth", "register"]) => self.auth_register(&req.body),
            (Method::Post, ["auth", "login"]) => self.auth_login(&req.body),

            // ---- PE controller -------------------------------------------
            (Method::Post, ["registry", user, "pe", "add"]) => self.pe_add(user, &req.body),
            (Method::Get, ["registry", user, "pe", "all"]) => self.pe_all(user),
            (Method::Get, ["registry", user, "pe", "id", id]) => self.pe_get(user, &EntityKey::parse(id)),
            (Method::Get, ["registry", user, "pe", "name", name]) => {
                self.pe_get(user, &EntityKey::Name(name.to_string()))
            }
            (Method::Delete, ["registry", user, "pe", "remove", "id", id]) => {
                self.pe_remove(user, &EntityKey::parse(id))
            }
            (Method::Delete, ["registry", user, "pe", "remove", "name", name]) => {
                self.pe_remove(user, &EntityKey::Name(name.to_string()))
            }

            // ---- Workflow controller ---------------------------------------
            (Method::Post, ["registry", user, "workflow", "add"]) => self.workflow_add(user, &req.body),
            (Method::Get, ["registry", user, "workflow", "all"]) => self.workflow_all(user),
            (Method::Get, ["registry", user, "workflow", "id", id]) => {
                self.workflow_get(user, &EntityKey::parse(id))
            }
            (Method::Get, ["registry", user, "workflow", "name", name]) => {
                self.workflow_get(user, &EntityKey::Name(name.to_string()))
            }
            (Method::Get, ["registry", user, "workflow", "pes", "id", id]) => {
                self.workflow_pes(user, &EntityKey::parse(id))
            }
            (Method::Get, ["registry", user, "workflow", "pes", "name", name]) => {
                self.workflow_pes(user, &EntityKey::Name(name.to_string()))
            }
            (Method::Delete, ["registry", user, "workflow", "remove", "id", id]) => {
                self.workflow_remove(user, &EntityKey::parse(id))
            }
            (Method::Delete, ["registry", user, "workflow", "remove", "name", name]) => {
                self.workflow_remove(user, &EntityKey::Name(name.to_string()))
            }
            (Method::Put, ["registry", user, "workflow", wid, "pe", pid]) => {
                self.workflow_link_pe(user, wid, pid)
            }

            // ---- Registry controller ----------------------------------------
            (Method::Get, ["registry", "stats"]) => Ok(self.registry.read().stats()),
            (Method::Get, ["registry", user, "all"]) => self.registry_all(user),
            (Method::Get, ["registry", user, "search", search, "type", stype]) => {
                self.registry_search(user, search, stype, &req.body)
            }

            // ---- Execution controller ----------------------------------------
            (Method::Get, ["execution", "pool", "stats"]) => Ok(self.pool.stats().to_value()),
            (Method::Post, ["execution", user, "run"]) => self.execution_run(user, &req.body),
            (Method::Post, ["execution", user, "submit"]) => self.execution_submit(user, &req.body),
            (Method::Get, ["execution", user, "job", id, "status"]) => self.job_status(user, id),
            (Method::Get, ["execution", user, "job", id, "result"]) => self.job_result(user, id),
            (Method::Delete, ["execution", user, "job", id]) => self.job_cancel(user, id),
            (Method::Post, ["execution", user, "job", id, "resume"]) => self.job_resume(user, id),
            // `tail` is "events" or "events?since=<seq>&wait_ms=<ms>" —
            // the query stays inside the percent-decoded final segment.
            (Method::Get, ["execution", user, "job", id, tail]) if is_events_segment(tail) => {
                self.job_events(user, id, tail, &req.body)
            }

            _ => return ApiResponse::not_found(&req.path),
        };
        match result {
            Ok(body) => ApiResponse::ok(body),
            Err(e) => ApiResponse::error(&e),
        }
    }

    // ---- user handlers -------------------------------------------------------

    fn users_all(&self) -> Result<Value, RegistryError> {
        Ok(Value::Array(self.registry.read().all_user_names().into_iter().map(Value::Str).collect()))
    }

    fn auth_register(&self, body: &Value) -> Result<Value, RegistryError> {
        let name = str_field(body, "userName")?;
        let password = str_field(body, "password")?;
        let user = self.registry.write().register_user(&name, &password)?;
        let mut v = Value::Null;
        v.set("userId", user.user_id).set("userName", user.user_name.as_str());
        Ok(v)
    }

    fn auth_login(&self, body: &Value) -> Result<Value, RegistryError> {
        let name = str_field(body, "userName")?;
        let password = str_field(body, "password")?;
        // Login mints a session token, so it takes the write path.
        let token = self.registry.write().login(&name, &password)?;
        let mut v = Value::Null;
        v.set("token", token.as_str()).set("userName", name.as_str());
        Ok(v)
    }

    // ---- PE handlers ------------------------------------------------------------

    fn pe_add(&self, user: &str, body: &Value) -> Result<Value, RegistryError> {
        let code = str_field(body, "code")?;
        let description = body["description"].as_str();
        // The client ships code base64-pickled (paper §3.4.2); accept raw
        // source too for convenience.
        let source = laminar_registry::entities::decode_code(&code).unwrap_or(code);
        let pe = self.registry.write().register_pe(user, &source, description)?;
        Ok(pe_summary(&pe))
    }

    fn pe_all(&self, user: &str) -> Result<Value, RegistryError> {
        Ok(self.registry.read().all_pes(user)?.iter().map(pe_summary).collect())
    }

    fn pe_get(&self, user: &str, key: &EntityKey) -> Result<Value, RegistryError> {
        let pe = self.registry.read().get_pe(user, key)?;
        let mut v = pe_summary(&pe);
        v.set("peCode", pe.pe_code.as_str())
            .set("peImports", Value::Array(pe.pe_imports.iter().map(|i| Value::Str(i.clone())).collect()));
        Ok(v)
    }

    fn pe_remove(&self, user: &str, key: &EntityKey) -> Result<Value, RegistryError> {
        self.registry.write().remove_pe(user, key)?;
        let mut v = Value::Null;
        v.set("removed", true);
        Ok(v)
    }

    // ---- workflow handlers ----------------------------------------------------------

    fn workflow_add(&self, user: &str, body: &Value) -> Result<Value, RegistryError> {
        let code = str_field(body, "code")?;
        let entry = str_field(body, "entryPoint")?;
        let description = body["description"].as_str();
        let source = laminar_registry::entities::decode_code(&code).unwrap_or(code);
        let wf = self.registry.write().register_workflow(user, &source, &entry, description)?;
        Ok(wf_summary(&wf))
    }

    fn workflow_all(&self, user: &str) -> Result<Value, RegistryError> {
        Ok(self.registry.read().all_workflows(user)?.iter().map(wf_summary).collect())
    }

    fn workflow_get(&self, user: &str, key: &EntityKey) -> Result<Value, RegistryError> {
        let wf = self.registry.read().get_workflow(user, key)?;
        let mut v = wf_summary(&wf);
        v.set("workflowCode", wf.workflow_code.as_str());
        Ok(v)
    }

    fn workflow_pes(&self, user: &str, key: &EntityKey) -> Result<Value, RegistryError> {
        Ok(self.registry.read().pes_by_workflow(user, key)?.iter().map(pe_summary).collect())
    }

    fn workflow_remove(&self, user: &str, key: &EntityKey) -> Result<Value, RegistryError> {
        self.registry.write().remove_workflow(user, key)?;
        let mut v = Value::Null;
        v.set("removed", true);
        Ok(v)
    }

    fn workflow_link_pe(&self, user: &str, wid: &str, pid: &str) -> Result<Value, RegistryError> {
        let wid: i64 = wid.parse().map_err(|_| RegistryError::Invalid {
            field: "workflowId",
            message: "must be an integer".into(),
        })?;
        let pid: i64 = pid
            .parse()
            .map_err(|_| RegistryError::Invalid { field: "peId", message: "must be an integer".into() })?;
        self.registry.write().add_pe_to_workflow(user, wid, pid)?;
        let mut v = Value::Null;
        v.set("linked", true);
        Ok(v)
    }

    // ---- registry handlers -------------------------------------------------------------

    fn registry_all(&self, user: &str) -> Result<Value, RegistryError> {
        self.registry.read().dump(user)
    }

    fn registry_search(
        &self,
        user: &str,
        search: &str,
        stype: &str,
        body: &Value,
    ) -> Result<Value, RegistryError> {
        let search_type = SearchType::parse(stype).ok_or(RegistryError::Invalid {
            field: "type",
            message: format!("unknown search type '{stype}'"),
        })?;
        let query_type = match body["queryType"].as_str() {
            Some(q) => QueryType::parse(q).ok_or(RegistryError::Invalid {
                field: "queryType",
                message: format!("unknown query type '{q}'"),
            })?,
            None => QueryType::Text,
        };
        let mut opts = SearchOptions::default();
        if !body["limit"].is_null() {
            let limit = body["limit"].as_i64().filter(|l| (1..=10_000).contains(l)).ok_or(
                RegistryError::Invalid { field: "limit", message: "must be an integer in 1..=10000".into() },
            )?;
            opts.limit = limit as usize;
        }
        if body["forceScan"].as_bool() == Some(true) {
            opts.force_scan = true;
        }
        let started = std::time::Instant::now();
        let resp = self.registry.read().search_with(user, search, search_type, query_type, &opts)?;
        let search_us = started.elapsed().as_micros() as i64;
        let hits: Value = resp
            .hits
            .into_iter()
            .map(|h| {
                let mut v = Value::Null;
                v.set("id", h.id)
                    .set("name", h.name.as_str())
                    .set("kind", h.kind)
                    .set("description", h.description.as_str())
                    .set("auto", h.auto_described)
                    .set("score", h.score);
                v
            })
            .collect();
        let mut out = Value::Null;
        out.set("hits", hits)
            .set("search_us", search_us)
            .set("embed_us", resp.embed_us as i64)
            .set("rank_us", resp.rank_us as i64);
        Ok(out)
    }

    // ---- execution handlers -------------------------------------------------------------

    /// Resolve the request body into an [`ExecutionRequest`], fetching the
    /// stored source when the body names a registered workflow. Takes only
    /// a short registry *read* lock — the enactment itself never holds any
    /// registry lock, so reads and other executions proceed concurrently.
    fn resolve_request(&self, user: &str, body: &Value) -> Result<ExecutionRequest, RegistryError> {
        let mut body = body.clone();
        body.set("user", user);
        // `workflow` may name a registered workflow instead of shipping
        // source — the serverless retrieve-then-run path (paper §5.2).
        if body["source"].is_null() {
            let key = EntityKey::from_value(&body["workflow"]).ok_or(RegistryError::Invalid {
                field: "workflow",
                message: "request needs either 'source' or a registered 'workflow' id/name".into(),
            })?;
            let registry = self.registry.read();
            let source = registry.workflow_source(user, &key)?;
            let wf = registry.get_workflow(user, &key)?;
            body.set("source", source).set("workflow", wf.workflow_name.as_str());
        }
        ExecutionRequest::from_value(&body)
            .ok_or(RegistryError::Invalid { field: "request", message: "malformed execution request".into() })
    }

    fn pool_error(&self, e: PoolError) -> RegistryError {
        match e {
            // Both 429 shapes carry a concrete backoff: the rate limiter
            // knows when the tenant's next token lands, and a full queue
            // hints from live depth × observed mean runtime.
            PoolError::QueueFull { .. } => RegistryError::Throttled {
                message: e.to_string(),
                retry_after_ms: self.pool.queue_retry_hint_ms(),
            },
            PoolError::RateLimited { retry_after_ms } => {
                RegistryError::Throttled { message: e.to_string(), retry_after_ms }
            }
            PoolError::ShutDown => RegistryError::Busy(e.to_string()),
            PoolError::Failed(m) => RegistryError::Invalid { field: "execution", message: m },
            // Distinct from Failed: a cancelled sync run answers the 409
            // "Cancelled" envelope, never the generic 400 failure shape.
            PoolError::Cancelled(_) => RegistryError::Cancelled(e.to_string()),
            PoolError::Unknown(id) => RegistryError::NotFound { entity: "Job", key: id.to_string() },
        }
    }

    /// The synchronous endpoint: a thin wrapper over submit + wait.
    /// Unbounded (run-until-cancelled) inputs are rejected here: a run
    /// with no finish line can only be consumed through the async
    /// submit/events path and stopped via `DELETE .../job/{id}`.
    fn execution_run(&self, user: &str, body: &Value) -> Result<Value, RegistryError> {
        let req = self.resolve_request(user, body)?;
        if matches!(req.input, laminar_engine::RunInput::Unbounded { .. }) {
            return Err(RegistryError::Invalid {
                field: "input",
                message: "unbounded input never completes; use POST .../submit and stop it with \
                          DELETE .../job/{id}"
                    .into(),
            });
        }
        let output = self.pool.run_sync(user, req).map_err(|e| self.pool_error(e))?;
        Ok(output.to_value())
    }

    /// The asynchronous submit: returns a job id immediately (or 429 when
    /// admission control rejects the job).
    fn execution_submit(&self, user: &str, body: &Value) -> Result<Value, RegistryError> {
        let req = self.resolve_request(user, body)?;
        let id = self.pool.submit(user, req).map_err(|e| self.pool_error(e))?;
        let mut v = Value::Null;
        v.set("jobId", id).set("status", "queued");
        Ok(v)
    }

    fn parse_job_id(id: &str) -> Result<i64, RegistryError> {
        id.parse()
            .map_err(|_| RegistryError::Invalid { field: "jobId", message: "must be an integer".into() })
    }

    /// Poll a job's lifecycle phase and metrics.
    fn job_status(&self, user: &str, id: &str) -> Result<Value, RegistryError> {
        let id = Self::parse_job_id(id)?;
        let info = self
            .pool
            .status(user, id)
            .ok_or(RegistryError::NotFound { entity: "Job", key: id.to_string() })?;
        Ok(info.to_value())
    }

    /// Read a page of a job's sequenced event log. Cursor protocol:
    /// `?since=<seq>` (or a `since` body field) names the first wanted
    /// sequence number; the response's `next` is the cursor for the next
    /// poll, `first` the oldest retained seq (truncation detection), and
    /// `closed` flags a complete stream (its last event is the
    /// `done`/`failed` marker). When eviction overtook the cursor but a
    /// checkpoint survived, `retained_epoch` names the epoch whose marker
    /// the page restarts at — engine-side recovery for checkpointed jobs.
    /// Touches only the pool — never the registry lock — so event polling
    /// overlaps every other endpoint.
    fn job_events(&self, user: &str, id: &str, tail: &str, body: &Value) -> Result<Value, RegistryError> {
        let id = Self::parse_job_id(id)?;
        let since = match events_query(tail, "since") {
            Some(Ok(s)) => s,
            Some(Err(())) => {
                return Err(RegistryError::Invalid {
                    field: "since",
                    message: "must be a non-negative integer".into(),
                })
            }
            None => body["since"].as_i64().unwrap_or(0).max(0) as u64,
        };
        // Push mode: `wait_ms` parks the handler on the job log's condvar
        // until something lands past the cursor, the stream seals, or the
        // wait elapses. 0 (the default) is a plain poll; the cap keeps a
        // parked connection thread bounded.
        let wait_ms = match events_query(tail, "wait_ms") {
            Some(Ok(w)) => w,
            Some(Err(())) => {
                return Err(RegistryError::Invalid {
                    field: "wait_ms",
                    message: "must be a non-negative integer".into(),
                })
            }
            None => body["wait_ms"].as_i64().unwrap_or(0).max(0) as u64,
        };
        let wait = std::time::Duration::from_millis(wait_ms.min(LONG_POLL_MAX_WAIT_MS));
        let page = self
            .pool
            .events_wait(user, id, since, wait)
            .ok_or(RegistryError::NotFound { entity: "Job", key: id.to_string() })?;
        let mut v = Value::Null;
        v.set("jobId", id)
            .set("events", Value::Array(page.events))
            .set("next", page.next as i64)
            .set("first", page.first as i64)
            .set("closed", page.closed);
        if let Some(epoch) = page.retained_epoch {
            v.set("retained_epoch", epoch as i64);
        }
        Ok(v)
    }

    /// Poll a job's result. While the job is pending this returns the
    /// status envelope (no `outputs` key); once done it returns the
    /// execution output with the job metrics merged in; a failed job
    /// surfaces the standard execution error envelope; a cancelled job
    /// answers its status envelope (`status: "cancelled"`, 200 — not an
    /// error: consume what it produced through `/events`).
    fn job_result(&self, user: &str, id: &str) -> Result<Value, RegistryError> {
        let id = Self::parse_job_id(id)?;
        let result = self
            .pool
            .result(user, id)
            .ok_or(RegistryError::NotFound { entity: "Job", key: id.to_string() })?;
        match result {
            JobResult::Pending(info) | JobResult::Cancelled(info) => Ok(info.to_value()),
            JobResult::Done(output, info) => {
                let mut v = output.to_value();
                v.set("jobId", info.id).set("status", "done");
                Ok(v)
            }
            JobResult::Failed(message, _) => Err(RegistryError::Invalid { field: "execution", message }),
        }
    }

    /// `DELETE /execution/{user}/job/{id}`: request cooperative
    /// cancellation. Idempotent — cancelling a queued job terminates it
    /// on the spot, cancelling a running job fires its token (the
    /// enactment stops at its next invocation boundary; poll `status`),
    /// and cancelling a finished job is a 200 no-op reporting the
    /// current phase. Unknown or foreign jobs answer 404.
    fn job_cancel(&self, user: &str, id: &str) -> Result<Value, RegistryError> {
        let id = Self::parse_job_id(id)?;
        let info = self
            .pool
            .cancel(user, id)
            .ok_or(RegistryError::NotFound { entity: "Job", key: id.to_string() })?;
        let mut v = Value::Null;
        v.set("jobId", id).set("status", info.phase.as_str());
        Ok(v)
    }

    /// `POST /execution/{user}/job/{id}/resume`: re-enqueue an interrupted
    /// checkpointed job from its journal, under its original id. Answers
    /// 404 when the pool has no journal, the job was never journaled (or
    /// completed and was cleaned up), or the owner does not match; 400
    /// when the job is live (queued/running/done) in this pool.
    fn job_resume(&self, user: &str, id: &str) -> Result<Value, RegistryError> {
        let id = Self::parse_job_id(id)?;
        let id = self.pool.resume_job(user, id).map_err(|e| self.pool_error(e))?;
        let mut v = Value::Null;
        v.set("jobId", id).set("status", "queued");
        Ok(v)
    }
}

/// Whether a final path segment addresses the events endpoint
/// (`events` or `events?<query>`).
fn is_events_segment(tail: &str) -> bool {
    tail == "events" || tail.strip_prefix("events?").is_some()
}

/// Ceiling on `wait_ms` long-poll parks: one HTTP/1.0 connection thread
/// is held for the duration, so the server bounds it regardless of what
/// the client asked for.
pub const LONG_POLL_MAX_WAIT_MS: u64 = 30_000;

/// Parse `<key>=<n>` out of an `events?...` segment. `None` when no
/// query carries the key; `Some(Err(()))` when it is present but not a
/// non-negative integer.
fn events_query(tail: &str, key: &str) -> Option<Result<u64, ()>> {
    let query = tail.strip_prefix("events?")?;
    for pair in query.split('&') {
        if let Some(raw) = pair.strip_prefix(key).and_then(|r| r.strip_prefix('=')) {
            return Some(raw.parse::<u64>().map_err(|_| ()));
        }
    }
    None
}

fn str_field(body: &Value, field: &'static str) -> Result<String, RegistryError> {
    body[field]
        .as_str()
        .map(str::to_string)
        .ok_or(RegistryError::Invalid { field, message: "missing or not a string".into() })
}

fn pe_summary(pe: &laminar_registry::PeEntity) -> Value {
    let mut v = Value::Null;
    v.set("peId", pe.pe_id)
        .set("peName", pe.pe_name.as_str())
        .set("description", pe.description.as_str())
        .set("auto", pe.description_generated);
    v
}

fn wf_summary(wf: &laminar_registry::WorkflowEntity) -> Value {
    let mut v = Value::Null;
    v.set("workflowId", wf.workflow_id)
        .set("workflowName", wf.workflow_name.as_str())
        .set("entryPoint", wf.entry_point.as_str())
        .set("description", wf.description.as_str());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_json::jobj;

    const WF_SRC: &str = r#"
        pe Seq : producer { output output; process { emit(iteration + 1); } }
        pe IsPrime : iterative {
            input num; output output;
            process {
                let i = 2;
                let prime = num > 1;
                while i * i <= num { if num % i == 0 { prime = false; break; } i = i + 1; }
                if prime { emit(num); }
            }
        }
        pe PrintPrime : consumer { input num; process { print("the num", num, "is prime"); } }
        workflow IsPrimeFlow {
            doc "Workflow that prints random prime numbers";
            nodes { s = Seq; i = IsPrime; p = PrintPrime; }
            connect s.output -> i.num;
            connect i.output -> p.num;
        }
    "#;

    fn server_with_user() -> LaminarServer {
        let s = LaminarServer::in_memory();
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/auth/register",
            jobj! { "userName" => "zz46", "password" => "password" },
        ));
        assert!(r.is_ok(), "{r:?}");
        s
    }

    fn get(s: &LaminarServer, path: &str) -> ApiResponse {
        s.handle(&ApiRequest::new(Method::Get, path, Value::Null))
    }

    #[test]
    fn auth_flow() {
        let s = server_with_user();
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/auth/login",
            jobj! { "userName" => "zz46", "password" => "password" },
        ));
        assert!(r.is_ok());
        assert!(r.body["token"].as_str().unwrap().starts_with("tok-"));
        // Wrong password → standardized 401 envelope (paper §3.2.5).
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/auth/login",
            jobj! { "userName" => "zz46", "password" => "wrong" },
        ));
        assert_eq!(r.status, 401);
        assert_eq!(r.body["error"]["code"].as_str(), Some("Unauthorized"));
        assert_eq!(r.body["error"]["status"].as_i64(), Some(401));
        // User list.
        let r = get(&s, "/auth/all");
        assert_eq!(r.body[0].as_str(), Some("zz46"));
    }

    #[test]
    fn pe_endpoints() {
        let s = server_with_user();
        let src = "pe NumberProducer : producer { output output; process { emit(randint(1, 1000)); } }";
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/registry/zz46/pe/add",
            jobj! { "code" => src, "description" => "Random numbers producer" },
        ));
        assert!(r.is_ok(), "{r:?}");
        let id = r.body["peId"].as_i64().unwrap();
        assert!(get(&s, &format!("/registry/zz46/pe/id/{id}")).is_ok());
        let by_name = get(&s, "/registry/zz46/pe/name/NumberProducer");
        assert_eq!(by_name.body["peId"].as_i64(), Some(id));
        assert!(by_name.body["peCode"].as_str().is_some());
        let all = get(&s, "/registry/zz46/pe/all");
        assert_eq!(all.body.as_array().unwrap().len(), 1);
        let rm = s.handle(&ApiRequest::new(
            Method::Delete,
            "/registry/zz46/pe/remove/name/NumberProducer",
            Value::Null,
        ));
        assert!(rm.is_ok());
        assert_eq!(get(&s, &format!("/registry/zz46/pe/id/{id}")).status, 404);
    }

    #[test]
    fn workflow_endpoints() {
        let s = server_with_user();
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/registry/zz46/workflow/add",
            jobj! { "code" => WF_SRC, "entryPoint" => "isPrime" },
        ));
        assert!(r.is_ok(), "{r:?}");
        let wid = r.body["workflowId"].as_i64().unwrap();
        let pes = get(&s, &format!("/registry/zz46/workflow/pes/id/{wid}"));
        assert_eq!(pes.body.as_array().unwrap().len(), 3);
        let by_name = get(&s, "/registry/zz46/workflow/name/isPrime");
        assert_eq!(by_name.body["workflowId"].as_i64(), Some(wid));
        // PUT link: attach an extra PE.
        let extra = s.handle(&ApiRequest::new(
            Method::Post,
            "/registry/zz46/pe/add",
            jobj! { "code" => "pe Extra : producer { output o; process { emit(1); } }" },
        ));
        let pid = extra.body["peId"].as_i64().unwrap();
        let link = s.handle(&ApiRequest::new(
            Method::Put,
            format!("/registry/zz46/workflow/{wid}/pe/{pid}"),
            Value::Null,
        ));
        assert!(link.is_ok(), "{link:?}");
        let pes = get(&s, &format!("/registry/zz46/workflow/pes/id/{wid}"));
        assert_eq!(pes.body.as_array().unwrap().len(), 4);
    }

    #[test]
    fn search_endpoint_figure6() {
        let s = server_with_user();
        s.handle(&ApiRequest::new(
            Method::Post,
            "/registry/zz46/workflow/add",
            jobj! { "code" => WF_SRC, "entryPoint" => "isPrime" },
        ));
        let r =
            s.handle(&ApiRequest::new(Method::Get, "/registry/zz46/search/prime/type/workflow", Value::Null));
        assert!(r.is_ok());
        assert_eq!(r.body["hits"][0]["name"].as_str(), Some("isPrime"));
        assert!(r.body["search_us"].as_i64().is_some(), "timing on the wire: {:?}", r.body);
        assert!(r.body["rank_us"].as_i64().is_some());
        // The scan oracle answers identically through the escape hatch.
        let scan = s.handle(&ApiRequest::new(
            Method::Get,
            "/registry/zz46/search/prime/type/workflow",
            jobj! { "forceScan" => true },
        ));
        assert_eq!(scan.body["hits"], r.body["hits"]);
        // Unknown search type → 400; bad limit → 400.
        let r = s.handle(&ApiRequest::new(Method::Get, "/registry/zz46/search/x/type/weird", Value::Null));
        assert_eq!(r.status, 400);
        let r = s.handle(&ApiRequest::new(
            Method::Get,
            "/registry/zz46/search/prime/type/workflow",
            jobj! { "limit" => 0 },
        ));
        assert_eq!(r.status, 400);
    }

    #[test]
    fn search_limit_caps_hits_and_stats_count_searches() {
        let s = server_with_user();
        for i in 0..4 {
            s.handle(&ApiRequest::new(
                Method::Post,
                "/registry/zz46/pe/add",
                jobj! { "code" => format!(
                    "pe Counter{i} : iterative {{ input x; output output; process {{ emit(x + {i}); }} }}"
                ), "description" => format!("counter variant {i}") },
            ));
        }
        let r = s.handle(&ApiRequest::new(
            Method::Get,
            "/registry/zz46/search/counter/type/both",
            jobj! { "limit" => 2 },
        ));
        assert!(r.is_ok());
        assert_eq!(r.body["hits"].as_array().unwrap().len(), 2);
        let stats = s.handle(&ApiRequest::new(Method::Get, "/registry/stats", Value::Null));
        assert!(stats.is_ok());
        assert_eq!(stats.body["pes"].as_i64(), Some(4));
        assert_eq!(stats.body["searches"].as_i64(), Some(1));
        assert_eq!(stats.body["index"]["enabled"].as_bool(), Some(true));
        assert!(stats.body["index"]["vectors"].as_i64().unwrap() >= 8);
    }

    #[test]
    fn execution_with_inline_source() {
        let s = server_with_user();
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/run",
            jobj! { "source" => WF_SRC, "input" => 10, "mapping" => "SIMPLE" },
        ));
        assert!(r.is_ok(), "{r:?}");
        let printed = r.body["printed"].as_array().unwrap();
        assert_eq!(printed.len(), 4, "primes ≤ 10");
    }

    #[test]
    fn execution_of_registered_workflow_by_name() {
        // The full serverless loop: register once, run by name (paper §5).
        let s = server_with_user();
        s.handle(&ApiRequest::new(
            Method::Post,
            "/registry/zz46/workflow/add",
            jobj! { "code" => WF_SRC, "entryPoint" => "isPrime" },
        ));
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/run",
            jobj! { "workflow" => "isPrime", "input" => 20, "mapping" => "MULTI", "processes" => 5 },
        ));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.body["printed"].as_array().unwrap().len(), 8);
        // The response reports the enactment's stage breakdown (Table 5's
        // overhead structure) alongside the coarse engine timings.
        assert!(r.body["enact_us"].as_i64().unwrap_or(-1) > 0, "body: {:?}", r.body);
        assert!(r.body["plan_us"].as_i64().unwrap_or(-1) >= 0);
        assert!(r.body["collect_us"].as_i64().unwrap_or(-1) >= 0);
        // Unknown workflow name → 404 envelope.
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/run",
            jobj! { "workflow" => "ghost", "input" => 1 },
        ));
        assert_eq!(r.status, 404);
    }

    #[test]
    fn unknown_route_and_bad_body() {
        let s = server_with_user();
        assert_eq!(get(&s, "/registry/zz46/nonsense").status, 404);
        let r = s.handle(&ApiRequest::new(Method::Post, "/auth/register", Value::Null));
        assert_eq!(r.status, 400);
        assert_eq!(r.body["error"]["code"].as_str(), Some("Invalid"));
    }

    #[test]
    fn cross_user_isolation_via_api() {
        let s = server_with_user();
        s.handle(&ApiRequest::new(
            Method::Post,
            "/auth/register",
            jobj! { "userName" => "other", "password" => "password" },
        ));
        s.handle(&ApiRequest::new(
            Method::Post,
            "/registry/zz46/pe/add",
            jobj! { "code" => "pe Mine : producer { output o; process { emit(1); } }" },
        ));
        let r = get(&s, "/registry/other/pe/name/Mine");
        assert_eq!(r.status, 404, "other users cannot see zz46's PEs");
    }

    #[test]
    fn async_submit_poll_result() {
        let s = server_with_user();
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/submit",
            jobj! { "source" => WF_SRC, "input" => 10, "mapping" => "SIMPLE" },
        ));
        assert!(r.is_ok(), "{r:?}");
        let id = r.body["jobId"].as_i64().unwrap();
        assert!(id > 0);
        // Poll until done.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        loop {
            let st = get(&s, &format!("/execution/zz46/job/{id}/status"));
            assert!(st.is_ok(), "{st:?}");
            match st.body["status"].as_str().unwrap() {
                "done" => break,
                "failed" => panic!("job failed: {st:?}"),
                _ => assert!(std::time::Instant::now() < deadline, "job never finished"),
            }
        }
        let res = get(&s, &format!("/execution/zz46/job/{id}/result"));
        assert!(res.is_ok(), "{res:?}");
        assert_eq!(res.body["status"].as_str(), Some("done"));
        assert_eq!(res.body["printed"].as_array().unwrap().len(), 4, "primes <= 10");
        // The async result matches the synchronous endpoint's.
        let sync = s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/run",
            jobj! { "source" => WF_SRC, "input" => 10, "mapping" => "SIMPLE" },
        ));
        assert_eq!(sync.body["printed"], res.body["printed"]);
    }

    #[test]
    fn async_job_errors_and_isolation() {
        let s = server_with_user();
        // Unknown job id → 404.
        assert_eq!(get(&s, "/execution/zz46/job/999/status").status, 404);
        assert_eq!(get(&s, "/execution/zz46/job/999/result").status, 404);
        // Non-integer id → 400.
        assert_eq!(get(&s, "/execution/zz46/job/abc/status").status, 400);
        // A failing script surfaces through the result endpoint as 400.
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/submit",
            jobj! { "source" => "pe A : producer { output o; process { emit(1); } } pe B : producer { output o; process { emit(2); } }" },
        ));
        let id = r.body["jobId"].as_i64().unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        loop {
            let st = get(&s, &format!("/execution/zz46/job/{id}/status"));
            if st.body["status"].as_str() == Some("failed") {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "job never failed");
        }
        assert_eq!(get(&s, &format!("/execution/zz46/job/{id}/result")).status, 400);
        // Another tenant cannot observe the job.
        s.handle(&ApiRequest::new(
            Method::Post,
            "/auth/register",
            jobj! { "userName" => "other", "password" => "password" },
        ));
        assert_eq!(get(&s, &format!("/execution/other/job/{id}/status")).status, 404);
    }

    #[test]
    fn admission_control_returns_429() {
        // One slow worker, queue bound 1: the third submission is refused.
        let s = LaminarServer::with_pool(
            Registry::in_memory(),
            ExecutionEngine::instant().with_provision_scale(1000),
            1,
            1,
        );
        s.handle(&ApiRequest::new(
            Method::Post,
            "/auth/register",
            jobj! { "userName" => "zz46", "password" => "password" },
        ));
        let submit = || {
            s.handle(&ApiRequest::new(
                Method::Post,
                "/execution/zz46/submit",
                jobj! { "source" => WF_SRC, "input" => 1 },
            ))
        };
        let first = submit();
        assert!(first.is_ok(), "{first:?}");
        // Wait until the worker picked the first job so the queue bound
        // applies to the jobs behind it.
        let id = first.body["jobId"].as_i64().unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while get(&s, &format!("/execution/zz46/job/{id}/status")).body["status"].as_str() == Some("queued") {
            assert!(std::time::Instant::now() < deadline, "job never picked");
            std::thread::yield_now();
        }
        assert!(submit().is_ok());
        let rejected = submit();
        assert_eq!(rejected.status, 429, "{rejected:?}");
        assert_eq!(rejected.body["error"]["code"].as_str(), Some("Busy"));
        assert!(
            rejected.body["error"]["retryAfterMs"].as_i64().unwrap() >= 1,
            "queue-full 429 must advise a backoff: {rejected:?}"
        );
        let stats = get(&s, "/execution/pool/stats");
        assert_eq!(stats.body["rejected"].as_i64(), Some(1));
    }

    #[test]
    fn rate_limited_submit_returns_429_with_retry_hint() {
        let s = server_with_user();
        s.pool().set_tenant_rate(1.0, 1.0);
        let submit = || {
            s.handle(&ApiRequest::new(
                Method::Post,
                "/execution/zz46/submit",
                jobj! { "source" => WF_SRC, "input" => 1 },
            ))
        };
        assert!(submit().is_ok());
        let limited = submit();
        assert_eq!(limited.status, 429, "{limited:?}");
        assert_eq!(limited.body["error"]["code"].as_str(), Some("Busy"));
        let hint = limited.body["error"]["retryAfterMs"].as_i64().unwrap();
        assert!((1..=1_001).contains(&hint), "hint within one token period: {hint}");
        assert!(limited.body["error"]["message"].as_str().unwrap().contains("rate limit"));
        let stats = get(&s, "/execution/pool/stats");
        assert_eq!(stats.body["rate_limited"].as_i64(), Some(1));
        assert_eq!(stats.body["rejected"].as_i64(), Some(0));
    }

    #[test]
    fn events_endpoint_streams_and_pages() {
        let s = server_with_user();
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/submit",
            jobj! { "source" => WF_SRC, "input" => 10, "mapping" => "SIMPLE", "events" => true },
        ));
        assert!(r.is_ok(), "{r:?}");
        let id = r.body["jobId"].as_i64().unwrap();
        // Poll the event stream by cursor until it closes.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let mut since: i64 = 0;
        let mut types: Vec<String> = Vec::new();
        loop {
            let page = get(&s, &format!("/execution/zz46/job/{id}/events?since={since}"));
            assert!(page.is_ok(), "{page:?}");
            assert_eq!(page.body["jobId"].as_i64(), Some(id));
            for e in page.body["events"].as_array().unwrap() {
                assert!(e["seq"].as_i64().unwrap() >= since);
                types.push(e["type"].as_str().unwrap().to_string());
            }
            since = page.body["next"].as_i64().unwrap();
            if page.body["closed"].as_bool() == Some(true) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "stream never closed");
        }
        assert_eq!(types.first().map(String::as_str), Some("plan"));
        assert_eq!(types.last().map(String::as_str), Some("done"));
        assert_eq!(types.iter().filter(|t| *t == "print").count(), 4, "primes <= 10 printed live");
        assert!(types.contains(&"finished".to_string()));
        // The print events match the batch result exactly.
        let res = get(&s, &format!("/execution/zz46/job/{id}/result"));
        assert_eq!(res.body["printed"].as_array().unwrap().len(), 4);
        assert!(res.body["events"].as_i64().unwrap() > 0, "wire output reports the stream size");
    }

    #[test]
    fn events_endpoint_errors() {
        let s = server_with_user();
        // Unknown job → 404; bad id → 400; bad cursor → 400.
        assert_eq!(get(&s, "/execution/zz46/job/999/events").status, 404);
        assert_eq!(get(&s, "/execution/zz46/job/abc/events").status, 400);
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/submit",
            jobj! { "source" => WF_SRC, "input" => 1 },
        ));
        let id = r.body["jobId"].as_i64().unwrap();
        assert_eq!(get(&s, &format!("/execution/zz46/job/{id}/events?since=banana")).status, 400);
        // A job submitted without events=true still closes with a marker.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        loop {
            let page = get(&s, &format!("/execution/zz46/job/{id}/events"));
            assert!(page.is_ok(), "{page:?}");
            if page.body["closed"].as_bool() == Some(true) {
                let events = page.body["events"].as_array().unwrap();
                assert_eq!(events.len(), 1);
                assert_eq!(events[0]["type"].as_str(), Some("done"));
                break;
            }
            assert!(std::time::Instant::now() < deadline, "job never finished");
        }
        // Cross-tenant: another user cannot read the stream.
        s.handle(&ApiRequest::new(
            Method::Post,
            "/auth/register",
            jobj! { "userName" => "other", "password" => "password" },
        ));
        assert_eq!(get(&s, &format!("/execution/other/job/{id}/events")).status, 404);
    }

    fn delete(s: &LaminarServer, path: &str) -> ApiResponse {
        s.handle(&ApiRequest::new(Method::Delete, path, Value::Null))
    }

    #[test]
    fn events_long_poll_waits_for_data_but_never_on_a_closed_stream() {
        // Slow provisioning: the long-poll provably arrives before the
        // job has produced anything, parks, and wakes with real events
        // instead of an empty page.
        let s = LaminarServer::with_pool(
            Registry::in_memory(),
            ExecutionEngine::instant().with_provision_scale(100),
            1,
            4,
        );
        s.handle(&ApiRequest::new(
            Method::Post,
            "/auth/register",
            jobj! { "userName" => "zz46", "password" => "password" },
        ));
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/submit",
            jobj! { "source" => WF_SRC, "input" => 5, "events" => true },
        ));
        let id = r.body["jobId"].as_i64().unwrap();
        let page = get(&s, &format!("/execution/zz46/job/{id}/events?since=0&wait_ms=20000"));
        assert!(page.is_ok(), "{page:?}");
        assert!(
            !page.body["events"].as_array().unwrap().is_empty(),
            "push mode returns data, not an empty poll page: {page:?}"
        );
        // Drain to the end; on the sealed stream a long-poll answers
        // immediately instead of burning the full wait.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let mut since = page.body["next"].as_i64().unwrap();
        loop {
            let page = get(&s, &format!("/execution/zz46/job/{id}/events?since={since}&wait_ms=1000"));
            since = page.body["next"].as_i64().unwrap();
            if page.body["closed"].as_bool() == Some(true) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "stream never closed");
        }
        let t0 = std::time::Instant::now();
        let sealed = get(&s, &format!("/execution/zz46/job/{id}/events?since={since}&wait_ms=20000"));
        assert!(t0.elapsed() < std::time::Duration::from_secs(5), "{:?}", t0.elapsed());
        assert_eq!(sealed.body["closed"].as_bool(), Some(true));
        // Malformed wait_ms → the standard 400 envelope.
        let bad = get(&s, &format!("/execution/zz46/job/{id}/events?wait_ms=soon"));
        assert_eq!(bad.status, 400);
        assert_eq!(bad.body["error"]["parameter"].as_str(), Some("wait_ms"));
    }

    #[test]
    fn cancel_endpoint_on_queued_running_and_finished_jobs() {
        // --- finished: DELETE is an idempotent 200 no-op ----------------
        let s = server_with_user();
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/submit",
            jobj! { "source" => WF_SRC, "input" => 5 },
        ));
        let done_id = r.body["jobId"].as_i64().unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        while get(&s, &format!("/execution/zz46/job/{done_id}/status")).body["status"].as_str()
            != Some("done")
        {
            assert!(std::time::Instant::now() < deadline, "job never finished");
        }
        let r = delete(&s, &format!("/execution/zz46/job/{done_id}"));
        assert_eq!(r.status, 200, "{r:?}");
        assert_eq!(r.body["status"].as_str(), Some("done"), "late cancel does not rewrite history");
        assert_eq!(delete(&s, &format!("/execution/zz46/job/{done_id}")).status, 200, "idempotent");

        // --- unknown/foreign/bad ids ------------------------------------
        assert_eq!(delete(&s, "/execution/zz46/job/999").status, 404);
        assert_eq!(delete(&s, "/execution/zz46/job/abc").status, 400);
        s.handle(&ApiRequest::new(
            Method::Post,
            "/auth/register",
            jobj! { "userName" => "other", "password" => "password" },
        ));
        assert_eq!(delete(&s, &format!("/execution/other/job/{done_id}")).status, 404);

        // --- queued: cancelled on the spot, never runs ------------------
        let slow = LaminarServer::with_pool(
            Registry::in_memory(),
            ExecutionEngine::instant().with_provision_scale(1000),
            1,
            4,
        );
        slow.handle(&ApiRequest::new(
            Method::Post,
            "/auth/register",
            jobj! { "userName" => "zz46", "password" => "password" },
        ));
        let submit = |events: bool| {
            slow.handle(&ApiRequest::new(
                Method::Post,
                "/execution/zz46/submit",
                jobj! { "source" => WF_SRC, "input" => 1, "events" => events },
            ))
        };
        let first = submit(false).body["jobId"].as_i64().unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while get(&slow, &format!("/execution/zz46/job/{first}/status")).body["status"].as_str()
            == Some("queued")
        {
            assert!(std::time::Instant::now() < deadline, "first job never picked");
            std::thread::yield_now();
        }
        let queued = submit(true).body["jobId"].as_i64().unwrap();
        let r = delete(&slow, &format!("/execution/zz46/job/{queued}"));
        assert_eq!(r.status, 200, "{r:?}");
        assert_eq!(r.body["status"].as_str(), Some("cancelled"));
        // Result endpoint answers the status envelope, 200 (not an error).
        let res = get(&slow, &format!("/execution/zz46/job/{queued}/result"));
        assert_eq!(res.status, 200);
        assert_eq!(res.body["status"].as_str(), Some("cancelled"));
        // The sealed stream is just the cancelled marker.
        let page = get(&slow, &format!("/execution/zz46/job/{queued}/events"));
        assert_eq!(page.body["closed"].as_bool(), Some(true));
        let events = page.body["events"].as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0]["type"].as_str(), Some("cancelled"));
        let stats = get(&slow, "/execution/pool/stats");
        assert_eq!(stats.body["cancelled"].as_i64(), Some(1));
    }

    #[test]
    fn cancel_endpoint_stops_a_running_unbounded_job() {
        let s = server_with_user();
        // An unbounded producer: runs until cancelled, streaming outputs.
        // (Wrapped in a workflow: only workflow enactments stream, the
        // single-PE FaaS path rejects unbounded input.)
        let src = r#"
            pe Gen : producer { output o; process { emit(iteration); } }
            workflow Forever { nodes { g = Gen; } }
        "#;
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/submit",
            jobj! {
                "source" => src,
                "input" => jobj! { "mode" => "unbounded", "pace_us" => 300 },
                "events" => true
            },
        ));
        assert!(r.is_ok(), "{r:?}");
        let id = r.body["jobId"].as_i64().unwrap();
        // Wait until outputs stream, proving it is genuinely running.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        loop {
            let page = get(&s, &format!("/execution/zz46/job/{id}/events"));
            let has_output =
                page.body["events"].as_array().unwrap().iter().any(|e| e["type"].as_str() == Some("output"));
            if has_output {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "unbounded job never produced");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let r = delete(&s, &format!("/execution/zz46/job/{id}"));
        assert_eq!(r.status, 200, "{r:?}");
        // Cooperative: the job commits `cancelled` at its next boundary.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        loop {
            let st = get(&s, &format!("/execution/zz46/job/{id}/status"));
            match st.body["status"].as_str() {
                Some("cancelled") => break,
                Some("running") => {
                    assert!(std::time::Instant::now() < deadline, "cancel never landed")
                }
                other => panic!("unexpected phase {other:?}"),
            }
        }
        // The stream is sealed by exactly one cancelled marker and the
        // events before it are a clean prefix (no done/finished).
        let mut since = 0i64;
        let mut types: Vec<String> = Vec::new();
        loop {
            let page = get(&s, &format!("/execution/zz46/job/{id}/events?since={since}"));
            for e in page.body["events"].as_array().unwrap() {
                types.push(e["type"].as_str().unwrap().to_string());
            }
            since = page.body["next"].as_i64().unwrap();
            if page.body["closed"].as_bool() == Some(true) {
                break;
            }
        }
        assert_eq!(types.last().map(String::as_str), Some("cancelled"));
        assert_eq!(types.iter().filter(|t| *t == "cancelled").count(), 1);
        assert!(types.iter().filter(|t| *t == "output").count() >= 1);
        assert!(!types.contains(&"done".to_string()));
        assert!(!types.contains(&"finished".to_string()));
    }

    #[test]
    fn cancelled_pool_error_maps_to_the_409_cancelled_envelope() {
        // A cancelled sync run must not wear the generic 400 failure
        // shape — callers distinguish "stopped on request" from errors.
        let s = LaminarServer::in_memory();
        let e = s.pool_error(PoolError::Cancelled(7));
        assert_eq!(e.code(), 409);
        assert_eq!(e.kind(), "Cancelled");
        let v = e.to_value();
        assert_eq!(v["error"]["code"].as_str(), Some("Cancelled"));
        assert!(v["error"]["message"].as_str().unwrap().contains("7"));
        // Failures keep their 400 shape.
        let f = s.pool_error(PoolError::Failed("boom".into()));
        assert_eq!(f.code(), 400);
        assert_eq!(f.kind(), "Invalid");
        // Both 429 shapes advise a backoff.
        let q = s.pool_error(PoolError::QueueFull { capacity: 1 });
        assert_eq!(q.code(), 429);
        assert!(q.retry_after_ms().unwrap() >= 25);
        let r = s.pool_error(PoolError::RateLimited { retry_after_ms: 77 });
        assert_eq!(r.retry_after_ms(), Some(77));
    }

    #[test]
    fn sync_run_rejects_unbounded_input() {
        let s = server_with_user();
        let src = "pe Gen : producer { output o; process { emit(iteration); } }";
        let r = s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/run",
            jobj! { "source" => src, "input" => jobj! { "mode" => "unbounded", "pace_us" => 100 } },
        ));
        assert_eq!(r.status, 400, "{r:?}");
        assert!(r.body["error"]["message"].as_str().unwrap().contains("submit"), "{r:?}");
    }

    #[test]
    fn pool_stats_endpoint() {
        let s = server_with_user();
        s.handle(&ApiRequest::new(
            Method::Post,
            "/execution/zz46/run",
            jobj! { "source" => WF_SRC, "input" => 5 },
        ));
        let stats = get(&s, "/execution/pool/stats");
        assert!(stats.is_ok(), "{stats:?}");
        assert_eq!(stats.body["workers"].as_i64(), Some(DEFAULT_POOL_WORKERS as i64));
        assert!(stats.body["submitted"].as_i64().unwrap() >= 1);
        assert!(stats.body["completed"].as_i64().unwrap() >= 1);
    }

    #[test]
    fn resume_endpoint_answers_404_without_a_journal() {
        let s = server_with_user();
        let r = s.handle(&ApiRequest::new(Method::Post, "/execution/zz46/job/1/resume", Value::Null));
        assert_eq!(r.status, 404, "{r:?}");
        let bad = s.handle(&ApiRequest::new(Method::Post, "/execution/zz46/job/x/resume", Value::Null));
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn resume_endpoint_recovers_a_killed_checkpointed_job() {
        let dir = std::env::temp_dir().join(format!("laminar-server-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s =
            LaminarServer::with_durable_pool(Registry::in_memory(), ExecutionEngine::instant(), 2, 16, &dir)
                .unwrap();
        // Fault plans never cross the wire: arm the kill by submitting
        // directly to the pool, then drive recovery through the API.
        let req = ExecutionRequest::simple("zz46", WF_SRC, 9)
            .with_workflow("IsPrimeFlow")
            .with_checkpoints(3)
            .with_faults(laminar_engine::FaultPlan::parse("kill_at_epoch=1"));
        let id = s.pool().submit("zz46", req).unwrap();
        match s.pool().wait("zz46", id, std::time::Duration::from_secs(20)).unwrap() {
            laminar_engine::JobResult::Failed(..) => {}
            other => panic!("expected the injected kill, got {other:?}"),
        }
        // A foreign tenant cannot resume the job.
        let foreign =
            s.handle(&ApiRequest::new(Method::Post, format!("/execution/eve/job/{id}/resume"), Value::Null));
        assert_eq!(foreign.status, 404);
        let r =
            s.handle(&ApiRequest::new(Method::Post, format!("/execution/zz46/job/{id}/resume"), Value::Null));
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.body["jobId"].as_i64(), Some(id));
        assert_eq!(r.body["status"].as_str(), Some("queued"));
        // The resumed run completes and matches a plain enactment.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let result = loop {
            let r = get(&s, &format!("/execution/zz46/job/{id}/result"));
            assert!(r.is_ok(), "{r:?}");
            if r.body["status"].as_str() == Some("done") {
                break r;
            }
            assert!(std::time::Instant::now() < deadline, "resumed job never finished");
            std::thread::sleep(std::time::Duration::from_millis(1));
        };
        let direct = ExecutionEngine::instant()
            .run(&ExecutionRequest::simple("zz46", WF_SRC, 9).with_workflow("IsPrimeFlow"))
            .unwrap();
        assert_eq!(result.body["printed"].as_array().unwrap().len(), direct.printed.len(), "{result:?}");
        // A done job's journal is gone; a second resume finds nothing.
        let again =
            s.handle(&ApiRequest::new(Method::Post, format!("/execution/zz46/job/{id}/resume"), Value::Null));
        assert_eq!(again.status, 404, "a done job's journal is cleaned up: {again:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
