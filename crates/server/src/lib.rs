//! # laminar-server
//!
//! The Laminar server (paper §3.2): a layered architecture with
//!
//! * a **Controller layer** ([`api`]) that parses requests, routes them
//!   across the Table-3 endpoint set and shapes JSON responses;
//! * a **Service layer** ([`server::LaminarServer`]) holding the business
//!   logic, delegating persistence to the registry's DAO layer and
//!   execution to the engine;
//! * standardized **error envelopes** (§3.2.5) via
//!   [`laminar_registry::RegistryError::to_value`];
//! * an **HTTP/1.0-subset TCP front-end** ([`http`]) so remote clients
//!   exercise real sockets, plus an in-process path for local deployments.

pub mod api;
pub mod http;
pub mod server;

pub use api::{ApiRequest, ApiResponse, Method};
pub use http::{percent_decode, percent_encode, HttpServer};
pub use server::LaminarServer;
