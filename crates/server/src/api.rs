//! Request/response envelopes shared by the in-process and TCP paths.

use laminar_json::Value;

/// HTTP-style method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read.
    Get,
    /// Create.
    Post,
    /// Attach/replace.
    Put,
    /// Remove.
    Delete,
}

impl Method {
    /// Parse the wire form.
    pub fn parse(s: &str) -> Option<Method> {
        Some(match s.to_ascii_uppercase().as_str() {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            _ => return None,
        })
    }

    /// Wire form.
    pub fn as_str(&self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
        }
    }
}

/// An API request.
#[derive(Debug, Clone)]
pub struct ApiRequest {
    /// Method.
    pub method: Method,
    /// Path, e.g. `/registry/zz46/pe/add` (segments percent-decoded).
    pub path: String,
    /// JSON body (Null when absent).
    pub body: Value,
}

impl ApiRequest {
    /// Build a request.
    pub fn new(method: Method, path: impl Into<String>, body: Value) -> ApiRequest {
        ApiRequest { method, path: path.into(), body }
    }

    /// Path segments (empty segments dropped).
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// An API response.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiResponse {
    /// HTTP-style status code.
    pub status: u16,
    /// JSON body.
    pub body: Value,
}

impl ApiResponse {
    /// 200 with a body.
    pub fn ok(body: Value) -> ApiResponse {
        ApiResponse { status: 200, body }
    }

    /// An error response from a registry error (standard envelope).
    pub fn error(e: &laminar_registry::RegistryError) -> ApiResponse {
        ApiResponse { status: e.code() as u16, body: e.to_value() }
    }

    /// The unified v1 error envelope for errors minted outside the
    /// registry error type (routing, HTTP parsing).
    fn error_envelope(status: u16, code: &str, message: &str) -> ApiResponse {
        let mut detail = Value::Null;
        detail.set("code", code).set("status", status as i64).set("message", message);
        let mut body = Value::Null;
        body.set("error", detail);
        ApiResponse { status, body }
    }

    /// 404 for unknown routes.
    pub fn not_found(path: &str) -> ApiResponse {
        Self::error_envelope(404, "NoSuchEndpoint", &format!("no route for {path}"))
    }

    /// 400 for malformed requests.
    pub fn bad_request(message: &str) -> ApiResponse {
        Self::error_envelope(400, "BadRequest", message)
    }

    /// Whether the call succeeded.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_json::jobj;

    #[test]
    fn method_parse() {
        assert_eq!(Method::parse("get"), Some(Method::Get));
        assert_eq!(Method::parse("DELETE"), Some(Method::Delete));
        assert_eq!(Method::parse("PATCH"), None);
        assert_eq!(Method::Put.as_str(), "PUT");
    }

    #[test]
    fn segments_split() {
        let r = ApiRequest::new(Method::Get, "/registry/zz46/pe/all", Value::Null);
        assert_eq!(r.segments(), vec!["registry", "zz46", "pe", "all"]);
        let r = ApiRequest::new(Method::Get, "//a//b/", Value::Null);
        assert_eq!(r.segments(), vec!["a", "b"]);
    }

    #[test]
    fn response_constructors() {
        assert!(ApiResponse::ok(jobj! {"x" => 1}).is_ok());
        assert!(!ApiResponse::not_found("/nope").is_ok());
        let e = laminar_registry::RegistryError::Unauthorized("bad".into());
        let r = ApiResponse::error(&e);
        assert_eq!(r.status, 401);
        assert_eq!(r.body["error"]["code"].as_str(), Some("Unauthorized"));
    }

    #[test]
    fn every_error_constructor_answers_the_v1_envelope() {
        // One envelope shape across routing errors, HTTP-parse errors and
        // registry errors: {"error":{"code","status","message",...}}.
        let responses = [
            ApiResponse::not_found("/nope"),
            ApiResponse::bad_request("unreadable"),
            ApiResponse::error(&laminar_registry::RegistryError::Throttled {
                message: "slow down".into(),
                retry_after_ms: 40,
            }),
        ];
        for r in &responses {
            let detail = &r.body["error"];
            assert!(detail["code"].as_str().is_some(), "{r:?}");
            assert_eq!(detail["status"].as_i64(), Some(r.status as i64), "{r:?}");
            assert!(detail["message"].as_str().is_some(), "{r:?}");
        }
        assert_eq!(responses[2].body["error"]["retryAfterMs"].as_i64(), Some(40));
    }
}
