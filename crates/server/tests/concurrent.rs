//! The concurrency test tier: 16 client threads mixing register, search,
//! synchronous execute and submit+poll against one server over real TCP.
//!
//! Every response must be well-formed, every job result must match a
//! sequential run of the same workflow, and no request may observe
//! another tenant's state.

use laminar_engine::{ExecutionEngine, ExecutionRequest};
use laminar_json::{jobj, Value};
use laminar_server::api::Method;
use laminar_server::http::http_call;
use laminar_server::{ApiRequest, ApiResponse, HttpServer, LaminarServer};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const CLIENTS: usize = 16;

/// Per-tenant workflow source: the PE and workflow names are unique per
/// user (the registry's PE names are global with a shared-owner rule, so
/// identical names with different code would be rejected as duplicates).
fn wf_source(tenant: usize) -> String {
    format!(
        r#"
        pe Seq{tenant} : producer {{ output output; process {{ emit(iteration + 1); }} }}
        pe IsPrime{tenant} : iterative {{
            input num; output output;
            process {{
                let i = 2;
                let prime = num > 1;
                while i * i <= num {{ if num % i == 0 {{ prime = false; break; }} i = i + 1; }}
                if prime {{ emit(num); }}
            }}
        }}
        pe Print{tenant} : consumer {{ input num; process {{ print("tenant {tenant} prime", num); }} }}
        workflow Primes{tenant} {{
            doc "Prime printer of tenant {tenant}";
            nodes {{ s = Seq{tenant}; i = IsPrime{tenant}; p = Print{tenant}; }}
            connect s.output -> i.num;
            connect i.output -> p.num;
        }}
    "#
    )
}

fn iterations_for(tenant: usize) -> i64 {
    10 + tenant as i64
}

/// The ground truth: the same workflow run on a lone engine, sequentially.
fn expected_printed(tenant: usize) -> Vec<String> {
    let mut engine = ExecutionEngine::instant();
    let req = ExecutionRequest::simple("seq", &wf_source(tenant), iterations_for(tenant));
    engine.run(&req).unwrap().printed
}

fn call(addr: SocketAddr, method: Method, path: String, body: Value) -> ApiResponse {
    http_call(addr, &ApiRequest::new(method, path, body)).expect("transport-level success")
}

fn poll_result(addr: SocketAddr, user: &str, job: i64) -> ApiResponse {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let r = call(addr, Method::Get, format!("/execution/{user}/job/{job}/result"), Value::Null);
        if r.body["status"].as_str() == Some("done") || !r.is_ok() {
            return r;
        }
        assert!(Instant::now() < deadline, "job {job} of {user} never finished");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One tenant's mixed workload. Returns (user, async job id) for the
/// cross-tenant checks afterwards.
fn tenant_workload(addr: SocketAddr, tenant: usize) -> (String, i64) {
    let user = format!("user{tenant}");
    let source = wf_source(tenant);
    let expected = expected_printed(tenant);

    // Register + login.
    let r = call(
        addr,
        Method::Post,
        "/auth/register".into(),
        jobj! { "userName" => user.as_str(), "password" => "password" },
    );
    assert!(r.is_ok(), "register {user}: {r:?}");
    assert_eq!(r.body["userName"].as_str(), Some(user.as_str()));
    let r = call(
        addr,
        Method::Post,
        "/auth/login".into(),
        jobj! { "userName" => user.as_str(), "password" => "password" },
    );
    assert!(r.is_ok(), "login {user}: {r:?}");
    assert!(r.body["token"].as_str().unwrap().starts_with("tok-"));

    // Register the tenant's workflow (registers its PEs too).
    let r = call(
        addr,
        Method::Post,
        format!("/registry/{user}/workflow/add"),
        jobj! { "code" => source.as_str(), "entryPoint" => format!("primes{tenant}") },
    );
    assert!(r.is_ok(), "workflow add {user}: {r:?}");

    // Search: only the tenant's own workflow comes back.
    let r = call(addr, Method::Get, format!("/registry/{user}/search/prime/type/workflow"), Value::Null);
    assert!(r.is_ok(), "search {user}: {r:?}");
    let hits = r.body["hits"].as_array().unwrap();
    assert_eq!(hits.len(), 1, "{user} sees exactly their own workflow: {hits:?}");
    assert_eq!(hits[0]["name"].as_str(), Some(format!("primes{tenant}").as_str()));

    // PE listing: exactly the tenant's three PEs.
    let r = call(addr, Method::Get, format!("/registry/{user}/pe/all"), Value::Null);
    let pes = r.body.as_array().unwrap();
    assert_eq!(pes.len(), 3, "{user} owns exactly their own PEs: {pes:?}");
    for pe in pes {
        assert!(
            pe["peName"].as_str().unwrap().ends_with(&tenant.to_string()),
            "{user} sees a foreign PE: {pe:?}"
        );
    }

    // Synchronous execution.
    let r = call(
        addr,
        Method::Post,
        format!("/execution/{user}/run"),
        jobj! { "workflow" => format!("primes{tenant}"), "input" => iterations_for(tenant) },
    );
    assert!(r.is_ok(), "sync run {user}: {r:?}");
    let sync_printed: Vec<&str> =
        r.body["printed"].as_array().unwrap().iter().filter_map(Value::as_str).collect();
    assert_eq!(sync_printed, expected, "{user}: concurrent sync result diverges from sequential run");

    // Asynchronous submit + poll.
    let r = call(
        addr,
        Method::Post,
        format!("/execution/{user}/submit"),
        jobj! { "workflow" => format!("primes{tenant}"), "input" => iterations_for(tenant) },
    );
    assert!(r.is_ok(), "submit {user}: {r:?}");
    let job = r.body["jobId"].as_i64().unwrap();
    let r = poll_result(addr, &user, job);
    assert!(r.is_ok(), "job result {user}: {r:?}");
    let async_printed: Vec<&str> =
        r.body["printed"].as_array().unwrap().iter().filter_map(Value::as_str).collect();
    assert_eq!(async_printed, expected, "{user}: async result diverges from sequential run");

    // A malformed request still gets a well-formed 400 envelope under load.
    let r = call(addr, Method::Post, "/auth/register".into(), Value::Null);
    assert_eq!(r.status, 400);
    assert_eq!(r.body["error"]["code"].as_str(), Some("Invalid"));

    (user, job)
}

#[test]
fn sixteen_tenants_mixed_workload() {
    let http = HttpServer::start(LaminarServer::in_memory()).unwrap();
    let addr = http.addr();

    let handles: Vec<_> =
        (0..CLIENTS).map(|t| std::thread::spawn(move || tenant_workload(addr, t))).collect();
    let tenants: Vec<(String, i64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Cross-tenant checks after the storm: nobody can see anyone else's
    // registry entries or jobs.
    for (i, (user, _)) in tenants.iter().enumerate() {
        let other = &tenants[(i + 1) % tenants.len()];
        let r = call(
            addr,
            Method::Get,
            format!("/registry/{user}/workflow/name/primes{}", (i + 1) % tenants.len()),
            Value::Null,
        );
        assert_eq!(r.status, 404, "{user} can see {}'s workflow", other.0);
        let r = call(addr, Method::Get, format!("/execution/{user}/job/{}/status", other.1), Value::Null);
        assert_eq!(r.status, 404, "{user} can see {}'s job {}", other.0, other.1);
    }

    // The user list saw every registration exactly once.
    let r = call(addr, Method::Get, "/auth/all".into(), Value::Null);
    let mut names: Vec<&str> = r.body.as_array().unwrap().iter().filter_map(Value::as_str).collect();
    names.sort_unstable();
    let mut expected: Vec<String> = (0..CLIENTS).map(|t| format!("user{t}")).collect();
    expected.sort();
    assert_eq!(names, expected.iter().map(String::as_str).collect::<Vec<_>>());

    // Pool accounting is consistent: one sync + one async job per tenant.
    let r = call(addr, Method::Get, "/execution/pool/stats".into(), Value::Null);
    assert!(r.is_ok(), "{r:?}");
    assert_eq!(r.body["completed"].as_i64(), Some(2 * CLIENTS as i64));
    assert_eq!(r.body["failed"].as_i64(), Some(0));
    assert_eq!(r.body["running"].as_i64(), Some(0));
    assert_eq!(r.body["queued"].as_i64(), Some(0));

    http.stop();
}

#[test]
fn reads_do_not_serialize_behind_executions() {
    // A deliberately slow engine: each cold run sleeps ~400ms
    // provisioning. Reads issued while the job runs must come back far
    // sooner than the job itself — under the old global server mutex they
    // queued behind it.
    let server = laminar_server::LaminarServer::with_pool(
        laminar_registry::Registry::in_memory(),
        ExecutionEngine::instant().with_provision_scale(1000),
        2,
        16,
    );
    let http = HttpServer::start(server).unwrap();
    let addr = http.addr();
    call(
        addr,
        Method::Post,
        "/auth/register".into(),
        jobj! { "userName" => "reader", "password" => "password" },
    );
    let r = call(
        addr,
        Method::Post,
        "/registry/reader/workflow/add".into(),
        jobj! { "code" => wf_source(99).as_str(), "entryPoint" => "primes99" },
    );
    assert!(r.is_ok(), "{r:?}");

    let r = call(
        addr,
        Method::Post,
        "/execution/reader/submit".into(),
        jobj! { "workflow" => "primes99", "input" => 5 },
    );
    assert!(r.is_ok(), "{r:?}");
    let job = r.body["jobId"].as_i64().unwrap();

    // While the job provisions, reads answer quickly and the job is still
    // observable as queued/running — proof the read path did not wait for
    // the execution to finish.
    let mut observed_in_flight = false;
    for _ in 0..20 {
        let t0 = Instant::now();
        let search =
            call(addr, Method::Get, "/registry/reader/search/prime/type/workflow".into(), Value::Null);
        assert!(search.is_ok(), "{search:?}");
        assert!(
            t0.elapsed() < Duration::from_millis(300),
            "search took {:?} — serialized behind the execution",
            t0.elapsed()
        );
        let status = call(addr, Method::Get, format!("/execution/reader/job/{job}/status"), Value::Null);
        match status.body["status"].as_str().unwrap() {
            "queued" | "running" => observed_in_flight = true,
            _ => break,
        }
    }
    assert!(observed_in_flight, "job finished before any read could overlap it");

    let r = poll_result(addr, "reader", job);
    assert!(r.is_ok(), "{r:?}");
    http.stop();
}
