//! A VOTable (IVOA XML table format) writer and parser — the astropy
//! substitution for the Internal Extinction workflow.
//!
//! Supports the subset the workflow needs: one `TABLE` with `FIELD`
//! declarations and `TABLEDATA` rows. The parser is defensive (the VO
//! service is "remote"), rejecting malformed nesting and recovering field
//! types.

use laminar_json::{Map, Value};

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// IVOA datatype: `"char"`, `"double"`, `"int"`.
    pub datatype: String,
}

/// An in-memory VOTable.
#[derive(Debug, Clone, PartialEq)]
pub struct VoTable {
    /// Column declarations.
    pub fields: Vec<Field>,
    /// Rows, in field order.
    pub rows: Vec<Vec<Value>>,
}

impl VoTable {
    /// Build an empty table with the given fields.
    pub fn new(fields: Vec<Field>) -> VoTable {
        VoTable { fields, rows: Vec::new() }
    }

    /// Append a row (must match the field count).
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.fields.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Rows as JSON objects keyed by field name (what the script layer
    /// consumes).
    pub fn rows_as_objects(&self) -> Vec<Value> {
        self.rows
            .iter()
            .map(|row| {
                let mut m = Map::new();
                for (f, v) in self.fields.iter().zip(row) {
                    m.insert(f.name.clone(), v.clone());
                }
                Value::Object(m)
            })
            .collect()
    }

    /// Serialize to VOTable XML.
    pub fn to_xml(&self) -> String {
        let mut out =
            String::from("<?xml version=\"1.0\"?>\n<VOTABLE version=\"1.4\">\n <RESOURCE>\n  <TABLE>\n");
        for f in &self.fields {
            out.push_str(&format!(
                "   <FIELD name=\"{}\" datatype=\"{}\"/>\n",
                escape(&f.name),
                escape(&f.datatype)
            ));
        }
        out.push_str("   <DATA>\n    <TABLEDATA>\n");
        for row in &self.rows {
            out.push_str("     <TR>");
            for v in row {
                let text = match v {
                    Value::Str(s) => escape(s),
                    other => other.to_string(),
                };
                out.push_str(&format!("<TD>{text}</TD>"));
            }
            out.push_str("</TR>\n");
        }
        out.push_str("    </TABLEDATA>\n   </DATA>\n  </TABLE>\n </RESOURCE>\n</VOTABLE>\n");
        out
    }

    /// Parse VOTable XML produced by [`Self::to_xml`] (or a compatible
    /// service).
    pub fn parse(xml: &str) -> Result<VoTable, String> {
        let mut fields = Vec::new();
        let mut rows = Vec::new();
        let mut pos = 0;
        // FIELD declarations.
        while let Some(start) = xml[pos..].find("<FIELD") {
            let abs = pos + start;
            let end = xml[abs..].find("/>").ok_or("unterminated FIELD tag")? + abs;
            let tag = &xml[abs..end];
            let name = attr(tag, "name").ok_or("FIELD missing name attribute")?;
            let datatype = attr(tag, "datatype").unwrap_or_else(|| "char".to_string());
            fields.push(Field { name, datatype });
            pos = end;
        }
        if fields.is_empty() {
            return Err("VOTable has no FIELD declarations".into());
        }
        // TABLEDATA rows.
        let data_start = xml.find("<TABLEDATA>").ok_or("missing TABLEDATA")? + "<TABLEDATA>".len();
        let data_end = xml.find("</TABLEDATA>").ok_or("missing </TABLEDATA>")?;
        if data_end < data_start {
            return Err("TABLEDATA tags out of order".into());
        }
        let body = &xml[data_start..data_end];
        let mut rpos = 0;
        while let Some(tr) = body[rpos..].find("<TR>") {
            let rstart = rpos + tr + 4;
            let rend = body[rstart..].find("</TR>").ok_or("unterminated TR")? + rstart;
            let row_xml = &body[rstart..rend];
            let mut row = Vec::new();
            let mut cpos = 0;
            while let Some(td) = row_xml[cpos..].find("<TD>") {
                let cstart = cpos + td + 4;
                let cend = row_xml[cstart..].find("</TD>").ok_or("unterminated TD")? + cstart;
                let raw = unescape(&row_xml[cstart..cend]);
                let field_idx = row.len();
                let value = match fields.get(field_idx).map(|f| f.datatype.as_str()) {
                    Some("double") => raw
                        .trim()
                        .parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| format!("bad double '{raw}'"))?,
                    Some("int") => {
                        raw.trim().parse::<i64>().map(Value::Int).map_err(|_| format!("bad int '{raw}'"))?
                    }
                    _ => Value::Str(raw),
                };
                row.push(value);
                cpos = cend + 5;
            }
            if row.len() != fields.len() {
                return Err(format!("row has {} cells, expected {}", row.len(), fields.len()));
            }
            rows.push(row);
            rpos = rend + 5;
        }
        Ok(VoTable { fields, rows })
    }
}

/// Extract an XML attribute value from a tag slice.
fn attr(tag: &str, name: &str) -> Option<String> {
    let needle = format!("{name}=\"");
    let start = tag.find(&needle)? + needle.len();
    let end = tag[start..].find('"')? + start;
    Some(unescape(&tag[start..end]))
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<").replace("&gt;", ">").replace("&quot;", "\"").replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VoTable {
        let mut t = VoTable::new(vec![
            Field { name: "name".into(), datatype: "char".into() },
            Field { name: "logr25".into(), datatype: "double".into() },
            Field { name: "mtype".into(), datatype: "int".into() },
        ]);
        t.push_row(vec![Value::Str("NGC1042".into()), Value::Float(0.35), Value::Int(6)]);
        t.push_row(vec![Value::Str("UGC5373".into()), Value::Float(0.12), Value::Int(9)]);
        t
    }

    #[test]
    fn xml_round_trip() {
        let t = sample();
        let xml = t.to_xml();
        assert!(xml.contains("<VOTABLE"));
        assert!(xml.contains("<FIELD name=\"logr25\" datatype=\"double\"/>"));
        let back = VoTable::parse(&xml).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn rows_as_objects_keyed_by_field() {
        let objs = sample().rows_as_objects();
        assert_eq!(objs[0]["name"].as_str(), Some("NGC1042"));
        assert_eq!(objs[0]["logr25"].as_f64(), Some(0.35));
        assert_eq!(objs[1]["mtype"].as_i64(), Some(9));
    }

    #[test]
    fn escaping_survives() {
        let mut t = VoTable::new(vec![Field { name: "name".into(), datatype: "char".into() }]);
        t.push_row(vec![Value::Str("A&B <galaxy> \"x\"".into())]);
        let back = VoTable::parse(&t.to_xml()).unwrap();
        assert_eq!(back.rows[0][0].as_str(), Some("A&B <galaxy> \"x\""));
    }

    #[test]
    fn malformed_rejected() {
        assert!(VoTable::parse("<VOTABLE></VOTABLE>").is_err());
        assert!(VoTable::parse("<FIELD name=\"x\"/> no tabledata").is_err());
        let bad_double = r#"<FIELD name="v" datatype="double"/><TABLEDATA><TR><TD>abc</TD></TR></TABLEDATA>"#;
        assert!(VoTable::parse(bad_double).is_err());
        let short_row = r#"<FIELD name="a"/><FIELD name="b"/><TABLEDATA><TR><TD>1</TD></TR></TABLEDATA>"#;
        assert!(VoTable::parse(short_row).is_err());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = sample();
        t.push_row(vec![Value::Int(1)]);
    }
}
