//! # laminar-workloads
//!
//! The computational showcases of paper §5 plus supporting substrates:
//!
//! * [`isprime`] — the IsPrime workflow of Figure 1 / Listing 3;
//! * [`wordcount`] — the stateful group-by MapReduce-style PE of Listing 2,
//!   grown into a full workflow;
//! * [`astro`] — the Internal Extinction astrophysics workflow (§5.2):
//!   a synthetic galaxy catalog, a simulated Virtual Observatory service
//!   with configurable latency, and a from-scratch [`votable`] XML
//!   writer/parser standing in for astropy;
//! * [`streaming`] — a long-running source-driven sensor scenario
//!   (windowed aggregation + live alerts) exercising the enactment event
//!   stream: first results surface long before the run completes;
//! * [`sustained`] — the many-tenants serving pulse of the
//!   `sustained_load` bench: tiny jobs, full event-stream structure.

pub mod astro;
pub mod isprime;
pub mod streaming;
pub mod sustained;
pub mod votable;
pub mod wordcount;
