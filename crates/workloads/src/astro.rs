//! The Internal Extinction astrophysics workflow (paper §5.2, Figure 10)
//! and its simulated Virtual Observatory substrate.
//!
//! Pipeline: `readRaDec` loads coordinates from a staged resource file →
//! `getVoTable` queries the (simulated) VO service per coordinate →
//! `filterColumns` parses the VOTable and keeps the columns of interest →
//! `internalExt` computes the internal extinction. The VO service is the
//! latency source that makes the Simple mapping slow and the Multi mapping
//! fast in Table 5.

use crate::votable::{Field, VoTable};
use laminar_json::Value;
use laminar_script::{ErrorKind, Host, ScriptError};
use parking_lot::Mutex;
use std::time::Duration;

/// The workflow source (Figure 10's four PEs).
pub const SOURCE: &str = r#"
pe ReadRaDec : producer {
    doc "Loads coordinate pairs from the input file and streams them";
    output output;
    process {
        let lines = resources.lines(input);
        for l in lines { emit(l); }
    }
}

pe GetVoTable : iterative {
    doc "Downloads the VOTable for a coordinate from the Virtual Observatory";
    import astroquery;
    input coords;
    output output;
    process {
        let parts = split(coords);
        let xml = vo.fetch(float(parts[0]), float(parts[1]));
        emit([coords, xml]);
    }
}

pe FilterColumns : iterative {
    doc "Parses the VOTable and keeps the logr25 and mtype columns";
    import astropy;
    input table;
    output output;
    process {
        let rows = astropy.parse_votable(table[1]);
        let kept = [];
        for r in rows {
            kept = push(kept, {"name": r["name"], "logr25": r["logr25"], "mtype": r["mtype"]});
        }
        emit([table[0], kept]);
    }
}

pe InternalExt : consumer {
    doc "Computes the internal extinction of each galaxy and prints it";
    input rows;
    process {
        for r in rows[1] {
            let mtype = r["mtype"];
            let k = 0.0;
            if mtype <= 3 { k = 1.57; }
            else if mtype <= 5 { k = 1.35; }
            else if mtype <= 7 { k = 1.12; }
            else { k = 0.86; }
            let ext = k * r["logr25"];
            print(r["name"], "extinction", round(ext, 3));
        }
    }
}

workflow Astrophysics {
    doc "A workflow to compute the internal extinction of galaxies";
    nodes { rd = ReadRaDec; vo = GetVoTable; filt = FilterColumns; ext = InternalExt; }
    connect rd.output -> vo.coords;
    connect vo.output -> filt.table;
    connect filt.output -> ext.rows;
}
"#;

/// Deterministic synthetic coordinate catalog: `n` "ra dec" lines.
pub fn coordinates_file(n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        // Spread over the sky deterministically.
        let ra = (i as f64 * 47.13) % 360.0;
        let dec = ((i as f64 * 13.7) % 180.0) - 90.0;
        out.push_str(&format!("{ra:.4} {dec:.4}\n"));
    }
    out
}

/// Statistics the simulated VO service tracks.
#[derive(Debug, Default, Clone, Copy)]
pub struct VoStats {
    /// Queries served.
    pub queries: u64,
}

/// The simulated Virtual Observatory service: returns a deterministic
/// VOTable per coordinate after a configurable service latency. This is
/// the stand-in for the AMIGA VO endpoint the paper queries.
pub struct VoService {
    latency: Duration,
    rows_per_table: usize,
    stats: Mutex<VoStats>,
}

impl VoService {
    /// Service with the given per-request latency and table size.
    pub fn new(latency: Duration, rows_per_table: usize) -> VoService {
        VoService { latency, rows_per_table, stats: Mutex::new(VoStats::default()) }
    }

    /// Table-5-calibrated profile: 20ms per query, 4 rows per table.
    pub fn table5() -> VoService {
        VoService::new(Duration::from_millis(20), 4)
    }

    /// Instant profile for unit tests.
    pub fn instant() -> VoService {
        VoService::new(Duration::ZERO, 4)
    }

    /// Queries served so far.
    pub fn stats(&self) -> VoStats {
        *self.stats.lock()
    }

    /// Build the deterministic catalog slice for a coordinate.
    pub fn table_for(&self, ra: f64, dec: f64) -> VoTable {
        let mut t = VoTable::new(vec![
            Field { name: "name".into(), datatype: "char".into() },
            Field { name: "logr25".into(), datatype: "double".into() },
            Field { name: "mtype".into(), datatype: "int".into() },
        ]);
        // Deterministic pseudo-galaxies derived from the coordinate.
        let seed = ((ra * 1000.0) as i64).wrapping_mul(31).wrapping_add((dec * 1000.0) as i64);
        for i in 0..self.rows_per_table {
            let h = seed.wrapping_mul(6364136223846793005).wrapping_add(i as i64 * 1442695040888963407);
            let logr25 = ((h.unsigned_abs() % 1000) as f64) / 1000.0; // 0.000..0.999
            let mtype = (h.unsigned_abs() / 1000 % 10) as i64; // 0..9
            t.push_row(vec![
                Value::Str(format!("GAL{:03}-{i}", h.unsigned_abs() % 1000)),
                Value::Float(logr25),
                Value::Int(mtype),
            ]);
        }
        t
    }
}

impl Host for VoService {
    fn call(&self, module: &str, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        match (module, name) {
            ("vo", "fetch") => {
                let (ra, dec) = match args {
                    [a, b] => (
                        a.as_f64().ok_or_else(|| {
                            ScriptError::new(ErrorKind::ArgumentError, "vo.fetch: ra must be a number")
                        })?,
                        b.as_f64().ok_or_else(|| {
                            ScriptError::new(ErrorKind::ArgumentError, "vo.fetch: dec must be a number")
                        })?,
                    ),
                    _ => return Err(ScriptError::new(ErrorKind::ArgumentError, "vo.fetch(ra, dec)")),
                };
                if !(0.0..360.0).contains(&ra) || !(-90.0..=90.0).contains(&dec) {
                    return Err(ScriptError::new(
                        ErrorKind::HostError,
                        format!("vo.fetch: coordinate out of range (ra={ra}, dec={dec})"),
                    ));
                }
                // The "download": pay the service latency.
                if !self.latency.is_zero() {
                    std::thread::sleep(self.latency);
                }
                self.stats.lock().queries += 1;
                Ok(Value::Str(self.table_for(ra, dec).to_xml()))
            }
            ("astropy", "parse_votable") => match args {
                [Value::Str(xml)] => {
                    let table = VoTable::parse(xml).map_err(|e| {
                        ScriptError::new(ErrorKind::HostError, format!("VOTable parse failed: {e}"))
                    })?;
                    Ok(Value::Array(table.rows_as_objects()))
                }
                _ => Err(ScriptError::new(ErrorKind::ArgumentError, "astropy.parse_votable(xml)")),
            },
            _ => {
                Err(ScriptError::new(ErrorKind::NameError, format!("unknown host function {module}.{name}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_dataflow::mapping::{Mapping, MultiMapping, SimpleMapping};
    use laminar_dataflow::{RunOptions, WorkflowGraph};
    use std::sync::Arc;

    fn run_astro(
        mapping: &dyn Mapping,
        n_coords: usize,
        processes: usize,
        latency: Duration,
    ) -> laminar_dataflow::RunResult {
        let service = Arc::new(VoService::new(latency, 4));
        // Stage the coordinates through a resources host shim.
        let coords = coordinates_file(n_coords);
        struct Resources {
            text: String,
            inner: Arc<VoService>,
        }
        impl Host for Resources {
            fn call(&self, module: &str, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
                if module == "resources" && name == "lines" {
                    return Ok(Value::Array(
                        self.text.lines().filter(|l| !l.is_empty()).map(|l| Value::Str(l.into())).collect(),
                    ));
                }
                self.inner.call(module, name, args)
            }
        }
        let host: Arc<dyn Host + Send + Sync> =
            Arc::new(Resources { text: coords, inner: Arc::clone(&service) });
        let graph = WorkflowGraph::from_script_with_host(SOURCE, "Astrophysics", host).unwrap();
        let options = RunOptions::data(vec![Value::Str("coordinates.txt".into())]).with_processes(processes);
        mapping.execute(&graph, &options).unwrap()
    }

    #[test]
    fn workflow_parses_and_validates() {
        let g = WorkflowGraph::from_script(SOURCE, "Astrophysics").unwrap();
        assert_eq!(g.len(), 4);
        assert!(g.validate().is_ok());
        assert_eq!(g.roots().len(), 1);
    }

    #[test]
    fn end_to_end_prints_extinctions() {
        let r = run_astro(&SimpleMapping, 5, 1, Duration::ZERO);
        // 5 coordinates × 4 galaxies per table.
        assert_eq!(r.printed.len(), 20);
        for line in &r.printed {
            assert!(line.contains("extinction"), "line: {line}");
        }
        assert_eq!(r.stats.processed["GetVoTable"], 5);
    }

    #[test]
    fn multi_matches_simple_output_multiset() {
        let mut a: Vec<String> = run_astro(&SimpleMapping, 8, 1, Duration::ZERO).printed;
        let mut b: Vec<String> = run_astro(&MultiMapping, 8, 5, Duration::ZERO).printed;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn latency_makes_multi_faster() {
        // The Table 5 mechanism: per-coordinate service latency is serial
        // under Simple but overlapped under Multi.
        let lat = Duration::from_millis(8);
        let t_simple = run_astro(&SimpleMapping, 12, 1, lat).stats.elapsed;
        let t_multi = run_astro(&MultiMapping, 12, 5, lat).stats.elapsed;
        assert!(
            t_multi < t_simple,
            "Multi ({t_multi:?}) must beat Simple ({t_simple:?}) under service latency"
        );
    }

    #[test]
    fn vo_service_determinism_and_stats() {
        let s = VoService::instant();
        let t1 = s.table_for(120.5, -30.25);
        let t2 = s.table_for(120.5, -30.25);
        assert_eq!(t1, t2);
        let other = s.table_for(121.5, -30.25);
        assert_ne!(t1, other);
        s.call("vo", "fetch", &[Value::Float(10.0), Value::Float(10.0)]).unwrap();
        assert_eq!(s.stats().queries, 1);
    }

    #[test]
    fn vo_service_rejects_bad_coordinates() {
        let s = VoService::instant();
        assert!(s.call("vo", "fetch", &[Value::Float(400.0), Value::Float(0.0)]).is_err());
        assert!(s.call("vo", "fetch", &[Value::Float(10.0)]).is_err());
        assert!(s.call("astropy", "parse_votable", &[Value::Str("junk".into())]).is_err());
    }

    #[test]
    fn coordinates_file_shape() {
        let f = coordinates_file(10);
        assert_eq!(f.lines().count(), 10);
        for line in f.lines() {
            let parts: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(parts.len(), 2);
            let ra: f64 = parts[0].parse().unwrap();
            let dec: f64 = parts[1].parse().unwrap();
            assert!((0.0..360.0).contains(&ra));
            assert!((-90.0..=90.0).contains(&dec));
        }
    }
}
