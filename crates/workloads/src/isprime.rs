//! The IsPrime showcase (paper §5.1, Listing 3, Figures 1 and 9).
//!
//! `NumberProducer` streams random numbers, `IsPrime` filters the primes,
//! `PrintPrime` prints them — the canonical three-stage pipeline.

/// The complete workflow source, faithful to Listing 3.
pub const SOURCE: &str = r#"
pe NumberProducer : producer {
    doc "Generates random numbers and streams them out";
    output output;
    process {
        emit(randint(1, 1000));
    }
}

pe IsPrime : iterative {
    doc "Checks if the given input is prime and forwards primes";
    input num;
    output output;
    process {
        print("before checking data -", num, "- is prime or not");
        let i = 2;
        let prime = num > 1;
        while i * i <= num {
            if num % i == 0 { prime = false; break; }
            i = i + 1;
        }
        if prime { emit(num); }
    }
}

pe PrintPrime : consumer {
    doc "Prints the prime numbers it receives";
    input num;
    process {
        print("the num", num, "is prime");
    }
}

workflow IsPrime {
    doc "Workflow that prints random prime numbers";
    nodes { pe1 = NumberProducer; pe2 = IsPrime; pe3 = PrintPrime; }
    connect pe1.output -> pe2.num;
    connect pe2.output -> pe3.num;
}
"#;

/// A deterministic variant that streams 1,2,3,… instead of random numbers
/// (used by tests that assert exact outputs).
pub const SOURCE_SEQUENTIAL: &str = r#"
pe NumberProducer : producer {
    doc "Streams the sequence 1, 2, 3, ...";
    output output;
    process { emit(iteration + 1); }
}

pe IsPrime : iterative {
    doc "Checks if the given input is prime and forwards primes";
    input num;
    output output;
    process {
        let i = 2;
        let prime = num > 1;
        while i * i <= num {
            if num % i == 0 { prime = false; break; }
            i = i + 1;
        }
        if prime { emit(num); }
    }
}

pe PrintPrime : consumer {
    doc "Prints the prime numbers it receives";
    input num;
    process { print("the num", num, "is prime"); }
}

workflow IsPrime {
    doc "Workflow that prints sequential prime numbers";
    nodes { pe1 = NumberProducer; pe2 = IsPrime; pe3 = PrintPrime; }
    connect pe1.output -> pe2.num;
    connect pe2.output -> pe3.num;
}
"#;

/// Build the abstract graph from [`SOURCE`].
pub fn build_graph() -> laminar_dataflow::WorkflowGraph {
    laminar_dataflow::WorkflowGraph::from_script(SOURCE, "IsPrime").expect("showcase source is valid")
}

/// Reference primality test used by assertions.
pub fn is_prime(n: i64) -> bool {
    if n < 2 {
        return false;
    }
    let mut i = 2;
    while i * i <= n {
        if n % i == 0 {
            return false;
        }
        i += 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_dataflow::mapping::{Mapping, MultiMapping, SimpleMapping};
    use laminar_dataflow::RunOptions;

    #[test]
    fn reference_primality() {
        let primes: Vec<i64> = (0..30).filter(|&n| is_prime(n)).collect();
        assert_eq!(primes, vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
    }

    #[test]
    fn graph_matches_figure1() {
        let g = build_graph();
        assert_eq!(g.len(), 3);
        assert_eq!(g.roots().len(), 1);
        assert!(g.validate().is_ok());
        // Figure 1: 5 processes → 1 + 2 + 2.
        let plan = laminar_dataflow::ConcretePlan::distribute(&g, 5).unwrap();
        assert_eq!(plan.instances, vec![1, 2, 2]);
    }

    #[test]
    fn random_run_emits_only_primes() {
        let g = build_graph();
        let r = SimpleMapping.execute(&g, &RunOptions::iterations(50)).unwrap();
        for line in &r.printed {
            if let Some(rest) = line.strip_prefix("the num ") {
                let n: i64 = rest.split_whitespace().next().unwrap().parse().unwrap();
                assert!(is_prime(n), "printed non-prime {n}");
            }
        }
    }

    #[test]
    fn listing4_configuration_multi_five() {
        // client.run(graph, input=5, process=MULTI, args={'num':5})
        let g = build_graph();
        let r = MultiMapping.execute(&g, &RunOptions::iterations(5).with_processes(5)).unwrap();
        assert_eq!(r.stats.processed["NumberProducer"], 5);
        assert_eq!(r.stats.instances["IsPrime"], 2);
        assert_eq!(r.stats.instances["PrintPrime"], 2);
    }

    #[test]
    fn sequential_variant_prints_known_primes() {
        let g = laminar_dataflow::WorkflowGraph::from_script(SOURCE_SEQUENTIAL, "IsPrime").unwrap();
        let r = SimpleMapping.execute(&g, &RunOptions::iterations(10)).unwrap();
        assert_eq!(
            r.printed,
            vec!["the num 2 is prime", "the num 3 is prime", "the num 5 is prime", "the num 7 is prime",]
        );
    }
}
