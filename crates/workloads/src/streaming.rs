//! A long-running, source-driven streaming scenario: a sensor fleet
//! polled one reading per iteration, windowed per-sensor aggregation, and
//! live alerts — the workload shape the enactment event stream exists
//! for.
//!
//! Unlike the batch showcases (IsPrime, Astrophysics), value here arrives
//! *during* the run: the window PE emits an aggregate every
//! [`WINDOW`] readings per sensor, so the first terminal output appears
//! after a small prefix of the input while the source keeps producing.
//! "Time to first result" is therefore a small fraction of total runtime
//! — the property `streaming_latency` (BENCH_PR4.json) measures and the
//! tests below pin.
//!
//! Since the cancellation PR the scenario runs in its natural mode:
//! **unbounded** ([`unbounded_options`]) — the fleet is polled until the
//! run's `CancelToken` fires, and the stream of window aggregates is
//! sealed by the `Cancelled` marker. Fixed reading counts remain only
//! where an exact workload size is the point (benchmarks, window-count
//! assertions).

use laminar_json::{jarr, Value};
use laminar_script::{ErrorKind, Host, ScriptError};
use parking_lot::Mutex;
use std::time::Duration;

/// Readings per sensor folded into one window aggregate. The same value
/// appears as a literal inside [`SOURCE`] (`% 8` / `/ 8` in
/// `WindowStats`) — the `window_constant_matches_the_script` test pins
/// the two together, so change both or neither.
pub const WINDOW: usize = 8;

/// The workflow source: poll → window → (terminal stats + live alerts).
///
/// `SensorPoll` drives the run: each iteration fetches one reading from
/// the (simulated) sensor fleet — the inter-arrival latency lives in the
/// host, like a real message-bus consumer. `WindowStats` groups readings
/// by sensor id and emits `[sensor, count, mean]` on its terminal
/// `output` port every [`WINDOW`] readings; hot windows (mean > 0.75)
/// additionally go to `alerts`, which `AlertPrint` reports live.
pub const SOURCE: &str = r#"
pe SensorPoll : producer {
    doc "Polls the sensor fleet: one reading [sensor, value] per iteration";
    output output;
    process {
        emit(sensor.read(iteration));
    }
}

pe WindowStats : generic {
    doc "Folds readings into per-sensor window aggregates of mean value";
    input reading groupby 0;
    output output;
    output alerts;
    init { state.n = {}; state.sum = {}; }
    process {
        let id = reading[0];
        state.n[id] = get(state.n, id, 0) + 1;
        state.sum[id] = get(state.sum, id, 0) + reading[1];
        if state.n[id] % 8 == 0 {
            let mean = state.sum[id] / 8;
            emit([id, state.n[id], mean]);
            if mean > 0.75 { emit("alerts", [id, mean]); }
            state.sum[id] = 0;
        }
    }
}

pe AlertPrint : consumer {
    doc "Reports hot windows as they happen";
    input alert;
    process { print("ALERT sensor", alert[0], "mean", round(alert[1], 3)); }
}

workflow SensorWindows {
    doc "Streaming sensor aggregation with windowed stats and live alerts";
    nodes { poll = SensorPoll; win = WindowStats; alert = AlertPrint; }
    connect poll.output -> win.reading;
    connect win.alerts -> alert.alert;
}
"#;

/// Statistics the simulated fleet tracks.
#[derive(Debug, Default, Clone, Copy)]
pub struct SensorStats {
    /// Readings served.
    pub reads: u64,
}

/// The simulated sensor fleet: `sensors` deterministic sources, one
/// reading per poll, each poll paying an inter-arrival latency — the
/// "source-driven" part of the scenario.
pub struct SensorFleet {
    sensors: usize,
    latency: Duration,
    stats: Mutex<SensorStats>,
}

impl SensorFleet {
    /// A fleet of `sensors` sensors with `latency` between readings.
    pub fn new(sensors: usize, latency: Duration) -> SensorFleet {
        SensorFleet { sensors: sensors.max(1), latency, stats: Mutex::new(SensorStats::default()) }
    }

    /// Zero-latency fleet for unit tests.
    pub fn instant(sensors: usize) -> SensorFleet {
        SensorFleet::new(sensors, Duration::ZERO)
    }

    /// Readings served so far.
    pub fn stats(&self) -> SensorStats {
        *self.stats.lock()
    }

    /// Deterministic reading for poll `i`: `[sensor_id, value]` with the
    /// value in `0.0..1.0`.
    pub fn reading(&self, i: i64) -> Value {
        let sensor = (i.rem_euclid(self.sensors as i64)) as usize;
        let h = (i.wrapping_mul(2654435761)).wrapping_add(sensor as i64 * 97);
        let value = (h.unsigned_abs() % 1000) as f64 / 1000.0;
        jarr![format!("s{sensor}"), value]
    }
}

impl Host for SensorFleet {
    fn call(&self, module: &str, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        match (module, name) {
            ("sensor", "read") => {
                let i = args
                    .first()
                    .and_then(Value::as_i64)
                    .ok_or_else(|| ScriptError::new(ErrorKind::ArgumentError, "sensor.read(iteration)"))?;
                if !self.latency.is_zero() {
                    std::thread::sleep(self.latency);
                }
                self.stats.lock().reads += 1;
                Ok(self.reading(i))
            }
            _ => {
                Err(ScriptError::new(ErrorKind::NameError, format!("unknown host function {module}.{name}")))
            }
        }
    }
}

/// Build the streaming graph over a fleet.
pub fn build_graph(fleet: std::sync::Arc<SensorFleet>) -> laminar_dataflow::WorkflowGraph {
    laminar_dataflow::WorkflowGraph::from_script_with_host(SOURCE, "SensorWindows", fleet)
        .expect("streaming source is valid")
}

/// Options for the scenario's natural mode: an **unbounded** enactment
/// that polls the fleet until `cancel` fires. This is what the sensor
/// workload is *for* — a fleet does not stop producing after N readings;
/// the run ends when the operator (or the server's
/// `DELETE /execution/{user}/job/{id}`) says so, and the window
/// aggregates it emitted up to that point are a valid stream prefix.
/// Bounded runs (`RunOptions::iterations`) remain available for
/// benchmarks that need an exact reading count.
pub fn unbounded_options(
    processes: usize,
    pace: Duration,
    cancel: laminar_dataflow::CancelToken,
) -> laminar_dataflow::RunOptions {
    laminar_dataflow::RunOptions::unbounded(pace, cancel).with_processes(processes)
}

/// Window aggregates a run of `readings` polls over `sensors` sensors
/// produces (the expected terminal output count).
pub fn expected_windows(readings: usize, sensors: usize) -> usize {
    let sensors = sensors.max(1);
    let per_sensor_full = readings / sensors;
    let extra = readings % sensors;
    (0..sensors).map(|s| (per_sensor_full + usize::from(s < extra)) / WINDOW).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_dataflow::mapping::{Mapping, MpiMapping, MultiMapping, RedisMapping, SimpleMapping};
    use laminar_dataflow::{fold_events, RecordingObserver, RunEvent, RunOptions};
    use std::sync::Arc;

    fn run(
        mapping: &dyn Mapping,
        readings: i64,
        sensors: usize,
        processes: usize,
        latency: Duration,
    ) -> laminar_dataflow::RunResult {
        let graph = build_graph(Arc::new(SensorFleet::new(sensors, latency)));
        mapping.execute(&graph, &RunOptions::iterations(readings).with_processes(processes)).unwrap()
    }

    #[test]
    fn window_constant_matches_the_script() {
        // WINDOW exists on the Rust side (expected_windows, bench config)
        // while WindowStats computes with literals; this pins them.
        assert!(
            SOURCE.contains(&format!("% {WINDOW} == 0")),
            "WindowStats' window check diverged from WINDOW = {WINDOW}"
        );
        assert!(
            SOURCE.contains(&format!("/ {WINDOW};")),
            "WindowStats' mean divisor diverged from WINDOW = {WINDOW}"
        );
    }

    #[test]
    fn graph_validates_and_windows_are_exact() {
        let graph = build_graph(Arc::new(SensorFleet::instant(4)));
        assert_eq!(graph.len(), 3);
        assert!(graph.validate().is_ok());
        let r = run(&SimpleMapping, 64, 4, 1, Duration::ZERO);
        // 64 readings over 4 sensors = 16 each = 2 full windows each.
        assert_eq!(r.port_values("WindowStats", "output").len(), expected_windows(64, 4));
        assert_eq!(expected_windows(64, 4), 8);
        assert_eq!(r.stats.processed["SensorPoll"], 64);
    }

    #[test]
    fn every_mapping_agrees_on_window_aggregates() {
        let baseline = {
            let mut v: Vec<String> = run(&SimpleMapping, 96, 3, 1, Duration::ZERO)
                .port_values("WindowStats", "output")
                .iter()
                .map(laminar_json::to_string)
                .collect();
            v.sort();
            v
        };
        for mapping in [&MultiMapping as &dyn Mapping, &MpiMapping, &RedisMapping::default()] {
            let mut got: Vec<String> = run(mapping, 96, 3, 5, Duration::ZERO)
                .port_values("WindowStats", "output")
                .iter()
                .map(laminar_json::to_string)
                .collect();
            got.sort();
            assert_eq!(got, baseline, "{} diverged", mapping.kind());
        }
    }

    #[test]
    fn alerts_fire_only_for_hot_windows() {
        let r = run(&SimpleMapping, 160, 4, 1, Duration::ZERO);
        for line in &r.printed {
            assert!(line.starts_with("ALERT sensor"), "line: {line}");
        }
        // The workload is tuned so some (not all) windows alert.
        let windows = r.port_values("WindowStats", "output").len();
        assert!(!r.printed.is_empty(), "no window exceeded the alert threshold");
        assert!(r.printed.len() < windows, "every window alerted — threshold meaningless");
    }

    #[test]
    fn first_window_streams_long_before_completion() {
        // The scenario's defining property: with 25 windows' worth of
        // input, the first aggregate is observable after ~1/25th of the
        // run. Assert by stream position (deterministic), not wall clock.
        let graph = build_graph(Arc::new(SensorFleet::instant(2)));
        let recorder = RecordingObserver::new();
        let result = MultiMapping
            .execute_observed(
                &graph,
                &RunOptions::iterations(400).with_processes(4),
                Some(recorder.clone() as Arc<dyn laminar_dataflow::RunObserver>),
            )
            .unwrap();
        let events = recorder.take();
        let total = events.len();
        let first_output = events
            .iter()
            .position(|(_, _, e)| matches!(e, RunEvent::Output { .. }))
            .expect("windows were emitted");
        assert!(first_output * 4 < total, "first window at event {first_output}/{total} — not streaming");
        // And the recorded stream folds back to the batch result exactly.
        let refolded = fold_events(events.into_iter().map(|(_, _, e)| e));
        assert_eq!(refolded.outputs, result.outputs);
        assert_eq!(refolded.stats, result.stats);
    }

    #[test]
    fn unbounded_sensor_run_cancels_cleanly_on_every_mapping() {
        // The scenario's defining lifecycle: run with no reading limit,
        // watch window aggregates stream, stop via the token, and check
        // the recorded stream is a well-formed cancelled prefix — sealed
        // by Cancelled, whose fold is exactly the prefix-fold of the
        // events before it.
        use laminar_dataflow::{CancelToken, DataflowError};
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct Watch {
            outputs: AtomicUsize,
            events: Mutex<Vec<RunEvent>>,
        }
        impl laminar_dataflow::RunObserver for Watch {
            fn on_event(&self, _seq: u64, event: &RunEvent) {
                if matches!(event, RunEvent::Output { .. }) {
                    self.outputs.fetch_add(1, Ordering::SeqCst);
                }
                self.events.lock().push(event.clone());
            }
        }

        for kind in [
            laminar_dataflow::MappingKind::Simple,
            laminar_dataflow::MappingKind::Multi,
            laminar_dataflow::MappingKind::Mpi,
            laminar_dataflow::MappingKind::Redis,
        ] {
            let token = CancelToken::new();
            let watch = Arc::new(Watch { outputs: AtomicUsize::new(0), events: Mutex::new(Vec::new()) });
            let handle = {
                let token = token.clone();
                let watch = Arc::clone(&watch);
                std::thread::spawn(move || {
                    let graph = build_graph(Arc::new(SensorFleet::instant(2)));
                    let options = super::unbounded_options(4, Duration::from_micros(100), token);
                    kind.build().execute_observed(
                        &graph,
                        &options,
                        Some(watch as Arc<dyn laminar_dataflow::RunObserver>),
                    )
                })
            };
            // Let at least two window aggregates stream before stopping.
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            while watch.outputs.load(Ordering::SeqCst) < 2 {
                assert!(std::time::Instant::now() < deadline, "{kind}: no windows streamed");
                std::thread::sleep(Duration::from_millis(1));
            }
            token.cancel();
            let result = handle.join().unwrap();
            assert_eq!(result.unwrap_err(), DataflowError::Cancelled, "{kind}");

            let events = watch.events.lock().clone();
            assert!(matches!(events.last(), Some(RunEvent::Cancelled)), "{kind}: stream sealed by Cancelled");
            let windows: Vec<laminar_json::Value> = events
                .iter()
                .filter_map(|e| match e {
                    RunEvent::Output { value, .. } => Some(value.clone()),
                    _ => None,
                })
                .collect();
            assert!(windows.len() >= 2, "{kind}: cancelled after real output");
            // Every streamed aggregate is a well-formed [sensor, n, mean].
            for w in &windows {
                assert!(w[0].as_str().unwrap().starts_with('s'), "{kind}: {w:?}");
                assert_eq!(w[1].as_i64().unwrap() % WINDOW as i64, 0, "{kind}: {w:?}");
            }
            // fold(recorded prefix) == prefix-fold: the folded outputs
            // are exactly the streamed aggregates, in order, and the
            // terminal Cancelled marker itself is not counted.
            let total = events.len();
            let folded = laminar_dataflow::fold_events(events);
            assert_eq!(folded.port_values("WindowStats", "output"), &windows[..], "{kind}");
            assert_eq!(folded.stats.events, (total - 1) as u64, "{kind}: all but the Cancelled marker");
        }
    }

    #[test]
    fn fleet_latency_paces_the_source() {
        let fleet = Arc::new(SensorFleet::new(2, Duration::from_millis(1)));
        let graph = build_graph(Arc::clone(&fleet));
        let r = MultiMapping.execute(&graph, &RunOptions::iterations(32).with_processes(4)).unwrap();
        assert!(r.stats.elapsed >= Duration::from_millis(32), "32 polls x 1ms inter-arrival");
        assert_eq!(fleet.stats().reads, 32);
    }

    #[test]
    fn fleet_readings_are_deterministic_and_bounded() {
        let f = SensorFleet::instant(3);
        for i in 0..30 {
            let r = f.reading(i);
            assert_eq!(r, f.reading(i));
            let v = r[1].as_f64().unwrap();
            assert!((0.0..1.0).contains(&v), "value {v} out of range");
        }
        assert!(f.call("nope", "read", &[]).is_err());
        assert!(f.call("sensor", "read", &[]).is_err());
    }
}
