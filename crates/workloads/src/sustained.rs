//! The sustained-load serving workload (the `sustained_load` bench of
//! PR 10): a minimal one-PE pulse, cheap enough to submit tens of
//! thousands of times, that still exercises the full event pipeline —
//! a `plan` marker, one `output` event per emitted datum (the producer's
//! port is terminal) and the sealed `done` marker — so first-event
//! latency and loss accounting have real stream structure to measure.

/// LamScript: a bare producer whose terminal `output` port turns every
/// emission into a streamed `output` event.
pub const SOURCE: &str = r#"
    pe Pulse : producer { output output; process { emit(iteration + 1); } }
    workflow Beat { nodes { p = Pulse; } }
"#;

/// Entry point of [`SOURCE`].
pub const WORKFLOW: &str = "Beat";

/// `output` events a streamed run of `iterations` appends — one per
/// emission; the `plan`/`finished`/`done` markers ride on top.
pub fn expected_outputs(iterations: i64) -> usize {
    iterations.max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_builds_a_single_node_graph() {
        let g = laminar_dataflow::WorkflowGraph::from_script(SOURCE, WORKFLOW).expect("valid source");
        assert_eq!(g.len(), 1);
        assert!(g.validate().is_ok());
        assert_eq!(expected_outputs(25), 25);
        assert_eq!(expected_outputs(-3), 0);
    }
}
