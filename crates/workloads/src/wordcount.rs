//! The stateful word-count workload (paper Listing 2 grown into a
//! workflow): sentence producer → tokenizer → group-by counter.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The workflow source. `CountWords` is the Listing 2 PE: stateful, with
/// MapReduce-style `groupby 0` routing on the word.
pub const SOURCE: &str = r#"
pe SentenceProducer : producer {
    doc "Streams sentences from a fixed corpus";
    output output;
    process {
        let corpus = [
            "the quick brown fox jumps over the lazy dog",
            "the dog barks at the quick fox",
            "a lazy stream of quick data flows past the dog",
            "brown data and quick data make the stream flow"
        ];
        emit(corpus[iteration % 4]);
    }
}

pe Tokenize : iterative {
    doc "Splits sentences into (word, 1) pairs";
    input sentence;
    output output;
    process {
        for w in split(sentence) { emit([w, 1]); }
    }
}

pe CountWords : generic {
    doc "Counts words, MapReduce style, with per-key state";
    input input groupby 0;
    output output;
    init { state.count = {}; }
    process {
        let word = input[0];
        state.count[word] = get(state.count, word, 0) + input[1];
        emit([word, state.count[word]]);
    }
}

workflow WordCount {
    doc "Counts word occurrences across a stream of sentences";
    nodes { src = SentenceProducer; tok = Tokenize; cnt = CountWords; }
    connect src.output -> tok.sentence;
    connect tok.output -> cnt.input;
}
"#;

/// Reference counts after `iterations` sentences (for assertions).
pub fn reference_counts(iterations: usize) -> std::collections::BTreeMap<String, i64> {
    let corpus = [
        "the quick brown fox jumps over the lazy dog",
        "the dog barks at the quick fox",
        "a lazy stream of quick data flows past the dog",
        "brown data and quick data make the stream flow",
    ];
    let mut counts = std::collections::BTreeMap::new();
    for i in 0..iterations {
        for w in corpus[i % 4].split_whitespace() {
            *counts.entry(w.to_string()).or_insert(0) += 1;
        }
    }
    counts
}

/// Generate a random text corpus (used by benches needing bigger streams).
pub fn random_corpus(sentences: usize, vocab: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let words: Vec<String> = (0..vocab).map(|i| format!("word{i}")).collect();
    (0..sentences)
        .map(|_| {
            let len = rng.random_range(4..12);
            (0..len).map(|_| words[rng.random_range(0..vocab)].clone()).collect::<Vec<_>>().join(" ")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_dataflow::mapping::{Mapping, MultiMapping, RedisMapping, SimpleMapping};
    use laminar_dataflow::{RunOptions, WorkflowGraph};

    fn final_counts(r: &laminar_dataflow::RunResult) -> std::collections::BTreeMap<String, i64> {
        let mut best = std::collections::BTreeMap::new();
        for v in r.port_values("CountWords", "output") {
            let w = v[0].as_str().unwrap().to_string();
            let n = v[1].as_i64().unwrap();
            let e = best.entry(w).or_insert(0);
            *e = (*e).max(n);
        }
        best
    }

    #[test]
    fn counts_match_reference_sequential() {
        let g = WorkflowGraph::from_script(SOURCE, "WordCount").unwrap();
        let r = SimpleMapping.execute(&g, &RunOptions::iterations(8)).unwrap();
        assert_eq!(final_counts(&r), reference_counts(8));
    }

    #[test]
    fn counts_match_reference_under_parallel_mappings() {
        let g = WorkflowGraph::from_script(SOURCE, "WordCount").unwrap();
        let expected = reference_counts(12);
        for mapping in [&MultiMapping as &dyn Mapping, &RedisMapping::default()] {
            let r = mapping.execute(&g, &RunOptions::iterations(12).with_processes(6)).unwrap();
            assert_eq!(final_counts(&r), expected, "{} diverged", mapping.kind());
        }
    }

    #[test]
    fn random_corpus_is_deterministic() {
        assert_eq!(random_corpus(5, 10, 3), random_corpus(5, 10, 3));
        assert_ne!(random_corpus(5, 10, 3), random_corpus(5, 10, 4));
        assert_eq!(random_corpus(5, 10, 3).len(), 5);
    }
}
