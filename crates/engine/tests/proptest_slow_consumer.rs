//! Randomized slow-consumer coverage for the checkpoint-horizon policy.
//!
//! The contract under test: for a checkpointed job whose consumer stays
//! live — however slowly it polls — the bounded event log throttles the
//! producer instead of evicting undelivered events, so the consumer's
//! refold is *exactly* the batch result (retained epochs plus replayed
//! events reproduce `fold(batch)`), and the log's retained window never
//! grows past the horizon bound. Pace ratios and `checkpoint_every` are
//! both randomized: the property must hold whether the reader is barely
//! behind or an order of magnitude slower, and whether rounds are tiny
//! or span most of the log.
//!
//! This lives in the chaos tier: each case runs a real pool job with a
//! deliberately mistimed reader, so wall-clock per case is milliseconds,
//! not microseconds.

use std::time::{Duration, Instant};

use laminar_dataflow::{fold_events, RunEvent};
use laminar_engine::{EnginePool, ExecutionEngine, ExecutionRequest, JobResult};
use laminar_json::Value;
use proptest::prelude::*;

const SRC: &str = r#"
    pe Words : producer {
        output output;
        process {
            let words = ["a", "b", "c"];
            emit([words[iteration % 3], iteration]);
        }
    }
    pe Tally : generic {
        input input groupby 0;
        output output;
        init { state.seen = {}; state.noise = 0; }
        process {
            let w = input[0];
            state.seen[w] = get(state.seen, w, 0) + 1;
            state.noise = state.noise + randint(0, 9);
            emit([w, state.seen[w], state.noise]);
        }
    }
    workflow TallyRun {
        nodes { w = Words; t = Tally; }
        connect w.output -> t.input;
    }
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A live consumer at any pace ratio loses nothing and bounds memory.
    #[test]
    fn any_live_pace_ratio_refolds_to_batch_within_the_horizon(
        capacity in 24usize..64,
        checkpoint_every in 3u64..12,
        iterations in 30u64..80,
        reader_sleep_us in 0u64..2500,
    ) {
        let pool = EnginePool::start(ExecutionEngine::instant(), 1, 4);
        pool.set_event_log_capacity(capacity);
        // A live consumer must never be degraded out of its data, no
        // matter how slow: give the producer an effectively infinite
        // patience so only reader progress releases it.
        pool.set_backpressure_wait(Duration::from_secs(60));
        let req = ExecutionRequest::simple("u", SRC, iterations as i64)
            .with_checkpoints(checkpoint_every as usize)
            .with_events(true);
        let id = pool.submit("u", req).unwrap();

        let mut since = 0u64;
        let mut events: Vec<Value> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let page = pool.events("u", id, since).unwrap();
            // Zero loss: the cursor never falls off the retained window,
            // so no engine-side epoch recovery is ever needed.
            prop_assert!(since >= page.first, "evicted under a live consumer: {} < {}", since, page.first);
            prop_assert!(page.retained_epoch.is_none(), "degraded despite a live consumer");
            prop_assert!(page.next >= since, "cursor moved backwards");
            // Bounded memory: the retained window tracks the capacity
            // horizon, never the full stream (one in-flight round of
            // slack — the producer re-checks once per source iteration).
            if let Some((first, end)) = pool.event_log_window("u", id) {
                prop_assert!(
                    (end - first) as usize <= capacity * 2,
                    "window {} exceeds horizon bound {}",
                    end - first,
                    capacity * 2
                );
            }
            events.extend(page.events);
            since = page.next;
            if page.closed {
                break;
            }
            prop_assert!(Instant::now() < deadline, "throttled job never finished");
            if reader_sleep_us > 0 {
                std::thread::sleep(Duration::from_micros(reader_sleep_us));
            }
        }
        match pool.wait("u", id, Duration::from_secs(30)).unwrap() {
            JobResult::Done(..) => {}
            other => prop_assert!(false, "expected Done, got {other:?}"),
        }

        // Refold identity: retained epochs plus replayed events fold to
        // exactly the uninterrupted batch result.
        let folded = fold_events(events.iter().filter_map(RunEvent::from_value));
        let batch = ExecutionEngine::instant()
            .run(&ExecutionRequest::simple("u", SRC, iterations as i64))
            .unwrap();
        prop_assert_eq!(
            folded.port_values("Tally", "output"),
            batch.port_values("Tally", "output").as_slice(),
            "slow consumer diverged from batch"
        );
        prop_assert_eq!(&folded.printed, &batch.printed);
        // The stream carried every full-round epoch marker, in order.
        let epochs: Vec<i64> = events
            .iter()
            .filter(|e| e["type"].as_str() == Some("epoch"))
            .filter_map(|e| e["epoch"].as_i64())
            .collect();
        let expected: Vec<i64> = (1..=(iterations / checkpoint_every) as i64).collect();
        prop_assert_eq!(epochs, expected, "epoch markers lost or reordered");
    }

    /// An absent consumer degrades to epoch granularity — memory stays
    /// bounded and a returning client is re-anchored at a retained epoch.
    #[test]
    fn any_dead_consumer_degrades_to_a_retained_epoch(
        capacity in 32usize..64,
        checkpoint_every in 4u64..10,
    ) {
        let pool = EnginePool::start(ExecutionEngine::instant(), 1, 4);
        pool.set_event_log_capacity(capacity);
        pool.set_backpressure_wait(Duration::from_millis(50));
        let iterations = 150i64;
        let req = ExecutionRequest::simple("u", SRC, iterations)
            .with_checkpoints(checkpoint_every as usize)
            .with_events(true);
        let id = pool.submit("u", req).unwrap();
        // Nobody reads: after one bounded wait the log degrades and the
        // job must still run to completion.
        match pool.wait("u", id, Duration::from_secs(60)).unwrap() {
            JobResult::Done(..) => {}
            other => prop_assert!(false, "expected Done, got {other:?}"),
        }
        let (first, end) = pool.event_log_window("u", id).unwrap();
        prop_assert!(first > 0, "a dead consumer must not pin the whole stream in memory");
        prop_assert!(
            (end - first) as usize <= capacity * 2,
            "degraded window {} exceeds horizon bound {}",
            end - first,
            capacity * 2
        );
        // Engine-side recovery: the stale cursor is re-anchored at the
        // oldest retained epoch marker, which the page leads with.
        let page = pool.events("u", id, 0).unwrap();
        let epoch = page.retained_epoch.expect("an epoch survived the eviction");
        prop_assert_eq!(page.events[0]["type"].as_str(), Some("epoch"));
        prop_assert_eq!(page.events[0]["epoch"].as_i64(), Some(epoch as i64));
        // The tail from that epoch onward is intact through to `done`.
        prop_assert_eq!(
            page.events.last().and_then(|e| e["type"].as_str()),
            Some("done")
        );
    }
}
