//! End-to-end journal-corruption chaos: a checkpointed job is killed by
//! an injected crash, its *latest sealed segment* is then torn by the
//! env-armed `truncate_segment` fault (the on-disk shape of a crash
//! racing the sealing rename), and `resume_job` must degrade to the
//! previous epoch — re-running one extra chunk — and still refold to
//! exactly the uninterrupted batch result.
//!
//! This lives in its own integration binary on purpose: `LAMINAR_FAULTS`
//! is process-global, and the engine's unit tests exercise resume paths
//! that read it. Keeping the only env-setting test in a separate test
//! process makes the arming race-free.

use std::time::Duration;

use laminar_engine::{EnginePool, ExecutionEngine, ExecutionRequest, FaultPlan, JobResult};

const SRC: &str = r#"
    pe Words : producer {
        output output;
        process {
            let words = ["a", "b", "c"];
            emit([words[iteration % 3], iteration]);
        }
    }
    pe Tally : generic {
        input input groupby 0;
        output output;
        init { state.seen = {}; state.noise = 0; }
        process {
            let w = input[0];
            state.seen[w] = get(state.seen, w, 0) + 1;
            state.noise = state.noise + randint(0, 9);
            emit([w, state.seen[w], state.noise]);
        }
    }
    workflow TallyRun {
        nodes { w = Words; t = Tally; }
        connect w.output -> t.input;
    }
"#;

fn wait_phase(pool: &EnginePool, id: i64, want_failed: bool) -> JobResult {
    let r = pool.wait("u", id, Duration::from_secs(30)).expect("job known");
    match (&r, want_failed) {
        (JobResult::Failed(..), true) | (JobResult::Done(..), false) => r,
        other => panic!("unexpected terminal state: {other:?}"),
    }
}

#[test]
fn torn_segment_resume_falls_back_an_epoch_and_refolds() {
    let root = std::env::temp_dir().join(format!("laminar-chaos-trunc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let pool = EnginePool::start_durable(ExecutionEngine::instant(), 2, 8, &root).unwrap();
    // 14 iterations, chunk 3: epochs 1..=4 seal, the kill lands after
    // epoch 3 (9 iterations journaled).
    let req = ExecutionRequest::simple("u", SRC, 14)
        .with_workflow("TallyRun")
        .with_checkpoints(3)
        .with_faults(FaultPlan::parse("kill_at_epoch=3"));
    let id = pool.submit("u", req).unwrap();
    match wait_phase(&pool, id, true) {
        JobResult::Failed(msg, _) => assert!(msg.contains("injected"), "{msg}"),
        _ => unreachable!(),
    }
    let seg3 = root.join(format!("job-{id}")).join("seg-3.log");
    let intact = std::fs::metadata(&seg3).expect("sealed segment on disk").len();

    // Arm the torn write for the resume: chop 5 bytes off seg-3, which
    // invalidates its trailing CRC frame. Recovery must fall back to
    // epoch 2 rather than trust the damaged epoch-3 checkpoint.
    std::env::set_var("LAMINAR_FAULTS", "truncate_segment=3:5");
    let resumed = pool.resume_job("u", id);
    std::env::remove_var("LAMINAR_FAULTS");
    assert_eq!(resumed.unwrap(), id, "resume keeps the original job id");
    assert!(
        std::fs::metadata(&seg3).map_or(true, |m| m.len() < intact),
        "the fault should have torn the sealed segment"
    );

    let out = match wait_phase(&pool, id, false) {
        JobResult::Done(out, _) => out,
        _ => unreachable!(),
    };

    // The reference: the same request, uninterrupted and uncheckpointed.
    let batch = ExecutionEngine::instant()
        .run(&ExecutionRequest::simple("u", SRC, 14).with_workflow("TallyRun"))
        .unwrap();
    assert_eq!(out.port_values("Tally", "output"), batch.port_values("Tally", "output"));
    assert_eq!(out.processed, batch.processed);
    assert_eq!(out.emitted, batch.emitted);

    // Completion cleans the journal up even though recovery degraded.
    assert!(!root.join(format!("job-{id}")).exists(), "journal removed after Done");
    let _ = std::fs::remove_dir_all(&root);
}
