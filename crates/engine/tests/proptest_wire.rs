//! Fuzzed round-trip coverage for the execution wire format.
//!
//! `ExecutionOutput::to_value`/`from_value` is the envelope every result
//! crosses the server boundary in, and this PR grew it (event count,
//! first-output latency). The properties below generate arbitrary outputs
//! at wire granularity (durations in whole ms/µs — what the format can
//! represent) and require a lossless round-trip, plus tolerance for
//! foreign/missing fields.

use laminar_dataflow::StageTimings;
use laminar_engine::ExecutionOutput;
use laminar_json::Value;
use proptest::prelude::*;
use std::time::Duration;

/// A wire-representable leaf value for output ports.
fn leaf_value(tag: i64, n: i64) -> Value {
    match tag.rem_euclid(4) {
        0 => Value::Int(n),
        1 => Value::Str(format!("v{n}")),
        2 => Value::Bool(n % 2 == 0),
        _ => Value::Float(n as f64 / 8.0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every field of the (grown) wire struct survives
    /// `to_value → from_value` exactly.
    #[test]
    fn execution_output_round_trips(
        ports in prop::collection::btree_map("[a-zA-Z]{1,6}[.][a-z]{1,6}", (0..4i64, 0..50i64), 0..5),
        printed in prop::collection::vec("[ -~]{0,18}", 0..5),
        installed in prop::collection::vec("[a-z]{1,10}", 0..4),
        provision_ms in 0..5000i64,
        execute_ms in 0..5000i64,
        total_ms in 0..10000i64,
        plan_us in 0..2_000_000i64,
        enact_us in 0..2_000_000i64,
        collect_us in 0..2_000_000i64,
        compile_us in 0..2_000_000i64,
        queue_us in 0..2_000_000i64,
        counters in prop::collection::btree_map("[A-Z][a-z]{0,7}", (0..100000i64, 0..100000i64), 0..5),
        events in 0..1_000_000i64,
        first_output_us in -1..2_000_000i64,
        worker in -1..8i64,
    ) {
        let mut out = ExecutionOutput {
            printed,
            installed,
            provision_time: Duration::from_millis(provision_ms as u64),
            execute_time: Duration::from_millis(execute_ms as u64),
            total_time: Duration::from_millis(total_ms as u64),
            stages: StageTimings {
                plan: Duration::from_micros(plan_us as u64),
                enact: Duration::from_micros(enact_us as u64),
                collect: Duration::from_micros(collect_us as u64),
                compile: Duration::from_micros(compile_us as u64),
            },
            queue_wait: Duration::from_micros(queue_us as u64),
            events: events as u64,
            // -1 encodes "no first output" in the generator; the wire
            // encodes None by omission.
            first_output: (first_output_us >= 0).then(|| Duration::from_micros(first_output_us as u64)),
            worker: (worker >= 0).then_some(worker as usize),
            ..Default::default()
        };
        for (port, (tag, n)) in &ports {
            let values: Vec<Value> = (0..(n % 4) + 1).map(|i| leaf_value(*tag, n + i)).collect();
            out.outputs.insert(port.clone(), Value::Array(values));
        }
        for (pe, (p, e)) in &counters {
            out.processed.insert(pe.clone(), *p as u64);
            out.emitted.insert(pe.clone(), *e as u64);
        }

        let wire = out.to_value();
        let back = ExecutionOutput::from_value(&wire).expect("round trip parses");
        prop_assert_eq!(&back.outputs, &out.outputs);
        prop_assert_eq!(&back.printed, &out.printed);
        prop_assert_eq!(&back.installed, &out.installed);
        prop_assert_eq!(back.provision_time, out.provision_time);
        prop_assert_eq!(back.execute_time, out.execute_time);
        prop_assert_eq!(back.total_time, out.total_time);
        prop_assert_eq!(back.stages, out.stages);
        prop_assert_eq!(back.queue_wait, out.queue_wait);
        prop_assert_eq!(&back.processed, &out.processed);
        prop_assert_eq!(&back.emitted, &out.emitted);
        prop_assert_eq!(back.events, out.events);
        prop_assert_eq!(back.first_output, out.first_output);
        prop_assert_eq!(back.worker, out.worker);

        // Serializing the parsed struct is a fixed point.
        let again = back.to_value();
        prop_assert_eq!(laminar_json::to_string(&again), laminar_json::to_string(&wire));
    }

    /// Foreign fields are ignored and absent optional fields default —
    /// older/newer peers interoperate.
    #[test]
    fn from_value_tolerates_unknown_and_missing_fields(extra in "[a-z]{1,8}", n in 0..1000i64) {
        let out = ExecutionOutput { printed: vec!["x".into()], ..Default::default() };
        let mut wire = out.to_value();
        wire.set(&extra, n);
        let back = ExecutionOutput::from_value(&wire).expect("unknown fields ignored");
        prop_assert_eq!(&back.printed, &out.printed);

        // A pre-PR4 peer sends neither `events` nor `first_output_us`.
        let mut old = out.to_value();
        if let Some(m) = old.as_object_mut() {
            m.remove("events");
            m.remove("first_output_us");
        }
        let back = ExecutionOutput::from_value(&old).expect("old envelopes still parse");
        prop_assert_eq!(back.events, 0);
        prop_assert_eq!(back.first_output, None);
    }
}
