//! The execution request: everything `/execution/{user}/run` carries
//! (paper §3.3 — workflows, PEs, runtime configs, arguments, imports and
//! mappings).

use laminar_dataflow::mapping::RunInput;
use laminar_dataflow::MappingKind;
use laminar_json::Value;

/// Per-submission options: the v1 API's single carrier for the knobs
/// that used to ride the request as loose flags (`events`,
/// `checkpoint_every`) plus the scheduling hints introduced with fair
/// queuing (`priority`, `deadline_ms`). Mirrors the registry's
/// `SearchOptions` pattern: one struct threaded end to end — client
/// `RunConfig`, wire body, [`ExecutionRequest`] — instead of a growing
/// list of positional/boolean parameters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Log the run's live event stream for the `/events` endpoint. Off by
    /// default: batch jobs skip per-event wire conversion.
    pub events: bool,
    /// Checkpoint interval in source iterations: `n > 0` makes the
    /// enactment emit an epoch snapshot every `n` iterations, journaled
    /// per-job when the pool has a journal store. `0` (default) disables
    /// checkpointing.
    pub checkpoint_every: usize,
    /// Intra-tenant scheduling priority: within the submitting tenant's
    /// lane, higher-priority jobs run first (FIFO among equals). The
    /// cross-tenant order is governed by the pool's fair scheduler, so
    /// priority never lets one tenant cut another's line. Default 0.
    pub priority: i64,
    /// Queue-wait deadline in milliseconds: a job still waiting when the
    /// deadline passes is failed fast (`deadline exceeded`) instead of
    /// running uselessly late. `None` (default) waits indefinitely.
    pub deadline_ms: Option<u64>,
}

impl SubmitOptions {
    /// Serialize as the nested `options` object of the v1 wire form.
    pub fn to_value(&self) -> Value {
        let mut v = Value::Null;
        v.set("events", self.events);
        if self.checkpoint_every > 0 {
            v.set("checkpointEvery", self.checkpoint_every);
        }
        if self.priority != 0 {
            v.set("priority", self.priority);
        }
        if let Some(d) = self.deadline_ms {
            v.set("deadlineMs", d as i64);
        }
        v
    }

    /// Parse submission options out of a request envelope. Reads the v1
    /// nested `options` object when present and falls back to the
    /// deprecated flat fields (`events`, `checkpoint_every`) otherwise,
    /// so pre-v1 wire bodies — and journals written by older pools —
    /// keep parsing.
    pub fn from_request_value(v: &Value) -> SubmitOptions {
        let opts = &v["options"];
        if opts.is_null() {
            return SubmitOptions {
                events: v["events"].as_bool().unwrap_or(false),
                checkpoint_every: v["checkpoint_every"].as_i64().unwrap_or(0).max(0) as usize,
                ..SubmitOptions::default()
            };
        }
        SubmitOptions {
            events: opts["events"].as_bool().unwrap_or(false),
            checkpoint_every: opts["checkpointEvery"].as_i64().unwrap_or(0).max(0) as usize,
            priority: opts["priority"].as_i64().unwrap_or(0),
            deadline_ms: opts["deadlineMs"].as_i64().filter(|d| *d >= 0).map(|d| d as u64),
        }
    }
}

/// A serverless execution request.
#[derive(Debug, Clone)]
pub struct ExecutionRequest {
    /// Requesting user.
    pub user: String,
    /// LamScript source defining the PEs and the workflow to run.
    pub source: String,
    /// Workflow name inside the source; `None` runs the only workflow
    /// present, or a single PE if the source defines exactly one PE and no
    /// workflow (the FaaS-style path of §3.4.1).
    pub workflow: Option<String>,
    /// Mapping to enact with.
    pub mapping: MappingKind,
    /// Producer drive: iterations or explicit data.
    pub input: RunInput,
    /// Process count for parallel mappings (`args={'num': N}`).
    pub processes: usize,
    /// Named resources to stage (`resources=True` + resources dir).
    pub resources: Vec<(String, Vec<u8>)>,
    /// Submission options: event streaming, checkpointing and scheduling
    /// hints, carried as one struct (see [`SubmitOptions`]).
    pub options: SubmitOptions,
    /// Resume point injected by [`crate::EnginePool`]'s resume path.
    /// Never crosses the wire: clients POST `/resume` and the pool
    /// reconstructs this from the job's journal.
    pub resume: Option<laminar_dataflow::mapping::ResumePoint>,
    /// Fault plan for the chaos harness. Never crosses the wire (a remote
    /// request cannot ask the engine to kill itself): in-process tests set
    /// it directly; deployments arm `LAMINAR_FAULTS` in the environment,
    /// which applies when this is `None`.
    pub faults: Option<laminar_dataflow::FaultPlan>,
}

impl ExecutionRequest {
    /// Minimal request: run `source` with the Simple mapping for `n`
    /// iterations.
    pub fn simple(user: &str, source: &str, iterations: i64) -> ExecutionRequest {
        ExecutionRequest {
            user: user.to_string(),
            source: source.to_string(),
            workflow: None,
            mapping: MappingKind::Simple,
            input: RunInput::Iterations(iterations),
            processes: 1,
            resources: Vec::new(),
            options: SubmitOptions::default(),
            resume: None,
            faults: None,
        }
    }

    /// Switch the mapping.
    pub fn with_mapping(mut self, mapping: MappingKind, processes: usize) -> Self {
        self.mapping = mapping;
        self.processes = processes;
        self
    }

    /// Name the workflow to run.
    pub fn with_workflow(mut self, name: &str) -> Self {
        self.workflow = Some(name.to_string());
        self
    }

    /// Feed explicit data instead of iteration counts.
    pub fn with_data(mut self, data: Vec<Value>) -> Self {
        self.input = RunInput::Data(data);
        self
    }

    /// Run the producers unbounded (until the job is cancelled), pacing
    /// each source instance by `pace` between iterations. Generator
    /// callbacks do not cross the wire: server-side unbounded runs drive
    /// producers by iteration count or host calls.
    pub fn with_unbounded(mut self, pace: std::time::Duration) -> Self {
        self.input = RunInput::Unbounded { generator: None, pace };
        self
    }

    /// Stage a resource.
    pub fn with_resource(mut self, name: &str, bytes: Vec<u8>) -> Self {
        self.resources.push((name.to_string(), bytes));
        self
    }

    /// Replace the submission options wholesale.
    pub fn with_options(mut self, options: SubmitOptions) -> Self {
        self.options = options;
        self
    }

    /// Request a live event stream (the `/events` endpoint's source).
    pub fn with_events(mut self, stream: bool) -> Self {
        self.options.events = stream;
        self
    }

    /// Checkpoint the enactment every `n` source iterations (0 = off).
    pub fn with_checkpoints(mut self, n: usize) -> Self {
        self.options.checkpoint_every = n;
        self
    }

    /// Intra-tenant scheduling priority (higher runs first in the
    /// tenant's lane).
    pub fn with_priority(mut self, priority: i64) -> Self {
        self.options.priority = priority;
        self
    }

    /// Queue-wait deadline: fail the job fast if no worker picks it
    /// within `ms` milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.options.deadline_ms = Some(ms);
        self
    }

    /// Arm an in-process fault plan (chaos tests only — see the field doc).
    pub fn with_faults(mut self, faults: laminar_dataflow::FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Serialize to the JSON envelope the wire protocol uses.
    pub fn to_value(&self) -> Value {
        let mut v = Value::Null;
        v.set("user", self.user.as_str())
            .set("source", self.source.as_str())
            .set("workflow", self.workflow.clone())
            .set("mapping", self.mapping.as_str())
            .set("processes", self.processes)
            .set("options", self.options.to_value());
        match &self.input {
            RunInput::Iterations(n) => {
                v.set("input", *n);
            }
            RunInput::Data(d) => {
                v.set("input", Value::Array(d.clone()));
            }
            RunInput::Unbounded { pace, .. } => {
                let mut u = Value::Null;
                u.set("mode", "unbounded").set("pace_us", pace.as_micros() as i64);
                v.set("input", u);
            }
        }
        let resources: Value = self
            .resources
            .iter()
            .map(|(name, bytes)| {
                let mut r = Value::Null;
                r.set("name", name.as_str()).set("data", laminar_codec::base64::encode(bytes));
                r
            })
            .collect();
        v.set("resources", resources);
        v
    }

    /// Parse the JSON envelope. Defaults mirror the client: SIMPLE mapping,
    /// 5 iterations, 5 processes.
    pub fn from_value(v: &Value) -> Option<ExecutionRequest> {
        let input = match &v["input"] {
            Value::Int(n) => RunInput::Iterations(*n),
            Value::Array(a) => RunInput::Data(a.clone()),
            Value::Null => RunInput::Iterations(5),
            obj @ Value::Object(_) if obj["mode"].as_str() == Some("unbounded") => RunInput::Unbounded {
                generator: None,
                pace: std::time::Duration::from_micros(obj["pace_us"].as_i64().unwrap_or(0).max(0) as u64),
            },
            _ => return None,
        };
        let mut resources = Vec::new();
        for r in v["resources"].as_array().unwrap_or(&[]) {
            let name = r["name"].as_str()?;
            let bytes = laminar_codec::base64::decode(r["data"].as_str()?).ok()?;
            resources.push((name.to_string(), bytes));
        }
        Some(ExecutionRequest {
            user: v["user"].as_str().unwrap_or("anonymous").to_string(),
            source: v["source"].as_str()?.to_string(),
            workflow: v["workflow"].as_str().map(str::to_string),
            mapping: MappingKind::parse(v["mapping"].as_str().unwrap_or("SIMPLE"))?,
            input,
            processes: v["processes"].as_i64().unwrap_or(5).max(1) as usize,
            resources,
            options: SubmitOptions::from_request_value(v),
            resume: None,
            faults: None,
        })
    }

    /// Approximate wire size in bytes (drives the WAN transfer model).
    pub fn wire_size(&self) -> usize {
        laminar_json::to_string(&self.to_value()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_via_value() {
        let req = ExecutionRequest::simple("zz46", "pe X : producer { output o; process { emit(1); } }", 7)
            .with_mapping(MappingKind::Multi, 5)
            .with_workflow("main")
            .with_resource("coords.txt", b"1 2".to_vec());
        let v = req.to_value();
        let back = ExecutionRequest::from_value(&v).unwrap();
        assert_eq!(back.user, "zz46");
        assert_eq!(back.workflow.as_deref(), Some("main"));
        assert_eq!(back.mapping, MappingKind::Multi);
        assert_eq!(back.processes, 5);
        assert!(matches!(back.input, RunInput::Iterations(7)));
        assert_eq!(back.resources[0].0, "coords.txt");
        assert_eq!(back.resources[0].1, b"1 2");
    }

    #[test]
    fn data_input_round_trip() {
        let req =
            ExecutionRequest::simple("u", "src", 0).with_data(vec![Value::Int(1), Value::Str("x".into())]);
        let back = ExecutionRequest::from_value(&req.to_value()).unwrap();
        match back.input {
            RunInput::Data(d) => assert_eq!(d.len(), 2),
            other => panic!("expected data input, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_input_round_trip() {
        let req = ExecutionRequest::simple("u", "src", 0)
            .with_unbounded(std::time::Duration::from_micros(750))
            .with_events(true);
        let back = ExecutionRequest::from_value(&req.to_value()).unwrap();
        match back.input {
            RunInput::Unbounded { pace, generator } => {
                assert_eq!(pace, std::time::Duration::from_micros(750));
                assert!(generator.is_none(), "generators never cross the wire");
            }
            other => panic!("expected unbounded input, got {other:?}"),
        }
        assert!(back.options.events);
        // An object input without the unbounded mode tag is malformed.
        let mut v = req.to_value();
        v.set("input", laminar_json::jobj! { "mode" => "mystery" });
        assert!(ExecutionRequest::from_value(&v).is_none());
    }

    #[test]
    fn checkpoint_interval_round_trips_but_resume_never_crosses_the_wire() {
        let req = ExecutionRequest::simple("u", "src", 5).with_checkpoints(32);
        let v = req.to_value();
        let back = ExecutionRequest::from_value(&v).unwrap();
        assert_eq!(back.options.checkpoint_every, 32);
        assert!(back.resume.is_none());
        // Absent field defaults to off.
        let plain =
            ExecutionRequest::from_value(&ExecutionRequest::simple("u", "src", 5).to_value()).unwrap();
        assert_eq!(plain.options.checkpoint_every, 0);
    }

    #[test]
    fn submit_options_round_trip() {
        let req = ExecutionRequest::simple("u", "src", 5)
            .with_events(true)
            .with_checkpoints(16)
            .with_priority(3)
            .with_deadline_ms(2500);
        let back = ExecutionRequest::from_value(&req.to_value()).unwrap();
        assert_eq!(back.options, req.options);
        assert_eq!(back.options.priority, 3);
        assert_eq!(back.options.deadline_ms, Some(2500));
    }

    #[test]
    fn deprecated_flat_wire_bodies_still_parse() {
        // The pre-v1 wire form carried `events` and `checkpoint_every` as
        // flat fields. Old clients — and journals written before the
        // options object existed — must keep parsing. Pinned: this is the
        // v1 API's compatibility contract.
        let mut v = Value::Null;
        v.set("user", "legacy")
            .set("source", "pe X : producer { output o; process { emit(1); } }")
            .set("events", true)
            .set("checkpoint_every", 12i64);
        let req = ExecutionRequest::from_value(&v).unwrap();
        assert!(req.options.events);
        assert_eq!(req.options.checkpoint_every, 12);
        assert_eq!(req.options.priority, 0, "flat form has no priority; defaults apply");
        assert_eq!(req.options.deadline_ms, None);
        // When both forms appear, the nested v1 object wins.
        v.set("options", laminar_json::jobj! { "events" => false, "checkpointEvery" => 3i64 });
        let req = ExecutionRequest::from_value(&v).unwrap();
        assert!(!req.options.events);
        assert_eq!(req.options.checkpoint_every, 3);
    }

    #[test]
    fn defaults_applied() {
        let mut v = Value::Null;
        v.set("source", "pe X : producer { output o; process { emit(1); } }");
        let req = ExecutionRequest::from_value(&v).unwrap();
        assert_eq!(req.mapping, MappingKind::Simple);
        assert_eq!(req.processes, 5);
        assert!(matches!(req.input, RunInput::Iterations(5)));
        assert_eq!(req.user, "anonymous");
    }

    #[test]
    fn invalid_envelopes_rejected() {
        assert!(ExecutionRequest::from_value(&Value::Null).is_none());
        let mut v = Value::Null;
        v.set("source", "x").set("mapping", "SPARK");
        assert!(ExecutionRequest::from_value(&v).is_none());
    }

    #[test]
    fn wire_size_is_positive_and_grows() {
        let small = ExecutionRequest::simple("u", "short", 1);
        let big = ExecutionRequest::simple("u", &"long ".repeat(1000), 1);
        assert!(big.wire_size() > small.wire_size());
    }
}
