//! # laminar-engine
//!
//! The serverless core of Laminar (paper §3.3): a single entry point that
//! receives a workflow (code + configuration), provisions an ephemeral
//! environment, installs the declared library dependencies, stages any
//! additional resources, detects the initial PE, enacts the workflow with
//! the requested mapping, and returns the captured output to the caller —
//! then tears the environment down.
//!
//! Hardware substitution (DESIGN.md): the conda environment and pip
//! installs are modelled by [`env::EnvironmentManager`] with calibrated
//! deterministic costs, and remote engines add the [`netmodel::NetModel`]
//! WAN delay — together these reproduce the overhead structure that
//! Table 5 measures.

pub mod engine;
pub mod env;
pub mod hosts;
pub mod journal;
pub mod netmodel;
pub mod pool;
pub mod request;

pub use engine::{ExecutionEngine, ExecutionOutput};
pub use env::{EnvironmentManager, InstallReport};
pub use hosts::HostRegistry;
pub use journal::{JournalError, JournalStore, ResumeData};
pub use netmodel::NetModel;
pub use pool::{EnginePool, EventPage, JobEventLog, JobInfo, JobPhase, JobResult, PoolError, PoolStats};
pub use request::{ExecutionRequest, SubmitOptions};

pub use laminar_dataflow::{CancelToken, FaultPlan, RunInput};
