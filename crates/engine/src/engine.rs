//! The execution engine proper.

use crate::env::EnvironmentManager;
use crate::hosts::HostRegistry;
use crate::netmodel::NetModel;
use crate::request::ExecutionRequest;
use laminar_dataflow::mapping::{RunOptions, RunResult};
use laminar_dataflow::{
    CancelToken, DataflowError, RunEvent, RunObserver, ScriptPeFactory, StageTimings, WorkflowGraph,
};
use laminar_json::Value;
use laminar_script::{analysis, parse_script, VecSink};
use std::sync::Arc;
use std::time::{Duration, Instant};

use laminar_dataflow::pe::{Pe, PeFactory as _};

/// Outcome of a serverless execution, returned to the client
/// (paper Figure 9 shows `printed` forwarded verbatim).
#[derive(Debug, Clone, Default)]
pub struct ExecutionOutput {
    /// Terminal port emissions, keyed `"<pe>.<port>"`.
    pub outputs: laminar_json::Map,
    /// Captured stdout of the workflow.
    pub printed: Vec<String>,
    /// Libraries installed for this run.
    pub installed: Vec<String>,
    /// Environment provisioning time (setup + installs).
    pub provision_time: Duration,
    /// Pure enactment time.
    pub execute_time: Duration,
    /// End-to-end engine time (provision + stage + execute + teardown).
    pub total_time: Duration,
    /// Breakdown of `execute_time` into the enactment runtime's
    /// plan/enact/collect stages (the overhead structure Table 5 measures).
    pub stages: StageTimings,
    /// Per-PE processed counts.
    pub processed: std::collections::BTreeMap<String, u64>,
    /// Per-PE emitted counts (with `processed` and `enact_us`, the numbers
    /// behind the perf reports' throughput columns).
    pub emitted: std::collections::BTreeMap<String, u64>,
    /// Time the request sat in the engine pool's queue before a worker
    /// picked it (zero when run directly on an engine).
    pub queue_wait: Duration,
    /// Which pool worker ran the job (None when run directly).
    pub worker: Option<usize>,
    /// Events the enactment's stream carried (plan/lifecycle/output/print).
    pub events: u64,
    /// Time from enact start to the first terminal-port output, when the
    /// event stream was real-time (Simple runs and streamed executions).
    pub first_output: Option<Duration>,
}

impl ExecutionOutput {
    /// Serialize for the wire.
    pub fn to_value(&self) -> Value {
        let mut v = Value::Null;
        v.set("outputs", Value::Object(self.outputs.clone()))
            .set("printed", Value::Array(self.printed.iter().map(|p| Value::Str(p.clone())).collect()))
            .set("installed", Value::Array(self.installed.iter().map(|p| Value::Str(p.clone())).collect()))
            .set("provision_ms", self.provision_time.as_millis() as i64)
            .set("execute_ms", self.execute_time.as_millis() as i64)
            .set("total_ms", self.total_time.as_millis() as i64)
            // Stage timings travel in microseconds: plan/collect are often
            // sub-millisecond and would vanish at ms resolution.
            .set("plan_us", self.stages.plan.as_micros() as i64)
            .set("enact_us", self.stages.enact.as_micros() as i64)
            .set("collect_us", self.stages.collect.as_micros() as i64)
            .set("compile_us", self.stages.compile.as_micros() as i64)
            .set(
                "processed",
                self.processed.iter().map(|(k, n)| (k.clone(), Value::Int(*n as i64))).collect::<Value>(),
            )
            .set(
                "emitted",
                self.emitted.iter().map(|(k, n)| (k.clone(), Value::Int(*n as i64))).collect::<Value>(),
            )
            .set("queue_us", self.queue_wait.as_micros() as i64)
            .set("events", self.events as i64);
        if let Some(d) = self.first_output {
            v.set("first_output_us", d.as_micros() as i64);
        }
        if let Some(w) = self.worker {
            v.set("engine", w as i64);
        }
        v
    }

    /// Parse from the wire.
    pub fn from_value(v: &Value) -> Option<ExecutionOutput> {
        let mut out = ExecutionOutput {
            outputs: v["outputs"].as_object()?.clone(),
            printed: v["printed"].as_array()?.iter().filter_map(|p| p.as_str().map(str::to_string)).collect(),
            installed: v["installed"]
                .as_array()
                .unwrap_or(&[])
                .iter()
                .filter_map(|p| p.as_str().map(str::to_string))
                .collect(),
            provision_time: Duration::from_millis(v["provision_ms"].as_i64().unwrap_or(0).max(0) as u64),
            execute_time: Duration::from_millis(v["execute_ms"].as_i64().unwrap_or(0).max(0) as u64),
            total_time: Duration::from_millis(v["total_ms"].as_i64().unwrap_or(0).max(0) as u64),
            stages: StageTimings {
                plan: Duration::from_micros(v["plan_us"].as_i64().unwrap_or(0).max(0) as u64),
                enact: Duration::from_micros(v["enact_us"].as_i64().unwrap_or(0).max(0) as u64),
                collect: Duration::from_micros(v["collect_us"].as_i64().unwrap_or(0).max(0) as u64),
                compile: Duration::from_micros(v["compile_us"].as_i64().unwrap_or(0).max(0) as u64),
            },
            processed: Default::default(),
            emitted: Default::default(),
            queue_wait: Duration::from_micros(v["queue_us"].as_i64().unwrap_or(0).max(0) as u64),
            worker: v["engine"].as_i64().map(|w| w.max(0) as usize),
            events: v["events"].as_i64().unwrap_or(0).max(0) as u64,
            first_output: v["first_output_us"].as_i64().map(|d| Duration::from_micros(d.max(0) as u64)),
        };
        if let Some(m) = v["processed"].as_object() {
            for (k, n) in m {
                out.processed.insert(k.clone(), n.as_i64().unwrap_or(0).max(0) as u64);
            }
        }
        if let Some(m) = v["emitted"].as_object() {
            for (k, n) in m {
                out.emitted.insert(k.clone(), n.as_i64().unwrap_or(0).max(0) as u64);
            }
        }
        Some(out)
    }

    /// Total data processed per second of pure enactment — the headline
    /// number the `BENCH_*.json` perf trajectory tracks.
    pub fn enact_throughput(&self) -> f64 {
        let total: u64 = self.processed.values().sum();
        total as f64 / self.stages.enact.as_secs_f64().max(1e-9)
    }

    /// Values emitted on a terminal port.
    pub fn port_values(&self, pe: &str, port: &str) -> Vec<Value> {
        self.outputs
            .get(&format!("{pe}.{port}"))
            .and_then(|v| v.as_array().map(<[Value]>::to_vec))
            .unwrap_or_default()
    }

    /// One-line rendering of where the time went (Table 5's overhead
    /// structure), for clients and the bench binaries.
    pub fn overhead_report(&self) -> String {
        let queue = if self.queue_wait.is_zero() {
            String::new()
        } else {
            format!("queue {:.1?} | ", self.queue_wait)
        };
        format!(
            "{queue}provision {:.1?} | plan {:.1?} | enact {:.1?} | collect {:.1?} | total {:.1?}",
            self.provision_time, self.stages.plan, self.stages.enact, self.stages.collect, self.total_time
        )
    }
}

/// The serverless execution engine (paper §3.3). One engine handles
/// requests sequentially — the paper's deployment runs one engine per
/// container, scaling by adding engines.
pub struct ExecutionEngine {
    env: EnvironmentManager,
    hosts: HostRegistry,
    net: NetModel,
    runs: u64,
}

impl Default for ExecutionEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutionEngine {
    /// A local engine (no network model, cold environments).
    pub fn new() -> ExecutionEngine {
        ExecutionEngine {
            env: EnvironmentManager::new(),
            hosts: HostRegistry::new(),
            net: NetModel::local(),
            runs: 0,
        }
    }

    /// An engine with free provisioning (unit tests).
    pub fn instant() -> ExecutionEngine {
        ExecutionEngine {
            env: EnvironmentManager::new().instant(),
            hosts: HostRegistry::new(),
            net: NetModel::local(),
            runs: 0,
        }
    }

    /// Attach a network model (remote deployments).
    pub fn with_net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Keep the library cache warm across runs.
    pub fn keep_warm(mut self, warm: bool) -> Self {
        self.env.keep_warm = warm;
        self
    }

    /// Calibrate the simulated provisioning cost (µs per cost unit;
    /// 0 = instant). Environment setup is [`crate::env::ENV_SETUP_UNITS`]
    /// units, so e.g. `1000` makes every cold run pay ~400ms.
    pub fn with_provision_scale(mut self, us_per_unit: u64) -> Self {
        self.env.time_scale_us = us_per_unit;
        self
    }

    /// A sibling engine for pooled serving: shares the registered module
    /// hosts (one simulated service fleet per deployment) but owns its
    /// environment caches and staged resources, so concurrent runs stay
    /// isolated from each other.
    pub fn fork(&self) -> ExecutionEngine {
        ExecutionEngine { env: self.env.fork(), hosts: self.hosts.fork(), net: self.net, runs: 0 }
    }

    /// The host registry — workloads register simulated services here.
    pub fn hosts(&self) -> &HostRegistry {
        &self.hosts
    }

    /// Number of runs served.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Handle one execution request end-to-end.
    pub fn run(&mut self, req: &ExecutionRequest) -> Result<ExecutionOutput, DataflowError> {
        self.run_controlled(req, None, &CancelToken::new())
    }

    /// Handle one execution request end-to-end, streaming the enactment's
    /// [`RunEvent`]s to `observer` as they happen (instance lifecycle,
    /// terminal-port outputs, prints, counters, final stats). The returned
    /// output is the fold over that same stream.
    pub fn run_streaming(
        &mut self,
        req: &ExecutionRequest,
        observer: Arc<dyn RunObserver>,
    ) -> Result<ExecutionOutput, DataflowError> {
        self.run_controlled(req, Some(observer), &CancelToken::new())
    }

    /// The fully-controlled entry point: an optional live event observer
    /// plus a cooperative [`CancelToken`] the enactment checks between PE
    /// invocations. Cancellation surfaces as
    /// [`DataflowError::Cancelled`]; the events emitted up to that point
    /// (observer-visible, sealed by [`RunEvent::Cancelled`]) are a valid
    /// prefix of the run's stream. Unbounded requests
    /// ([`ExecutionRequest::with_unbounded`]) terminate *only* through
    /// the token.
    pub fn run_controlled(
        &mut self,
        req: &ExecutionRequest,
        observer: Option<Arc<dyn RunObserver>>,
        cancel: &CancelToken,
    ) -> Result<ExecutionOutput, DataflowError> {
        let t0 = Instant::now();
        self.runs += 1;

        // 0. Network: the request crosses the link to the engine.
        self.net.charge(req.wire_size());

        // 1. Parse and analyze imports (the findimports pass runs client-
        //    side in the paper; the engine re-derives the list defensively).
        let script = parse_script(&req.source)
            .map_err(|e| DataflowError::PeFailed { pe: "<request>".into(), error: e })?;
        let imports = analysis::imports(&script);

        // 2. Provision the environment and install libraries.
        let report = self.env.provision(&imports);
        let provision_time = report.setup_time + report.install_time;

        // 3. Stage resources.
        for (name, bytes) in &req.resources {
            self.hosts.stage_resource(name, bytes.clone());
        }

        // 4. Build the graph. Initial-PE detection is automatic: the graph
        //    computes its roots during validation (paper §3.3).
        let host: Arc<dyn laminar_script::Host + Send + Sync> = Arc::new(self.hosts.clone());
        let exec_t0 = Instant::now();
        let result = self.enact(req, &script, host, observer, cancel);
        // Cancelled or failed runs must not leak staged state into the
        // worker's next job: tear down before propagating the error.
        let result = match result {
            Ok(r) => r,
            Err(e) => {
                self.hosts.clear_resources();
                self.env.teardown();
                return Err(e);
            }
        };
        let execute_time = exec_t0.elapsed();

        // 5. Ephemeral teardown.
        self.hosts.clear_resources();
        self.env.teardown();

        // 6. Network: the response returns to the client.
        let mut output = ExecutionOutput {
            printed: result.printed,
            installed: report.installed,
            provision_time,
            execute_time,
            total_time: Duration::ZERO,
            stages: result.stats.timings,
            processed: result.stats.processed,
            emitted: result.stats.emitted,
            events: result.stats.events,
            first_output: result.stats.first_output,
            ..Default::default()
        };
        for ((pe, port), values) in result.outputs {
            output.outputs.insert(format!("{pe}.{port}"), Value::Array(values));
        }
        let resp_bytes = laminar_json::to_string(&output.to_value()).len();
        self.net.charge(resp_bytes);
        output.total_time = t0.elapsed();
        Ok(output)
    }

    fn enact(
        &self,
        req: &ExecutionRequest,
        script: &laminar_script::Script,
        host: Arc<dyn laminar_script::Host + Send + Sync>,
        observer: Option<Arc<dyn RunObserver>>,
        cancel: &CancelToken,
    ) -> Result<RunResult, DataflowError> {
        let workflow_names: Vec<String> = script.workflows().map(|w| w.name.clone()).collect();
        let pe_names: Vec<String> = script.pes().map(|p| p.name.clone()).collect();

        let target_workflow = match (&req.workflow, workflow_names.len()) {
            (Some(name), _) => Some(name.clone()),
            (None, 0) => None,
            (None, _) => Some(workflow_names[0].clone()),
        };

        let mut options = RunOptions::iterations(0).with_processes(req.processes).with_cancel(cancel.clone());
        options.input = req.input.clone();
        options.checkpoint_every = req.options.checkpoint_every;
        // Fault injection never crosses the wire, so no remote request can
        // ask the engine to kill itself: in-process chaos tests set
        // `req.faults`; deployments arm `LAMINAR_FAULTS` in the environment.
        options.faults = req.faults.clone().unwrap_or_else(laminar_dataflow::FaultPlan::from_env);
        options.resume = req.resume.clone();

        if let Some(wf) = target_workflow {
            let graph = WorkflowGraph::from_script_with_host(&req.source, &wf, host)?;
            let mapping = req.mapping.build();
            mapping.execute_observed(&graph, &options, observer)
        } else if pe_names.len() == 1 {
            // FaaS-style single-PE execution (paper §3.4.1).
            let result = self.run_single_pe(req, &pe_names[0], host, &options)?;
            if let Some(observer) = observer {
                replay_result_as_events(&result, &observer);
            }
            Ok(result)
        } else {
            Err(DataflowError::Options(
                "request has no workflow and more than one PE; name the workflow to run".into(),
            ))
        }
    }

    /// Run one PE like a traditional FaaS function: drive it with the
    /// input and collect everything it emits.
    fn run_single_pe(
        &self,
        req: &ExecutionRequest,
        pe_name: &str,
        host: Arc<dyn laminar_script::Host + Send + Sync>,
        options: &RunOptions,
    ) -> Result<RunResult, DataflowError> {
        if options.is_unbounded() {
            // The FaaS path buffers everything and replays it at
            // completion — an unbounded run would never surface a single
            // result. Only workflow enactments stream.
            return Err(DataflowError::Options(
                "unbounded input requires a workflow enactment; a single-PE (FaaS) run only returns \
                 results at completion"
                    .into(),
            ));
        }
        let factory = ScriptPeFactory::from_source_with_host(&req.source, pe_name, host)?;
        let meta = factory.meta().clone();
        let mut pe: Box<dyn Pe> = factory.instantiate();
        let mut sink = VecSink::default();
        pe.setup(0, 1, &mut sink)?;
        let is_producer = meta.inputs.is_empty();
        let default_in = meta.inputs.first().map(|p| p.name.clone()).unwrap_or_else(|| "input".into());
        let mut invoked = 0usize;
        // Same cooperative contract as the dataflow runtime: the token is
        // checked between invocations, so DELETE stops a long bounded
        // FaaS run at a clean boundary. (Unbounded input was rejected
        // above — this loop always has a limit.)
        let limit = options.bounded_invocations().expect("unbounded rejected above");
        while invoked < limit {
            if options.cancel.is_cancelled() {
                return Err(DataflowError::Cancelled);
            }
            let i = invoked;
            let datum = options.datum_for(i);
            let input = match (&datum, is_producer) {
                (Some(v), _) => Some((default_in.as_str(), v.clone())),
                (None, true) => None,
                (None, false) => Some((default_in.as_str(), Value::Int(i as i64))),
            };
            pe.process(input, i as i64, &mut sink)?;
            invoked += 1;
        }
        let mut result = RunResult::default();
        for (port, value) in sink.emitted {
            result.outputs.entry((meta.name.clone(), port.to_string())).or_default().push(value);
        }
        result.printed = sink.printed;
        result.stats.processed.insert(meta.name.clone(), invoked as u64);
        result.stats.instances.insert(meta.name.clone(), 1);
        // The stream a replay of this result synthesizes: plan + started +
        // one event per output/print + instance-finished.
        result.stats.events = 3 + result.total_outputs() as u64 + result.printed.len() as u64;
        Ok(result)
    }
}

/// Synthesize the event stream of a completed single-PE (FaaS) run. The
/// FaaS path has no enactment runtime to stream from, so its events reach
/// the observer at completion, in result order — same contract
/// (`fold(events) == result`), degenerate granularity.
fn replay_result_as_events(result: &RunResult, observer: &Arc<dyn RunObserver>) {
    let mut seq = 0u64;
    let mut emit = |ev: RunEvent| {
        observer.on_event(seq, &ev);
        seq += 1;
    };
    let pes: Vec<(Arc<str>, usize)> =
        result.stats.instances.iter().map(|(k, &n)| (Arc::from(k.as_str()), n)).collect();
    let pe: Arc<str> = pes.first().map(|(p, _)| Arc::clone(p)).unwrap_or_else(|| Arc::from("pe"));
    emit(RunEvent::PlanReady { pes });
    emit(RunEvent::InstanceStarted { pe: Arc::clone(&pe), instance: 0 });
    for ((pe_name, port), values) in &result.outputs {
        for value in values {
            emit(RunEvent::Output {
                pe: Arc::from(pe_name.as_str()),
                instance: 0,
                port: Arc::from(port.as_str()),
                value: value.clone(),
            });
        }
    }
    for line in &result.printed {
        emit(RunEvent::Print { pe: Arc::clone(&pe), instance: 0, line: line.clone() });
    }
    let processed = result.stats.processed.values().sum();
    emit(RunEvent::InstanceFinished { pe, instance: 0, processed, emitted: result.total_outputs() as u64 });
    emit(RunEvent::Finished { stats: result.stats.clone() });
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_dataflow::MappingKind;

    const WF_SRC: &str = r#"
        pe Seq : producer { output output; process { emit(iteration + 1); } }
        pe IsPrime : iterative {
            input num; output output;
            process {
                let i = 2;
                let prime = num > 1;
                while i * i <= num { if num % i == 0 { prime = false; break; } i = i + 1; }
                if prime { emit(num); }
            }
        }
        pe PrintPrime : consumer { input num; process { print("the num", num, "is prime"); } }
        workflow IsPrimeFlow {
            nodes { s = Seq; i = IsPrime; p = PrintPrime; }
            connect s.output -> i.num;
            connect i.output -> p.num;
        }
    "#;

    #[test]
    fn full_workflow_run_captures_prints() {
        let mut engine = ExecutionEngine::instant();
        let req = ExecutionRequest::simple("zz46", WF_SRC, 10);
        let out = engine.run(&req).unwrap();
        assert_eq!(
            out.printed,
            vec!["the num 2 is prime", "the num 3 is prime", "the num 5 is prime", "the num 7 is prime",]
        );
        assert_eq!(out.processed["Seq"], 10);
        assert_eq!(engine.runs(), 1);
    }

    #[test]
    fn multi_mapping_run() {
        let mut engine = ExecutionEngine::instant();
        let req = ExecutionRequest::simple("zz46", WF_SRC, 20).with_mapping(MappingKind::Multi, 5);
        let out = engine.run(&req).unwrap();
        assert_eq!(out.printed.len(), 8, "primes up to 20");
        assert_eq!(out.processed["IsPrime"], 20);
    }

    #[test]
    fn imports_installed_then_forgotten_cold() {
        let src = r#"
            pe A : producer { import astropy; output output; process { emit(1); } }
            workflow W { nodes { a = A; } }
        "#;
        let mut engine = ExecutionEngine::instant();
        let out1 = engine.run(&ExecutionRequest::simple("u", src, 1)).unwrap();
        assert_eq!(out1.installed, vec!["astropy"]);
        // Cold engine: the next run reinstalls.
        let out2 = engine.run(&ExecutionRequest::simple("u", src, 1)).unwrap();
        assert_eq!(out2.installed, vec!["astropy"]);
        // Warm engine: cached.
        let mut warm = ExecutionEngine::instant().keep_warm(true);
        warm.run(&ExecutionRequest::simple("u", src, 1)).unwrap();
        let out3 = warm.run(&ExecutionRequest::simple("u", src, 1)).unwrap();
        assert!(out3.installed.is_empty());
    }

    #[test]
    fn single_pe_faas_producer() {
        let src = "pe Gen : producer { output output; process { emit(iteration * iteration); } }";
        let mut engine = ExecutionEngine::instant();
        let out = engine.run(&ExecutionRequest::simple("u", src, 4)).unwrap();
        let vals = out.port_values("Gen", "output");
        assert_eq!(vals.iter().filter_map(Value::as_i64).collect::<Vec<_>>(), vec![0, 1, 4, 9]);
    }

    #[test]
    fn single_pe_faas_with_data() {
        let src = r#"pe Double : iterative { input x; output output; process { emit(x * 2); } }"#;
        let mut engine = ExecutionEngine::instant();
        let req = ExecutionRequest::simple("u", src, 0).with_data(vec![Value::Int(5), Value::Int(9)]);
        let out = engine.run(&req).unwrap();
        let vals = out.port_values("Double", "output");
        assert_eq!(vals.iter().filter_map(Value::as_i64).collect::<Vec<_>>(), vec![10, 18]);
    }

    #[test]
    fn resources_staged_and_cleared() {
        let src = r#"
            pe Reader : producer {
                output output;
                process {
                    let lines = resources.lines("coords.txt");
                    for l in lines { emit(l); }
                }
            }
            workflow R { nodes { r = Reader; } }
        "#;
        let mut engine = ExecutionEngine::instant();
        let req = ExecutionRequest::simple("u", src, 1).with_resource("coords.txt", b"a b\nc d\n".to_vec());
        let out = engine.run(&req).unwrap();
        assert_eq!(out.port_values("Reader", "output").len(), 2);
        // Ephemerality: resources are gone after the run.
        assert!(engine.hosts().resource_names().is_empty());
        // A second run without the resource fails inside the PE.
        let bare = ExecutionRequest::simple("u", src, 1);
        assert!(engine.run(&bare).is_err());
    }

    #[test]
    fn single_pe_unbounded_rejected_and_workflow_unbounded_cancels() {
        // FaaS path: unbounded input is a structural error.
        let src = "pe Gen : producer { output output; process { emit(iteration); } }";
        let mut engine = ExecutionEngine::instant();
        let req = ExecutionRequest::simple("u", src, 0).with_unbounded(Duration::from_micros(100));
        let err = engine.run(&req).unwrap_err();
        assert!(matches!(err, DataflowError::Options(_)), "{err}");

        // Workflow path: runs until the token fires, then reports
        // Cancelled (not a failure).
        let token = CancelToken::new();
        let wf = r#"
            pe Gen : producer { output output; process { emit(iteration); } }
            workflow Forever { nodes { g = Gen; } }
        "#;
        let req = ExecutionRequest::simple("u", wf, 0).with_unbounded(Duration::from_micros(100));
        let handle = {
            let token = token.clone();
            std::thread::spawn(move || ExecutionEngine::instant().run_controlled(&req, None, &token))
        };
        std::thread::sleep(Duration::from_millis(20));
        token.cancel();
        let result = handle.join().unwrap();
        assert_eq!(result.unwrap_err(), DataflowError::Cancelled);
    }

    #[test]
    fn ambiguous_request_rejected() {
        let src = r#"
            pe A : producer { output output; process { emit(1); } }
            pe B : producer { output output; process { emit(2); } }
        "#;
        let mut engine = ExecutionEngine::instant();
        let err = engine.run(&ExecutionRequest::simple("u", src, 1)).unwrap_err();
        assert!(matches!(err, DataflowError::Options(_)));
    }

    #[test]
    fn output_round_trips_via_value() {
        let mut engine = ExecutionEngine::instant();
        let out = engine.run(&ExecutionRequest::simple("u", WF_SRC, 5)).unwrap();
        let back = ExecutionOutput::from_value(&out.to_value()).unwrap();
        assert_eq!(back.printed, out.printed);
        assert_eq!(back.processed, out.processed);
        assert_eq!(back.emitted, out.emitted);
        assert!(back.emitted["IsPrime"] > 0, "emitted counts travel the wire");
        assert!(out.enact_throughput() > 0.0);
        // Stage timings survive the wire at microsecond resolution.
        assert!(back.stages.enact <= out.stages.enact);
        assert!(out.stages.enact - back.stages.enact < Duration::from_micros(1));
    }

    #[test]
    fn workflow_run_reports_stage_timings() {
        let mut engine = ExecutionEngine::instant();
        let out = engine.run(&ExecutionRequest::simple("u", WF_SRC, 10)).unwrap();
        assert!(out.stages.enact > Duration::ZERO, "enact stage not timed");
        assert!(
            out.stages.plan + out.stages.enact + out.stages.collect <= out.execute_time,
            "stages {:?} exceed execute_time {:?}",
            out.stages,
            out.execute_time
        );
        assert!(out.overhead_report().contains("enact"));
    }

    #[test]
    fn remote_engine_pays_the_wan() {
        let mut local = ExecutionEngine::instant();
        let mut remote = ExecutionEngine::instant()
            .with_net(NetModel { one_way_latency: Duration::from_millis(10), bytes_per_ms: 0 });
        let req = ExecutionRequest::simple("u", WF_SRC, 1);
        let t_local = local.run(&req).unwrap().total_time;
        let t_remote = remote.run(&req).unwrap().total_time;
        assert!(t_remote >= t_local + Duration::from_millis(15), "{t_remote:?} vs {t_local:?}");
    }
}
