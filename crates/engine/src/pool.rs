//! The engine worker pool: N [`ExecutionEngine`]s behind a bounded job
//! queue, so independent executions enact in parallel instead of queuing
//! on one `&mut engine`.
//!
//! The paper scales its serverless deployment by adding engine containers
//! (§3.3); this pool is the in-process equivalent. Each worker thread owns
//! a [`fork`](ExecutionEngine::fork) of the prototype engine — module
//! hosts are shared (one simulated service fleet per deployment), while
//! environments and staged resources stay per-worker so concurrent
//! tenants never observe each other's state.
//!
//! Admission control: the queue is bounded. A submission that finds the
//! queue full is rejected immediately ([`PoolError::QueueFull`], surfaced
//! as HTTP 429 by the server) instead of building unbounded backlog.

use crate::engine::{ExecutionEngine, ExecutionOutput};
use crate::journal::{JournalError, JournalStore, JournalWriter, ResumeData};
use crate::request::ExecutionRequest;
use laminar_dataflow::mapping::ResumePoint;
use laminar_dataflow::{CancelToken, DataflowError, FaultPlan, RunEvent, RunObserver};
use laminar_json::Value;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Finished jobs retained for polling before the oldest are evicted.
const RETAIN_FINISHED: usize = 4096;

/// Events retained per job before the oldest are evicted (cursor clients
/// detect the truncation via [`EventPage::first`]). Checkpointed jobs use
/// the capacity as a *horizon* instead: undelivered events are never
/// evicted while a consumer is live — the producer is throttled — and a
/// dead consumer degrades the log to epoch granularity, never to silent
/// data loss (see [`JobEventLog::wait_capacity`]).
const EVENT_LOG_CAPACITY: usize = 8192;

/// Default bounded wait a throttled producer spends on a full horizon log
/// before declaring the consumer dead and degrading to epoch-granularity
/// eviction. Cancel-aware — a DELETE lands within one wait slice — so a
/// vanished reader can delay a worker, never wedge it.
const BACKPRESSURE_WAIT: Duration = Duration::from_secs(5);

/// Slice of one backpressure wait between cancellation re-checks
/// ([`CancelToken`] has no waitable primitive to park on directly).
const BACKPRESSURE_SLICE: Duration = Duration::from_millis(20);

/// Finished streamed jobs whose full event logs stay replayable. Older
/// finished logs are expired — events dropped, sequence bookkeeping kept
/// — so large streamed payloads can't pin memory for as long as the
/// job *records* are retained ([`RETAIN_FINISHED`]).
const RETAIN_STREAMED_LOGS: usize = 256;

/// Upper bound on events returned per [`EnginePool::events`] page.
const EVENT_PAGE_LIMIT: usize = 512;

/// One page of a job's sequenced event log, addressed by cursor.
#[derive(Debug, Clone)]
pub struct EventPage {
    /// Events with `seq >= since`, in sequence order (wire form).
    pub events: Vec<Value>,
    /// Cursor for the next poll: pass as the next `since`.
    pub next: u64,
    /// Oldest sequence number still retained. `since < first` means the
    /// bounded log evicted events this client never saw.
    pub first: u64,
    /// Whether the stream is complete (the job reached a terminal phase
    /// and its last event is the `done`/`failed` marker).
    pub closed: bool,
    /// Set when the caller's cursor fell below [`EventPage::first`] but a
    /// checkpoint survived the eviction: the page starts at a retained
    /// `epoch` marker (its first event) and this is that epoch's id. The
    /// client re-anchors its fold at the checkpoint — engine-side
    /// recovery at epoch granularity instead of unrecoverable data loss.
    pub retained_epoch: Option<u64>,
}

struct EventLogInner {
    events: VecDeque<Value>,
    /// Sequence number of `events[0]`.
    first_seq: u64,
    closed: bool,
    /// Retained `epoch` markers as `(seq, epoch id)`, in stream order.
    /// Front entries are dropped as eviction overtakes their seq.
    epoch_marks: VecDeque<(u64, u64)>,
    /// High-water mark of delivery: the largest `next` cursor any
    /// [`JobEventLog::page`] call has returned. Events below it have been
    /// handed to a reader, so evicting them loses nothing.
    reads: u64,
    /// A `cancelled` marker was appended. Tracked as a flag (not by
    /// inspecting the deque back) so the dedup in
    /// [`JobEventLog::close_cancelled`] stays correct even after the
    /// marker's neighbours — or, in a torn state, the region around it —
    /// have been evicted.
    has_cancelled: bool,
    /// The backpressure wait expired on this horizon log: the consumer is
    /// presumed dead and eviction has degraded to epoch granularity.
    degraded: bool,
}

/// A bounded, sequenced log of one job's run events. Written by the
/// worker's streaming observer, read by cursor through the `/events`
/// endpoint.
///
/// Two retention policies share the structure:
///
/// * **Evict-and-truncate** (non-checkpointed jobs, `horizon = false`):
///   over capacity, the oldest events are dropped; cursor clients detect
///   the gap via [`EventPage::first`]. Today's behavior, kept as the
///   documented fallback — without checkpoints there is nothing better
///   to degrade to.
/// * **Checkpoint horizon** (`horizon = true`): undelivered events are
///   never evicted while the consumer is live; instead the producer is
///   throttled ([`JobEventLog::wait_capacity`], reached through the
///   [`RunObserver::throttle`] seam). If the bounded wait expires the
///   consumer is presumed dead and the log *degrades*: events below the
///   most recent retained `epoch` marker become evictable (the marker
///   survives as the recovery anchor surfaced via
///   [`EventPage::retained_epoch`]). Terminal markers are never evicted
///   under either policy.
pub struct JobEventLog {
    inner: Mutex<EventLogInner>,
    /// Signalled when a reader advances `reads` (and on close), waking
    /// producers parked in [`JobEventLog::wait_capacity`].
    space_cv: Condvar,
    /// The read-direction twin of `space_cv`: signalled when the producer
    /// appends (and on close/cancel/expiry), waking readers parked in
    /// [`JobEventLog::page_wait`] — the long-poll `wait_ms` machinery.
    data_cv: Condvar,
    /// Whether the checkpoint-horizon policy applies (jobs submitted with
    /// `checkpoint_every > 0`).
    horizon: bool,
    /// Retention bound (soft for horizon logs: a producer may overshoot
    /// by its burst between two throttle points).
    capacity: usize,
    /// Bounded backpressure wait before a horizon log degrades.
    max_wait: Duration,
}

impl JobEventLog {
    fn new(horizon: bool, capacity: usize, max_wait: Duration) -> Arc<JobEventLog> {
        Arc::new(JobEventLog {
            inner: Mutex::new(EventLogInner {
                events: VecDeque::new(),
                first_seq: 0,
                closed: false,
                epoch_marks: VecDeque::new(),
                reads: 0,
                has_cancelled: false,
                degraded: false,
            }),
            space_cv: Condvar::new(),
            data_cv: Condvar::new(),
            horizon,
            capacity: capacity.max(1),
            max_wait,
        })
    }

    /// Track policy-relevant markers of a just-stamped event.
    fn note_markers(inner: &mut EventLogInner, event: &Value, seq: u64) {
        match event["type"].as_str() {
            Some("epoch") => {
                let id = event["epoch"].as_i64().unwrap_or(0).max(0) as u64;
                inner.epoch_marks.push_back((seq, id));
            }
            Some("cancelled") => inner.has_cancelled = true,
            _ => {}
        }
    }

    /// Evict from the front down to `capacity`, honoring the policy:
    /// terminal markers are exempt; horizon logs evict only delivered
    /// events (`seq < reads`) until degraded, then anything below the
    /// latest retained epoch marker — and if a single round overflows the
    /// whole log (no marker to anchor on), blindly, which is exactly the
    /// non-checkpointed fallback.
    fn evict(inner: &mut EventLogInner, horizon: bool, capacity: usize) {
        while inner.events.len() > capacity {
            let front_seq = inner.first_seq;
            let front_type = inner.events.front().and_then(|e| e["type"].as_str());
            if matches!(front_type, Some("cancelled" | "done" | "failed")) {
                break;
            }
            if horizon && !inner.degraded && front_seq >= inner.reads {
                break; // undelivered and the consumer is (still) live
            }
            inner.events.pop_front();
            inner.first_seq += 1;
            while inner.epoch_marks.front().is_some_and(|&(seq, _)| seq < inner.first_seq) {
                inner.epoch_marks.pop_front();
            }
        }
    }

    /// Append one wire-form event, stamping it with the next sequence
    /// number (overwriting any `seq` the value carried — the log is the
    /// authority on ordering). Never blocks: a horizon log over capacity
    /// overshoots softly here and relies on the producer's next
    /// [`JobEventLog::wait_capacity`] to park.
    fn append(&self, mut event: Value) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        let seq = inner.first_seq + inner.events.len() as u64;
        event.set("seq", seq as i64);
        Self::note_markers(&mut inner, &event, seq);
        inner.events.push_back(event);
        Self::evict(&mut inner, self.horizon, self.capacity);
        drop(inner);
        self.data_cv.notify_all();
    }

    /// Pre-fill a resumed job's log with its journaled prefix, honoring
    /// the seqs the journal recorded — a resumed log must *not* restart
    /// at `first_seq = 0` with re-stamped events, or a client holding an
    /// attempt-1 cursor can be handed `next < since` and silently re-fold
    /// duplicates. Journaled streams are contiguous in every normal flow;
    /// on a discontinuity (a hand-mangled journal) stamping falls back to
    /// sequential from that point so the log stays internally consistent.
    ///
    /// The prefix already streamed live once and is durable on disk, so
    /// it counts as delivered: horizon eviction may reclaim it without
    /// waiting on a cursor client that may be long gone.
    fn preload_journal(&self, events: Vec<Value>) {
        let mut inner = self.inner.lock();
        let mut expected: Option<u64> = None;
        for mut event in events {
            let recorded = event["seq"].as_i64().map(|s| s.max(0) as u64);
            let seq = match (recorded, expected) {
                (Some(s), None) => s,              // first event seeds first_seq
                (Some(s), Some(e)) if s == e => s, // contiguous: honor the record
                (_, Some(e)) => e,                 // discontinuity: re-stamp
                (None, None) => 0,
            };
            if expected.is_none() {
                inner.first_seq = seq;
            }
            event.set("seq", seq as i64);
            Self::note_markers(&mut inner, &event, seq);
            inner.events.push_back(event);
            expected = Some(seq + 1);
        }
        inner.reads = inner.first_seq + inner.events.len() as u64;
        Self::evict(&mut inner, self.horizon, self.capacity);
        drop(inner);
        self.data_cv.notify_all();
    }

    /// Park the producer until the log has capacity again — the
    /// backpressure half of the horizon policy, called from the job
    /// observer's [`RunObserver::throttle`] at source-iteration
    /// boundaries. Returns immediately for non-horizon, closed, degraded
    /// or cancelled logs. When `max_wait` expires without the reader
    /// catching up, the log flips to degraded (epoch-granularity
    /// eviction) so a dead consumer delays a worker once, never wedges
    /// it.
    fn wait_capacity(&self, cancel: &CancelToken) {
        if !self.horizon {
            return;
        }
        let mut inner = self.inner.lock();
        let deadline = Instant::now() + self.max_wait;
        loop {
            Self::evict(&mut inner, self.horizon, self.capacity);
            if inner.events.len() <= self.capacity || inner.closed || inner.degraded || cancel.is_cancelled()
            {
                return;
            }
            if Instant::now() >= deadline {
                inner.degraded = true;
                Self::evict(&mut inner, self.horizon, self.capacity);
                return;
            }
            // Sliced so cancellation lands promptly: CancelToken has no
            // waitable primitive, and a reader's notify can race the park.
            self.space_cv.wait_for(&mut inner, BACKPRESSURE_SLICE);
        }
    }

    /// Append the terminal marker and seal the log.
    fn close(&self, terminal: Value) {
        self.append(terminal);
        self.inner.lock().closed = true;
        self.space_cv.notify_all();
        self.data_cv.notify_all();
    }

    /// Seal the log as cancelled. The [`RunEvent::Cancelled`] marker may
    /// already be present (the enactment runtime emits it through the
    /// streaming observer before unwinding); when it is not — queued jobs
    /// cancelled before a worker picked them, non-streamed jobs, shutdown
    /// — append it first, so a cancelled stream always ends in exactly
    /// one `cancelled` marker. The dedup keys off the `has_cancelled`
    /// flag, not the deque back: eviction can never strip the marker
    /// (terminal markers are exempt) nor fool the check.
    fn close_cancelled(&self) {
        let mut inner = self.inner.lock();
        if inner.closed {
            return;
        }
        if !inner.has_cancelled {
            let seq = inner.first_seq + inner.events.len() as u64;
            inner.events.push_back(RunEvent::Cancelled.to_value(seq));
            inner.has_cancelled = true;
        }
        inner.closed = true;
        drop(inner);
        self.space_cv.notify_all();
        self.data_cv.notify_all();
    }

    /// Drop every retained event, keeping the sequence bookkeeping (and
    /// closed-ness), so cursor clients observe truncation rather than a
    /// silently emptied stream.
    fn expire(&self) {
        let mut inner = self.inner.lock();
        inner.first_seq += inner.events.len() as u64;
        inner.events.clear();
        inner.epoch_marks.clear();
        drop(inner);
        // A parked long-poll whose cursor just fell below `first` must
        // observe the truncation, not sleep through it.
        self.data_cv.notify_all();
    }

    /// Read a page of events starting at `since`.
    ///
    /// Honest at both edges: a cursor beyond the end returns an empty
    /// page with `next = since` (never clamped backwards, never falsely
    /// `closed` — the caller has not seen the trailing events); a cursor
    /// below `first` re-anchors at the oldest retained epoch marker when
    /// one survives, reported via [`EventPage::retained_epoch`].
    fn page(&self, since: u64) -> EventPage {
        let mut inner = self.inner.lock();
        let first = inner.first_seq;
        let end_seq = first + inner.events.len() as u64;
        if since > end_seq {
            return EventPage { events: Vec::new(), next: since, first, closed: false, retained_epoch: None };
        }
        let mut retained_epoch = None;
        let mut start = since;
        if since < first {
            // The bounded log evicted events this cursor never saw. When a
            // checkpoint survives, recovery is engine-side: restart the
            // page at the oldest retained epoch marker.
            if let Some(&(mark_seq, mark_id)) = inner.epoch_marks.front() {
                start = mark_seq;
                retained_epoch = Some(mark_id);
            } else {
                start = first;
            }
        }
        let take = ((end_seq - start) as usize).min(EVENT_PAGE_LIMIT);
        let offset = (start - first) as usize;
        let events: Vec<Value> = inner.events.iter().skip(offset).take(take).cloned().collect();
        let next = start + events.len() as u64;
        let closed = inner.closed && next == end_seq;
        let advanced = next > inner.reads;
        if advanced {
            inner.reads = next;
        }
        drop(inner);
        if advanced {
            // Delivery frees horizon capacity: wake throttled producers.
            self.space_cv.notify_all();
        }
        EventPage { events, next, first, closed, retained_epoch }
    }

    /// [`JobEventLog::page`], in push mode: when the cursor is at the live
    /// edge of an open stream, park on `data_cv` until the producer
    /// appends, the log seals (terminal marker, cancel, shutdown), the
    /// retained window truncates past the cursor, or `wait` elapses —
    /// then answer exactly like a poll. `wait = 0` never parks and is
    /// byte-identical to [`JobEventLog::page`]; an already-closed or
    /// already-readable log answers immediately. This is the `wait_ms`
    /// long-poll: PR 8's backpressure Condvar machinery run in the read
    /// direction.
    fn page_wait(&self, since: u64, wait: Duration) -> EventPage {
        if !wait.is_zero() {
            let deadline = Instant::now() + wait;
            let mut inner = self.inner.lock();
            loop {
                let end_seq = inner.first_seq + inner.events.len() as u64;
                let readable = inner.closed || since < inner.first_seq || since < end_seq;
                if readable || self.data_cv.wait_until(&mut inner, deadline).timed_out() {
                    break;
                }
            }
        }
        // Build the page through the one poll path so push and poll can
        // never drift apart (re-locks; anything appended in the gap is a
        // bonus, not a bug).
        self.page(since)
    }

    /// The retained window as `(first, end)` sequence numbers —
    /// `end - first` is the in-memory event count. Observability for the
    /// slow-consumer bench and tests, which assert the window stays
    /// bounded by the checkpoint horizon.
    fn window(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.first_seq, inner.first_seq + inner.events.len() as u64)
    }
}

/// The worker-side bridge: converts each [`RunEvent`] to its wire form
/// and fans it out to the job's in-memory log (streamed jobs) and its
/// on-disk journal (checkpointed jobs under a durable pool).
///
/// The journal is written *first*: by the time an epoch marker becomes
/// observable through `/events`, its snapshot is already durable, so the
/// injected-kill fault (which fires right after the marker) models a
/// crash strictly after persistence. Journal I/O errors are swallowed —
/// a failing disk degrades durability, it must not kill a healthy run —
/// but counted, so operators can see the degradation in pool stats
/// ([`PoolStats::journal_errors`]) instead of discovering it at resume
/// time.
struct JobObserver {
    log: Option<Arc<JobEventLog>>,
    journal: Option<Mutex<JournalWriter>>,
    /// The job's cooperative stop signal: a backpressure park must abort
    /// when the job is cancelled.
    cancel: CancelToken,
    /// Pool-wide count of swallowed journal I/O errors.
    journal_errors: Arc<AtomicU64>,
}

impl RunObserver for JobObserver {
    fn on_event(&self, seq: u64, event: &RunEvent) {
        let wire = event.to_value(seq);
        if let Some(journal) = &self.journal {
            if journal.lock().record(&wire).is_err() {
                self.journal_errors.fetch_add(1, Ordering::SeqCst);
            }
        }
        if let Some(log) = &self.log {
            log.append(wire);
        }
    }

    /// The backpressure seam: the runtime calls this at source-iteration
    /// boundaries; the horizon log parks the producer until the consumer
    /// catches up (or the bounded wait degrades the log).
    fn throttle(&self) {
        if let Some(log) = &self.log {
            log.wait_capacity(&self.cancel);
        }
    }
}

/// Coarse lifecycle phase of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting in the queue.
    Queued,
    /// Picked by a worker, currently enacting.
    Running,
    /// Finished successfully; the output is available.
    Done,
    /// Finished with an execution error.
    Failed,
    /// Stopped on request (`DELETE /execution/{user}/job/{id}` or pool
    /// shutdown) before completing. Terminal, but not a failure: the
    /// job's event log is a valid stream prefix sealed by the
    /// `cancelled` marker.
    Cancelled,
}

impl JobPhase {
    /// Wire form (the `status` field of the job endpoints).
    pub fn as_str(&self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
            JobPhase::Cancelled => "cancelled",
        }
    }
}

/// Point-in-time public view of a job (the `status` endpoint's payload).
#[derive(Debug, Clone)]
pub struct JobInfo {
    /// Job id (unique per pool).
    pub id: i64,
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// Time spent waiting in the queue (final once picked).
    pub queue_wait: Duration,
    /// Wall-clock run time (final once finished; zero while queued).
    pub run_time: Duration,
    /// Worker that picked the job, once one has.
    pub worker: Option<usize>,
    /// Failure message when `phase == Failed`.
    pub error: Option<String>,
}

impl JobInfo {
    /// Whether the job reached a terminal phase.
    pub fn is_finished(&self) -> bool {
        matches!(self.phase, JobPhase::Done | JobPhase::Failed | JobPhase::Cancelled)
    }

    /// Serialize for the wire.
    pub fn to_value(&self) -> Value {
        let mut v = Value::Null;
        v.set("jobId", self.id)
            .set("status", self.phase.as_str())
            .set("queue_us", self.queue_wait.as_micros() as i64)
            .set("run_us", self.run_time.as_micros() as i64);
        if let Some(w) = self.worker {
            v.set("engine", w as i64);
        }
        if let Some(e) = &self.error {
            v.set("error_message", e.as_str());
        }
        v
    }
}

/// Outcome of polling a job for its result. The output is shared, not
/// copied: polls bump a refcount instead of deep-cloning result trees
/// under the pool's job lock.
#[derive(Debug, Clone)]
pub enum JobResult {
    /// Still queued or running.
    Pending(JobInfo),
    /// Finished successfully.
    Done(Arc<ExecutionOutput>, JobInfo),
    /// Finished with an error.
    Failed(String, JobInfo),
    /// Stopped on request before completing; no output exists. Consume
    /// what the job produced through its event log instead.
    Cancelled(JobInfo),
}

/// Errors the pool surfaces to callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// Admission control: the queue is at capacity (HTTP 429 upstream).
    QueueFull {
        /// The configured queue bound.
        capacity: usize,
    },
    /// Per-tenant admission control: the submitting tenant's token bucket
    /// is empty — it exceeded its sustained submission rate (HTTP 429
    /// upstream, with the retry hint in the envelope).
    RateLimited {
        /// The bucket's own estimate of when its next token lands.
        retry_after_ms: u64,
    },
    /// The execution itself failed.
    Failed(String),
    /// The job id is unknown (or belongs to another owner).
    Unknown(i64),
    /// The job was cancelled before completing.
    Cancelled(i64),
    /// The pool is shutting down and no longer accepts jobs.
    ShutDown,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::QueueFull { capacity } => {
                write!(f, "engine pool queue is full ({capacity} jobs); retry later")
            }
            PoolError::RateLimited { retry_after_ms } => {
                write!(f, "tenant rate limit exceeded; retry in {retry_after_ms}ms")
            }
            PoolError::Failed(m) => write!(f, "execution failed: {m}"),
            PoolError::Unknown(id) => write!(f, "no such job {id}"),
            PoolError::Cancelled(id) => write!(f, "job {id} was cancelled"),
            PoolError::ShutDown => write!(f, "engine pool is shut down"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Aggregate pool counters (the `/execution/pool/stats` payload).
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Worker threads (= engines).
    pub workers: usize,
    /// Queue bound.
    pub capacity: usize,
    /// Jobs currently waiting.
    pub queued: usize,
    /// Jobs currently enacting.
    pub running: usize,
    /// Total accepted submissions.
    pub submitted: u64,
    /// Total successful completions.
    pub completed: u64,
    /// Total failed executions.
    pub failed: u64,
    /// Total jobs cancelled (while queued or mid-run).
    pub cancelled: u64,
    /// Total submissions rejected by admission control.
    pub rejected: u64,
    /// Total submissions rejected by per-tenant rate limiting (counted
    /// separately from queue-full `rejected`: a rate-limited tenant is
    /// over *its* budget, not evidence the pool is saturated).
    pub rate_limited: u64,
    /// Tenants with jobs currently waiting (fair-queue lanes with work).
    pub queued_tenants: usize,
    /// Journal I/O errors swallowed by job observers (a failing disk
    /// degrades durability silently; this makes it visible).
    pub journal_errors: u64,
}

impl PoolStats {
    /// Serialize for the wire.
    pub fn to_value(&self) -> Value {
        let mut v = Value::Null;
        v.set("workers", self.workers)
            .set("capacity", self.capacity)
            .set("queued", self.queued)
            .set("running", self.running)
            .set("submitted", self.submitted as i64)
            .set("completed", self.completed as i64)
            .set("failed", self.failed as i64)
            .set("cancelled", self.cancelled as i64)
            .set("rejected", self.rejected as i64)
            .set("rate_limited", self.rate_limited as i64)
            .set("queued_tenants", self.queued_tenants)
            .set("journal_errors", self.journal_errors as i64);
        v
    }
}

/// One job waiting in a tenant's lane.
struct QueuedJob {
    id: i64,
    priority: i64,
    req: ExecutionRequest,
}

/// One tenant's pending-job lane. Intra-tenant order is descending
/// priority, FIFO among equals — priority jumps the tenant's *own* line,
/// never another tenant's.
#[derive(Default)]
struct Lane {
    jobs: VecDeque<QueuedJob>,
    /// Remaining service credit in the lane's current scheduler visit.
    credit: u64,
}

/// The pool's weighted-fair job queue: per-tenant FIFO lanes drained by
/// deficit round-robin instead of one global FIFO. Each scheduler visit
/// grants a lane `weight` pops (unit job cost), then rotates to the next
/// lane with work — so a tenant that floods the queue gets exactly its
/// share of worker pulls and can no longer starve the rest. Lanes exist
/// only while they hold work; the map stays bounded by the number of
/// tenants with queued jobs.
struct FairQueue {
    lanes: HashMap<String, Lane>,
    /// Round-robin service order over lanes that currently hold work.
    active: VecDeque<String>,
    /// Configured per-tenant weights (jobs served per visit; default 1).
    weights: HashMap<String, u64>,
    len: usize,
}

impl FairQueue {
    fn new() -> FairQueue {
        FairQueue { lanes: HashMap::new(), active: VecDeque::new(), weights: HashMap::new(), len: 0 }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Tenants with work queued right now.
    fn tenants(&self) -> usize {
        self.lanes.len()
    }

    fn set_weight(&mut self, owner: &str, weight: u64) {
        self.weights.insert(owner.to_string(), weight.max(1));
    }

    fn push(&mut self, owner: &str, id: i64, priority: i64, req: ExecutionRequest) {
        let lane = self.lanes.entry(owner.to_string()).or_default();
        if lane.jobs.is_empty() {
            self.active.push_back(owner.to_string());
            lane.credit = 0;
        }
        // Stable priority insert: after every job with >= priority.
        let at = lane.jobs.iter().position(|j| j.priority < priority).unwrap_or(lane.jobs.len());
        lane.jobs.insert(at, QueuedJob { id, priority, req });
        self.len += 1;
    }

    /// Next job under the deficit-round-robin discipline.
    fn pop(&mut self) -> Option<(i64, ExecutionRequest)> {
        loop {
            let owner = self.active.front()?.clone();
            let Some(lane) = self.lanes.get_mut(&owner) else {
                self.active.pop_front();
                continue;
            };
            if lane.jobs.is_empty() {
                self.lanes.remove(&owner);
                self.active.pop_front();
                continue;
            }
            if lane.credit == 0 {
                lane.credit = self.weights.get(&owner).copied().unwrap_or(1).max(1);
            }
            let job = lane.jobs.pop_front().expect("non-empty lane");
            lane.credit -= 1;
            self.len -= 1;
            let drained = lane.jobs.is_empty();
            if drained {
                self.lanes.remove(&owner);
            }
            if drained || self.lanes.get(&owner).is_none_or(|l| l.credit == 0) {
                // Visit over: rotate to the next tenant with work.
                self.active.pop_front();
                if !drained {
                    self.active.push_back(owner);
                }
            }
            return Some((job.id, job.req));
        }
    }

    /// Remove a queued job by id (cancellation frees the queue slot).
    fn remove(&mut self, id: i64) {
        let mut emptied: Option<String> = None;
        for (owner, lane) in self.lanes.iter_mut() {
            if let Some(pos) = lane.jobs.iter().position(|j| j.id == id) {
                lane.jobs.remove(pos);
                self.len -= 1;
                if lane.jobs.is_empty() {
                    emptied = Some(owner.clone());
                }
                break;
            }
        }
        if let Some(owner) = emptied {
            self.lanes.remove(&owner);
            self.active.retain(|o| *o != owner);
        }
    }

    /// Drain every lane (shutdown), returning the orphaned job ids.
    fn drain(&mut self) -> Vec<i64> {
        let ids: Vec<i64> = self.lanes.values().flat_map(|lane| lane.jobs.iter().map(|j| j.id)).collect();
        self.lanes.clear();
        self.active.clear();
        self.len = 0;
        ids
    }
}

/// Token-bucket state for one tenant.
struct TokenBucket {
    tokens: f64,
    last: Instant,
}

/// Pool-wide per-tenant rate limiting (disabled by default — see
/// [`EnginePool::set_tenant_rate`]). Classic token bucket: each tenant
/// accrues `per_sec` tokens up to `burst`; a submission costs one. An
/// empty bucket rejects with the bucket's own estimate of when the next
/// token lands — the `retryAfterMs` hint clients back off on.
struct RateLimiter {
    enabled: bool,
    per_sec: f64,
    burst: f64,
    buckets: HashMap<String, TokenBucket>,
}

impl RateLimiter {
    fn new() -> RateLimiter {
        RateLimiter { enabled: false, per_sec: 0.0, burst: 0.0, buckets: HashMap::new() }
    }

    /// Take one token for `owner`, or report how long until one lands.
    fn try_take(&mut self, owner: &str) -> Result<(), u64> {
        if !self.enabled {
            return Ok(());
        }
        let now = Instant::now();
        let bucket =
            self.buckets.entry(owner.to_string()).or_insert(TokenBucket { tokens: self.burst, last: now });
        let elapsed = now.duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.per_sec).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let wait_s = (1.0 - bucket.tokens) / self.per_sec.max(1e-9);
            Err((wait_s * 1000.0).ceil().max(1.0) as u64)
        }
    }
}

struct JobRecord {
    owner: String,
    phase: JobPhase,
    submitted: Instant,
    queue_wait: Duration,
    run_time: Duration,
    worker: Option<usize>,
    output: Option<Arc<ExecutionOutput>>,
    error: Option<String>,
    /// The job's sequenced event stream (terminal marker only, unless the
    /// request asked for live events).
    events: Arc<JobEventLog>,
    /// Whether the request asked for a live event stream.
    streaming: bool,
    /// Cooperative stop signal, shared with the enactment once a worker
    /// picks the job.
    cancel: CancelToken,
}

impl JobRecord {
    fn info(&self, id: i64) -> JobInfo {
        JobInfo {
            id,
            phase: self.phase,
            queue_wait: self.queue_wait,
            run_time: self.run_time,
            worker: self.worker,
            error: self.error.clone(),
        }
    }
}

struct PoolInner {
    /// Pending jobs, one lane per tenant, drained by deficit round-robin.
    /// Lock order: `queue` before `jobs` when both are held.
    queue: Mutex<FairQueue>,
    /// Per-tenant token buckets (checked before the queue; no-op unless
    /// [`EnginePool::set_tenant_rate`] enabled them).
    rate: Mutex<RateLimiter>,
    /// All known jobs (queued, running and a bounded tail of finished).
    jobs: Mutex<HashMap<i64, JobRecord>>,
    /// Finished ids in completion order, for eviction.
    finished_order: Mutex<VecDeque<i64>>,
    /// Finished *streamed* ids in completion order, for log expiry.
    streamed_order: Mutex<VecDeque<i64>>,
    /// Workers wait here for queue items.
    work_cv: Condvar,
    /// Result waiters wait here (paired with `jobs`).
    done_cv: Condvar,
    shutdown: AtomicBool,
    capacity: usize,
    /// Per-job epoch journals (durable pools only). Jobs with
    /// `checkpoint_every > 0` journal their event stream here and can be
    /// resumed across pool restarts.
    journal: Option<JournalStore>,
    next_id: AtomicI64,
    running: AtomicU64,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    rate_limited: AtomicU64,
    /// Total measured run time (ms) across completed/failed jobs, for the
    /// queue-full `retryAfterMs` hint.
    run_ms_total: AtomicU64,
    /// Worker count, cached for the retry hint (the `workers` Vec lives
    /// on `EnginePool`, not here).
    worker_count: usize,
    /// Journal I/O errors swallowed by job observers.
    journal_errors: Arc<AtomicU64>,
    /// Per-job event-log capacity for jobs submitted from now on
    /// (tests/benches shrink it to exercise the horizon policy without
    /// producing 8k+ events).
    event_log_capacity: AtomicUsize,
    /// Bounded backpressure wait (milliseconds) before a horizon log
    /// degrades, for jobs submitted from now on.
    backpressure_wait_ms: AtomicU64,
}

impl PoolInner {
    /// A fresh per-job log under the pool's current retention config.
    /// `horizon` is true for checkpointed jobs (`checkpoint_every > 0`),
    /// whose epochs give the log something better than eviction to
    /// degrade to.
    fn new_log(&self, horizon: bool) -> Arc<JobEventLog> {
        JobEventLog::new(
            horizon,
            self.event_log_capacity.load(Ordering::SeqCst),
            Duration::from_millis(self.backpressure_wait_ms.load(Ordering::SeqCst)),
        )
    }
}

/// A pool of engines serving jobs from a bounded queue.
pub struct EnginePool {
    inner: Arc<PoolInner>,
    hosts: crate::hosts::HostRegistry,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl EnginePool {
    /// Start `workers` engines forked from `prototype`, with a queue bound
    /// of `queue_capacity` jobs. No journal: checkpointed jobs still emit
    /// epochs, but nothing is persisted and jobs cannot be resumed.
    pub fn start(prototype: ExecutionEngine, workers: usize, queue_capacity: usize) -> EnginePool {
        Self::start_inner(prototype, workers, queue_capacity, None)
    }

    /// Start a *durable* pool: checkpointed jobs (`checkpoint_every > 0`)
    /// journal every epoch under `journal_root`, and any journals left
    /// behind by a previous pool — interrupted by [`EnginePool::stop`] or
    /// a crash — are automatically re-enqueued from their last complete
    /// epoch (journals flagged failed are kept for explicit
    /// [`EnginePool::resume_job`] but not auto-resumed, since a
    /// deterministic failure would just fail again).
    pub fn start_durable(
        prototype: ExecutionEngine,
        workers: usize,
        queue_capacity: usize,
        journal_root: &Path,
    ) -> Result<EnginePool, JournalError> {
        let journal = JournalStore::open(journal_root)?;
        let pending: Vec<i64> = journal
            .jobs()
            .into_iter()
            .filter(|(_, meta)| meta["failed"].as_bool() != Some(true))
            .map(|(id, _)| id)
            .collect();
        let pool = Self::start_inner(prototype, workers, queue_capacity, Some(journal));
        for id in pending {
            let journal = pool.inner.journal.as_ref().expect("durable pool has a journal");
            if let Some(data) = journal.load(id) {
                if let Err(e) = pool.enqueue_resume(id, data) {
                    eprintln!("journal: auto-resume of job {id} failed: {e}");
                }
            }
        }
        Ok(pool)
    }

    fn start_inner(
        prototype: ExecutionEngine,
        workers: usize,
        queue_capacity: usize,
        journal: Option<JournalStore>,
    ) -> EnginePool {
        let workers = workers.max(1);
        let inner = Arc::new(PoolInner {
            queue: Mutex::new(FairQueue::new()),
            rate: Mutex::new(RateLimiter::new()),
            jobs: Mutex::new(HashMap::new()),
            finished_order: Mutex::new(VecDeque::new()),
            streamed_order: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            capacity: queue_capacity.max(1),
            journal,
            next_id: AtomicI64::new(1),
            running: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            run_ms_total: AtomicU64::new(0),
            worker_count: workers,
            journal_errors: Arc::new(AtomicU64::new(0)),
            event_log_capacity: AtomicUsize::new(EVENT_LOG_CAPACITY),
            backpressure_wait_ms: AtomicU64::new(BACKPRESSURE_WAIT.as_millis() as u64),
        });
        let hosts = prototype.hosts().clone();
        let handles = (0..workers)
            .map(|worker_id| {
                let engine = prototype.fork();
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("engine-worker-{worker_id}"))
                    .spawn(move || worker_loop(&inner, engine, worker_id))
                    .expect("spawn engine worker")
            })
            .collect();
        EnginePool { inner, hosts, workers: handles }
    }

    /// The shared module-host registry: module hosts registered here are
    /// seen by every pooled engine. Staged *resources* are per-worker and
    /// travel with each execution request, never through this handle.
    pub fn hosts(&self) -> &crate::hosts::HostRegistry {
        &self.hosts
    }

    /// Number of worker engines.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a job. Fails fast with [`PoolError::RateLimited`] when the
    /// tenant is over its token budget, or [`PoolError::QueueFull`] when
    /// the queue is at capacity (admission control).
    pub fn submit(&self, owner: &str, req: ExecutionRequest) -> Result<i64, PoolError> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(PoolError::ShutDown);
        }
        if let Err(retry_after_ms) = self.inner.rate.lock().try_take(owner) {
            self.inner.rate_limited.fetch_add(1, Ordering::SeqCst);
            return Err(PoolError::RateLimited { retry_after_ms });
        }
        let mut queue = self.inner.queue.lock();
        if queue.len() >= self.inner.capacity {
            self.inner.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(PoolError::QueueFull { capacity: self.inner.capacity });
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        self.inner.jobs.lock().insert(
            id,
            JobRecord {
                owner: owner.to_string(),
                phase: JobPhase::Queued,
                submitted: Instant::now(),
                queue_wait: Duration::ZERO,
                run_time: Duration::ZERO,
                worker: None,
                output: None,
                error: None,
                events: self.inner.new_log(req.options.checkpoint_every > 0),
                streaming: req.options.events,
                cancel: CancelToken::new(),
            },
        );
        let priority = req.options.priority;
        queue.push(owner, id, priority, req);
        drop(queue);
        self.inner.submitted.fetch_add(1, Ordering::SeqCst);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    /// Enable per-tenant token-bucket rate limiting: each tenant accrues
    /// `per_sec` submissions per second up to a burst of `burst`. Applies
    /// to submissions from now on; resuming an already-admitted job is
    /// never rate limited. `per_sec <= 0` disables limiting again.
    pub fn set_tenant_rate(&self, per_sec: f64, burst: f64) {
        let mut rate = self.inner.rate.lock();
        rate.enabled = per_sec > 0.0;
        rate.per_sec = per_sec.max(0.0);
        rate.burst = burst.max(1.0);
        rate.buckets.clear();
    }

    /// Set a tenant's fair-share weight: how many queued jobs the
    /// scheduler serves from that tenant's lane per round-robin visit
    /// (default 1; values below 1 clamp to 1).
    pub fn set_tenant_weight(&self, owner: &str, weight: u64) {
        self.inner.queue.lock().set_weight(owner, weight);
    }

    /// How long a queue-full rejectee should plausibly wait before
    /// retrying, from live queue depth and observed mean job runtime:
    /// `queued × mean_run_ms / workers`, clamped to [25ms, 10s]. Crude,
    /// but it scales with actual saturation instead of being a constant.
    pub fn queue_retry_hint_ms(&self) -> u64 {
        let queued = self.inner.queue.lock().len() as u64;
        let done = self.inner.completed.load(Ordering::SeqCst) + self.inner.failed.load(Ordering::SeqCst);
        let mean_run_ms =
            self.inner.run_ms_total.load(Ordering::SeqCst).checked_div(done).map_or(25, |mean| mean.max(1));
        (queued.max(1) * mean_run_ms / self.inner.worker_count.max(1) as u64).clamp(25, 10_000)
    }

    /// Override the per-job event-log capacity for jobs submitted after
    /// the call (the checkpoint horizon for checkpointed jobs). Tests and
    /// the `slow_consumer` bench shrink it to exercise the retention
    /// policy without producing tens of thousands of events.
    pub fn set_event_log_capacity(&self, capacity: usize) {
        self.inner.event_log_capacity.store(capacity.max(1), Ordering::SeqCst);
    }

    /// Override the bounded backpressure wait for jobs submitted after
    /// the call: how long a throttled producer parks on a full horizon
    /// log before presuming the consumer dead and degrading to
    /// epoch-granularity eviction.
    pub fn set_backpressure_wait(&self, wait: Duration) {
        self.inner.backpressure_wait_ms.store(wait.as_millis() as u64, Ordering::SeqCst);
    }

    /// The retained event window of a job's log as `(first, end)`
    /// sequence numbers — `end - first` events are in memory. `None` when
    /// the id is unknown or owned by someone else. Observability for the
    /// horizon policy: the slow-consumer gates assert `end - first` stays
    /// bounded by the configured capacity (plus one producer burst).
    pub fn event_log_window(&self, owner: &str, id: i64) -> Option<(u64, u64)> {
        let jobs = self.inner.jobs.lock();
        let rec = jobs.get(&id)?;
        if rec.owner != owner {
            return None;
        }
        let log = Arc::clone(&rec.events);
        drop(jobs);
        Some(log.window())
    }

    /// Current view of a job. `None` when the id is unknown or owned by
    /// someone else (tenants cannot observe each other's jobs).
    pub fn status(&self, owner: &str, id: i64) -> Option<JobInfo> {
        let jobs = self.inner.jobs.lock();
        let rec = jobs.get(&id)?;
        if rec.owner != owner {
            return None;
        }
        Some(rec.info(id))
    }

    /// Poll a job for its result.
    pub fn result(&self, owner: &str, id: i64) -> Option<JobResult> {
        let jobs = self.inner.jobs.lock();
        let rec = jobs.get(&id)?;
        if rec.owner != owner {
            return None;
        }
        Some(Self::result_of(rec, id))
    }

    fn result_of(rec: &JobRecord, id: i64) -> JobResult {
        match rec.phase {
            JobPhase::Done => JobResult::Done(rec.output.clone().expect("done job has output"), rec.info(id)),
            JobPhase::Failed => {
                JobResult::Failed(rec.error.clone().unwrap_or_else(|| "unknown".into()), rec.info(id))
            }
            JobPhase::Cancelled => JobResult::Cancelled(rec.info(id)),
            _ => JobResult::Pending(rec.info(id)),
        }
    }

    /// Block until the job finishes or `timeout` passes; returns the
    /// latest view ([`JobResult::Pending`] on timeout).
    pub fn wait(&self, owner: &str, id: i64, timeout: Duration) -> Option<JobResult> {
        let deadline = Instant::now() + timeout;
        let mut jobs = self.inner.jobs.lock();
        loop {
            match jobs.get(&id) {
                None => return None,
                Some(rec) if rec.owner != owner => return None,
                Some(rec) => {
                    if rec.info(id).is_finished() || Instant::now() >= deadline {
                        return Some(Self::result_of(rec, id));
                    }
                }
            }
            self.inner.done_cv.wait_until(&mut jobs, deadline);
        }
    }

    /// The synchronous path: submit and wait to completion. The existing
    /// blocking endpoint is a thin wrapper over this.
    pub fn run_sync(&self, owner: &str, req: ExecutionRequest) -> Result<ExecutionOutput, PoolError> {
        let id = self.submit(owner, req)?;
        // Generous bound: a job that takes this long is lost anyway.
        match self.wait(owner, id, Duration::from_secs(24 * 3600)) {
            Some(JobResult::Done(out, _)) => {
                // The sync caller owns the result in the common case; only
                // a concurrent poller holding a reference forces a copy.
                Ok(Arc::try_unwrap(out).unwrap_or_else(|shared| (*shared).clone()))
            }
            Some(JobResult::Failed(msg, _)) => Err(PoolError::Failed(msg)),
            Some(JobResult::Cancelled(_)) => Err(PoolError::Cancelled(id)),
            Some(JobResult::Pending(_)) | None => Err(PoolError::Unknown(id)),
        }
    }

    /// Request cancellation of a job (the `DELETE .../job/{id}` path).
    /// Idempotent:
    ///
    /// * **queued** — the job is cancelled on the spot: terminal
    ///   [`JobPhase::Cancelled`], event log sealed with the `cancelled`
    ///   marker, queue slot released; it will never run.
    /// * **running** — the job's [`CancelToken`] fires; the enactment
    ///   stops cooperatively at its next invocation boundary and the
    ///   worker commits the `Cancelled` phase (poll `status` to observe
    ///   it). A run that finishes before noticing stays `done`.
    /// * **finished** (done/failed/cancelled) — a no-op.
    ///
    /// Returns the job's post-request view, or `None` when the id is
    /// unknown or owned by someone else.
    pub fn cancel(&self, owner: &str, id: i64) -> Option<JobInfo> {
        let (info, newly_cancelled) = {
            let mut jobs = self.inner.jobs.lock();
            let rec = jobs.get_mut(&id)?;
            if rec.owner != owner {
                return None;
            }
            let newly = match rec.phase {
                JobPhase::Queued => {
                    rec.phase = JobPhase::Cancelled;
                    rec.cancel.cancel();
                    rec.events.close_cancelled();
                    self.inner.cancelled.fetch_add(1, Ordering::SeqCst);
                    true
                }
                JobPhase::Running => {
                    rec.cancel.cancel();
                    false
                }
                _ => false,
            };
            (rec.info(id), newly)
        };
        if newly_cancelled {
            // Free the queue slot (admission control) — the worker-side
            // phase check makes this safe against a concurrent pop.
            self.inner.queue.lock().remove(id);
            // An explicit cancel abandons the job's journal too (a queued
            // resumed job still has one from its interrupted run).
            if let Some(journal) = &self.inner.journal {
                journal.remove(id);
            }
            self.inner.done_cv.notify_all();
            evict_finished(&self.inner, id);
        }
        Some(info)
    }

    /// A page of a job's sequenced event log starting at cursor `since`.
    /// `None` when the id is unknown or owned by someone else. Jobs
    /// submitted without `events=true` log only the terminal marker.
    pub fn events(&self, owner: &str, id: i64, since: u64) -> Option<EventPage> {
        self.events_wait(owner, id, since, Duration::ZERO)
    }

    /// Long-poll variant of [`EnginePool::events`]: when the page at
    /// `since` would be empty and the log is still open, park on the
    /// log's condvar until something lands past the cursor, the stream
    /// seals (done/failed/cancelled — including via [`EnginePool::stop`]),
    /// or `wait` elapses. `wait = 0` is byte-identical to a plain poll.
    /// No job lock is held while parked — only the per-job log's.
    pub fn events_wait(&self, owner: &str, id: i64, since: u64, wait: Duration) -> Option<EventPage> {
        let log = {
            let jobs = self.inner.jobs.lock();
            let rec = jobs.get(&id)?;
            if rec.owner != owner {
                return None;
            }
            Arc::clone(&rec.events)
        };
        Some(log.page_wait(since, wait))
    }

    /// Resume an interrupted checkpointed job from its journal (the
    /// `POST .../job/{id}/resume` path). The job is re-enqueued **under
    /// its original id** with its event log pre-filled from the journaled
    /// prefix, so existing `/events` cursors stay valid; enactment
    /// restarts from the last complete epoch's snapshots and re-executes
    /// only the partial round after it.
    ///
    /// Fails with [`PoolError::Unknown`] when the pool has no journal,
    /// the job was never journaled (or already completed and was cleaned
    /// up), or the owner does not match. A job currently queued, running
    /// or done in *this* pool is refused — resume is for interrupted jobs.
    pub fn resume_job(&self, owner: &str, id: i64) -> Result<i64, PoolError> {
        if self.inner.shutdown.load(Ordering::SeqCst) {
            return Err(PoolError::ShutDown);
        }
        let journal = self.inner.journal.as_ref().ok_or(PoolError::Unknown(id))?;
        // Chaos harness: an env-armed truncation fault tears the segment
        // tail before recovery reads it, modelling a crash that raced the
        // sealing rename.
        if let Some((epoch, bytes)) = FaultPlan::from_env().truncate_segment {
            let _ = journal.truncate_segment(id, epoch, bytes);
        }
        let data = journal.load(id).ok_or(PoolError::Unknown(id))?;
        if data.meta["owner"].as_str() != Some(owner) {
            return Err(PoolError::Unknown(id));
        }
        if let Some(rec) = self.inner.jobs.lock().get(&id) {
            if !matches!(rec.phase, JobPhase::Failed | JobPhase::Cancelled) {
                return Err(PoolError::Failed(format!(
                    "job {id} is {}; only interrupted jobs can be resumed",
                    rec.phase.as_str()
                )));
            }
        }
        self.enqueue_resume(id, data)
    }

    /// Re-enqueue a journaled job under its original id.
    fn enqueue_resume(&self, id: i64, data: ResumeData) -> Result<i64, PoolError> {
        let mut req = ExecutionRequest::from_value(&data.meta["request"])
            .ok_or_else(|| PoolError::Failed(format!("job {id}: corrupt journal meta")))?;
        let owner = data.meta["owner"].as_str().unwrap_or("anonymous").to_string();
        let lane_owner = owner.clone();
        let replayed: Vec<RunEvent> = data.events.iter().filter_map(RunEvent::from_value).collect();
        req.resume = Some(ResumePoint { epoch: data.epoch, snapshots: data.snapshots, events: replayed });

        let mut queue = self.inner.queue.lock();
        if queue.len() >= self.inner.capacity {
            self.inner.rejected.fetch_add(1, Ordering::SeqCst);
            return Err(PoolError::QueueFull { capacity: self.inner.capacity });
        }
        // Keep the id allocator ahead of resurrected ids so fresh
        // submissions never collide with a journaled job.
        self.inner.next_id.fetch_max(id + 1, Ordering::SeqCst);
        // Seed the resumed log from the journal *honoring recorded seqs*,
        // so attempt-1 cursors stay monotone across the resume.
        let log = self.inner.new_log(req.options.checkpoint_every > 0);
        log.preload_journal(data.events);
        self.inner.jobs.lock().insert(
            id,
            JobRecord {
                owner,
                phase: JobPhase::Queued,
                submitted: Instant::now(),
                queue_wait: Duration::ZERO,
                run_time: Duration::ZERO,
                worker: None,
                output: None,
                error: None,
                events: log,
                streaming: req.options.events,
                cancel: CancelToken::new(),
            },
        );
        let priority = req.options.priority;
        queue.push(&lane_owner, id, priority, req);
        drop(queue);
        self.inner.submitted.fetch_add(1, Ordering::SeqCst);
        self.inner.work_cv.notify_one();
        Ok(id)
    }

    /// Deterministic shutdown: every job still queued is *cancelled*
    /// (never silently dropped, never run) with its event log sealed by
    /// the `cancelled` marker; in-flight jobs get their cancel token
    /// fired, so even unbounded streaming enactments wind down at their
    /// next invocation boundary (short bounded jobs typically complete
    /// first and stay `done`); all worker threads are joined. Idempotent
    /// — [`Drop`] calls this too.
    pub fn stop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work_cv.notify_all();
        // Cancel everything a worker hasn't picked. A job popped before
        // the flag landed terminates through its token — either way every
        // submitted job reaches a terminal phase.
        let orphaned: Vec<i64> = self.inner.queue.lock().drain();
        for id in orphaned {
            let mut jobs = self.inner.jobs.lock();
            if let Some(rec) = jobs.get_mut(&id) {
                if rec.phase == JobPhase::Queued {
                    rec.phase = JobPhase::Cancelled;
                    rec.cancel.cancel();
                    rec.events.close_cancelled();
                    self.inner.cancelled.fetch_add(1, Ordering::SeqCst);
                }
            }
            drop(jobs);
            evict_finished(&self.inner, id);
        }
        // Fire in-flight tokens so the join below terminates even when a
        // worker is running an unbounded (run-until-cancelled) job. This
        // covers `Queued` too: a worker may have popped a job from the
        // queue (so the orphan drain above missed it) without having
        // marked it `Running` yet — skipping it would hand that worker an
        // unbounded enactment nobody can ever stop.
        for rec in self.inner.jobs.lock().values() {
            if matches!(rec.phase, JobPhase::Queued | JobPhase::Running) {
                rec.cancel.cancel();
            }
        }
        self.inner.done_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> PoolStats {
        let (queued, queued_tenants) = {
            let queue = self.inner.queue.lock();
            (queue.len(), queue.tenants())
        };
        PoolStats {
            workers: self.workers.len(),
            capacity: self.inner.capacity,
            queued,
            running: self.inner.running.load(Ordering::SeqCst) as usize,
            submitted: self.inner.submitted.load(Ordering::SeqCst),
            completed: self.inner.completed.load(Ordering::SeqCst),
            failed: self.inner.failed.load(Ordering::SeqCst),
            cancelled: self.inner.cancelled.load(Ordering::SeqCst),
            rejected: self.inner.rejected.load(Ordering::SeqCst),
            rate_limited: self.inner.rate_limited.load(Ordering::SeqCst),
            queued_tenants,
            journal_errors: self.inner.journal_errors.load(Ordering::SeqCst),
        }
    }
}

impl Drop for EnginePool {
    /// Deterministic shutdown — see [`EnginePool::stop`].
    fn drop(&mut self) {
        self.stop();
    }
}

/// The wire-form terminal event sealing a job's stream.
fn terminal_event(status: &str, error: Option<&str>) -> Value {
    let mut v = Value::Null;
    v.set("type", status);
    if let Some(e) = error {
        v.set("error", e);
    }
    v
}

fn worker_loop(inner: &PoolInner, mut engine: ExecutionEngine, worker_id: usize) {
    loop {
        let job = {
            let mut queue = inner.queue.lock();
            loop {
                // Checked before popping: once shutdown lands, queued jobs
                // belong to `stop()`, which fails them deterministically.
                if inner.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                if let Some(job) = queue.pop() {
                    break Some(job);
                }
                inner.work_cv.wait(&mut queue);
            }
        };
        let Some((id, req)) = job else { return };

        let picked = Instant::now();
        let mut deadline_missed = false;
        let (log, streaming, cancel, owner) = {
            let mut jobs = inner.jobs.lock();
            match jobs.get_mut(&id) {
                // A job cancelled while queued stays cancelled: its
                // record is already terminal and sealed, so the popped
                // queue entry is simply dropped.
                Some(rec) if rec.phase != JobPhase::Queued => continue,
                Some(rec) => {
                    rec.queue_wait = picked.duration_since(rec.submitted);
                    // A submission deadline bounds *queue wait*: a job
                    // that waited past it fails fast instead of burning a
                    // worker on a result the submitter stopped wanting.
                    if let Some(deadline_ms) = req.options.deadline_ms {
                        if rec.queue_wait > Duration::from_millis(deadline_ms) {
                            let msg = format!(
                                "deadline exceeded: {deadline_ms}ms budget, \
                                 {}ms in queue",
                                rec.queue_wait.as_millis()
                            );
                            rec.events.close(terminal_event("failed", Some(&msg)));
                            rec.error = Some(msg);
                            rec.phase = JobPhase::Failed;
                            inner.failed.fetch_add(1, Ordering::SeqCst);
                            deadline_missed = true;
                        }
                    }
                    if deadline_missed {
                        (Arc::clone(&rec.events), false, CancelToken::new(), String::new())
                    } else {
                        rec.phase = JobPhase::Running;
                        rec.worker = Some(worker_id);
                        (Arc::clone(&rec.events), rec.streaming, rec.cancel.clone(), rec.owner.clone())
                    }
                }
                None => (
                    JobEventLog::new(false, EVENT_LOG_CAPACITY, BACKPRESSURE_WAIT),
                    false,
                    CancelToken::new(),
                    String::new(),
                ),
            }
        };
        if deadline_missed {
            if let Some(journal) = &inner.journal {
                journal.mark_failed(id);
            }
            inner.done_cv.notify_all();
            evict_finished(inner, id);
            continue;
        }
        inner.running.fetch_add(1, Ordering::SeqCst);
        // Durable pools journal checkpointed jobs: the journal writer sits
        // behind the same observer as the event log, so epochs hit disk in
        // stream order. `create` reopens an existing journal on resume
        // (truncating the stale partial-round tail).
        let journaled = inner.journal.is_some() && req.options.checkpoint_every > 0;
        let journal_writer = inner.journal.as_ref().filter(|_| journaled).and_then(|store| {
            let mut meta = Value::Null;
            meta.set("owner", owner.as_str()).set("request", req.to_value());
            store.create(id, &meta).map_err(|e| eprintln!("journal: job {id}: {e}")).ok()
        });
        let observer: Option<Arc<dyn RunObserver>> = (streaming || journal_writer.is_some()).then(|| {
            Arc::new(JobObserver {
                log: streaming.then(|| Arc::clone(&log)),
                journal: journal_writer.map(Mutex::new),
                cancel: cancel.clone(),
                journal_errors: Arc::clone(&inner.journal_errors),
            }) as Arc<dyn RunObserver>
        });
        let result = engine.run_controlled(&req, observer, &cancel);
        inner.running.fetch_sub(1, Ordering::SeqCst);
        let run_time = picked.elapsed();

        {
            let mut jobs = inner.jobs.lock();
            if let Some(rec) = jobs.get_mut(&id) {
                rec.run_time = run_time;
                match result {
                    Ok(mut out) => {
                        out.queue_wait = rec.queue_wait;
                        out.worker = Some(worker_id);
                        rec.output = Some(Arc::new(out));
                        rec.phase = JobPhase::Done;
                        log.close(terminal_event("done", None));
                        inner.completed.fetch_add(1, Ordering::SeqCst);
                        inner.run_ms_total.fetch_add(run_time.as_millis() as u64, Ordering::SeqCst);
                        // A completed job needs no recovery state.
                        if let Some(journal) = &inner.journal {
                            journal.remove(id);
                        }
                    }
                    Err(DataflowError::Cancelled) => {
                        // The streaming observer already logged the
                        // runtime's Cancelled marker; close_cancelled
                        // appends it for non-streamed jobs and seals.
                        rec.phase = JobPhase::Cancelled;
                        log.close_cancelled();
                        inner.cancelled.fetch_add(1, Ordering::SeqCst);
                        // User cancellation abandons the job — drop its
                        // journal. Shutdown cancellation keeps it so a
                        // restarted durable pool auto-resumes the run.
                        if !inner.shutdown.load(Ordering::SeqCst) {
                            if let Some(journal) = &inner.journal {
                                journal.remove(id);
                            }
                        }
                    }
                    Err(e) => {
                        let message = e.to_string();
                        log.close(terminal_event("failed", Some(&message)));
                        rec.error = Some(message);
                        rec.phase = JobPhase::Failed;
                        inner.failed.fetch_add(1, Ordering::SeqCst);
                        inner.run_ms_total.fetch_add(run_time.as_millis() as u64, Ordering::SeqCst);
                        // Keep the journal for post-mortems and explicit
                        // resume, but flag it so auto-resume skips a job
                        // that would just crash again.
                        if let Some(journal) = &inner.journal {
                            journal.mark_failed(id);
                        }
                    }
                }
            }
        }
        inner.done_cv.notify_all();
        if streaming {
            expire_old_streamed_logs(inner, id);
        }
        evict_finished(inner, id);
    }
}

/// Bound the finished-job tail so long-lived servers don't leak records.
fn evict_finished(inner: &PoolInner, just_finished: i64) {
    let mut order = inner.finished_order.lock();
    order.push_back(just_finished);
    while order.len() > RETAIN_FINISHED {
        if let Some(old) = order.pop_front() {
            inner.jobs.lock().remove(&old);
        }
    }
}

/// Bound the memory held by finished streamed logs: only the most recent
/// [`RETAIN_STREAMED_LOGS`] keep their events; older ones are expired
/// (cursor clients see truncation, the terminal phase stays pollable).
fn expire_old_streamed_logs(inner: &PoolInner, just_finished: i64) {
    let mut order = inner.streamed_order.lock();
    order.push_back(just_finished);
    while order.len() > RETAIN_STREAMED_LOGS {
        if let Some(old) = order.pop_front() {
            let log = inner.jobs.lock().get(&old).map(|rec| Arc::clone(&rec.events));
            if let Some(log) = log {
                log.expire();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WF_SRC: &str = r#"
        pe Seq : producer { output output; process { emit(iteration + 1); } }
        pe Sq : iterative { input num; output output; process { emit(num * num); } }
        workflow Squares {
            nodes { s = Seq; q = Sq; }
            connect s.output -> q.num;
        }
    "#;

    fn instant_pool(workers: usize, capacity: usize) -> EnginePool {
        EnginePool::start(ExecutionEngine::instant(), workers, capacity)
    }

    #[test]
    fn submit_wait_roundtrip() {
        let pool = instant_pool(2, 16);
        let id = pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 4)).unwrap();
        match pool.wait("u", id, Duration::from_secs(10)).unwrap() {
            JobResult::Done(out, info) => {
                assert_eq!(out.port_values("Sq", "output").len(), 4);
                assert_eq!(info.phase, JobPhase::Done);
                assert!(info.worker.is_some());
                assert_eq!(out.worker, info.worker, "metrics threaded into the output");
            }
            other => panic!("expected Done, got {other:?}"),
        }
        let stats = pool.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn run_sync_matches_direct_engine() {
        let pool = instant_pool(3, 16);
        let direct = ExecutionEngine::instant().run(&ExecutionRequest::simple("u", WF_SRC, 6)).unwrap();
        let pooled = pool.run_sync("u", ExecutionRequest::simple("u", WF_SRC, 6)).unwrap();
        assert_eq!(pooled.port_values("Sq", "output"), direct.port_values("Sq", "output"));
        assert_eq!(pooled.processed, direct.processed);
        assert!(pooled.overhead_report().contains("enact"));
    }

    #[test]
    fn failed_execution_reported() {
        let pool = instant_pool(1, 4);
        let err = pool.run_sync("u", ExecutionRequest::simple("u", "not a script !!", 1)).unwrap_err();
        assert!(matches!(err, PoolError::Failed(_)), "{err}");
        assert_eq!(pool.stats().failed, 1);
    }

    #[test]
    fn admission_control_rejects_when_full() {
        // One slow worker, queue bound 1: the first job occupies the
        // worker, the second fills the queue, the third is rejected.
        let engine = ExecutionEngine::instant().with_provision_scale(500);
        let pool = EnginePool::start(engine, 1, 1);
        let first = pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)).unwrap();
        // Give the worker a moment to pick the first job so the queue
        // bound applies to the jobs behind it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.status("u", first).unwrap().phase == JobPhase::Queued && Instant::now() < deadline {
            std::thread::yield_now();
        }
        let _second = pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)).unwrap();
        let third = pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1));
        assert_eq!(third, Err(PoolError::QueueFull { capacity: 1 }));
        assert_eq!(pool.stats().rejected, 1);
    }

    #[test]
    fn tenant_isolation_on_job_ids() {
        let pool = instant_pool(1, 8);
        let id = pool.submit("alice", ExecutionRequest::simple("alice", WF_SRC, 2)).unwrap();
        assert!(pool.status("mallory", id).is_none(), "other tenants cannot observe the job");
        assert!(pool.result("mallory", id).is_none());
        assert!(pool.wait("mallory", id, Duration::from_millis(10)).is_none());
        assert!(pool.wait("alice", id, Duration::from_secs(10)).is_some());
    }

    #[test]
    fn parallel_jobs_overlap_on_sleeping_engines() {
        // Provisioning sleeps ~40ms per cold run (scale 100). Four jobs on
        // four workers should take roughly one provisioning time, not
        // four — even on a single CPU, sleeps overlap.
        let engine = ExecutionEngine::instant().with_provision_scale(100);
        let serial = {
            let pool = EnginePool::start(engine.fork(), 1, 16);
            let t0 = Instant::now();
            for _ in 0..4 {
                pool.run_sync("u", ExecutionRequest::simple("u", WF_SRC, 1)).unwrap();
            }
            t0.elapsed()
        };
        let pool = EnginePool::start(engine, 4, 16);
        let t0 = Instant::now();
        let ids: Vec<i64> =
            (0..4).map(|_| pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)).unwrap()).collect();
        for id in ids {
            match pool.wait("u", id, Duration::from_secs(30)).unwrap() {
                JobResult::Done(out, _) => assert!(
                    out.queue_wait <= t0.elapsed(),
                    "queue wait {:?} exceeds wall clock",
                    out.queue_wait
                ),
                other => panic!("expected Done, got {other:?}"),
            }
        }
        let parallel = t0.elapsed();
        assert!(
            parallel * 2 < serial,
            "4 workers should beat 1 worker by >2x on sleep-bound jobs: {parallel:?} vs {serial:?}"
        );
    }

    #[test]
    fn unknown_job_is_none() {
        let pool = instant_pool(1, 4);
        assert!(pool.status("u", 999).is_none());
        assert!(pool.result("u", 999).is_none());
        assert!(pool.wait("u", 999, Duration::from_millis(5)).is_none());
        assert!(pool.events("u", 999, 0).is_none());
    }

    #[test]
    fn streamed_job_logs_cursor_addressable_events() {
        let pool = instant_pool(1, 8);
        let id = pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 4).with_events(true)).unwrap();
        pool.wait("u", id, Duration::from_secs(10)).unwrap();
        // Page from the start: plan, started×N, outputs, instance_done×N,
        // finished, done.
        let page = pool.events("u", id, 0).unwrap();
        assert!(page.closed);
        assert_eq!(page.first, 0);
        let types: Vec<&str> = page.events.iter().filter_map(|e| e["type"].as_str()).collect();
        assert_eq!(types.first(), Some(&"plan"));
        assert_eq!(types.last(), Some(&"done"));
        assert!(types.contains(&"output"));
        assert!(types.iter().filter(|t| **t == "instance_done").count() >= 2);
        let outputs = types.iter().filter(|t| **t == "output").count();
        assert_eq!(outputs, 4, "Sq's terminal port saw every datum");
        // Sequence numbers are contiguous from 0.
        for (i, e) in page.events.iter().enumerate() {
            assert_eq!(e["seq"].as_i64(), Some(i as i64));
        }
        // Cursor addressing: resume mid-stream, then past the end.
        let mid = pool.events("u", id, page.next - 2).unwrap();
        assert_eq!(mid.events.len(), 2);
        assert!(mid.closed);
        let done = pool.events("u", id, page.next).unwrap();
        assert!(done.events.is_empty());
        assert!(done.closed);
        // Tenant isolation covers the event log too.
        assert!(pool.events("mallory", id, 0).is_none());
    }

    #[test]
    fn unstreamed_job_logs_only_the_terminal_marker() {
        let pool = instant_pool(1, 8);
        let id = pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 3)).unwrap();
        pool.wait("u", id, Duration::from_secs(10)).unwrap();
        let page = pool.events("u", id, 0).unwrap();
        assert!(page.closed);
        let types: Vec<&str> = page.events.iter().filter_map(|e| e["type"].as_str()).collect();
        assert_eq!(types, vec!["done"]);
    }

    #[test]
    fn failed_job_stream_ends_with_failed_marker() {
        let pool = instant_pool(1, 4);
        let id =
            pool.submit("u", ExecutionRequest::simple("u", "not a script !!", 1).with_events(true)).unwrap();
        match pool.wait("u", id, Duration::from_secs(10)).unwrap() {
            JobResult::Failed(..) => {}
            other => panic!("expected Failed, got {other:?}"),
        }
        let page = pool.events("u", id, 0).unwrap();
        assert!(page.closed);
        let last = page.events.last().unwrap();
        assert_eq!(last["type"].as_str(), Some("failed"));
        assert!(last["error"].as_str().is_some());
    }

    #[test]
    fn old_finished_streamed_logs_expire_but_stay_cursor_honest() {
        // One more streamed job than the log-retention bound: the oldest
        // job's events are expired (memory released) while its record,
        // terminal phase and truncation-honest cursor survive.
        let pool = instant_pool(1, RETAIN_STREAMED_LOGS + 8);
        let src = "pe G : producer { output o; process { emit(1); } }";
        let first = pool.submit("u", ExecutionRequest::simple("u", src, 1).with_events(true)).unwrap();
        pool.wait("u", first, Duration::from_secs(10)).unwrap();
        let before = pool.events("u", first, 0).unwrap();
        assert!(!before.events.is_empty(), "fresh log is replayable");
        for _ in 0..RETAIN_STREAMED_LOGS {
            let id = pool.submit("u", ExecutionRequest::simple("u", src, 1).with_events(true)).unwrap();
            pool.wait("u", id, Duration::from_secs(10)).unwrap();
        }
        // Expiry runs just after the terminal phase is committed (the
        // wait can return first) — poll briefly.
        let deadline = Instant::now() + Duration::from_secs(5);
        let after = loop {
            let page = pool.events("u", first, 0).unwrap();
            if page.events.is_empty() || Instant::now() >= deadline {
                break page;
            }
            std::thread::yield_now();
        };
        assert!(after.events.is_empty(), "expired log dropped its events");
        assert!(after.first >= before.next, "seq bookkeeping kept: cursor clients see truncation");
        assert!(after.closed, "terminal state survives expiry");
        assert!(pool.status("u", first).unwrap().is_finished(), "job record still pollable");
    }

    #[test]
    fn stop_cancels_queued_jobs_and_joins_workers() {
        // One slow worker and a deep queue: at stop() time most jobs are
        // still queued. Every one must reach a terminal phase — the
        // in-flight job completes (or notices the shutdown token and
        // cancels), the queued ones are *cancelled* with their streams
        // sealed by the `cancelled` marker — and stop() must return with
        // all workers joined, never hang.
        let engine = ExecutionEngine::instant().with_provision_scale(500);
        let mut pool = EnginePool::start(engine, 1, 16);
        let ids: Vec<i64> = (0..6)
            .map(|_| pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1).with_events(true)).unwrap())
            .collect();
        // Wait until the worker picked the first job.
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.status("u", ids[0]).unwrap().phase == JobPhase::Queued && Instant::now() < deadline {
            std::thread::yield_now();
        }
        pool.stop();
        let mut done = 0;
        let mut cancelled = 0;
        for &id in &ids {
            let info = pool.status("u", id).expect("record survives stop");
            match info.phase {
                JobPhase::Done => done += 1,
                JobPhase::Cancelled => {
                    cancelled += 1;
                    assert!(info.error.is_none(), "cancellation is not a failure");
                    // The event stream is sealed with the cancelled
                    // marker — exactly one.
                    let page = pool.events("u", id, 0).unwrap();
                    assert!(page.closed);
                    assert_eq!(page.events.last().unwrap()["type"].as_str(), Some("cancelled"));
                    let markers =
                        page.events.iter().filter(|e| e["type"].as_str() == Some("cancelled")).count();
                    assert_eq!(markers, 1, "exactly one terminal marker");
                }
                other => panic!("job {id} left non-terminal: {other:?}"),
            }
        }
        assert_eq!(done + cancelled, 6, "every job terminal");
        assert!(cancelled >= 4, "most jobs were still queued: {done} done / {cancelled} cancelled");
        assert!(pool.stats().cancelled >= 4);
        // After stop, the pool refuses new work instead of hanging it.
        assert_eq!(pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)), Err(PoolError::ShutDown));
        // Idempotent.
        pool.stop();
    }

    #[test]
    fn drop_with_queued_jobs_never_hangs() {
        let engine = ExecutionEngine::instant().with_provision_scale(300);
        let pool = EnginePool::start(engine, 2, 32);
        for _ in 0..8 {
            pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)).unwrap();
        }
        let t0 = Instant::now();
        drop(pool);
        // Drop fails the backlog instead of draining it: bounded by the
        // in-flight jobs only (~120ms of simulated provisioning each).
        assert!(t0.elapsed() < Duration::from_secs(5), "drop took {:?}", t0.elapsed());
    }

    #[test]
    fn waiters_wake_when_shutdown_fails_their_job() {
        let engine = ExecutionEngine::instant().with_provision_scale(500);
        let pool = Arc::new(Mutex::new(Some(EnginePool::start(engine, 1, 16))));
        let ids: Vec<i64> = {
            let guard = pool.lock();
            let p = guard.as_ref().unwrap();
            (0..4).map(|_| p.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)).unwrap()).collect()
        };
        // A thread blocked in wait() on the *last* queued job must return
        // promptly once stop() fails it.
        let waiter = {
            let pool = Arc::clone(&pool);
            let last = *ids.last().unwrap();
            std::thread::spawn(move || {
                // Re-lock per poll so stop() can proceed concurrently.
                loop {
                    let guard = pool.lock();
                    let p = guard.as_ref()?;
                    match p.wait("u", last, Duration::from_millis(20)) {
                        Some(JobResult::Pending(_)) => continue,
                        terminal => return terminal,
                    }
                }
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        pool.lock().as_mut().unwrap().stop();
        match waiter.join().unwrap() {
            Some(JobResult::Cancelled(info)) => assert!(info.is_finished()),
            Some(JobResult::Done(..)) => {} // the worker got to it first
            other => panic!("waiter saw {other:?}"),
        }
    }

    #[test]
    fn cancel_queued_job_is_terminal_sealed_and_frees_the_queue_slot() {
        // One slow worker, queue bound 1: the first job occupies the
        // worker, the second fills the queue. Cancelling the queued job
        // must terminate it without running it AND release the slot for
        // a new submission.
        let engine = ExecutionEngine::instant().with_provision_scale(500);
        let pool = EnginePool::start(engine, 1, 1);
        let first = pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while pool.status("u", first).unwrap().phase == JobPhase::Queued && Instant::now() < deadline {
            std::thread::yield_now();
        }
        let queued = pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1).with_events(true)).unwrap();
        let info = pool.cancel("u", queued).expect("own job");
        assert_eq!(info.phase, JobPhase::Cancelled);
        assert!(info.error.is_none());
        let page = pool.events("u", queued, 0).unwrap();
        assert!(page.closed);
        let types: Vec<&str> = page.events.iter().filter_map(|e| e["type"].as_str()).collect();
        assert_eq!(types, vec!["cancelled"], "never ran: only the terminal marker");
        // A waiter observes the terminal phase immediately.
        match pool.wait("u", queued, Duration::from_secs(5)).unwrap() {
            JobResult::Cancelled(info) => assert_eq!(info.phase, JobPhase::Cancelled),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // The queue slot is free again.
        assert!(pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)).is_ok());
        assert_eq!(pool.stats().cancelled, 1);
        // Idempotent: a second cancel is a no-op on a terminal job.
        assert_eq!(pool.cancel("u", queued).unwrap().phase, JobPhase::Cancelled);
        assert_eq!(pool.stats().cancelled, 1);
    }

    #[test]
    fn cancel_running_unbounded_job_stops_it_mid_stream() {
        let pool = instant_pool(1, 4);
        let req = ExecutionRequest::simple("u", WF_SRC, 0)
            .with_unbounded(Duration::from_micros(200))
            .with_events(true);
        let id = pool.submit("u", req).unwrap();
        // Wait until the stream proves the job is producing.
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let page = pool.events("u", id, 0).unwrap();
            if page.events.iter().any(|e| e["type"].as_str() == Some("output")) {
                break;
            }
            assert!(Instant::now() < deadline, "unbounded job never produced");
            std::thread::sleep(Duration::from_millis(1));
        }
        let info = pool.cancel("u", id).expect("own job");
        assert!(matches!(info.phase, JobPhase::Running | JobPhase::Cancelled), "{:?}", info.phase);
        // The cooperative stop commits the terminal phase shortly after.
        match pool.wait("u", id, Duration::from_secs(20)).unwrap() {
            JobResult::Cancelled(info) => {
                assert_eq!(info.phase, JobPhase::Cancelled);
                assert!(info.error.is_none());
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // The sealed stream: data prefix, then exactly one cancelled marker.
        let mut since = 0;
        let mut types: Vec<String> = Vec::new();
        loop {
            let page = pool.events("u", id, since).unwrap();
            types.extend(page.events.iter().filter_map(|e| e["type"].as_str().map(str::to_string)));
            since = page.next;
            if page.closed && page.events.is_empty() {
                break;
            }
        }
        assert_eq!(types.last().map(String::as_str), Some("cancelled"));
        assert_eq!(types.iter().filter(|t| *t == "cancelled").count(), 1);
        assert!(types.iter().any(|t| t == "output"), "the prefix carries real data");
        assert!(!types.iter().any(|t| t == "finished" || t == "done"), "cancel is not completion");
        assert_eq!(pool.stats().cancelled, 1);
        // The record stays pollable after cancellation.
        assert!(pool.status("u", id).unwrap().is_finished());
    }

    #[test]
    fn cancel_is_tenant_isolated_and_idempotent_on_finished_jobs() {
        let pool = instant_pool(1, 8);
        let id = pool.submit("alice", ExecutionRequest::simple("alice", WF_SRC, 2)).unwrap();
        pool.wait("alice", id, Duration::from_secs(10)).unwrap();
        // Another tenant cannot cancel (or even observe) the job.
        assert!(pool.cancel("mallory", id).is_none());
        assert!(pool.cancel("u", 999).is_none());
        // Cancelling a finished job is a no-op that reports the phase.
        let info = pool.cancel("alice", id).unwrap();
        assert_eq!(info.phase, JobPhase::Done);
        assert_eq!(pool.stats().cancelled, 0);
        match pool.result("alice", id).unwrap() {
            JobResult::Done(..) => {}
            other => panic!("done job unaffected by late cancel, got {other:?}"),
        }
    }

    /// A workflow whose downstream PE carries every kind of resumable
    /// state (group-by tallies, a running scalar, the PRNG stream) — if a
    /// resume loses any of it, the outputs diverge from the batch run.
    const STATEFUL_SRC: &str = r#"
        pe Words : producer {
            output output;
            process {
                let words = ["a", "b", "c"];
                emit([words[iteration % 3], iteration]);
            }
        }
        pe Tally : generic {
            input input groupby 0;
            output output;
            init { state.seen = {}; state.noise = 0; }
            process {
                let w = input[0];
                state.seen[w] = get(state.seen, w, 0) + 1;
                state.noise = state.noise + randint(0, 9);
                emit([w, state.seen[w], state.noise]);
            }
        }
        workflow TallyRun {
            nodes { w = Words; t = Tally; }
            connect w.output -> t.input;
        }
    "#;

    fn journal_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("laminar-pool-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_pool_resumes_a_killed_job_and_refolds_to_batch() {
        let dir = journal_dir("refold");
        let pool = EnginePool::start_durable(ExecutionEngine::instant(), 2, 16, &dir).unwrap();
        let req = ExecutionRequest::simple("u", STATEFUL_SRC, 10)
            .with_checkpoints(3)
            .with_faults(FaultPlan::parse("kill_at_epoch=2"));
        let id = pool.submit("u", req).unwrap();
        match pool.wait("u", id, Duration::from_secs(20)).unwrap() {
            JobResult::Failed(message, info) => {
                assert!(message.contains("injected"), "{message}");
                assert_eq!(info.phase, JobPhase::Failed);
            }
            other => panic!("expected the injected kill, got {other:?}"),
        }
        // The crash left a journal behind, flagged failed so auto-resume
        // skips it; explicit resume is still allowed.
        assert!(dir.join(format!("job-{id}")).exists());
        let resumed = pool.resume_job("u", id).unwrap();
        assert_eq!(resumed, id, "resume keeps the original job id");
        let out = match pool.wait("u", id, Duration::from_secs(20)).unwrap() {
            JobResult::Done(out, _) => out,
            other => panic!("expected the resumed job to finish, got {other:?}"),
        };
        // Refold identity: the resumed run's outputs equal a plain batch
        // enactment of the same request (state, rng and tallies survived).
        let batch = ExecutionEngine::instant().run(&ExecutionRequest::simple("u", STATEFUL_SRC, 10)).unwrap();
        assert_eq!(out.port_values("Tally", "output"), batch.port_values("Tally", "output"));
        assert_eq!(out.processed, batch.processed);
        assert_eq!(out.emitted, batch.emitted);
        // Completion cleans the journal up.
        assert!(!dir.join(format!("job-{id}")).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stop_and_restart_auto_resumes_an_interrupted_unbounded_job() {
        let dir = journal_dir("restart");
        let engine = ExecutionEngine::instant();
        let mut pool = EnginePool::start_durable(engine.fork(), 1, 8, &dir).unwrap();
        let req = ExecutionRequest::simple("u", STATEFUL_SRC, 0)
            .with_unbounded(Duration::from_micros(200))
            .with_checkpoints(4)
            .with_events(true);
        let id = pool.submit("u", req).unwrap();
        // Let the run cross at least one epoch so there is a snapshot to
        // resume from, then shut the pool down mid-stream.
        let deadline = Instant::now() + Duration::from_secs(20);
        let journaled_epochs = loop {
            let page = pool.events("u", id, 0).unwrap();
            let epochs = page.events.iter().filter(|e| e["type"].as_str() == Some("epoch")).count();
            if epochs >= 1 {
                break epochs;
            }
            assert!(Instant::now() < deadline, "unbounded job never reached an epoch");
            std::thread::sleep(Duration::from_millis(1));
        };
        pool.stop();
        // Shutdown keeps the journal: the job was interrupted, not
        // abandoned.
        assert!(dir.join(format!("job-{id}")).exists());

        // A fresh durable pool over the same root resumes it unasked,
        // under its original id, with the journaled prefix replayed into
        // the event log.
        let pool2 = EnginePool::start_durable(engine.fork(), 1, 8, &dir).unwrap();
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let page = pool2.events("u", id, 0).expect("resumed job is visible under its old id");
            let epochs = page.events.iter().filter(|e| e["type"].as_str() == Some("epoch")).count();
            if epochs > journaled_epochs {
                break;
            }
            assert!(Instant::now() < deadline, "resumed job never progressed past the journal");
            std::thread::sleep(Duration::from_millis(1));
        }
        // New submissions never collide with the resurrected id.
        let fresh = pool2.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)).unwrap();
        assert!(fresh > id);
        // Cancelling the resumed job is a user action: the journal goes.
        pool2.cancel("u", id).expect("own job");
        match pool2.wait("u", id, Duration::from_secs(20)).unwrap() {
            JobResult::Cancelled(_) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while dir.join(format!("job-{id}")).exists() {
            assert!(Instant::now() < deadline, "cancel left the journal behind");
            std::thread::sleep(Duration::from_millis(1));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_unknown_foreign_and_live_jobs() {
        // A pool without a journal cannot resume anything.
        let plain = instant_pool(1, 4);
        assert_eq!(plain.resume_job("u", 1), Err(PoolError::Unknown(1)));

        let dir = journal_dir("reject");
        let pool = EnginePool::start_durable(ExecutionEngine::instant(), 1, 8, &dir).unwrap();
        assert_eq!(pool.resume_job("u", 42), Err(PoolError::Unknown(42)), "no journal on disk");
        let req = ExecutionRequest::simple("alice", STATEFUL_SRC, 8)
            .with_checkpoints(3)
            .with_faults(FaultPlan::parse("kill_at_epoch=1"));
        let id = pool.submit("alice", req).unwrap();
        match pool.wait("alice", id, Duration::from_secs(20)).unwrap() {
            JobResult::Failed(..) => {}
            other => panic!("expected the injected kill, got {other:?}"),
        }
        // Tenant isolation mirrors every other job endpoint.
        assert_eq!(pool.resume_job("mallory", id), Err(PoolError::Unknown(id)));
        // A completed job's journal is removed, so resume finds nothing.
        let done =
            pool.submit("u", ExecutionRequest::simple("u", STATEFUL_SRC, 6).with_checkpoints(3)).unwrap();
        match pool.wait("u", done, Duration::from_secs(20)).unwrap() {
            JobResult::Done(..) => {}
            other => panic!("expected Done, got {other:?}"),
        }
        assert_eq!(pool.resume_job("u", done), Err(PoolError::Unknown(done)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- checkpoint-horizon backpressure & cursor honesty -------------------------------

    fn data_event() -> Value {
        let mut v = Value::Null;
        v.set("type", "output").set("value", 1i64);
        v
    }

    #[test]
    fn page_is_honest_at_and_past_the_end() {
        let log = JobEventLog::new(false, 16, Duration::from_millis(10));
        for _ in 0..3 {
            log.append(data_event()); // seqs 0, 1, 2
        }
        // since == end_seq: empty page, cursor parked, stream open.
        let at_end = log.page(3);
        assert!(at_end.events.is_empty());
        assert_eq!(at_end.next, 3);
        assert!(!at_end.closed);
        // since == end_seq + 1: the cursor is preserved, never clamped
        // backwards (the old clamp handed back `next < since`, silently
        // re-folding duplicates) and never falsely closed.
        let past = log.page(4);
        assert!(past.events.is_empty());
        assert_eq!(past.next, 4, "cursor preserved, not clamped to the end");
        assert!(!past.closed, "closed must not be reported for events the client never saw");
        assert!(past.retained_epoch.is_none());

        log.close(terminal_event("done", None)); // seq 3; end_seq = 4
        let at_end = log.page(4);
        assert!(at_end.closed, "cursor at the end of a closed stream sees closure");
        assert_eq!(at_end.next, 4);
        let beyond = log.page(5);
        assert!(!beyond.closed, "a cursor past the end has unseen (non-existent) events");
        assert_eq!(beyond.next, 5);
        assert!(beyond.events.is_empty());
    }

    #[test]
    fn preload_honors_journal_seqs_and_tracks_epoch_marks() {
        let log = JobEventLog::new(true, 16, Duration::from_millis(10));
        let mut journaled: Vec<Value> = (0..4i64)
            .map(|i| {
                let mut v = data_event();
                v.set("seq", i);
                v
            })
            .collect();
        journaled.insert(2, {
            let mut v = RunEvent::Epoch { id: 1, state: Value::Null }.to_value(2);
            v.set("seq", 2i64);
            v
        });
        for (i, v) in journaled.iter_mut().enumerate() {
            v.set("seq", i as i64);
        }
        log.preload_journal(journaled);
        assert_eq!(log.window(), (0, 5));
        let page = log.page(0);
        let seqs: Vec<i64> = page.events.iter().filter_map(|e| e["seq"].as_i64()).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4], "recorded seqs honored");
        assert_eq!(log.inner.lock().epoch_marks.front(), Some(&(2, 1)), "epoch mark recovered");
        // Live appends continue the numbering.
        log.append(data_event());
        assert_eq!(log.page(5).events[0]["seq"].as_i64(), Some(5));
    }

    #[test]
    fn resumed_job_cursors_never_move_backwards() {
        let dir = journal_dir("monotone");
        let pool = EnginePool::start_durable(ExecutionEngine::instant(), 1, 8, &dir).unwrap();
        let req = ExecutionRequest::simple("u", STATEFUL_SRC, 10)
            .with_checkpoints(3)
            .with_events(true)
            .with_faults(FaultPlan::parse("kill_at_epoch=2"));
        let id = pool.submit("u", req).unwrap();
        match pool.wait("u", id, Duration::from_secs(20)).unwrap() {
            JobResult::Failed(..) => {}
            other => panic!("expected the injected kill, got {other:?}"),
        }
        // Drain attempt 1 completely. The cursor ends past the journaled
        // prefix: the partial round after epoch 2 and the `failed` marker
        // streamed but were never journaled.
        let mut cursor = 0;
        loop {
            let page = pool.events("u", id, cursor).unwrap();
            cursor = page.next;
            if page.closed && page.events.is_empty() {
                break;
            }
        }
        let attempt1_end = cursor;

        assert_eq!(pool.resume_job("u", id).unwrap(), id);
        // The regression: a resumed log restarting at first_seq = 0 handed
        // this cursor `next < since` (silent duplicate re-fold). Monotone
        // now, from the very first post-resume poll to stream close.
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut collected: Vec<Value> = Vec::new();
        loop {
            let page = pool.events("u", id, cursor).unwrap();
            assert!(page.next >= cursor, "cursor moved backwards: {} < {}", page.next, cursor);
            collected.extend(page.events);
            cursor = page.next;
            if page.closed && collected.last().and_then(|e| e["type"].as_str()) == Some("done") {
                break;
            }
            assert!(Instant::now() < deadline, "resumed job never finished");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(cursor >= attempt1_end, "the resumed stream continues past attempt 1's end");
        // The journaled prefix stayed addressable under the original seqs,
        // and folding the whole resumed stream reproduces the batch run.
        let full = pool.events("u", id, 0).unwrap();
        assert_eq!(full.first, 0, "resumed log keeps the journaled prefix at its recorded seqs");
        let mut events: Vec<Value> = Vec::new();
        let mut since = 0;
        loop {
            let page = pool.events("u", id, since).unwrap();
            let drained = page.events.is_empty();
            events.extend(page.events);
            since = page.next;
            if page.closed && drained {
                break;
            }
        }
        let folded = laminar_dataflow::fold_events(events.iter().filter_map(RunEvent::from_value));
        let batch = ExecutionEngine::instant().run(&ExecutionRequest::simple("u", STATEFUL_SRC, 10)).unwrap();
        assert_eq!(
            folded.port_values("Tally", "output"),
            batch.port_values("Tally", "output").as_slice(),
            "refold identity across the resume"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_log_cancel_keeps_exactly_one_marker_on_every_mapping() {
        use laminar_dataflow::MappingKind;
        for (mapping, processes) in [
            (MappingKind::Simple, 1),
            (MappingKind::Multi, 3),
            (MappingKind::Mpi, 3),
            (MappingKind::Redis, 3),
        ] {
            let pool = instant_pool(1, 4);
            pool.set_event_log_capacity(24);
            let req = ExecutionRequest::simple("u", WF_SRC, 0)
                .with_mapping(mapping, processes)
                .with_unbounded(Duration::from_micros(100))
                .with_events(true);
            let id = pool.submit("u", req).unwrap();
            // Let the bounded log wrap (non-checkpointed: blind eviction).
            let deadline = Instant::now() + Duration::from_secs(20);
            loop {
                let (first, _) = pool.event_log_window("u", id).unwrap();
                if first > 0 {
                    break;
                }
                assert!(Instant::now() < deadline, "{mapping:?}: log never wrapped");
                std::thread::sleep(Duration::from_millis(1));
            }
            pool.cancel("u", id).expect("own job");
            match pool.wait("u", id, Duration::from_secs(20)).unwrap() {
                JobResult::Cancelled(_) => {}
                other => panic!("{mapping:?}: expected Cancelled, got {other:?}"),
            }
            // Drain the retained window: exactly one cancelled marker
            // survives the full-log cancel, and it seals the stream.
            let mut since = 0;
            let mut types: Vec<String> = Vec::new();
            loop {
                let page = pool.events("u", id, since).unwrap();
                types.extend(page.events.iter().filter_map(|e| e["type"].as_str().map(str::to_string)));
                since = page.next;
                if page.closed && page.events.is_empty() {
                    break;
                }
            }
            assert_eq!(
                types.iter().filter(|t| *t == "cancelled").count(),
                1,
                "{mapping:?}: exactly one cancelled marker"
            );
            assert_eq!(types.last().map(String::as_str), Some("cancelled"), "{mapping:?}: marker seals");
        }
    }

    #[test]
    fn throttled_producer_loses_nothing_for_a_live_slow_consumer() {
        let pool = instant_pool(1, 4);
        pool.set_event_log_capacity(32);
        // Never degrade within this test: a live consumer must see literal
        // zero loss, with the producer paced to the consumer.
        pool.set_backpressure_wait(Duration::from_secs(30));
        let iterations = 120;
        let req =
            ExecutionRequest::simple("u", STATEFUL_SRC, iterations).with_checkpoints(10).with_events(true);
        let id = pool.submit("u", req).unwrap();
        let mut since = 0;
        let mut events: Vec<Value> = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let page = pool.events("u", id, since).unwrap();
            assert!(since >= page.first, "live consumer saw eviction: {} < {}", since, page.first);
            assert!(page.retained_epoch.is_none(), "no degraded recovery for a live consumer");
            assert!(page.next >= since, "cursor monotone");
            events.extend(page.events);
            since = page.next;
            if page.closed {
                break;
            }
            assert!(Instant::now() < deadline, "throttled job never finished");
            // A deliberately slow reader: the producer must wait, not win.
            std::thread::sleep(Duration::from_millis(2));
        }
        let folded = laminar_dataflow::fold_events(events.iter().filter_map(RunEvent::from_value));
        let batch =
            ExecutionEngine::instant().run(&ExecutionRequest::simple("u", STATEFUL_SRC, iterations)).unwrap();
        assert_eq!(
            folded.port_values("Tally", "output"),
            batch.port_values("Tally", "output").as_slice(),
            "zero data loss: the slow consumer folds the exact batch result"
        );
        assert_eq!(folded.printed, batch.printed);
    }

    #[test]
    fn dead_consumer_degrades_to_epoch_granularity_with_bounded_memory() {
        let pool = instant_pool(1, 4);
        let capacity = 64;
        pool.set_event_log_capacity(capacity);
        pool.set_backpressure_wait(Duration::from_millis(100));
        let req = ExecutionRequest::simple("u", STATEFUL_SRC, 200).with_checkpoints(10).with_events(true);
        let id = pool.submit("u", req).unwrap();
        // Nobody reads: the producer parks once for the bounded wait, the
        // log degrades, and the job still completes (a dead consumer can
        // delay a worker, never wedge it).
        match pool.wait("u", id, Duration::from_secs(30)).unwrap() {
            JobResult::Done(..) => {}
            other => panic!("expected Done, got {other:?}"),
        }
        let (first, end) = pool.event_log_window("u", id).unwrap();
        assert!(first > 0, "the log did evict (degraded mode engaged)");
        assert!(
            (end - first) as usize <= capacity * 2,
            "log memory bounded by the horizon: window {} > {}",
            end - first,
            capacity * 2
        );
        // A returning client recovers engine-side at a retained epoch
        // marker: the page starts AT the marker and names its epoch.
        let page = pool.events("u", id, 0).unwrap();
        let epoch = page.retained_epoch.expect("a checkpoint survived the eviction");
        assert_eq!(page.events[0]["type"].as_str(), Some("epoch"));
        assert_eq!(page.events[0]["epoch"].as_i64(), Some(epoch as i64));
    }

    #[test]
    fn swallowed_journal_errors_are_counted() {
        let dir = journal_dir("joerr");
        let store = JournalStore::open(&dir).unwrap();
        let mut meta = Value::Null;
        meta.set("owner", "u");
        let writer = store.create(7, &meta).unwrap();
        let errors = Arc::new(AtomicU64::new(0));
        let observer = JobObserver {
            log: None,
            journal: Some(Mutex::new(writer)),
            cancel: CancelToken::new(),
            journal_errors: Arc::clone(&errors),
        };
        // Tear the job directory out from under the writer: the epoch
        // record seals its segment by rename, which now has nowhere to go.
        std::fs::remove_dir_all(dir.join("job-7")).unwrap();
        observer.on_event(0, &RunEvent::Epoch { id: 1, state: Value::Null });
        assert!(
            errors.load(Ordering::SeqCst) >= 1,
            "a swallowed journal I/O error must be counted, not lost"
        );
        // And the pool surfaces the counter (zero on a healthy pool).
        let pool = instant_pool(1, 2);
        assert_eq!(pool.stats().journal_errors, 0);
        assert_eq!(pool.stats().to_value()["journal_errors"].as_i64(), Some(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn queued_req() -> ExecutionRequest {
        ExecutionRequest::simple("u", WF_SRC, 1)
    }

    #[test]
    fn fair_queue_round_robins_across_tenants() {
        // a floods 4 jobs, b holds 2, c holds 1: pops must interleave
        // a,b,c,a,b,a,a — no tenant drains another's backlog position.
        let mut q = FairQueue::new();
        for id in [1, 2, 3, 4] {
            q.push("a", id, 0, queued_req());
        }
        for id in [10, 11] {
            q.push("b", id, 0, queued_req());
        }
        q.push("c", 20, 0, queued_req());
        let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(id, _)| id)).collect();
        assert_eq!(order, vec![1, 10, 20, 2, 11, 3, 4]);
        assert_eq!(q.len(), 0);
        assert_eq!(q.tenants(), 0);
    }

    #[test]
    fn fair_queue_weight_scales_service_share() {
        // Weight 2 for a: the scheduler serves two of a's jobs per visit.
        let mut q = FairQueue::new();
        q.set_weight("a", 2);
        for id in [1, 2, 3, 4] {
            q.push("a", id, 0, queued_req());
        }
        for id in [10, 11] {
            q.push("b", id, 0, queued_req());
        }
        let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(id, _)| id)).collect();
        assert_eq!(order, vec![1, 2, 10, 3, 4, 11]);
    }

    #[test]
    fn fair_queue_priority_jumps_own_lane_only() {
        let mut q = FairQueue::new();
        q.push("a", 1, 0, queued_req());
        q.push("a", 2, 5, queued_req()); // jumps a's lane
        q.push("a", 3, 5, queued_req()); // FIFO among equal priority
        q.push("b", 10, 100, queued_req()); // cannot jump a's round-robin turn
        let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(id, _)| id)).collect();
        assert_eq!(order, vec![2, 10, 3, 1]);
    }

    #[test]
    fn fair_queue_remove_frees_slot_and_lane() {
        let mut q = FairQueue::new();
        q.push("a", 1, 0, queued_req());
        q.push("b", 2, 0, queued_req());
        q.remove(1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.tenants(), 1);
        let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(id, _)| id)).collect();
        assert_eq!(order, vec![2]);
    }

    #[test]
    fn fair_scheduling_lets_a_quiet_tenant_cut_a_noisy_backlog() {
        // One deliberately slow worker. While it chews tenant "noisy"'s
        // first job, noisy floods the queue and "quiet" submits one job.
        // DRR serves quiet's lane on the very next rotation, so quiet's
        // job completes while most of noisy's backlog is still queued.
        let engine = ExecutionEngine::instant().with_provision_scale(150);
        let pool = EnginePool::start(engine, 1, 16);
        let first = pool.submit("noisy", ExecutionRequest::simple("noisy", WF_SRC, 1)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.status("noisy", first).unwrap().phase == JobPhase::Queued && Instant::now() < deadline {
            std::thread::yield_now();
        }
        let backlog: Vec<i64> = (0..6)
            .map(|_| pool.submit("noisy", ExecutionRequest::simple("noisy", WF_SRC, 1)).unwrap())
            .collect();
        let quiet = pool.submit("quiet", ExecutionRequest::simple("quiet", WF_SRC, 1)).unwrap();
        assert!(pool.stats().queued_tenants >= 2);
        pool.wait("quiet", quiet, Duration::from_secs(30)).unwrap();
        let done: usize =
            backlog.iter().filter(|id| pool.status("noisy", **id).unwrap().phase == JobPhase::Done).count();
        assert!(
            done <= 2,
            "quiet tenant waited behind {done} of 6 noisy backlog jobs; fair \
             scheduling should have served it on the first rotation"
        );
    }

    #[test]
    fn rate_limit_rejects_over_budget_tenant_with_retry_hint() {
        let pool = instant_pool(1, 16);
        pool.set_tenant_rate(1.0, 1.0); // 1 submission/s, burst 1
        pool.submit("a", queued_req()).unwrap();
        let err = pool.submit("a", queued_req()).unwrap_err();
        match err {
            PoolError::RateLimited { retry_after_ms } => {
                assert!(retry_after_ms >= 1, "an empty bucket must hint a wait");
                assert!(retry_after_ms <= 1_001, "hint beyond one token period: {retry_after_ms}");
            }
            other => panic!("expected RateLimited, got {other}"),
        }
        // Buckets are per tenant: b's budget is untouched by a's burn.
        pool.submit("b", queued_req()).unwrap();
        let stats = pool.stats();
        assert_eq!(stats.rate_limited, 1);
        assert_eq!(stats.rejected, 0, "rate limiting is not queue-full");
        assert_eq!(stats.to_value()["rate_limited"].as_i64(), Some(1));
        // Disabling restores unmetered admission.
        pool.set_tenant_rate(0.0, 0.0);
        pool.submit("a", queued_req()).unwrap();
    }

    #[test]
    fn deadline_fails_job_that_overstayed_the_queue() {
        // One slow worker: the blocker occupies it long enough that the
        // 1ms-deadline job behind it is stale by pick time. The worker
        // fails it instead of running it.
        let engine = ExecutionEngine::instant().with_provision_scale(150);
        let pool = EnginePool::start(engine, 1, 8);
        pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)).unwrap();
        let doomed = pool
            .submit("u", ExecutionRequest::simple("u", WF_SRC, 1).with_events(true).with_deadline_ms(1))
            .unwrap();
        match pool.wait("u", doomed, Duration::from_secs(30)).unwrap() {
            JobResult::Failed(msg, info) => {
                assert!(msg.contains("deadline exceeded"), "{msg}");
                assert_eq!(info.phase, JobPhase::Failed);
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        // The stream is sealed with the failed terminal marker.
        let page = pool.events("u", doomed, 0).unwrap();
        assert!(page.closed);
        let types: Vec<&str> = page.events.iter().filter_map(|e| e["type"].as_str()).collect();
        assert_eq!(types, vec!["failed"], "never ran: only the terminal marker");
        assert_eq!(pool.stats().failed, 1);
    }

    #[test]
    fn long_poll_on_closed_log_returns_immediately() {
        let pool = instant_pool(1, 4);
        let id = pool.submit("u", queued_req().with_events(true)).unwrap();
        pool.wait("u", id, Duration::from_secs(10)).unwrap();
        let t0 = Instant::now();
        let page = pool.events_wait("u", id, 0, Duration::from_secs(10)).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "closed log must not park the caller: {:?}",
            t0.elapsed()
        );
        assert!(page.closed);
        assert!(!page.events.is_empty());
        // Same at a cursor past the end: terminal marker seen, no wait.
        let t0 = Instant::now();
        let tail = pool.events_wait("u", id, page.next, Duration::from_secs(10)).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(2));
        assert!(tail.closed);
        assert!(tail.events.is_empty());
    }

    #[test]
    fn long_poll_zero_wait_is_byte_identical_to_poll() {
        let pool = instant_pool(1, 4);
        let id = pool.submit("u", queued_req().with_events(true)).unwrap();
        pool.wait("u", id, Duration::from_secs(10)).unwrap();
        for since in [0u64, 2, 1_000] {
            let poll = pool.events("u", id, since).unwrap();
            let push = pool.events_wait("u", id, since, Duration::ZERO).unwrap();
            assert_eq!(poll.events, push.events);
            assert_eq!(poll.next, push.next);
            assert_eq!(poll.first, push.first);
            assert_eq!(poll.closed, push.closed);
            assert_eq!(poll.retained_epoch, push.retained_epoch);
        }
    }

    #[test]
    fn long_poll_parks_until_events_arrive() {
        // The job sits behind a slow blocker, so the waiter provably
        // parks on an empty open log before the stream starts.
        let engine = ExecutionEngine::instant().with_provision_scale(100);
        let pool = Arc::new(EnginePool::start(engine, 1, 8));
        pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)).unwrap();
        let id = pool.submit("u", queued_req().with_events(true)).unwrap();
        let empty_now = pool.events("u", id, 0).unwrap();
        assert!(empty_now.events.is_empty() && !empty_now.closed, "job not yet started");
        let waiter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.events_wait("u", id, 0, Duration::from_secs(30)).unwrap())
        };
        let page = waiter.join().unwrap();
        assert!(!page.events.is_empty(), "waiter woke with data, not a timeout");
    }

    #[test]
    fn cancel_wakes_parked_long_poll_waiter() {
        // One busy worker; the watched job is queued with an empty log.
        // Cancelling it must wake the parked waiter with the sealed
        // cancelled page — not leave it hanging until timeout.
        let engine = ExecutionEngine::instant().with_provision_scale(200);
        let pool = Arc::new(EnginePool::start(engine, 1, 8));
        pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)).unwrap();
        let id = pool.submit("u", queued_req().with_events(true)).unwrap();
        let waiter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let t0 = Instant::now();
                let page = pool.events_wait("u", id, 0, Duration::from_secs(30)).unwrap();
                (page, t0.elapsed())
            })
        };
        // Let the waiter park before firing the cancel.
        std::thread::sleep(Duration::from_millis(30));
        pool.cancel("u", id).unwrap();
        let (page, waited) = waiter.join().unwrap();
        assert!(page.closed, "cancel seals the stream");
        let types: Vec<&str> = page.events.iter().filter_map(|e| e["type"].as_str()).collect();
        assert_eq!(types, vec!["cancelled"]);
        assert!(waited < Duration::from_secs(10), "woke by cancel, not timeout: {waited:?}");
    }

    #[test]
    fn stop_wakes_parked_waiter_with_sealed_terminal_page() {
        // A waiter parked on a queued job's log must survive pool
        // shutdown: stop() cancels the job, seals its log, and the
        // notification reaches the waiter — which is parked on the log's
        // own condvar, independent of the pool locks stop() takes.
        let engine = ExecutionEngine::instant().with_provision_scale(200);
        let mut pool = EnginePool::start(engine, 1, 8);
        pool.submit("u", ExecutionRequest::simple("u", WF_SRC, 1)).unwrap();
        let id = pool.submit("u", queued_req().with_events(true)).unwrap();
        let log = {
            let jobs = pool.inner.jobs.lock();
            Arc::clone(&jobs.get(&id).unwrap().events)
        };
        let waiter = std::thread::spawn(move || {
            let t0 = Instant::now();
            let page = log.page_wait(0, Duration::from_secs(30));
            (page, t0.elapsed())
        });
        std::thread::sleep(Duration::from_millis(30));
        pool.stop();
        let (page, waited) = waiter.join().unwrap();
        assert!(page.closed, "stop seals every queued job's stream");
        let types: Vec<&str> = page.events.iter().filter_map(|e| e["type"].as_str()).collect();
        assert_eq!(types, vec!["cancelled"]);
        assert!(waited < Duration::from_secs(10), "woke by stop, not timeout: {waited:?}");
    }
}
