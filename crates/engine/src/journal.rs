//! Per-job durability: the epoch journal behind checkpointed streaming
//! jobs.
//!
//! # Layout
//!
//! Each journaled job owns a directory under the store root:
//!
//! ```text
//! <root>/job-<id>/
//!     meta.json        # owner + request envelope (tmp+rename atomic)
//!     seg-1.log        # events of round 1, ending in the epoch-1 record
//!     seg-2.log        # events of round 2, ending in the epoch-2 record
//!     tail.log         # events since the last sealed epoch (may be torn)
//! ```
//!
//! Events are appended to `tail.log` as CRC-framed records
//! (`[len u32 LE][crc32 u32 LE][payload]`, same integrity discipline as
//! the lampickle codec). When an `epoch` event lands, the tail is sealed:
//! renamed to `seg-<epoch>.log` — the rename is the atomic commit point,
//! exactly like the registry's snapshot files — and a fresh tail starts.
//!
//! # Recovery
//!
//! [`JournalStore::load`] replays sealed segments in epoch order. The
//! highest *complete* segment (its last record is the matching epoch
//! marker, every CRC checks out) defines the resume point: its epoch id,
//! the instance snapshots carried by the epoch record, and the full event
//! prefix `seg-1..seg-k` concatenated. A truncated or corrupt `seg-k`
//! falls back to `seg-(k-1)` — crash-torn bytes cost at most one epoch.
//! `tail.log` is never replayed: a resumed run re-executes the partial
//! round deterministically from the checkpoint instead.

use laminar_codec::crc32;
use laminar_json::{parse, to_string, Value};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Errors the journal surfaces. Wrapped into [`crate::pool::PoolError`]
/// at the pool boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalError(pub String);

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal: {}", self.0)
    }
}

impl std::error::Error for JournalError {}

fn io_err<E: std::fmt::Display>(what: &str) -> impl FnOnce(E) -> JournalError + '_ {
    move |e| JournalError(format!("{what}: {e}"))
}

/// Everything needed to resurrect a job from its last complete epoch.
#[derive(Debug, Clone)]
pub struct ResumeData {
    /// The `meta.json` envelope: owner, request, failure flag.
    pub meta: Value,
    /// Last complete epoch (0 = no epoch sealed; resume is a fresh start).
    pub epoch: u64,
    /// Dense per-instance snapshot array from the epoch record.
    pub snapshots: Value,
    /// Wire-form events `seg-1..seg-k` in order — the exact stream prefix
    /// the original run produced up to and including epoch `k`.
    pub events: Vec<Value>,
}

/// The journal root: one directory per checkpointed job.
pub struct JournalStore {
    root: PathBuf,
}

impl JournalStore {
    /// Open (or create) a journal store rooted at `root`.
    pub fn open(root: &Path) -> Result<JournalStore, JournalError> {
        std::fs::create_dir_all(root).map_err(io_err("create journal root"))?;
        Ok(JournalStore { root: root.to_path_buf() })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn job_dir(&self, id: i64) -> PathBuf {
        self.root.join(format!("job-{id}"))
    }

    /// Create (or reopen) a job's journal and return its writer. `meta`
    /// is written atomically via tmp+rename; an existing `tail.log` is
    /// truncated — its events belong to a partial round the resumed run
    /// re-executes from the checkpoint.
    pub fn create(&self, id: i64, meta: &Value) -> Result<JournalWriter, JournalError> {
        let dir = self.job_dir(id);
        std::fs::create_dir_all(&dir).map_err(io_err("create job dir"))?;
        let tmp = dir.join("meta.json.tmp");
        std::fs::write(&tmp, to_string(meta)).map_err(io_err("write meta"))?;
        std::fs::rename(&tmp, dir.join("meta.json")).map_err(io_err("commit meta"))?;
        let tail = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(dir.join("tail.log"))
            .map_err(io_err("open tail"))?;
        Ok(JournalWriter { dir, tail })
    }

    /// Remove a job's journal entirely (terminal success or user cancel).
    pub fn remove(&self, id: i64) {
        let _ = std::fs::remove_dir_all(self.job_dir(id));
    }

    /// Flag the job's meta as failed, so store-wide auto-resume skips it
    /// (a deterministic failure would just fail again) while the journal
    /// stays on disk for post-mortem and *explicit* resume.
    pub fn mark_failed(&self, id: i64) {
        let dir = self.job_dir(id);
        let Ok(text) = std::fs::read_to_string(dir.join("meta.json")) else { return };
        let Ok(mut meta) = parse(&text) else { return };
        meta.set("failed", true);
        let tmp = dir.join("meta.json.tmp");
        if std::fs::write(&tmp, to_string(&meta)).is_ok() {
            let _ = std::fs::rename(&tmp, dir.join("meta.json"));
        }
    }

    /// All journaled job ids with their metas, ascending by id (the
    /// auto-resume scan).
    pub fn jobs(&self) -> Vec<(i64, Value)> {
        let Ok(entries) = std::fs::read_dir(&self.root) else { return Vec::new() };
        let mut jobs: Vec<(i64, Value)> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let id: i64 = name.strip_prefix("job-")?.parse().ok()?;
                let meta = parse(&std::fs::read_to_string(e.path().join("meta.json")).ok()?).ok()?;
                Some((id, meta))
            })
            .collect();
        jobs.sort_by_key(|(id, _)| *id);
        jobs
    }

    /// Load a job's resume point — see the module docs for the fallback
    /// discipline. `None` when the job has no journal.
    pub fn load(&self, id: i64) -> Option<ResumeData> {
        let dir = self.job_dir(id);
        let meta = parse(&std::fs::read_to_string(dir.join("meta.json")).ok()?).ok()?;
        // Sealed segments in epoch order; contiguity from 1 is required —
        // a gap means an earlier segment vanished and nothing after it can
        // be trusted as a prefix.
        let mut seg_epochs: Vec<u64> = std::fs::read_dir(&dir)
            .ok()?
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                name.strip_prefix("seg-")?.strip_suffix(".log")?.parse().ok()
            })
            .collect();
        seg_epochs.sort_unstable();
        let mut epoch = 0u64;
        let mut snapshots = Value::Null;
        let mut events: Vec<Value> = Vec::new();
        for want in seg_epochs {
            if want != epoch + 1 {
                break;
            }
            // A sealed segment is complete iff every record frames and its
            // last record is the matching epoch marker. Anything less —
            // torn tail bytes, CRC failure, missing marker — invalidates
            // this segment only: resume falls back to the previous epoch.
            let Ok(bytes) = std::fs::read(dir.join(format!("seg-{want}.log"))) else { break };
            let (records, torn) = read_records(&bytes);
            let complete = !torn
                && records.last().is_some_and(|r| {
                    r["type"].as_str() == Some("epoch") && r["epoch"].as_i64() == Some(want as i64)
                });
            if !complete {
                eprintln!("journal: job {id} segment {want} incomplete; resuming from epoch {epoch}");
                break;
            }
            snapshots = records.last().map(|r| r["state"].clone()).unwrap_or(Value::Null);
            events.extend(records);
            epoch = want;
        }
        Some(ResumeData { meta, epoch, snapshots, events })
    }

    /// Fault injection: chop `bytes` off the end of sealed segment
    /// `epoch`'s file — the on-disk shape of a crash racing the sealing
    /// rename. Recovery must fall back to the previous epoch.
    pub fn truncate_segment(&self, id: i64, epoch: u64, bytes: u64) -> Result<(), JournalError> {
        let path = self.job_dir(id).join(format!("seg-{epoch}.log"));
        let len = std::fs::metadata(&path).map_err(io_err("stat segment"))?.len();
        let file = OpenOptions::new().write(true).open(&path).map_err(io_err("open segment"))?;
        file.set_len(len.saturating_sub(bytes)).map_err(io_err("truncate segment"))?;
        Ok(())
    }
}

/// Append side of one job's journal. Owned by the worker's observer for
/// the duration of the run.
pub struct JournalWriter {
    dir: PathBuf,
    tail: File,
}

impl JournalWriter {
    /// Append one wire-form event. An `epoch` event additionally seals the
    /// tail: once this returns, the epoch — snapshots and the full round
    /// that produced it — is durably renamed into place.
    pub fn record(&mut self, event: &Value) -> Result<(), JournalError> {
        let payload = to_string(event);
        let bytes = payload.as_bytes();
        let mut frame = Vec::with_capacity(8 + bytes.len());
        frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32::checksum(bytes).to_le_bytes());
        frame.extend_from_slice(bytes);
        self.tail.write_all(&frame).map_err(io_err("append record"))?;
        self.tail.flush().map_err(io_err("flush record"))?;
        if event["type"].as_str() == Some("epoch") {
            if let Some(epoch) = event["epoch"].as_i64() {
                self.seal(epoch.max(0) as u64)?;
            }
        }
        Ok(())
    }

    /// Rename the current tail to `seg-<epoch>.log` and start a new tail.
    fn seal(&mut self, epoch: u64) -> Result<(), JournalError> {
        let tail_path = self.dir.join("tail.log");
        std::fs::rename(&tail_path, self.dir.join(format!("seg-{epoch}.log")))
            .map_err(io_err("seal segment"))?;
        self.tail = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(tail_path)
            .map_err(io_err("reopen tail"))?;
        Ok(())
    }
}

/// Decode CRC-framed records from `bytes`. Returns the cleanly-decoded
/// prefix and whether trailing bytes were torn (incomplete header,
/// short payload, CRC mismatch, or unparseable JSON).
fn read_records(bytes: &[u8]) -> (Vec<Value>, bool) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        let Some(payload) = bytes.get(at + 8..at + 8 + len) else {
            return (records, true);
        };
        if crc32::checksum(payload) != crc {
            return (records, true);
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            return (records, true);
        };
        let Ok(value) = parse(text) else {
            return (records, true);
        };
        records.push(value);
        at += 8 + len;
    }
    (records, at != bytes.len())
}

/// Read one segment file's records directly (tests and tooling).
pub fn read_segment(path: &Path) -> Result<(Vec<Value>, bool), JournalError> {
    let bytes = std::fs::read(path).map_err(io_err("read segment"))?;
    Ok(read_records(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("laminar-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ev(kind: &str, n: i64) -> Value {
        let mut v = Value::Null;
        v.set("type", kind).set("n", n);
        v
    }

    fn epoch_ev(id: i64, state: i64) -> Value {
        let mut v = Value::Null;
        v.set("type", "epoch").set("epoch", id).set("state", state);
        v
    }

    #[test]
    fn seal_and_load_round_trip() {
        let root = tmpdir("roundtrip");
        let store = JournalStore::open(&root).unwrap();
        let mut meta = Value::Null;
        meta.set("owner", "u");
        let mut w = store.create(7, &meta).unwrap();
        w.record(&ev("output", 1)).unwrap();
        w.record(&epoch_ev(1, 10)).unwrap();
        w.record(&ev("output", 2)).unwrap();
        w.record(&epoch_ev(2, 20)).unwrap();
        w.record(&ev("output", 3)).unwrap(); // tail: never replayed

        let r = store.load(7).unwrap();
        assert_eq!(r.epoch, 2);
        assert_eq!(r.snapshots.as_i64(), Some(20));
        assert_eq!(r.meta["owner"].as_str(), Some("u"));
        let kinds: Vec<&str> = r.events.iter().filter_map(|e| e["type"].as_str()).collect();
        assert_eq!(kinds, vec!["output", "epoch", "output", "epoch"]);
        assert_eq!(store.jobs().len(), 1);

        store.remove(7);
        assert!(store.load(7).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_segment_falls_back_one_epoch() {
        let root = tmpdir("trunc");
        let store = JournalStore::open(&root).unwrap();
        let mut w = store.create(1, &Value::Null).unwrap();
        w.record(&ev("output", 1)).unwrap();
        w.record(&epoch_ev(1, 10)).unwrap();
        w.record(&ev("output", 2)).unwrap();
        w.record(&epoch_ev(2, 20)).unwrap();

        // Chop bytes off seg-2 at *every* possible depth: recovery must
        // always land exactly on epoch 1 — never crash, never resume from
        // a half-written epoch 2.
        let seg2 = store.root().join("job-1").join("seg-2.log");
        let full = std::fs::read(&seg2).unwrap();
        for cut in 1..=full.len() as u64 {
            store.truncate_segment(1, 2, cut).unwrap();
            let r = store.load(1).unwrap();
            assert_eq!(r.epoch, 1, "cut {cut} bytes");
            assert_eq!(r.snapshots.as_i64(), Some(10));
            std::fs::write(&seg2, &full).unwrap(); // restore for the next cut
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_crc_mid_segment_invalidates_it() {
        let root = tmpdir("crc");
        let store = JournalStore::open(&root).unwrap();
        let mut w = store.create(1, &Value::Null).unwrap();
        w.record(&ev("output", 1)).unwrap();
        w.record(&epoch_ev(1, 10)).unwrap();
        let seg1 = store.root().join("job-1").join("seg-1.log");
        let mut bytes = std::fs::read(&seg1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&seg1, &bytes).unwrap();
        let r = store.load(1).unwrap();
        assert_eq!(r.epoch, 0, "flipped byte detected by CRC");
        assert!(r.events.is_empty());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_segment_breaks_the_prefix() {
        let root = tmpdir("gap");
        let store = JournalStore::open(&root).unwrap();
        let mut w = store.create(1, &Value::Null).unwrap();
        for e in 1..=3 {
            w.record(&epoch_ev(e, e * 10)).unwrap();
        }
        std::fs::remove_file(store.root().join("job-1").join("seg-2.log")).unwrap();
        let r = store.load(1).unwrap();
        assert_eq!(r.epoch, 1, "seg-3 unusable without seg-2");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_truncates_tail_but_keeps_segments() {
        let root = tmpdir("reopen");
        let store = JournalStore::open(&root).unwrap();
        let mut w = store.create(1, &Value::Null).unwrap();
        w.record(&epoch_ev(1, 10)).unwrap();
        w.record(&ev("output", 99)).unwrap(); // partial round in the tail
        drop(w);
        let w2 = store.create(1, &Value::Null).unwrap();
        drop(w2);
        let r = store.load(1).unwrap();
        assert_eq!(r.epoch, 1);
        let tail = std::fs::metadata(store.root().join("job-1").join("tail.log")).unwrap();
        assert_eq!(tail.len(), 0, "reopen clears the partial round");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn mark_failed_flags_meta() {
        let root = tmpdir("failed");
        let store = JournalStore::open(&root).unwrap();
        let mut meta = Value::Null;
        meta.set("owner", "u");
        store.create(1, &meta).unwrap();
        store.mark_failed(1);
        let r = store.load(1).unwrap();
        assert_eq!(r.meta["failed"].as_bool(), Some(true));
        assert_eq!(r.meta["owner"].as_str(), Some("u"), "original fields kept");
        let _ = std::fs::remove_dir_all(&root);
    }
}
