//! Network latency/bandwidth model for remote Execution Engines.
//!
//! Table 5 compares a local engine against one deployed on Azure App
//! Services. We reproduce the remote delta with a calibrated WAN model:
//! each request/response pays a round-trip time plus a bandwidth-
//! proportional transfer cost on the payload bytes.

use std::time::Duration;

/// A symmetric network link model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetModel {
    /// One-way latency.
    pub one_way_latency: Duration,
    /// Bandwidth in bytes per millisecond (0 = infinite).
    pub bytes_per_ms: u64,
}

impl NetModel {
    /// The loopback/local link: free.
    pub fn local() -> NetModel {
        NetModel { one_way_latency: Duration::ZERO, bytes_per_ms: 0 }
    }

    /// A WAN profile comparable to the paper's Azure deployment measured
    /// from a European client: ~25ms one-way, ~5MB/s.
    pub fn wan() -> NetModel {
        NetModel { one_way_latency: Duration::from_millis(25), bytes_per_ms: 5_000 }
    }

    /// Transfer delay for a payload of `bytes` in one direction.
    pub fn transfer_delay(&self, bytes: usize) -> Duration {
        // bytes_per_ms == 0 means infinite bandwidth (no transfer cost).
        let bw = (bytes as u64).checked_div(self.bytes_per_ms).map_or(Duration::ZERO, Duration::from_millis);
        self.one_way_latency + bw
    }

    /// Round-trip delay for a request of `req_bytes` and a response of
    /// `resp_bytes`.
    pub fn round_trip(&self, req_bytes: usize, resp_bytes: usize) -> Duration {
        self.transfer_delay(req_bytes) + self.transfer_delay(resp_bytes)
    }

    /// Sleep for the one-direction delay (used by the engine to charge the
    /// cost for real).
    pub fn charge(&self, bytes: usize) -> Duration {
        let d = self.transfer_delay(bytes);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_is_free() {
        let m = NetModel::local();
        assert_eq!(m.transfer_delay(1_000_000), Duration::ZERO);
        assert_eq!(m.round_trip(1000, 1000), Duration::ZERO);
    }

    #[test]
    fn wan_charges_latency_and_bandwidth() {
        let m = NetModel::wan();
        let small = m.transfer_delay(100);
        assert_eq!(small, Duration::from_millis(25), "latency-dominated");
        let big = m.transfer_delay(5_000_000);
        assert_eq!(big, Duration::from_millis(25 + 1000), "bandwidth-dominated");
        assert_eq!(m.round_trip(100, 100), Duration::from_millis(50));
    }

    #[test]
    fn charge_sleeps() {
        let m = NetModel { one_way_latency: Duration::from_millis(5), bytes_per_ms: 0 };
        let t0 = std::time::Instant::now();
        m.charge(10);
        assert!(t0.elapsed() >= Duration::from_millis(4));
    }
}
