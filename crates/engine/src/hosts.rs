//! Host-function registry: the bridge between LamScript PEs and
//! (simulated) external services.
//!
//! Workloads register module hosts (`vo.*` for the Virtual Observatory
//! simulation, etc.); the engine always provides `resources.*` for the
//! staged files of paper §3.3.

use laminar_json::Value;
use laminar_script::{ErrorKind, Host, ScriptError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A composite host that routes module calls to registered sub-hosts.
#[derive(Clone, Default)]
pub struct HostRegistry {
    modules: Arc<RwLock<HashMap<String, Arc<dyn Host + Send + Sync>>>>,
    resources: Arc<RwLock<HashMap<String, Vec<u8>>>>,
}

impl HostRegistry {
    /// Empty registry.
    pub fn new() -> HostRegistry {
        HostRegistry::default()
    }

    /// Register a host for a module name (e.g. `"vo"`).
    pub fn register(&self, module: &str, host: Arc<dyn Host + Send + Sync>) {
        self.modules.write().insert(module.to_string(), host);
    }

    /// A registry sharing this one's module hosts (one simulated service
    /// fleet per deployment) but with an isolated resource store —
    /// concurrently-running pooled engines must never see each other's
    /// staged files.
    pub fn fork(&self) -> HostRegistry {
        HostRegistry { modules: Arc::clone(&self.modules), resources: Arc::default() }
    }

    /// Stage a resource file (the `resources/` directory of §3.3/§5.2).
    pub fn stage_resource(&self, name: &str, bytes: Vec<u8>) {
        self.resources.write().insert(name.to_string(), bytes);
    }

    /// Clear staged resources (ephemeral teardown).
    pub fn clear_resources(&self) {
        self.resources.write().clear();
    }

    /// Names of staged resources.
    pub fn resource_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.resources.read().keys().cloned().collect();
        v.sort();
        v
    }
}

impl Host for HostRegistry {
    fn call(&self, module: &str, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        if module == "resources" {
            return self.call_resources(name, args);
        }
        let host = self.modules.read().get(module).cloned();
        match host {
            Some(h) => h.call(module, name, args),
            None => Err(ScriptError::new(
                ErrorKind::NameError,
                format!("module '{module}' is not installed on this engine"),
            )),
        }
    }
}

impl HostRegistry {
    fn call_resources(&self, name: &str, args: &[Value]) -> Result<Value, ScriptError> {
        let arg_name = match args {
            [Value::Str(s)] => s.clone(),
            _ => {
                return Err(ScriptError::new(
                    ErrorKind::ArgumentError,
                    format!("resources.{name}(path) expects one string argument"),
                ))
            }
        };
        let res = self.resources.read();
        let bytes = res.get(&arg_name).ok_or_else(|| {
            ScriptError::new(
                ErrorKind::HostError,
                format!("resource '{arg_name}' was not staged (available: {:?})", {
                    let mut v: Vec<&String> = res.keys().collect();
                    v.sort();
                    v
                }),
            )
        })?;
        match name {
            // Full text of the resource.
            "read" => Ok(Value::Str(String::from_utf8_lossy(bytes).into_owned())),
            // Non-empty lines of the resource.
            "lines" => Ok(Value::Array(
                String::from_utf8_lossy(bytes)
                    .lines()
                    .filter(|l| !l.trim().is_empty())
                    .map(|l| Value::Str(l.to_string()))
                    .collect(),
            )),
            // Size in bytes.
            "size" => Ok(Value::Int(bytes.len() as i64)),
            other => {
                Err(ScriptError::new(ErrorKind::NameError, format!("unknown function resources.{other}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_json::jobj;

    struct Echo;
    impl Host for Echo {
        fn call(&self, module: &str, name: &str, _args: &[Value]) -> Result<Value, ScriptError> {
            Ok(jobj! { "module" => module, "name" => name })
        }
    }

    #[test]
    fn routes_to_registered_module() {
        let reg = HostRegistry::new();
        reg.register("vo", Arc::new(Echo));
        let out = reg.call("vo", "fetch", &[]).unwrap();
        assert_eq!(out["module"].as_str(), Some("vo"));
        let err = reg.call("unknown", "f", &[]).unwrap_err();
        assert!(err.message.contains("not installed"));
    }

    #[test]
    fn resources_read_and_lines() {
        let reg = HostRegistry::new();
        reg.stage_resource("coordinates.txt", b"10.5 41.2\n\n83.8 -5.4\n".to_vec());
        let text = reg.call("resources", "read", &[Value::Str("coordinates.txt".into())]).unwrap();
        assert!(text.as_str().unwrap().contains("83.8"));
        let lines = reg.call("resources", "lines", &[Value::Str("coordinates.txt".into())]).unwrap();
        assert_eq!(lines.as_array().unwrap().len(), 2, "empty line dropped");
        let size = reg.call("resources", "size", &[Value::Str("coordinates.txt".into())]).unwrap();
        assert_eq!(size.as_i64(), Some(21));
        assert_eq!(reg.resource_names(), vec!["coordinates.txt"]);
    }

    #[test]
    fn missing_resource_is_a_host_error() {
        let reg = HostRegistry::new();
        let err = reg.call("resources", "read", &[Value::Str("nope.txt".into())]).unwrap_err();
        assert_eq!(err.kind, ErrorKind::HostError);
        assert!(err.message.contains("nope.txt"));
    }

    #[test]
    fn bad_args_rejected() {
        let reg = HostRegistry::new();
        assert!(reg.call("resources", "read", &[]).is_err());
        reg.stage_resource("f", vec![]);
        assert!(reg.call("resources", "write", &[Value::Str("f".into())]).is_err());
    }

    #[test]
    fn clear_resources_empties() {
        let reg = HostRegistry::new();
        reg.stage_resource("a", vec![1]);
        reg.clear_resources();
        assert!(reg.resource_names().is_empty());
    }
}
