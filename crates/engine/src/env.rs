//! Ephemeral environment provisioning and the library installer model.
//!
//! The paper's engine runs inside a conda environment and auto-installs
//! the imports the client's `findimports` pass detected. We model the
//! costs deterministically so benchmarks are reproducible:
//!
//! * creating an environment costs a fixed setup time;
//! * installing a library costs a per-library time derived from its name
//!   (stable across runs), unless it is cached from a previous run on a
//!   warm engine;
//! * tearing down is cheap but mandatory (ephemerality, §3).

use std::collections::BTreeSet;
use std::time::Duration;

/// Deterministic per-library install cost: 30–120 time units derived from
/// the name hash. The unit is scaled by the engine's `time_scale`.
fn install_cost_units(library: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in library.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    30 + h % 91
}

/// Report of one provisioning round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstallReport {
    /// Libraries installed this round (cache misses).
    pub installed: Vec<String>,
    /// Libraries already present (cache hits on a warm engine).
    pub cached: Vec<String>,
    /// Simulated time spent installing.
    pub install_time: Duration,
    /// Simulated time spent creating the environment (zero when warm).
    pub setup_time: Duration,
}

/// Manages the engine's (simulated) Python environments.
pub struct EnvironmentManager {
    installed: BTreeSet<String>,
    env_alive: bool,
    /// Whether teardown preserves the library cache (a warm engine).
    pub keep_warm: bool,
    /// Microseconds per cost unit — calibrates simulated time. Zero makes
    /// provisioning free (unit tests).
    pub time_scale_us: u64,
    envs_created: u64,
    total_installs: u64,
}

/// Base cost (units) of creating a fresh environment.
pub const ENV_SETUP_UNITS: u64 = 400;

impl Default for EnvironmentManager {
    fn default() -> Self {
        Self::new()
    }
}

impl EnvironmentManager {
    /// Cold manager with the default time scale (100µs/unit ⇒ env setup
    /// ≈ 40ms, one library ≈ 3–12ms).
    pub fn new() -> EnvironmentManager {
        EnvironmentManager {
            installed: BTreeSet::new(),
            env_alive: false,
            keep_warm: false,
            time_scale_us: 100,
            envs_created: 0,
            total_installs: 0,
        }
    }

    /// Disable simulated delays (pure logic mode for tests).
    pub fn instant(mut self) -> EnvironmentManager {
        self.time_scale_us = 0;
        self
    }

    /// A fresh manager with the same calibration but cold caches — each
    /// pooled engine provisions its own environments.
    pub fn fork(&self) -> EnvironmentManager {
        EnvironmentManager {
            keep_warm: self.keep_warm,
            time_scale_us: self.time_scale_us,
            ..EnvironmentManager::new()
        }
    }

    fn sleep_units(&self, units: u64) -> Duration {
        let d = Duration::from_micros(units * self.time_scale_us);
        if !d.is_zero() {
            std::thread::sleep(d);
        }
        d
    }

    /// Provision an environment able to run code with the given imports.
    /// Blocks for the simulated setup/install time and reports what it did.
    pub fn provision(&mut self, imports: &[String]) -> InstallReport {
        let mut setup_time = Duration::ZERO;
        if !self.env_alive {
            setup_time = self.sleep_units(ENV_SETUP_UNITS);
            self.env_alive = true;
            self.envs_created += 1;
        }
        let mut installed = Vec::new();
        let mut cached = Vec::new();
        let mut install_units = 0;
        for lib in imports {
            if self.installed.contains(lib) {
                cached.push(lib.clone());
            } else {
                install_units += install_cost_units(lib);
                self.installed.insert(lib.clone());
                installed.push(lib.clone());
                self.total_installs += 1;
            }
        }
        let install_time = self.sleep_units(install_units);
        InstallReport { installed, cached, install_time, setup_time }
    }

    /// Tear the environment down (serverless ephemerality). On a warm
    /// engine the library cache survives; cold engines forget everything.
    pub fn teardown(&mut self) {
        self.env_alive = false;
        if !self.keep_warm {
            self.installed.clear();
        }
    }

    /// Is an environment currently alive?
    pub fn is_alive(&self) -> bool {
        self.env_alive
    }

    /// Total environments created (ablation metric).
    pub fn envs_created(&self) -> u64 {
        self.envs_created
    }

    /// Total library installs performed (ablation metric).
    pub fn total_installs(&self) -> u64 {
        self.total_installs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_provision_installs_everything() {
        let mut env = EnvironmentManager::new().instant();
        let report = env.provision(&["astropy".into(), "requests".into()]);
        assert_eq!(report.installed, vec!["astropy", "requests"]);
        assert!(report.cached.is_empty());
        assert!(env.is_alive());
        assert_eq!(env.envs_created(), 1);
    }

    #[test]
    fn second_provision_same_env_hits_cache() {
        let mut env = EnvironmentManager::new().instant();
        env.provision(&["astropy".into()]);
        let report = env.provision(&["astropy".into(), "numpy".into()]);
        assert_eq!(report.cached, vec!["astropy"]);
        assert_eq!(report.installed, vec!["numpy"]);
        assert_eq!(env.envs_created(), 1, "env reused while alive");
    }

    #[test]
    fn cold_teardown_forgets_installs() {
        let mut env = EnvironmentManager::new().instant();
        env.provision(&["astropy".into()]);
        env.teardown();
        assert!(!env.is_alive());
        let report = env.provision(&["astropy".into()]);
        assert_eq!(report.installed, vec!["astropy"], "cold engine reinstalls");
        assert_eq!(env.envs_created(), 2);
    }

    #[test]
    fn warm_teardown_keeps_cache() {
        let mut env = EnvironmentManager::new().instant();
        env.keep_warm = true;
        env.provision(&["astropy".into()]);
        env.teardown();
        let report = env.provision(&["astropy".into()]);
        assert_eq!(report.cached, vec!["astropy"], "warm engine keeps libraries");
        assert!(report.installed.is_empty());
    }

    #[test]
    fn install_costs_deterministic_and_bounded() {
        for lib in ["astropy", "numpy", "requests", "x"] {
            let a = install_cost_units(lib);
            assert_eq!(a, install_cost_units(lib));
            assert!((30..=120).contains(&a), "{lib} cost {a}");
        }
        assert_ne!(install_cost_units("astropy"), install_cost_units("numpy"));
    }

    #[test]
    fn simulated_time_actually_elapses() {
        let mut env = EnvironmentManager::new();
        env.time_scale_us = 50;
        let t0 = std::time::Instant::now();
        let report = env.provision(&["somelib".into()]);
        let elapsed = t0.elapsed();
        assert!(elapsed >= report.setup_time + report.install_time - Duration::from_millis(1));
        assert!(report.setup_time >= Duration::from_millis(10));
    }
}
