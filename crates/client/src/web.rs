//! The web_client layer (paper §3.4.2): transports, serialization and
//! envelope shaping between the client functions and the server API.

use laminar_json::Value;
use laminar_server::{api::Method, ApiRequest, ApiResponse, LaminarServer};
use std::sync::Arc;

/// A transport carrying API requests to a Laminar server.
pub trait Transport: Send {
    /// Execute one request/response exchange.
    fn call(&self, request: &ApiRequest) -> Result<ApiResponse, String>;
    /// Human-readable endpoint description.
    fn endpoint(&self) -> String;
}

/// In-process transport: client and server share the process (the "local
/// execution" configuration of Table 5). No lock: `LaminarServer::handle`
/// takes `&self`, so cloned transports issue requests concurrently — the
/// same parallelism remote clients get over TCP.
#[derive(Clone)]
pub struct InProcessTransport {
    server: Arc<LaminarServer>,
}

impl InProcessTransport {
    /// Wrap a server.
    pub fn new(server: LaminarServer) -> InProcessTransport {
        InProcessTransport { server: Arc::new(server) }
    }

    /// Shared handle to the server (to register hosts, inspect state).
    pub fn server(&self) -> Arc<LaminarServer> {
        Arc::clone(&self.server)
    }
}

impl Transport for InProcessTransport {
    fn call(&self, request: &ApiRequest) -> Result<ApiResponse, String> {
        Ok(self.server.handle(request))
    }

    fn endpoint(&self) -> String {
        "in-process".to_string()
    }
}

/// TCP transport: talks HTTP to a remote [`laminar_server::HttpServer`]
/// (the "remote execution" configuration of Table 5).
#[derive(Clone)]
pub struct TcpTransport {
    addr: std::net::SocketAddr,
}

impl TcpTransport {
    /// Connect to a server address.
    pub fn new(addr: std::net::SocketAddr) -> TcpTransport {
        TcpTransport { addr }
    }
}

impl Transport for TcpTransport {
    fn call(&self, request: &ApiRequest) -> Result<ApiResponse, String> {
        laminar_server::http::http_call(self.addr, request).map_err(|e| format!("transport error: {e}"))
    }

    fn endpoint(&self) -> String {
        format!("http://{}", self.addr)
    }
}

/// Serialize LamScript source for the `code` field the way the paper's
/// client pickles Python objects: lampickle + base64.
pub fn serialize_code(source: &str) -> String {
    laminar_registry::entities::encode_code(source)
}

/// Import analysis (findimports equivalent) run client-side so the request
/// can declare its dependencies (paper §3.4.2).
pub fn analyze_imports(source: &str) -> Vec<String> {
    match laminar_script::parse_script(source) {
        Ok(script) => laminar_script::analysis::imports(&script),
        Err(_) => Vec::new(),
    }
}

/// Build a GET request.
pub fn get(path: impl Into<String>) -> ApiRequest {
    ApiRequest::new(Method::Get, path, Value::Null)
}

/// Build a POST request.
pub fn post(path: impl Into<String>, body: Value) -> ApiRequest {
    ApiRequest::new(Method::Post, path, body)
}

/// Build a DELETE request.
pub fn delete(path: impl Into<String>) -> ApiRequest {
    ApiRequest::new(Method::Delete, path, Value::Null)
}

/// Build a PUT request.
pub fn put(path: impl Into<String>) -> ApiRequest {
    ApiRequest::new(Method::Put, path, Value::Null)
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_json::jobj;

    #[test]
    fn in_process_transport_round_trip() {
        let t = InProcessTransport::new(LaminarServer::in_memory());
        let r =
            t.call(&post("/auth/register", jobj! { "userName" => "u1", "password" => "password" })).unwrap();
        assert!(r.is_ok());
        assert_eq!(t.endpoint(), "in-process");
    }

    #[test]
    fn serialize_code_round_trips() {
        let src = "pe X : producer { output o; process { emit(1); } }";
        let enc = serialize_code(src);
        assert_eq!(laminar_registry::entities::decode_code(&enc).as_deref(), Some(src));
    }

    #[test]
    fn analyze_imports_finds_deps() {
        let src = r#"
            pe A : iterative {
                import astropy;
                input x; output output;
                process { emit(vo.fetch(x)); }
            }
        "#;
        let imports = analyze_imports(src);
        assert!(imports.contains(&"astropy".to_string()));
        assert!(analyze_imports("not valid !!").is_empty());
    }

    #[test]
    fn tcp_transport_against_live_server() {
        let http = laminar_server::HttpServer::start(LaminarServer::in_memory()).unwrap();
        let t = TcpTransport::new(http.addr());
        let r =
            t.call(&post("/auth/register", jobj! { "userName" => "tcp", "password" => "password" })).unwrap();
        assert!(r.is_ok(), "{r:?}");
        assert!(t.endpoint().starts_with("http://127.0.0.1"));
        http.stop();
    }
}
