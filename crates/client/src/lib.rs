//! # laminar-client
//!
//! The user-facing Laminar client (paper §3.4), structured in the paper's
//! two layers:
//!
//! * the **client layer** ([`client::LaminarClient`]) — the thirteen
//!   documented functions (`register`, `login`, `register_PE`,
//!   `register_Workflow`, `remove_PE`, `remove_Workflow`, `get_PE`,
//!   `get_Workflow`, `get_PEs_By_Workflow`, `search_Registry`, `describe`,
//!   `get_Registry`, `run`);
//! * the **web_client layer** ([`web`]) — serialization (lampickle +
//!   base64), import analysis, JSON envelopes, and the transport that
//!   carries them: in-process ([`web::InProcessTransport`]) or HTTP/TCP
//!   ([`web::TcpTransport`]).
//!
//! ```
//! use laminar_client::{LaminarClient, RunConfig};
//! use laminar_server::LaminarServer;
//!
//! let mut client = LaminarClient::in_process(LaminarServer::in_memory());
//! client.register("zz46", "password").unwrap();
//! client.login("zz46", "password").unwrap();
//!
//! let src = "pe Gen : producer { output output; process { emit(iteration); } }";
//! client.register_pe(src, Some("Emits the iteration counter")).unwrap();
//! let out = client.run_source(src, RunConfig::iterations(3)).unwrap();
//! assert_eq!(out.port_values("Gen", "output").len(), 3);
//! ```

pub mod client;
pub mod web;

pub use client::{ClientError, EventPage, JobEventStream, LaminarClient, RunConfig, RunTarget};
pub use web::{InProcessTransport, TcpTransport, Transport};
