//! The client layer: the thirteen user-facing functions of paper §3.4.1.

use crate::web::{self, InProcessTransport, TcpTransport, Transport};
use laminar_dataflow::MappingKind;
use laminar_engine::ExecutionOutput;
use laminar_json::Value;
use laminar_server::{ApiResponse, LaminarServer};

/// Client-side error: either a transport failure or a structured server
/// error envelope (paper §3.2.5).
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The transport failed (connection refused, protocol error…).
    Transport(String),
    /// The server answered with an error envelope.
    Api {
        /// HTTP-style status.
        status: u16,
        /// Error type tag (the envelope's machine-readable `code`).
        kind: String,
        /// Human-readable message.
        message: String,
        /// The server's own backoff advice (`retryAfterMs`), present on
        /// 429s: how long to wait before a retry could succeed.
        retry_after_ms: Option<u64>,
    },
    /// The awaited job was cancelled (via [`LaminarClient::cancel_job`],
    /// another client, or server shutdown) — distinct from a failure:
    /// the job's event log holds the valid prefix it produced.
    Cancelled {
        /// The cancelled job's id.
        job: i64,
    },
    /// **Non-fatal**: the server's bounded event log evicted events past
    /// the stream's cursor, but the retained window holds an epoch
    /// checkpoint, so [`LaminarClient::event_stream`] resumed from it.
    /// The epoch's `state` summarizes everything evicted before it;
    /// iteration continues with the events after the marker.
    Resumed {
        /// The streamed job's id.
        job: i64,
        /// The epoch checkpoint the stream resumed from.
        at_epoch: i64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport error: {m}"),
            ClientError::Api { status, kind, message, .. } => {
                write!(f, "server error {status} ({kind}): {message}")
            }
            ClientError::Cancelled { job } => write!(f, "job {job} was cancelled"),
            ClientError::Resumed { job, at_epoch } => {
                write!(f, "job {job} event stream resumed from epoch {at_epoch} after eviction")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// What to run: a registered workflow (by name or id) or inline source.
#[derive(Debug, Clone)]
pub enum RunTarget {
    /// A registered workflow's entry point or id.
    Registered(String),
    /// Inline LamScript source (like passing a `WorkflowGraph` object).
    Source(String),
}

/// Execution configuration for [`LaminarClient::run`] — mirrors the
/// paper's `run(workflow, input, process, args, resources)` signature.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Iteration count, or explicit input data.
    pub input: Value,
    /// Mapping (`process=` parameter; SIMPLE is inferred when omitted).
    pub mapping: MappingKind,
    /// Process count (`args={'num': N}`).
    pub processes: usize,
    /// Resources to stage, as (name, bytes).
    pub resources: Vec<(String, Vec<u8>)>,
    /// Ask the server to log the run's live event stream (consumed via
    /// [`LaminarClient::job_events`] / [`LaminarClient::event_stream`]).
    pub stream_events: bool,
    /// Checkpoint interval in source iterations (0 = off): the enactment
    /// emits an epoch snapshot every `n` iterations, journaled per-job on
    /// durable servers and resumable via [`LaminarClient::resume_job`].
    pub checkpoint_every: usize,
    /// Intra-tenant scheduling priority (default 0): higher-priority jobs
    /// run first within this user's queue lane, FIFO among equals. The
    /// cross-tenant order is the server's fair scheduler's — priority
    /// never cuts another tenant's line.
    pub priority: i64,
    /// Queue-wait deadline in milliseconds: a job still queued when the
    /// deadline passes is failed fast (`deadline exceeded`) instead of
    /// running uselessly late. `None` (default) waits indefinitely.
    pub deadline_ms: Option<u64>,
}

impl RunConfig {
    /// Run for `n` iterations with the Simple mapping.
    pub fn iterations(n: i64) -> RunConfig {
        RunConfig {
            input: Value::Int(n),
            mapping: MappingKind::Simple,
            processes: 1,
            resources: vec![],
            stream_events: false,
            checkpoint_every: 0,
            priority: 0,
            deadline_ms: None,
        }
    }

    /// Feed explicit data.
    pub fn data(values: Vec<Value>) -> RunConfig {
        RunConfig {
            input: Value::Array(values),
            mapping: MappingKind::Simple,
            processes: 1,
            resources: vec![],
            stream_events: false,
            checkpoint_every: 0,
            priority: 0,
            deadline_ms: None,
        }
    }

    /// Run unbounded (until cancelled via [`LaminarClient::cancel_job`]),
    /// pacing each source instance by `pace` between iterations. Only
    /// valid with the async submit path — the sync `run` endpoint
    /// rejects inputs that never complete — so this also turns on the
    /// event stream, the one place an unbounded run's results can be
    /// consumed.
    pub fn unbounded(pace: std::time::Duration) -> RunConfig {
        let mut input = Value::Null;
        input.set("mode", "unbounded").set("pace_us", pace.as_micros() as i64);
        RunConfig {
            input,
            mapping: MappingKind::Simple,
            processes: 1,
            resources: vec![],
            stream_events: true,
            checkpoint_every: 0,
            priority: 0,
            deadline_ms: None,
        }
    }

    /// Choose the mapping and process count.
    pub fn with_mapping(mut self, mapping: MappingKind, processes: usize) -> RunConfig {
        self.mapping = mapping;
        self.processes = processes;
        self
    }

    /// Stage a resource file.
    pub fn with_resource(mut self, name: &str, bytes: Vec<u8>) -> RunConfig {
        self.resources.push((name.to_string(), bytes));
        self
    }

    /// Request a live event stream for the job.
    pub fn with_events(mut self, stream: bool) -> RunConfig {
        self.stream_events = stream;
        self
    }

    /// Checkpoint the enactment every `n` source iterations (0 = off).
    pub fn with_checkpoints(mut self, n: usize) -> RunConfig {
        self.checkpoint_every = n;
        self
    }

    /// Scheduling priority within this user's lane (higher runs first).
    pub fn with_priority(mut self, priority: i64) -> RunConfig {
        self.priority = priority;
        self
    }

    /// Fail the job fast if it is still queued after `ms` milliseconds.
    pub fn with_deadline_ms(mut self, ms: u64) -> RunConfig {
        self.deadline_ms = Some(ms);
        self
    }
}

/// One page of a job's event stream (`/events` response) — the same
/// shape the pool serves, reused so the cursor protocol has one
/// definition.
pub use laminar_engine::EventPage;

/// The Laminar client.
pub struct LaminarClient {
    transport: Box<dyn Transport>,
    user: Option<String>,
    token: Option<String>,
}

impl LaminarClient {
    /// Client bound to an in-process server (local deployment).
    pub fn in_process(server: LaminarServer) -> LaminarClient {
        LaminarClient { transport: Box::new(InProcessTransport::new(server)), user: None, token: None }
    }

    /// Client bound to a shared in-process transport.
    pub fn with_transport(transport: Box<dyn Transport>) -> LaminarClient {
        LaminarClient { transport, user: None, token: None }
    }

    /// Client talking HTTP to a remote server.
    pub fn connect(addr: std::net::SocketAddr) -> LaminarClient {
        LaminarClient { transport: Box::new(TcpTransport::new(addr)), user: None, token: None }
    }

    /// The logged-in user name.
    pub fn user(&self) -> Option<&str> {
        self.user.as_deref()
    }

    fn call(&self, request: &laminar_server::ApiRequest) -> Result<Value, ClientError> {
        // GETs are idempotent reads (status, events, stats, registry
        // lookups): a transient connection failure is retried with the
        // client's standard 2→50 ms backoff, at most 3 attempts. POSTs,
        // PUTs and DELETEs are never retried — a request that mutates
        // state may have been applied before the connection dropped.
        let attempts = if request.method == laminar_server::api::Method::Get { 3 } else { 1 };
        let mut delay = std::time::Duration::from_millis(2);
        let mut resp: Result<ApiResponse, String>;
        let mut attempt = 0;
        loop {
            resp = self.transport.call(request);
            attempt += 1;
            if resp.is_ok() || attempt >= attempts {
                break;
            }
            std::thread::sleep(delay);
            delay = (delay * 2).min(std::time::Duration::from_millis(50));
        }
        let resp = resp.map_err(ClientError::Transport)?;
        if resp.is_ok() {
            Ok(resp.body)
        } else {
            // The unified v1 envelope nests the detail under "error":
            // {"error":{"code","status","message","retryAfterMs"?}}. Pre-v1
            // servers answered the flat {"error":"<kind>","message":…}
            // shape — keep decoding it so old deployments stay reachable.
            let detail = &resp.body["error"];
            let (kind, message) = if detail["code"].as_str().is_some() {
                (
                    detail["code"].as_str().unwrap_or("Unknown").to_string(),
                    detail["message"].as_str().unwrap_or("").to_string(),
                )
            } else {
                (
                    resp.body["error"].as_str().unwrap_or("Unknown").to_string(),
                    resp.body["message"].as_str().unwrap_or("").to_string(),
                )
            };
            Err(ClientError::Api {
                status: resp.status,
                kind,
                message,
                retry_after_ms: detail["retryAfterMs"].as_i64().filter(|ms| *ms >= 0).map(|ms| ms as u64),
            })
        }
    }

    fn current_user(&self) -> Result<&str, ClientError> {
        self.user.as_deref().ok_or(ClientError::Api {
            status: 401,
            kind: "Unauthorized".into(),
            message: "call login() first".into(),
            retry_after_ms: None,
        })
    }

    // ---- 1 & 2: register / login -------------------------------------------

    /// `client.register("zz46", "password")` (fn 1).
    pub fn register(&mut self, user_name: &str, password: &str) -> Result<(), ClientError> {
        let mut body = Value::Null;
        body.set("userName", user_name).set("password", password);
        self.call(&web::post("/auth/register", body))?;
        Ok(())
    }

    /// `client.login("zz46", "password")` (fn 2). Stores the session.
    pub fn login(&mut self, user_name: &str, password: &str) -> Result<(), ClientError> {
        let mut body = Value::Null;
        body.set("userName", user_name).set("password", password);
        let resp = self.call(&web::post("/auth/login", body))?;
        self.user = Some(user_name.to_string());
        self.token = resp["token"].as_str().map(str::to_string);
        Ok(())
    }

    // ---- 3 & 4: registration --------------------------------------------------

    /// `client.register_PE(NumberProducer, "Random numbers producer")`
    /// (fn 3). `source` is LamScript defining the PE; code is shipped
    /// serialized (lampickle+base64), like cloudpickle in the paper.
    pub fn register_pe(&mut self, source: &str, description: Option<&str>) -> Result<i64, ClientError> {
        let user = self.current_user()?.to_string();
        let mut body = Value::Null;
        body.set("code", web::serialize_code(source))
            .set("imports", Value::Array(web::analyze_imports(source).into_iter().map(Value::Str).collect()));
        if let Some(d) = description {
            body.set("description", d);
        }
        let resp = self.call(&web::post(format!("/registry/{user}/pe/add"), body))?;
        Ok(resp["peId"].as_i64().unwrap_or(0))
    }

    /// `client.register_Workflow(graph, "isPrime", "…")` (fn 4).
    pub fn register_workflow(
        &mut self,
        source: &str,
        workflow_name: &str,
        description: Option<&str>,
    ) -> Result<i64, ClientError> {
        let user = self.current_user()?.to_string();
        let mut body = Value::Null;
        body.set("code", web::serialize_code(source)).set("entryPoint", workflow_name);
        if let Some(d) = description {
            body.set("description", d);
        }
        let resp = self.call(&web::post(format!("/registry/{user}/workflow/add"), body))?;
        Ok(resp["workflowId"].as_i64().unwrap_or(0))
    }

    // ---- 5 & 6: removal ----------------------------------------------------------

    /// `client.remove_PE("NumberProducer")` (fn 5) — name or id.
    pub fn remove_pe(&mut self, pe: &str) -> Result<(), ClientError> {
        let user = self.current_user()?.to_string();
        let path = match pe.parse::<i64>() {
            Ok(id) => format!("/registry/{user}/pe/remove/id/{id}"),
            Err(_) => format!("/registry/{user}/pe/remove/name/{pe}"),
        };
        self.call(&web::delete(path))?;
        Ok(())
    }

    /// `client.remove_Workflow("IsPrime")` (fn 6) — name or id.
    pub fn remove_workflow(&mut self, workflow: &str) -> Result<(), ClientError> {
        let user = self.current_user()?.to_string();
        let path = match workflow.parse::<i64>() {
            Ok(id) => format!("/registry/{user}/workflow/remove/id/{id}"),
            Err(_) => format!("/registry/{user}/workflow/remove/name/{workflow}"),
        };
        self.call(&web::delete(path))?;
        Ok(())
    }

    // ---- 7, 8, 9: retrieval ---------------------------------------------------------

    /// `pe1 = client.get_PE("NumberProducer")` (fn 7). Returns the decoded
    /// LamScript source, ready for composing into new workflows.
    pub fn get_pe(&self, pe: &str) -> Result<(Value, String), ClientError> {
        let user = self.current_user()?.to_string();
        let path = match pe.parse::<i64>() {
            Ok(id) => format!("/registry/{user}/pe/id/{id}"),
            Err(_) => format!("/registry/{user}/pe/name/{pe}"),
        };
        let meta = self.call(&web::get(path))?;
        let source = meta["peCode"]
            .as_str()
            .and_then(laminar_registry::entities::decode_code)
            .ok_or(ClientError::Transport("server returned undecodable PE code".into()))?;
        Ok((meta, source))
    }

    /// `graph = client.get_Workflow("IsPrime")` (fn 8).
    pub fn get_workflow(&self, workflow: &str) -> Result<(Value, String), ClientError> {
        let user = self.current_user()?.to_string();
        let path = match workflow.parse::<i64>() {
            Ok(id) => format!("/registry/{user}/workflow/id/{id}"),
            Err(_) => format!("/registry/{user}/workflow/name/{workflow}"),
        };
        let meta = self.call(&web::get(path))?;
        let source = meta["workflowCode"]
            .as_str()
            .and_then(laminar_registry::entities::decode_code)
            .ok_or(ClientError::Transport("server returned undecodable workflow code".into()))?;
        Ok((meta, source))
    }

    /// `pes = client.get_PEs_By_Workflow("IsPrime")` (fn 9).
    pub fn get_pes_by_workflow(&self, workflow: &str) -> Result<Vec<Value>, ClientError> {
        let user = self.current_user()?.to_string();
        let path = match workflow.parse::<i64>() {
            Ok(id) => format!("/registry/{user}/workflow/pes/id/{id}"),
            Err(_) => format!("/registry/{user}/workflow/pes/name/{workflow}"),
        };
        let resp = self.call(&web::get(path))?;
        Ok(resp.as_array().unwrap_or(&[]).to_vec())
    }

    // ---- 10: search ------------------------------------------------------------------

    /// `client.search_Registry("isPrime", "workflow", "text")` (fn 10).
    pub fn search_registry(
        &self,
        search: &str,
        search_type: &str,
        query_type: &str,
    ) -> Result<Vec<Value>, ClientError> {
        let resp = self.search_registry_detailed(search, search_type, query_type, None)?;
        Ok(resp["hits"].as_array().unwrap_or(&[]).to_vec())
    }

    /// Search returning the full response envelope — the hits plus the
    /// server's timing split (`search_us` total, `embed_us`, `rank_us`) —
    /// with an optional hit limit.
    pub fn search_registry_detailed(
        &self,
        search: &str,
        search_type: &str,
        query_type: &str,
        limit: Option<usize>,
    ) -> Result<Value, ClientError> {
        let user = self.current_user()?.to_string();
        let mut body = Value::Null;
        body.set("queryType", query_type);
        if let Some(limit) = limit {
            body.set("limit", limit as i64);
        }
        self.call(&laminar_server::ApiRequest::new(
            laminar_server::api::Method::Get,
            format!("/registry/{user}/search/{search}/type/{search_type}"),
            body,
        ))
    }

    /// Registry-wide counters (`GET /registry/stats` — entity counts,
    /// searches served, search-index shape).
    pub fn registry_stats(&self) -> Result<Value, ClientError> {
        self.call(&web::get("/registry/stats"))
    }

    // ---- 11 & 12: describe / get_Registry ------------------------------------------------

    /// `client.describe(IsPrime)` (fn 11): fetches and formats name and
    /// description.
    pub fn describe(&self, name_or_id: &str) -> Result<String, ClientError> {
        if let Ok((meta, _)) = self.get_pe(name_or_id) {
            return Ok(format!(
                "PE {} (id {}): {}",
                meta["peName"].as_str().unwrap_or("?"),
                meta["peId"].as_i64().unwrap_or(0),
                meta["description"].as_str().unwrap_or("")
            ));
        }
        let (meta, _) = self.get_workflow(name_or_id)?;
        Ok(format!(
            "Workflow {} (id {}, entry '{}'): {}",
            meta["workflowName"].as_str().unwrap_or("?"),
            meta["workflowId"].as_i64().unwrap_or(0),
            meta["entryPoint"].as_str().unwrap_or("?"),
            meta["description"].as_str().unwrap_or("")
        ))
    }

    /// `registry = client.get_Registry()` (fn 12).
    pub fn get_registry(&self) -> Result<Value, ClientError> {
        let user = self.current_user()?.to_string();
        self.call(&web::get(format!("/registry/{user}/all")))
    }

    // ---- 13: run -----------------------------------------------------------------------

    fn run_body(target: RunTarget, config: &RunConfig) -> Value {
        let mut body = Value::Null;
        match target {
            RunTarget::Registered(key) => {
                body.set("workflow", key.as_str());
            }
            RunTarget::Source(src) => {
                body.set("source", src.as_str());
            }
        }
        body.set("input", config.input.clone())
            .set("mapping", config.mapping.as_str())
            .set("processes", config.processes);
        // The v1 nested options object — the server still accepts the
        // deprecated flat `events`/`checkpoint_every` fields from older
        // clients, but this client speaks v1.
        let mut options = Value::Null;
        options.set("events", config.stream_events);
        if config.checkpoint_every > 0 {
            options.set("checkpointEvery", config.checkpoint_every);
        }
        if config.priority != 0 {
            options.set("priority", config.priority);
        }
        if let Some(d) = config.deadline_ms {
            options.set("deadlineMs", d as i64);
        }
        body.set("options", options);
        let resources: Value = config
            .resources
            .iter()
            .map(|(name, bytes)| {
                let mut r = Value::Null;
                r.set("name", name.as_str()).set("data", laminar_codec::base64::encode(bytes));
                r
            })
            .collect();
        body.set("resources", resources);
        body
    }

    /// `client.run("IsPrime", input=5, process=MULTI, args={'num':5})`
    /// (fn 13). Accepts a registered workflow name/id or inline source.
    pub fn run(&mut self, target: RunTarget, config: RunConfig) -> Result<ExecutionOutput, ClientError> {
        let user = self.current_user()?.to_string();
        let body = Self::run_body(target, &config);
        let resp = self.call(&web::post(format!("/execution/{user}/run"), body))?;
        ExecutionOutput::from_value(&resp)
            .ok_or(ClientError::Transport("server returned a malformed execution output".into()))
    }

    /// Convenience: run inline source.
    pub fn run_source(&mut self, source: &str, config: RunConfig) -> Result<ExecutionOutput, ClientError> {
        self.run(RunTarget::Source(source.to_string()), config)
    }

    /// Convenience: run a registered workflow by name/id.
    pub fn run_registered(
        &mut self,
        workflow: &str,
        config: RunConfig,
    ) -> Result<ExecutionOutput, ClientError> {
        self.run(RunTarget::Registered(workflow.to_string()), config)
    }

    // ---- async job API ------------------------------------------------------------------

    /// Submit an execution without waiting: returns a job id for polling.
    /// A saturated server answers 429 (`ClientError::Api { status: 429 }`)
    /// — back off and retry.
    pub fn submit(&mut self, target: RunTarget, config: RunConfig) -> Result<i64, ClientError> {
        let user = self.current_user()?.to_string();
        let body = Self::run_body(target, &config);
        let resp = self.call(&web::post(format!("/execution/{user}/submit"), body))?;
        resp["jobId"].as_i64().ok_or(ClientError::Transport("server returned no job id".into()))
    }

    /// Poll a job's lifecycle phase and metrics (`status`, `queue_us`,
    /// `run_us`, `engine`).
    pub fn job_status(&self, job_id: i64) -> Result<Value, ClientError> {
        let user = self.current_user()?.to_string();
        self.call(&web::get(format!("/execution/{user}/job/{job_id}/status")))
    }

    /// Poll a job's result: `Ok(Some(output))` once done, `Ok(None)` while
    /// queued or running, `Err` for unknown ids, failed executions, or
    /// cancelled jobs ([`ClientError::Cancelled`]).
    pub fn job_result(&self, job_id: i64) -> Result<Option<ExecutionOutput>, ClientError> {
        let user = self.current_user()?.to_string();
        let resp = self.call(&web::get(format!("/execution/{user}/job/{job_id}/result")))?;
        match resp["status"].as_str() {
            Some("done") => ExecutionOutput::from_value(&resp)
                .map(Some)
                .ok_or(ClientError::Transport("server returned a malformed execution output".into())),
            Some("cancelled") => Err(ClientError::Cancelled { job: job_id }),
            _ => Ok(None),
        }
    }

    /// Request cooperative cancellation of a job
    /// (`DELETE /execution/{user}/job/{id}`). Idempotent: 200 with the
    /// job's current status whether it was queued (terminated on the
    /// spot), running (stops at its next invocation boundary — watch the
    /// event stream for the `cancelled` marker), or already finished
    /// (no-op). Unknown jobs surface the 404 envelope.
    pub fn cancel_job(&self, job_id: i64) -> Result<Value, ClientError> {
        let user = self.current_user()?.to_string();
        self.call(&web::delete(format!("/execution/{user}/job/{job_id}")))
    }

    /// Resume an interrupted checkpointed job from its server-side journal
    /// (`POST /execution/{user}/job/{id}/resume`). Only meaningful against
    /// a durable server: the job is re-enqueued under its original id,
    /// restarting from its last complete epoch. Answers 404 when the job
    /// was never journaled, completed (journal cleaned up), or belongs to
    /// someone else.
    pub fn resume_job(&self, job_id: i64) -> Result<i64, ClientError> {
        let user = self.current_user()?.to_string();
        let resp = self.call(&web::post(format!("/execution/{user}/job/{job_id}/resume"), Value::Null))?;
        resp["jobId"].as_i64().ok_or(ClientError::Transport("server returned no job id".into()))
    }

    /// The engine pool's aggregate counters
    /// (`GET /execution/pool/stats` — workers, queue depth, submitted /
    /// completed / failed / cancelled / rejected totals).
    pub fn pool_stats(&self) -> Result<Value, ClientError> {
        self.call(&web::get("/execution/pool/stats"))
    }

    /// Poll a job until it finishes or `timeout` passes. Polling backs
    /// off exponentially (2 ms doubling to a 50 ms cap), so long jobs
    /// cost a handful of requests instead of hammering the server. A
    /// throttled poll (429) is not fatal: the server's `retryAfterMs`
    /// advice replaces the fixed ladder for that round, so a saturated
    /// server sets the pace instead of being hammered at 50 ms.
    pub fn wait_job(
        &self,
        job_id: i64,
        timeout: std::time::Duration,
    ) -> Result<ExecutionOutput, ClientError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut delay = std::time::Duration::from_millis(2);
        loop {
            let hint = match self.job_result(job_id) {
                Ok(Some(output)) => return Ok(output),
                Ok(None) => None,
                Err(ClientError::Api { status: 429, retry_after_ms, .. }) => {
                    Some(std::time::Duration::from_millis(retry_after_ms.unwrap_or(50).max(1)))
                }
                Err(e) => return Err(e),
            };
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(ClientError::Transport(format!("job {job_id} did not finish in {timeout:?}")));
            }
            std::thread::sleep(hint.unwrap_or(delay).min(deadline - now));
            if hint.is_none() {
                delay = (delay * 2).min(std::time::Duration::from_millis(50));
            }
        }
    }

    // ---- event stream -------------------------------------------------------------------

    /// Read one page of a job's event stream starting at cursor `since`
    /// (`GET /execution/{user}/job/{id}/events?since=<seq>`).
    pub fn job_events(&self, job_id: i64, since: u64) -> Result<EventPage, ClientError> {
        self.job_events_wait(job_id, since, std::time::Duration::ZERO)
    }

    /// Read one page of a job's event stream, long-polling: when no event
    /// past `since` exists yet, the server parks the request up to `wait`
    /// (it caps the park at its own limit, 30 s) and answers the moment
    /// one arrives — or immediately if the stream is already sealed
    /// (`GET …/events?since=<seq>&wait_ms=<ms>`). `wait` of zero is a
    /// plain poll, byte-identical to [`LaminarClient::job_events`].
    pub fn job_events_wait(
        &self,
        job_id: i64,
        since: u64,
        wait: std::time::Duration,
    ) -> Result<EventPage, ClientError> {
        let user = self.current_user()?.to_string();
        let mut path = format!("/execution/{user}/job/{job_id}/events?since={since}");
        let wait_ms = wait.as_millis() as u64;
        if wait_ms > 0 {
            path.push_str(&format!("&wait_ms={wait_ms}"));
        }
        let resp = self.call(&web::get(path))?;
        let events = resp["events"]
            .as_array()
            .ok_or(ClientError::Transport("server returned a malformed event page".into()))?
            .to_vec();
        Ok(EventPage {
            events,
            next: resp["next"].as_i64().unwrap_or(0).max(0) as u64,
            first: resp["first"].as_i64().unwrap_or(0).max(0) as u64,
            closed: resp["closed"].as_bool().unwrap_or(false),
            retained_epoch: resp["retained_epoch"].as_i64().map(|e| e.max(0) as u64),
        })
    }

    /// Iterate a job's events as they arrive, blocking between pages with
    /// the same 2→50 ms backoff as [`LaminarClient::wait_job`] (reset
    /// whenever events arrive). The iterator ends when the stream closes
    /// (the last item is the `done`/`failed`/`cancelled` marker) or `timeout` passes
    /// with the stream still open (final item: a transport error). A
    /// transport error is also surfaced when the server's bounded log
    /// evicted events past the cursor (truncation) — the stream would
    /// otherwise silently diverge from the batch result.
    pub fn event_stream(&self, job_id: i64, timeout: std::time::Duration) -> JobEventStream<'_> {
        JobEventStream {
            client: self,
            job_id,
            cursor: 0,
            buffered: std::collections::VecDeque::new(),
            closed: false,
            failed: false,
            deadline: std::time::Instant::now() + timeout,
            wait: std::time::Duration::ZERO,
        }
    }

    /// Like [`LaminarClient::event_stream`] but push-driven: each page
    /// request long-polls ([`LaminarClient::job_events_wait`]) so events
    /// are delivered the moment the server appends them, with no
    /// client-side sleep between pages. Same items, same termination —
    /// only the delivery latency and request count change.
    pub fn event_stream_push(&self, job_id: i64, timeout: std::time::Duration) -> JobEventStream<'_> {
        let mut stream = self.event_stream(job_id, timeout);
        stream.wait = std::time::Duration::from_millis(10_000);
        stream
    }

    /// Wait for a job like [`LaminarClient::wait_job`], invoking
    /// `on_event` for every event of its stream as it arrives (progress
    /// reporting). Requires the job to have been submitted with
    /// [`RunConfig::with_events`] for event granularity — without it the
    /// callback only sees the terminal marker. Progress is best-effort:
    /// a truncated or interrupted stream stops the callbacks but the
    /// result is still awaited and returned.
    pub fn wait_job_with_progress(
        &self,
        job_id: i64,
        timeout: std::time::Duration,
        mut on_event: impl FnMut(&Value),
    ) -> Result<ExecutionOutput, ClientError> {
        let deadline = std::time::Instant::now() + timeout;
        for event in self.event_stream(job_id, timeout) {
            match event {
                Ok(event) => on_event(&event),
                // The stream recovered from eviction at an epoch marker —
                // keep reporting from there.
                Err(ClientError::Resumed { .. }) => {}
                // A lost stream (log truncation, transport hiccup) must
                // not lose a retrievable result — fall through to the
                // result poll below.
                Err(_) => break,
            }
        }
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        // Stream closed normally → the terminal phase is committed and
        // this returns on the first poll; stream lost → keep waiting out
        // the caller's budget.
        self.wait_job(job_id, remaining)
    }
}

/// Blocking iterator over a job's event stream — see
/// [`LaminarClient::event_stream`].
pub struct JobEventStream<'a> {
    client: &'a LaminarClient,
    job_id: i64,
    cursor: u64,
    buffered: std::collections::VecDeque<Value>,
    closed: bool,
    failed: bool,
    deadline: std::time::Instant,
    /// Per-page long-poll budget: zero polls, non-zero parks server-side.
    wait: std::time::Duration,
}

impl JobEventStream<'_> {
    /// The job this stream follows.
    pub fn job_id(&self) -> i64 {
        self.job_id
    }

    /// Request cancellation of the job being streamed — the idiomatic way
    /// to end an unbounded run from its consumer loop:
    ///
    /// ```ignore
    /// let mut stream = client.event_stream(job, timeout);
    /// while let Some(event) = stream.next() {
    ///     if enough(&event?) { stream.cancel()?; }
    ///     // keep iterating: the stream drains the prefix and ends at
    ///     // the `cancelled` marker.
    /// }
    /// ```
    pub fn cancel(&self) -> Result<Value, ClientError> {
        self.client.cancel_job(self.job_id)
    }
}

impl Iterator for JobEventStream<'_> {
    type Item = Result<Value, ClientError>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut delay = std::time::Duration::from_millis(2);
        loop {
            if let Some(event) = self.buffered.pop_front() {
                return Some(Ok(event));
            }
            if self.closed || self.failed {
                return None;
            }
            let budget = self.deadline.saturating_duration_since(std::time::Instant::now());
            match self.client.job_events_wait(self.job_id, self.cursor, self.wait.min(budget)) {
                Ok(page) => {
                    // The server's log is bounded: if the oldest retained
                    // seq moved past our cursor, events were evicted before
                    // we read them. Recovery is engine-side for checkpointed
                    // jobs: the horizon policy keeps an epoch marker as the
                    // anchor and `retained_epoch` names it — the page
                    // already starts at the marker, so re-anchor the fold
                    // there (non-fatal, iteration continues). The marker
                    // scan below is the fallback for older servers that
                    // evict blindly but still retain a marker mid-window.
                    // Without a checkpoint the gap is unrecoverable:
                    // surface it instead of silently yielding a divergent
                    // stream.
                    if self.cursor < page.first {
                        let epoch_at = match page.retained_epoch {
                            Some(_) => Some(0),
                            None => page.events.iter().position(|e| e["type"].as_str() == Some("epoch")),
                        };
                        if let Some(pos) = epoch_at {
                            let at_epoch = page
                                .retained_epoch
                                .map(|e| e as i64)
                                .or_else(|| page.events.get(pos)?["epoch"].as_i64())
                                .unwrap_or(0);
                            self.buffered.extend(page.events.into_iter().skip(pos));
                            self.cursor = page.next;
                            self.closed = page.closed;
                            return Some(Err(ClientError::Resumed { job: self.job_id, at_epoch }));
                        }
                        self.failed = true;
                        return Some(Err(ClientError::Transport(format!(
                            "job {} event log truncated: events {}..{} were evicted before they were \
                             read (poll faster, checkpoint the run, or fold from the job result)",
                            self.job_id, self.cursor, page.first
                        ))));
                    }
                    self.cursor = page.next;
                    self.closed = page.closed;
                    if !page.events.is_empty() {
                        self.buffered.extend(page.events);
                        continue;
                    }
                    if self.closed {
                        return None;
                    }
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
            let now = std::time::Instant::now();
            if now >= self.deadline {
                self.failed = true;
                return Some(Err(ClientError::Transport(format!(
                    "job {} event stream still open at timeout",
                    self.job_id
                ))));
            }
            // Push mode already waited server-side; re-request straight
            // away. Poll mode paces itself with the 2→50 ms ladder.
            if self.wait.is_zero() {
                std::thread::sleep(delay.min(self.deadline - now));
                delay = (delay * 2).min(std::time::Duration::from_millis(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WF_SRC: &str = r#"
        pe Seq : producer { output output; process { emit(iteration + 1); } }
        pe IsPrime : iterative {
            input num; output output;
            process {
                let i = 2;
                let prime = num > 1;
                while i * i <= num { if num % i == 0 { prime = false; break; } i = i + 1; }
                if prime { emit(num); }
            }
        }
        pe PrintPrime : consumer { input num; process { print("the num", num, "is prime"); } }
        workflow IsPrimeFlow {
            doc "Workflow that prints random prime numbers";
            nodes { s = Seq; i = IsPrime; p = PrintPrime; }
            connect s.output -> i.num;
            connect i.output -> p.num;
        }
    "#;

    fn logged_in_client() -> LaminarClient {
        let mut c = LaminarClient::in_process(LaminarServer::in_memory());
        c.register("zz46", "password").unwrap();
        c.login("zz46", "password").unwrap();
        c
    }

    #[test]
    fn register_login_required() {
        let c = LaminarClient::in_process(LaminarServer::in_memory());
        assert!(matches!(c.get_registry(), Err(ClientError::Api { status: 401, .. })));
    }

    #[test]
    fn bad_login_surfaces_envelope() {
        let mut c = LaminarClient::in_process(LaminarServer::in_memory());
        c.register("zz46", "password").unwrap();
        let err = c.login("zz46", "nope").unwrap_err();
        assert!(matches!(err, ClientError::Api { status: 401, .. }));
    }

    #[test]
    fn full_pe_lifecycle() {
        let mut c = logged_in_client();
        let id = c
            .register_pe(
                "pe NumberProducer : producer { output output; process { emit(randint(1, 1000)); } }",
                Some("Random numbers producer"),
            )
            .unwrap();
        assert!(id > 0);
        let (meta, source) = c.get_pe("NumberProducer").unwrap();
        assert_eq!(meta["description"].as_str(), Some("Random numbers producer"));
        assert!(source.contains("pe NumberProducer"));
        let described = c.describe("NumberProducer").unwrap();
        assert!(described.contains("Random numbers producer"));
        c.remove_pe("NumberProducer").unwrap();
        assert!(c.get_pe("NumberProducer").is_err());
    }

    #[test]
    fn workflow_lifecycle_and_run() {
        let mut c = logged_in_client();
        let wid = c
            .register_workflow(WF_SRC, "isPrime", Some("Workflow that prints random prime numbers"))
            .unwrap();
        assert!(wid > 0);
        let pes = c.get_pes_by_workflow("isPrime").unwrap();
        assert_eq!(pes.len(), 3);
        let (_, source) = c.get_workflow("isPrime").unwrap();
        assert!(source.contains("workflow IsPrimeFlow"));

        // The Listing-4 execution: Multi mapping, 5 iterations, 5 procs.
        let out = c
            .run_registered("isPrime", RunConfig::iterations(20).with_mapping(MappingKind::Multi, 5))
            .unwrap();
        assert_eq!(out.printed.len(), 8);
        // Stage timings reach the client intact.
        assert!(out.stages.enact > std::time::Duration::ZERO);
        assert!(out.overhead_report().contains("plan"));

        c.remove_workflow("isPrime").unwrap();
        assert!(c.get_workflow("isPrime").is_err());
    }

    #[test]
    fn search_registry_three_modes() {
        let mut c = logged_in_client();
        c.register_workflow(WF_SRC, "isPrime", Some("Workflow that prints random prime numbers")).unwrap();
        // Figure 6: text search for workflows.
        let hits = c.search_registry("prime", "workflow", "text").unwrap();
        assert_eq!(hits[0]["name"].as_str(), Some("isPrime"));
        // Figure 7: semantic PE search.
        let hits = c.search_registry("A PE that checks if a number is prime", "pe", "text").unwrap();
        assert_eq!(hits[0]["name"].as_str(), Some("IsPrime"), "hits: {hits:?}");
        // Figure 8: code completion.
        let hits = c.search_registry("emit(iteration + 1)", "pe", "code").unwrap();
        assert!(!hits.is_empty());
        for h in &hits {
            assert!(h["score"].as_f64().is_some());
        }
        // The detailed variant exposes the timing split and honors limit.
        let detailed = c.search_registry_detailed("prime", "pe", "text", Some(1)).unwrap();
        assert_eq!(detailed["hits"].as_array().unwrap().len(), 1);
        assert!(detailed["search_us"].as_i64().is_some());
        assert!(detailed["embed_us"].as_i64().is_some());
        // And the registry counted every search above.
        let stats = c.registry_stats().unwrap();
        assert_eq!(stats["searches"].as_i64(), Some(4));
    }

    #[test]
    fn get_registry_dump() {
        let mut c = logged_in_client();
        c.register_workflow(WF_SRC, "isPrime", None).unwrap();
        let dump = c.get_registry().unwrap();
        assert!(dump["pes"].as_array().unwrap().len() >= 3);
        assert_eq!(dump["workflows"][0]["entryPoint"].as_str(), Some("isPrime"));
    }

    #[test]
    fn run_with_explicit_data() {
        let mut c = logged_in_client();
        let src = "pe Double : iterative { input x; output output; process { emit(x * 2); } }";
        let out = c.run_source(src, RunConfig::data(vec![Value::Int(4), Value::Int(6)])).unwrap();
        let vals = out.port_values("Double", "output");
        assert_eq!(vals.iter().filter_map(Value::as_i64).collect::<Vec<_>>(), vec![8, 12]);
    }

    #[test]
    fn async_submit_and_wait() {
        let mut c = logged_in_client();
        c.register_workflow(WF_SRC, "isPrime", None).unwrap();
        let id = c.submit(RunTarget::Registered("isPrime".into()), RunConfig::iterations(10)).unwrap();
        assert!(id > 0);
        let out = c.wait_job(id, std::time::Duration::from_secs(20)).unwrap();
        assert_eq!(out.printed.len(), 4);
        // Status keeps answering after completion, with metrics.
        let status = c.job_status(id).unwrap();
        assert_eq!(status["status"].as_str(), Some("done"));
        assert!(status["run_us"].as_i64().unwrap() >= 0);
        assert!(status["engine"].as_i64().is_some());
        // The async result equals the synchronous run.
        let sync = c.run_registered("isPrime", RunConfig::iterations(10)).unwrap();
        assert_eq!(sync.printed, out.printed);
        assert_eq!(sync.processed, out.processed);
    }

    #[test]
    fn async_job_errors_surface() {
        let mut c = logged_in_client();
        assert!(matches!(c.job_status(42), Err(ClientError::Api { status: 404, .. })));
        assert!(matches!(c.job_result(42), Err(ClientError::Api { status: 404, .. })));
        // A failing execution surfaces through job_result as a 400.
        let id = c
            .submit(RunTarget::Source("pe A : producer { output o; process { emit(1); } } pe B : producer { output o; process { emit(2); } }".into()), RunConfig::iterations(1))
            .unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        loop {
            match c.job_result(id) {
                Err(ClientError::Api { status: 400, .. }) => break,
                Ok(None) => assert!(std::time::Instant::now() < deadline, "job never failed"),
                other => panic!("unexpected: {other:?}"),
            }
        }
    }

    #[test]
    fn event_stream_iterates_to_done_marker() {
        let mut c = logged_in_client();
        c.register_workflow(WF_SRC, "isPrime", None).unwrap();
        let id = c
            .submit(RunTarget::Registered("isPrime".into()), RunConfig::iterations(10).with_events(true))
            .unwrap();
        let events: Vec<Value> =
            c.event_stream(id, std::time::Duration::from_secs(20)).collect::<Result<_, _>>().unwrap();
        let types: Vec<&str> = events.iter().filter_map(|e| e["type"].as_str()).collect();
        assert_eq!(types.first(), Some(&"plan"));
        assert_eq!(types.last(), Some(&"done"));
        // The streamed prints equal the batch result's, in order.
        let streamed: Vec<&str> = events
            .iter()
            .filter(|e| e["type"].as_str() == Some("print"))
            .filter_map(|e| e["line"].as_str())
            .collect();
        let out = c.wait_job(id, std::time::Duration::from_secs(5)).unwrap();
        assert_eq!(streamed, out.printed.iter().map(String::as_str).collect::<Vec<_>>());
        // Sequence numbers strictly increase across pages.
        let seqs: Vec<i64> = events.iter().filter_map(|e| e["seq"].as_i64()).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "seqs: {seqs:?}");
    }

    #[test]
    fn wait_job_with_progress_reports_events_and_result() {
        let mut c = logged_in_client();
        c.register_workflow(WF_SRC, "isPrime", None).unwrap();
        let id = c
            .submit(RunTarget::Registered("isPrime".into()), RunConfig::iterations(20).with_events(true))
            .unwrap();
        let mut outputs_seen = 0usize;
        let mut finished_seen = false;
        let out = c
            .wait_job_with_progress(id, std::time::Duration::from_secs(20), |e| match e["type"].as_str() {
                Some("output") => outputs_seen += 1,
                Some("finished") => finished_seen = true,
                _ => {}
            })
            .unwrap();
        assert!(finished_seen, "the finished event reached the progress callback");
        assert_eq!(outputs_seen, 0, "IsPrime's terminal consumer prints; no terminal ports");
        assert_eq!(out.printed.len(), 8, "primes <= 20");
        assert!(out.events > 0, "output reports its stream size");
    }

    #[test]
    fn event_stream_detects_server_side_truncation() {
        // A run whose stream exceeds the server's bounded per-job log
        // (8192 events): reading from cursor 0 after eviction must error
        // loudly instead of silently yielding a beheaded stream.
        let mut c = logged_in_client();
        let src = r#"
            pe Gen : producer { output output; process { emit(iteration); } }
            workflow Flood { nodes { g = Gen; } }
        "#;
        let id =
            c.submit(RunTarget::Source(src.into()), RunConfig::iterations(9000).with_events(true)).unwrap();
        c.wait_job(id, std::time::Duration::from_secs(60)).unwrap();
        let mut stream = c.event_stream(id, std::time::Duration::from_secs(5));
        match stream.next() {
            Some(Err(ClientError::Transport(m))) => assert!(m.contains("truncated"), "{m}"),
            other => panic!("expected truncation error, got {other:?}"),
        }
        assert!(stream.next().is_none(), "stream ends after the truncation error");
        // Resuming from the oldest retained seq still works.
        let page = c.job_events(id, 0).unwrap();
        assert!(page.first > 0, "the log really did evict");
        let resumed = c.job_events(id, page.first).unwrap();
        assert_eq!(resumed.events.first().unwrap()["seq"].as_i64(), Some(page.first as i64));
    }

    #[test]
    fn wait_job_with_progress_survives_stream_truncation() {
        // When the bounded log evicted events, the progress stream is
        // lost but the completed job's result must still come back.
        let mut c = logged_in_client();
        let src = r#"
            pe Gen : producer { output output; process { emit(iteration); } }
            workflow Flood { nodes { g = Gen; } }
        "#;
        let id =
            c.submit(RunTarget::Source(src.into()), RunConfig::iterations(9000).with_events(true)).unwrap();
        c.wait_job(id, std::time::Duration::from_secs(60)).unwrap();
        let mut events_seen = 0usize;
        let out = c
            .wait_job_with_progress(id, std::time::Duration::from_secs(30), |_| events_seen += 1)
            .expect("result survives the truncated stream");
        assert_eq!(events_seen, 0, "stream was truncated before the first page");
        assert_eq!(out.port_values("Gen", "output").len(), 9000);
    }

    #[test]
    fn unbounded_job_cancelled_from_the_event_stream() {
        // The long-running serving loop: submit an unbounded source,
        // consume its live stream, stop it from the consumer side, and
        // observe the `cancelled` seal + the Cancelled wait outcome.
        let mut c = logged_in_client();
        let src = r#"
            pe Gen : producer { output output; process { emit(iteration); } }
            workflow Forever { nodes { g = Gen; } }
        "#;
        let id = c
            .submit(
                RunTarget::Source(src.into()),
                RunConfig::unbounded(std::time::Duration::from_micros(300)),
            )
            .unwrap();
        let mut stream = c.event_stream(id, std::time::Duration::from_secs(30));
        let mut outputs = 0usize;
        let mut types: Vec<String> = Vec::new();
        while let Some(event) = stream.next() {
            let event = event.unwrap();
            let ty = event["type"].as_str().unwrap().to_string();
            if ty == "output" {
                outputs += 1;
                if outputs == 5 {
                    let r = stream.cancel().unwrap();
                    assert!(matches!(r["status"].as_str(), Some("running") | Some("cancelled")));
                }
            }
            types.push(ty);
        }
        assert!(outputs >= 5, "streamed real data before the cancel: {outputs}");
        assert_eq!(types.last().map(String::as_str), Some("cancelled"), "stream sealed");
        assert_eq!(types.iter().filter(|t| *t == "cancelled").count(), 1);
        assert!(!types.contains(&"done".to_string()), "cancel is not completion");
        // Waiting on a cancelled job reports Cancelled, not a timeout.
        match c.wait_job(id, std::time::Duration::from_secs(10)) {
            Err(ClientError::Cancelled { job }) => assert_eq!(job, id),
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // Idempotent from the client too.
        assert_eq!(c.cancel_job(id).unwrap()["status"].as_str(), Some("cancelled"));
        // Unknown jobs keep 404 semantics.
        assert!(matches!(c.cancel_job(424242), Err(ClientError::Api { status: 404, .. })));
    }

    #[test]
    fn event_stream_for_unknown_job_errors_once() {
        let c = logged_in_client();
        let items: Vec<Result<Value, ClientError>> =
            c.event_stream(4242, std::time::Duration::from_secs(1)).collect();
        assert_eq!(items.len(), 1);
        assert!(matches!(items[0], Err(ClientError::Api { status: 404, .. })));
    }

    #[test]
    fn checkpointed_submit_streams_epoch_markers_and_matches_batch() {
        let mut c = logged_in_client();
        c.register_workflow(WF_SRC, "isPrime", None).unwrap();
        let id = c
            .submit(
                RunTarget::Registered("isPrime".into()),
                RunConfig::iterations(20).with_checkpoints(6).with_events(true),
            )
            .unwrap();
        let events: Vec<Value> =
            c.event_stream(id, std::time::Duration::from_secs(20)).collect::<Result<_, _>>().unwrap();
        let epochs: Vec<i64> = events
            .iter()
            .filter(|e| e["type"].as_str() == Some("epoch"))
            .filter_map(|e| e["epoch"].as_i64())
            .collect();
        assert_eq!(epochs, vec![1, 2, 3], "20 iterations at interval 6 cross three full chunks");
        for e in events.iter().filter(|e| e["type"].as_str() == Some("epoch")) {
            assert!(e["state"].as_array().is_some(), "epoch carries the instance snapshots: {e:?}");
        }
        // Checkpointing never changes what the run computes.
        let out = c.wait_job(id, std::time::Duration::from_secs(5)).unwrap();
        let plain = c.run_registered("isPrime", RunConfig::iterations(20)).unwrap();
        assert_eq!(out.printed, plain.printed);
    }

    #[test]
    fn event_stream_resumes_from_an_epoch_after_eviction() {
        // Same eviction as event_stream_detects_server_side_truncation,
        // but the run is checkpointed: the retained window holds epoch
        // markers, so the stream recovers with a non-fatal Resumed notice
        // and continues from the earliest retained epoch.
        let mut c = logged_in_client();
        let src = r#"
            pe Gen : producer { output output; process { emit(iteration); } }
            workflow Flood { nodes { g = Gen; } }
        "#;
        let id = c
            .submit(
                RunTarget::Source(src.into()),
                RunConfig::iterations(9000).with_checkpoints(500).with_events(true),
            )
            .unwrap();
        c.wait_job(id, std::time::Duration::from_secs(60)).unwrap();
        let mut stream = c.event_stream(id, std::time::Duration::from_secs(10));
        let (job, at_epoch) = match stream.next() {
            Some(Err(ClientError::Resumed { job, at_epoch })) => (job, at_epoch),
            other => panic!("expected the Resumed notice, got {other:?}"),
        };
        assert_eq!(job, id);
        assert!(at_epoch >= 1, "resumed from a real epoch, got {at_epoch}");
        // The stream continues: first an epoch marker (the resume point),
        // then the tail of the run through the done marker.
        let rest: Vec<Value> = stream.collect::<Result<_, _>>().expect("no further errors");
        assert_eq!(rest.first().unwrap()["type"].as_str(), Some("epoch"));
        assert_eq!(rest.first().unwrap()["epoch"].as_i64(), Some(at_epoch));
        assert_eq!(rest.last().unwrap()["type"].as_str(), Some("done"));
        // The recovered suffix is gap-free.
        let seqs: Vec<i64> = rest.iter().filter_map(|e| e["seq"].as_i64()).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "contiguous after resume");
    }

    /// A transport that fails the next `fail_next` calls before reaching
    /// the wrapped in-process server — the transient-connection-error
    /// model for the retry tests.
    struct FlakyTransport {
        inner: InProcessTransport,
        fail_next: std::sync::Arc<std::sync::atomic::AtomicUsize>,
        calls: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl crate::web::Transport for FlakyTransport {
        fn call(&self, request: &laminar_server::ApiRequest) -> Result<ApiResponse, String> {
            use std::sync::atomic::Ordering;
            self.calls.fetch_add(1, Ordering::SeqCst);
            let remaining = self.fail_next.load(Ordering::SeqCst);
            if remaining > 0 {
                self.fail_next.store(remaining - 1, Ordering::SeqCst);
                return Err("connection reset by peer".into());
            }
            self.inner.call(request)
        }

        fn endpoint(&self) -> String {
            "flaky".to_string()
        }
    }

    #[test]
    fn idempotent_gets_are_retried_but_mutations_fail_fast() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let fail_next = Arc::new(AtomicUsize::new(0));
        let calls = Arc::new(AtomicUsize::new(0));
        let transport = FlakyTransport {
            inner: InProcessTransport::new(LaminarServer::in_memory()),
            fail_next: Arc::clone(&fail_next),
            calls: Arc::clone(&calls),
        };
        let mut c = LaminarClient::with_transport(Box::new(transport));
        c.register("zz46", "password").unwrap();
        c.login("zz46", "password").unwrap();

        // A GET rides out two transient failures (attempt 3 succeeds).
        fail_next.store(2, Ordering::SeqCst);
        let before = calls.load(Ordering::SeqCst);
        let stats = c.pool_stats().expect("third attempt reaches the server");
        assert!(stats["workers"].as_i64().unwrap() > 0);
        assert_eq!(calls.load(Ordering::SeqCst) - before, 3);

        // Three consecutive failures exhaust the retry budget.
        fail_next.store(3, Ordering::SeqCst);
        let before = calls.load(Ordering::SeqCst);
        assert!(matches!(c.job_status(1), Err(ClientError::Transport(_))));
        assert_eq!(calls.load(Ordering::SeqCst) - before, 3, "max 3 attempts");

        // A POST is never retried: it may have been applied server-side
        // before the connection dropped.
        fail_next.store(1, Ordering::SeqCst);
        let before = calls.load(Ordering::SeqCst);
        assert!(matches!(
            c.register_pe("pe X : producer { output o; process { emit(1); } }", None),
            Err(ClientError::Transport(_))
        ));
        assert_eq!(calls.load(Ordering::SeqCst) - before, 1, "mutations get exactly one attempt");
    }

    #[test]
    fn resume_job_for_unknown_job_is_404() {
        let c = logged_in_client();
        assert!(matches!(c.resume_job(777), Err(ClientError::Api { status: 404, .. })));
    }

    #[test]
    fn rate_limited_submit_surfaces_typed_429_with_retry_hint() {
        let server = LaminarServer::in_memory();
        server.pool().set_tenant_rate(1.0, 1.0);
        let mut c = LaminarClient::in_process(server);
        c.register("zz46", "password").unwrap();
        c.login("zz46", "password").unwrap();
        c.register_workflow(WF_SRC, "isPrime", None).unwrap();
        // The burst token admits the first submit; the second is throttled
        // with a typed hint — no string matching required.
        let id = c.submit(RunTarget::Registered("isPrime".into()), RunConfig::iterations(2)).unwrap();
        match c.submit(RunTarget::Registered("isPrime".into()), RunConfig::iterations(2)) {
            Err(ClientError::Api { status: 429, kind, retry_after_ms: Some(ms), .. }) => {
                assert_eq!(kind, "Busy");
                assert!((1..=1001).contains(&ms), "refill of a 1/s bucket is under a second: {ms}");
            }
            other => panic!("expected a typed 429 with a retry hint, got {other:?}"),
        }
        c.wait_job(id, std::time::Duration::from_secs(20)).unwrap();
    }

    /// A transport that answers the next `throttle_next` job-result GETs
    /// with a v1 429 envelope before delegating — the saturated-server
    /// model for the backoff test.
    struct ThrottlingTransport {
        inner: InProcessTransport,
        throttle_next: std::sync::Arc<std::sync::atomic::AtomicUsize>,
        retry_after_ms: i64,
    }

    impl crate::web::Transport for ThrottlingTransport {
        fn call(&self, request: &laminar_server::ApiRequest) -> Result<ApiResponse, String> {
            use std::sync::atomic::Ordering;
            let remaining = self.throttle_next.load(Ordering::SeqCst);
            if remaining > 0 && request.path.ends_with("/result") {
                self.throttle_next.store(remaining - 1, Ordering::SeqCst);
                let mut detail = Value::Null;
                detail
                    .set("code", "Busy")
                    .set("status", 429i64)
                    .set("message", "server busy")
                    .set("retryAfterMs", self.retry_after_ms);
                let mut body = Value::Null;
                body.set("error", detail);
                return Ok(ApiResponse { status: 429, body });
            }
            self.inner.call(request)
        }

        fn endpoint(&self) -> String {
            "throttling".to_string()
        }
    }

    #[test]
    fn wait_job_honors_the_server_retry_hint_on_429() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let throttle_next = Arc::new(AtomicUsize::new(0));
        let transport = ThrottlingTransport {
            inner: InProcessTransport::new(LaminarServer::in_memory()),
            throttle_next: Arc::clone(&throttle_next),
            retry_after_ms: 40,
        };
        let mut c = LaminarClient::with_transport(Box::new(transport));
        c.register("zz46", "password").unwrap();
        c.login("zz46", "password").unwrap();
        c.register_workflow(WF_SRC, "isPrime", None).unwrap();
        let id = c.submit(RunTarget::Registered("isPrime".into()), RunConfig::iterations(10)).unwrap();
        // Two throttled polls: wait_job must ride them out, pacing itself
        // by the server's 40 ms advice instead of failing or hammering.
        throttle_next.store(2, Ordering::SeqCst);
        let t0 = std::time::Instant::now();
        let out = c.wait_job(id, std::time::Duration::from_secs(20)).unwrap();
        assert_eq!(out.printed.len(), 4);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(80), "slept 2×40 ms: {:?}", t0.elapsed());
        assert_eq!(throttle_next.load(Ordering::SeqCst), 0, "both throttled responses were consumed");
    }

    /// A transport answering the pre-v1 flat error shape
    /// (`{"error":"<kind>","message":…}`) — the old-server model for the
    /// envelope-compatibility test.
    struct LegacyErrorTransport;

    impl crate::web::Transport for LegacyErrorTransport {
        fn call(&self, _request: &laminar_server::ApiRequest) -> Result<ApiResponse, String> {
            let mut body = Value::Null;
            body.set("error", "NotFound").set("message", "job '9' not found");
            Ok(ApiResponse { status: 404, body })
        }

        fn endpoint(&self) -> String {
            "legacy".to_string()
        }
    }

    #[test]
    fn legacy_flat_error_envelope_still_parses() {
        let mut c = LaminarClient::with_transport(Box::new(LegacyErrorTransport));
        c.user = Some("zz46".into());
        match c.job_status(9) {
            Err(ClientError::Api { status: 404, kind, message, retry_after_ms: None }) => {
                assert_eq!(kind, "NotFound");
                assert!(message.contains("not found"));
            }
            other => panic!("expected the decoded legacy envelope, got {other:?}"),
        }
    }

    #[test]
    fn push_event_stream_matches_polling_over_tcp() {
        // The long-poll `&wait_ms=` query rides inside the percent-encoded
        // segment over real HTTP, and push delivery yields exactly the
        // same items as polling — only the transport rhythm differs.
        let http = laminar_server::HttpServer::start(LaminarServer::in_memory()).unwrap();
        let mut c = LaminarClient::connect(http.addr());
        c.register("push-tcp", "password").unwrap();
        c.login("push-tcp", "password").unwrap();
        c.register_workflow(WF_SRC, "isPrime", None).unwrap();
        let id = c
            .submit(RunTarget::Registered("isPrime".into()), RunConfig::iterations(20).with_events(true))
            .unwrap();
        let pushed: Vec<Value> =
            c.event_stream_push(id, std::time::Duration::from_secs(20)).collect::<Result<_, _>>().unwrap();
        assert_eq!(pushed.last().unwrap()["type"].as_str(), Some("done"));
        // Replaying the sealed stream by polling yields the identical
        // sequence.
        let polled: Vec<Value> =
            c.event_stream(id, std::time::Duration::from_secs(20)).collect::<Result<_, _>>().unwrap();
        assert_eq!(pushed, polled);
        let seqs: Vec<i64> = pushed.iter().filter_map(|e| e["seq"].as_i64()).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "gap-free push stream: {seqs:?}");
        http.stop();
    }

    #[test]
    fn priority_and_deadline_ride_the_v1_options_object() {
        let body = LaminarClient::run_body(
            RunTarget::Registered("wf".into()),
            &RunConfig::iterations(5).with_priority(7).with_deadline_ms(1500).with_checkpoints(4),
        );
        assert_eq!(body["options"]["priority"].as_i64(), Some(7));
        assert_eq!(body["options"]["deadlineMs"].as_i64(), Some(1500));
        assert_eq!(body["options"]["checkpointEvery"].as_i64(), Some(4));
        assert_eq!(body["options"]["events"].as_bool(), Some(false));
        // The deprecated flat fields are gone from the wire form.
        assert!(body["events"].is_null());
        assert!(body["checkpoint_every"].is_null());
        // And the engine-side parser reads the nested object back.
        let opts = laminar_engine::request::SubmitOptions::from_request_value(&body);
        assert_eq!(opts.priority, 7);
        assert_eq!(opts.deadline_ms, Some(1500));
        assert_eq!(opts.checkpoint_every, 4);
    }

    #[test]
    fn async_over_tcp() {
        let http = laminar_server::HttpServer::start(LaminarServer::in_memory()).unwrap();
        let mut c = LaminarClient::connect(http.addr());
        c.register("async-tcp", "password").unwrap();
        c.login("async-tcp", "password").unwrap();
        c.register_workflow(WF_SRC, "isPrime", None).unwrap();
        let id = c
            .submit(RunTarget::Registered("isPrime".into()), RunConfig::iterations(20).with_events(true))
            .unwrap();
        let out = c.wait_job(id, std::time::Duration::from_secs(20)).unwrap();
        assert_eq!(out.printed.len(), 8);
        // The event cursor protocol works over real HTTP too (the
        // `?since=` query rides inside the percent-encoded segment).
        let events: Vec<Value> =
            c.event_stream(id, std::time::Duration::from_secs(10)).collect::<Result<_, _>>().unwrap();
        assert_eq!(events.last().unwrap()["type"].as_str(), Some("done"));
        assert_eq!(events.iter().filter(|e| e["type"].as_str() == Some("print")).count(), 8);
        let page = c.job_events(id, 2).unwrap();
        assert_eq!(page.events.first().unwrap()["seq"].as_i64(), Some(2));
        http.stop();
    }

    #[test]
    fn over_tcp_everything_still_works() {
        let http = laminar_server::HttpServer::start(LaminarServer::in_memory()).unwrap();
        let mut c = LaminarClient::connect(http.addr());
        c.register("remote", "password").unwrap();
        c.login("remote", "password").unwrap();
        c.register_workflow(WF_SRC, "isPrime", None).unwrap();
        let out = c.run_registered("isPrime", RunConfig::iterations(10)).unwrap();
        assert_eq!(out.printed.len(), 4);
        // Search with spaces travels over HTTP percent-encoded.
        let hits = c.search_registry("prints random prime", "workflow", "text").unwrap();
        assert_eq!(hits.len(), 1);
        http.stop();
    }
}
