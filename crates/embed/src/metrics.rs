//! Information-retrieval metrics used in the paper's evaluation:
//! MRR (Table 6), MAP@100 and Precision@1 (Table 7).

/// Mean Reciprocal Rank over per-query ranks of the first relevant result
/// (1-based). `None` means the relevant item never appeared.
pub fn mrr(first_relevant_ranks: &[Option<usize>]) -> f64 {
    if first_relevant_ranks.is_empty() {
        return 0.0;
    }
    let sum: f64 = first_relevant_ranks
        .iter()
        .map(|r| match r {
            Some(rank) => {
                assert!(*rank >= 1, "ranks are 1-based");
                1.0 / *rank as f64
            }
            None => 0.0,
        })
        .sum();
    sum / first_relevant_ranks.len() as f64
}

/// Average precision of one ranked result list truncated at `k`.
///
/// `relevant` flags each ranked item; `total_relevant` is the number of
/// relevant items in the corpus (the AP denominator, capped at `k`).
pub fn average_precision_at_k(relevant: &[bool], total_relevant: usize, k: usize) -> f64 {
    if total_relevant == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, &is_rel) in relevant.iter().take(k).enumerate() {
        if is_rel {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / total_relevant.min(k) as f64
}

/// Mean Average Precision at `k` over many queries.
pub fn map_at_k(per_query: &[(Vec<bool>, usize)], k: usize) -> f64 {
    if per_query.is_empty() {
        return 0.0;
    }
    per_query.iter().map(|(rel, total)| average_precision_at_k(rel, *total, k)).sum::<f64>()
        / per_query.len() as f64
}

/// Fraction of queries whose top-1 result is relevant.
pub fn precision_at_1(per_query_top1: &[bool]) -> f64 {
    if per_query_top1.is_empty() {
        return 0.0;
    }
    per_query_top1.iter().filter(|b| **b).count() as f64 / per_query_top1.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mrr_basics() {
        assert_eq!(mrr(&[Some(1)]), 1.0);
        assert_eq!(mrr(&[Some(2)]), 0.5);
        assert_eq!(mrr(&[Some(1), Some(4), None]), (1.0 + 0.25 + 0.0) / 3.0);
        assert_eq!(mrr(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn mrr_rejects_zero_rank() {
        let _ = mrr(&[Some(0)]);
    }

    #[test]
    fn ap_perfect_ranking() {
        // 3 relevant items ranked 1,2,3 out of 3 total → AP = 1.
        let rel = vec![true, true, true, false];
        assert!((average_precision_at_k(&rel, 3, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_partial() {
        // relevant at positions 1 and 3; total 2 relevant.
        let rel = vec![true, false, true];
        let expected = (1.0 / 1.0 + 2.0 / 3.0) / 2.0;
        assert!((average_precision_at_k(&rel, 2, 100) - expected).abs() < 1e-12);
    }

    #[test]
    fn ap_truncation() {
        // Relevant item beyond k contributes nothing.
        let rel = vec![false, false, true];
        assert_eq!(average_precision_at_k(&rel, 1, 2), 0.0);
    }

    #[test]
    fn ap_denominator_caps_at_k() {
        // 200 relevant in corpus but k=2: a perfect top-2 gives AP 1.0.
        let rel = vec![true, true];
        assert!((average_precision_at_k(&rel, 200, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_no_relevant() {
        assert_eq!(average_precision_at_k(&[false, false], 0, 10), 0.0);
    }

    #[test]
    fn map_averages() {
        let q1 = (vec![true], 1usize); // AP 1.0
        let q2 = (vec![false, true], 1usize); // AP 0.5
        let v = map_at_k(&[q1, q2], 100);
        assert!((v - 0.75).abs() < 1e-12);
        assert_eq!(map_at_k(&[], 100), 0.0);
    }

    #[test]
    fn p_at_1() {
        assert_eq!(precision_at_1(&[true, false, true, true]), 0.75);
        assert_eq!(precision_at_1(&[]), 0.0);
    }
}
