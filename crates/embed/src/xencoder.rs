//! Cross-encoder scorer — the accuracy-vs-latency foil of paper §2.4.
//!
//! Bi-encoders embed each side once and compare with cosine; a
//! cross-encoder attends over the *pair*, which is more accurate but must
//! run per (query, candidate). This module implements a token-alignment
//! cross scorer used by the D2 ablation bench: it cannot be precomputed,
//! so query latency scales with corpus size — exactly the trade-off the
//! paper describes when justifying the bi-encoder choice.

use crate::tokenizer::{code_tokens, is_keyword, text_words, TokenClass};
use laminar_script::analysis::subtokens;
use std::collections::HashMap;

/// Pairwise relevance score between a natural-language query and a code
/// fragment, in `[0, 1]`-ish range (not calibrated).
///
/// Mechanism: greedy soft alignment — each query word scores its best
/// match among the code's subtokens (exact = 1, prefix/suffix = 0.6),
/// weighted by an inverse-frequency estimate over the code tokens, then
/// averaged. This per-pair interaction is what bi-encoders cannot express.
pub fn cross_score(query: &str, code: &str) -> f64 {
    let qwords = text_words(query);
    if qwords.is_empty() {
        return 0.0;
    }
    // Build the code-side subtoken bag with counts.
    let mut bag: HashMap<String, usize> = HashMap::new();
    for t in code_tokens(code) {
        match t.class {
            TokenClass::Word if !is_keyword(&t.text) => {
                for s in subtokens(&t.text) {
                    *bag.entry(s).or_insert(0) += 1;
                }
            }
            TokenClass::Str => {
                for w in text_words(&t.text) {
                    *bag.entry(w).or_insert(0) += 1;
                }
            }
            _ => {}
        }
    }
    if bag.is_empty() {
        return 0.0;
    }
    let total: usize = bag.values().sum();
    let mut score = 0.0;
    for qw in &qwords {
        let mut best: f64 = 0.0;
        for (cw, count) in &bag {
            let match_strength = if cw == qw {
                1.0
            } else if cw.len() >= 3
                && qw.len() >= 3
                && (cw.starts_with(qw.as_str()) || qw.starts_with(cw.as_str()))
            {
                0.6
            } else {
                0.0
            };
            if match_strength > 0.0 {
                // Rarer code tokens are more informative.
                let idf = (total as f64 / *count as f64).ln().max(0.5);
                best = best.max(match_strength * idf);
            }
        }
        score += best;
    }
    // Normalize by query length and a soft cap so scores stay comparable.
    (score / qwords.len() as f64 / 3.0).min(1.0)
}

/// Rank a corpus with the cross-encoder: returns indices best-first. This
/// is O(|corpus| × pair-cost) per query — the latency the ablation
/// measures against the bi-encoder's precomputed-embedding lookup.
pub fn cross_rank(query: &str, corpus: &[String]) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> =
        corpus.iter().enumerate().map(|(i, c)| (i, cross_score(query, c))).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    const PRIME: &str = r#"
        pe IsPrime : iterative {
            input num; output output;
            process { let prime = num > 1; if prime { emit(num); } }
        }
    "#;
    const REVERSE: &str = r#"
        pe ReverseText : iterative {
            input text; output output;
            process { emit(reverse(text)); }
        }
    "#;

    #[test]
    fn relevant_pair_scores_higher() {
        let q = "check if a number is prime";
        assert!(cross_score(q, PRIME) > cross_score(q, REVERSE));
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(cross_score("", PRIME), 0.0);
        assert_eq!(cross_score("anything", ""), 0.0);
    }

    #[test]
    fn rank_orders_corpus() {
        let corpus = vec![REVERSE.to_string(), PRIME.to_string()];
        let ranked = cross_rank("prime number test", &corpus);
        assert_eq!(ranked[0].0, 1);
    }

    #[test]
    fn prefix_matching_helps() {
        // "reversing" should still hit "reverse".
        let with_prefix = cross_score("reversing text", REVERSE);
        assert!(with_prefix > 0.0);
    }

    #[test]
    fn scores_bounded() {
        for q in ["prime", "a b c d e f", "emit output input"] {
            let s = cross_score(q, PRIME);
            assert!((0.0..=1.0).contains(&s), "score {s} out of range");
        }
    }
}
