//! The seven embedding models Laminar evaluates (paper Tables 6 and 7).
//!
//! Each model is a deterministic feature pipeline over the shared
//! tokenizer. The pipelines are chosen so each model's *mechanism* mirrors
//! the real model's inductive bias, which is what makes the paper's
//! relative ordering reproducible:
//!
//! | Model | Pipeline bias |
//! |---|---|
//! | `codebert` | treats code as prose: lowercased whitespace words only |
//! | `graphcodebert` | raw tokens + def-use dataflow edges |
//! | `reacc-py-retriever` | lexical: normalized lines + raw tokens + trigrams |
//! | `thenlper/gte-large` | pure text trigrams, small capacity |
//! | `BAAI/bge-large-en` | text words + trigrams, large capacity |
//! | `unixcoder-base` | raw tokens + structure, *no* NL/code alignment |
//! | `unixcoder-code-search` | subtoken channel shared between NL and code (the fine-tune) |
//! | `unixcoder-clone-detection` | identifier-normalized structure (rename-invariant) |

use crate::embedding::{Embedding, FeatureHasher};
use crate::tokenizer::{
    char_trigrams, code_tokens, is_keyword, normalized_lines, text_words, CodeToken, TokenClass,
};
use laminar_script::analysis::{def_use_pairs, subtokens};
use laminar_script::parse_script;

/// A bi-encoder model: embeds code and natural-language text into one
/// space.
pub trait EmbeddingModel: Send + Sync {
    /// Model identifier as reported in the paper's tables.
    fn name(&self) -> &str;
    /// Embedding dimension.
    fn dim(&self) -> usize;
    /// Embed a code fragment.
    fn embed_code(&self, code: &str) -> Embedding;
    /// Embed a natural-language query or description.
    fn embed_text(&self, text: &str) -> Embedding;
}

/// Channel weights for the generic hashed model.
#[derive(Debug, Clone, Copy, Default)]
struct Channels {
    /// Raw code tokens (case-sensitive lexical identity).
    raw_tokens: f32,
    /// Identifier subtokens, lowercased — the NL/code shared space.
    subtokens: f32,
    /// Identifier-normalized structure trigrams (rename-invariant).
    structure: f32,
    /// Normalized source lines + line bigrams (clone-lexical channel).
    lines: f32,
    /// Character trigrams of the raw text.
    char3: f32,
    /// Def-use dataflow edges (GraphCodeBERT's signal).
    defuse: f32,
    /// Whitespace words of the raw input (prose reading of code).
    prose: f32,
}

/// A configurable hashed bi-encoder.
pub struct HashedModel {
    name: String,
    dim: usize,
    code: Channels,
    /// Text side: word weight in the shared subtoken space.
    text_words: f32,
    /// Text side: word-bigram weight.
    text_bigrams: f32,
    /// Text side: char-trigram weight.
    text_char3: f32,
}

impl HashedModel {
    fn code_features(&self, code: &str, h: &mut FeatureHasher) {
        let ch = &self.code;
        let toks: Vec<CodeToken> = if ch.raw_tokens > 0.0 || ch.subtokens > 0.0 || ch.structure > 0.0 {
            code_tokens(code)
        } else {
            Vec::new()
        };
        if ch.raw_tokens > 0.0 {
            for t in &toks {
                h.add_channel([(t.text.clone(), 1.0)], ch.raw_tokens, "raw");
            }
        }
        if ch.subtokens > 0.0 {
            for t in &toks {
                match t.class {
                    TokenClass::Word if !is_keyword(&t.text) => {
                        for sub in subtokens(&t.text) {
                            h.add_channel([(sub, 1.0)], ch.subtokens, "sub");
                        }
                    }
                    TokenClass::Str => {
                        // Words inside string literals align with queries too
                        // (docstring-like evidence).
                        for w in text_words(&t.text) {
                            h.add_channel([(w, 1.0)], ch.subtokens * 0.75, "sub");
                        }
                    }
                    // Numeric literals share the NL space too: the query
                    // "sum of the first 7 numbers" must match the constant 7.
                    TokenClass::Number => {
                        h.add_channel([(t.text.clone(), 1.0)], ch.subtokens * 1.5, "sub");
                    }
                    _ => {}
                }
            }
        }
        if ch.structure > 0.0 {
            let shapes: Vec<String> = toks
                .iter()
                .map(|t| match t.class {
                    TokenClass::Word if is_keyword(&t.text) => t.text.clone(),
                    TokenClass::Word => "V".to_string(),
                    // Constants stay literal: clones share them, sibling
                    // problems (same template, different parameter) do not.
                    TokenClass::Number => t.text.clone(),
                    TokenClass::Str => "S".to_string(),
                    TokenClass::Punct => t.text.clone(),
                })
                .collect();
            for w in shapes.windows(3) {
                h.add_channel([(w.join("_"), 1.0)], ch.structure, "st");
            }
        }
        if ch.lines > 0.0 {
            let lines = normalized_lines(code);
            for l in &lines {
                h.add_channel([(l.clone(), 1.0)], ch.lines, "ln");
            }
            for w in lines.windows(2) {
                h.add_channel([(format!("{}|{}", w[0], w[1]), 1.0)], ch.lines * 0.5, "lb");
            }
        }
        if ch.char3 > 0.0 {
            for g in char_trigrams(code) {
                h.add_channel([(g, 1.0)], ch.char3, "c3");
            }
        }
        if ch.defuse > 0.0 {
            // Parse if possible; silently skip for non-LamScript snippets.
            if let Ok(script) = parse_script(code) {
                for pe in script.pes() {
                    for edge in def_use_pairs(pe) {
                        h.add_channel([(format!("{}>{}", edge.def_var, edge.use_var), 1.0)], ch.defuse, "du");
                    }
                }
            }
        }
        if ch.prose > 0.0 {
            for w in code.split_whitespace() {
                h.add_channel([(w.to_lowercase(), 1.0)], ch.prose, "pw");
            }
        }
    }
}

impl EmbeddingModel for HashedModel {
    fn name(&self) -> &str {
        &self.name
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn embed_code(&self, code: &str) -> Embedding {
        let mut h = FeatureHasher::new(self.dim);
        self.code_features(code, &mut h);
        h.finish()
    }

    fn embed_text(&self, text: &str) -> Embedding {
        let mut h = FeatureHasher::new(self.dim);
        let words = text_words(text);
        if self.text_words > 0.0 {
            for w in &words {
                // Same "sub" prefix as code subtokens: this alignment IS the
                // cross-modal fine-tuning.
                h.add_channel([(w.clone(), 1.0)], self.text_words, "sub");
            }
        }
        if self.text_bigrams > 0.0 {
            for w in words.windows(2) {
                h.add_channel([(format!("{}_{}", w[0], w[1]), 1.0)], self.text_bigrams, "wb");
            }
        }
        if self.text_char3 > 0.0 {
            for g in char_trigrams(text) {
                h.add_channel([(g, 1.0)], self.text_char3, "c3");
            }
        }
        h.finish()
    }
}

/// Build every model of Table 7 (plus the two of Table 6, which are a
/// subset), in the paper's naming.
pub fn all_models() -> Vec<Box<dyn EmbeddingModel>> {
    vec![
        // CodeBERT, applied zero-shot to retrieval: reads code like prose.
        Box::new(HashedModel {
            name: "CodeBERT".into(),
            dim: 64,
            code: Channels { prose: 1.0, ..Default::default() },
            text_words: 1.0,
            text_bigrams: 0.0,
            text_char3: 0.5,
        }),
        // GraphCodeBERT: raw tokens plus dataflow edges.
        Box::new(HashedModel {
            name: "GraphCodeBERT".into(),
            dim: 512,
            code: Channels { raw_tokens: 1.0, defuse: 1.5, ..Default::default() },
            text_words: 1.0,
            text_bigrams: 0.0,
            text_char3: 0.0,
        }),
        // ReACC retriever: hybrid lexical/semantic tuned for partial-code
        // queries.
        Box::new(HashedModel {
            name: "ReACC-retriever-py".into(),
            dim: 1024,
            code: Channels { lines: 2.0, raw_tokens: 1.0, char3: 0.5, ..Default::default() },
            text_words: 0.5,
            text_bigrams: 0.0,
            text_char3: 1.0,
        }),
        // GTE-large: general text embedder, modest capacity on code.
        Box::new(HashedModel {
            name: "thenlper/gte-large".into(),
            dim: 96,
            code: Channels { char3: 1.0, ..Default::default() },
            text_words: 0.5,
            text_bigrams: 0.0,
            text_char3: 1.0,
        }),
        // BGE-large: stronger general text embedder.
        Box::new(HashedModel {
            name: "BAAI/bge-large-en".into(),
            dim: 1024,
            code: Channels { char3: 1.0, prose: 0.5, lines: 0.5, ..Default::default() },
            text_words: 1.0,
            text_bigrams: 0.5,
            text_char3: 1.0,
        }),
        // UniXcoder base: good code representation, weak NL/code alignment
        // (no retrieval fine-tune).
        Box::new(HashedModel {
            name: "unixcoder-base".into(),
            dim: 768,
            code: Channels { raw_tokens: 1.0, structure: 1.0, subtokens: 0.6, ..Default::default() },
            text_words: 1.0,
            text_bigrams: 0.25,
            text_char3: 0.25,
        }),
        // UniXcoder fine-tuned for code search on AdvTest: strong shared
        // subtoken space.
        Box::new(HashedModel {
            name: "unixcoder-code-search".into(),
            dim: 768,
            code: Channels { subtokens: 2.0, structure: 0.75, raw_tokens: 0.5, ..Default::default() },
            text_words: 2.0,
            text_bigrams: 0.5,
            text_char3: 0.1,
        }),
        // UniXcoder fine-tuned for clone detection: rename-invariant
        // structure dominates.
        Box::new(HashedModel {
            name: "unixcoder-clone-detection".into(),
            dim: 768,
            code: Channels { structure: 3.0, subtokens: 0.75, ..Default::default() },
            text_words: 1.0,
            text_bigrams: 0.0,
            text_char3: 0.0,
        }),
    ]
}

/// Look up a model by its table name.
pub fn model_by_name(name: &str) -> Option<Box<dyn EmbeddingModel>> {
    all_models().into_iter().find(|m| m.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::cosine;

    const PRIME_PE: &str = r#"
        pe IsPrime : iterative {
            input num; output output;
            process {
                let i = 2;
                let prime = num > 1;
                while i * i <= num { if num % i == 0 { prime = false; break; } i = i + 1; }
                if prime { emit(num); }
            }
        }
    "#;

    const WORDCOUNT_PE: &str = r#"
        pe CountWords : generic {
            input input groupby 0;
            output output;
            init { state.count = {}; }
            process {
                let word = input[0];
                state.count[word] = get(state.count, word, 0) + input[1];
                emit([word, state.count[word]]);
            }
        }
    "#;

    #[test]
    fn registry_names_present() {
        let names: Vec<String> = all_models().iter().map(|m| m.name().to_string()).collect();
        for expected in [
            "CodeBERT",
            "GraphCodeBERT",
            "ReACC-retriever-py",
            "thenlper/gte-large",
            "BAAI/bge-large-en",
            "unixcoder-base",
            "unixcoder-code-search",
            "unixcoder-clone-detection",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
        assert!(model_by_name("unixcoder-code-search").is_some());
        assert!(model_by_name("nope").is_none());
    }

    #[test]
    fn embeddings_are_deterministic() {
        let m = model_by_name("unixcoder-code-search").unwrap();
        assert_eq!(m.embed_code(PRIME_PE), m.embed_code(PRIME_PE));
        assert_eq!(m.embed_text("count words"), m.embed_text("count words"));
    }

    #[test]
    fn fine_tuned_model_aligns_nl_with_code() {
        let m = model_by_name("unixcoder-code-search").unwrap();
        let prime = m.embed_code(PRIME_PE);
        let wc = m.embed_code(WORDCOUNT_PE);
        let q = m.embed_text("a PE that checks if a number is prime");
        assert!(
            cosine(&prime, &q) > cosine(&wc, &q),
            "prime query must prefer the prime PE: {} vs {}",
            cosine(&prime, &q),
            cosine(&wc, &q)
        );
        let q2 = m.embed_text("count the occurrences of each word");
        assert!(cosine(&wc, &q2) > cosine(&prime, &q2));
    }

    #[test]
    fn fine_tuned_beats_base_on_alignment() {
        let base = model_by_name("unixcoder-base").unwrap();
        let tuned = model_by_name("unixcoder-code-search").unwrap();
        let q = "check whether a number is prime";
        let margin = |m: &dyn EmbeddingModel| {
            let p = cosine(&m.embed_code(PRIME_PE), &m.embed_text(q));
            let w = cosine(&m.embed_code(WORDCOUNT_PE), &m.embed_text(q));
            p - w
        };
        assert!(margin(tuned.as_ref()) > margin(base.as_ref()), "fine-tune must sharpen the margin");
    }

    #[test]
    fn clone_model_is_rename_invariant() {
        // The meaningful property is discrimination: under renaming, the
        // structure model must keep the clone well-separated from an
        // unrelated program, more so than the lexical model does.
        let renamed =
            PRIME_PE.replace("num", "zz91").replace("prime", "flag_q").replace("IsPrime", "Checker");
        let clone_model = model_by_name("unixcoder-clone-detection").unwrap();
        let lexical = model_by_name("ReACC-retriever-py").unwrap();
        let margin = |m: &dyn EmbeddingModel| {
            let orig = m.embed_code(PRIME_PE);
            cosine(&orig, &m.embed_code(&renamed)) - cosine(&orig, &m.embed_code(WORDCOUNT_PE))
        };
        let m_clone = margin(clone_model.as_ref());
        let m_lex = margin(lexical.as_ref());
        assert!(
            m_clone > m_lex,
            "structure model must discriminate renamed clones better: {m_clone} vs {m_lex}"
        );
        let sim_clone = cosine(&clone_model.embed_code(PRIME_PE), &clone_model.embed_code(&renamed));
        assert!(sim_clone > 0.85, "renamed clone should stay close: {sim_clone}");
    }

    #[test]
    fn lexical_model_nails_partial_code() {
        let partial = "state.count[word] = get(state.count, word, 0) + input[1];";
        let lexical = model_by_name("ReACC-retriever-py").unwrap();
        let q = lexical.embed_code(partial);
        let wc = lexical.embed_code(WORDCOUNT_PE);
        let prime = lexical.embed_code(PRIME_PE);
        assert!(cosine(&q, &wc) > cosine(&q, &prime) + 0.1);
    }

    #[test]
    fn all_models_embed_garbage_without_panicking() {
        for m in all_models() {
            let e = m.embed_code("@@@ not code at all ∆∆∆ \"unterminated");
            assert_eq!(e.dim(), m.dim());
            let t = m.embed_text("");
            assert_eq!(t.dim(), m.dim());
        }
    }
}
