//! # laminar-embed
//!
//! The deep-learning code-search substrate of Laminar, rebuilt as
//! deterministic feature-hashing models (see DESIGN.md for the
//! substitution argument).
//!
//! The paper wires three model families into the framework:
//!
//! * **semantic code search** (unixcoder-code-search) — text → code,
//!   bi-encoder, cosine ranking (paper §4.2, Table 6);
//! * **code completion / partial-code clone retrieval**
//!   (ReACC-py-retriever) — code → code (paper §4.3, Table 7);
//! * **code summarization** (codet5-base-multi-sum) — code → English
//!   description used to fill missing registry descriptions (§3.1.1).
//!
//! This crate provides all three plus the evaluation harness: seven
//! [`models`] with distinct feature pipelines, [`metrics`] (MRR, MAP@k,
//! Precision@1), [`datasets`] generators standing in for CosQA / CSN /
//! CodeNet, and the [`summarize`] rule-based summarizer.
//!
//! ```
//! use laminar_embed::models::{model_by_name, EmbeddingModel};
//! use laminar_embed::embedding::cosine;
//!
//! let m = model_by_name("unixcoder-code-search").unwrap();
//! let code = m.embed_code("pe IsPrime : iterative { input num; output output; process { emit(num); } }");
//! let query = m.embed_text("a PE that checks if a number is prime");
//! let unrelated = m.embed_text("download a file over http");
//! assert!(cosine(&code, &query) > cosine(&code, &unrelated));
//! ```

pub mod datasets;
pub mod embedding;
pub mod metrics;
pub mod models;
pub mod summarize;
pub mod tokenizer;
pub mod xencoder;

pub use embedding::{cosine, cosine_prenorm, dot, l2_norm, top_k, Embedding, TopK};
pub use models::{all_models, model_by_name, EmbeddingModel};
pub use summarize::summarize_pe_source;
