//! Rule-based code summarization — the codet5-base-multi-sum substitute.
//!
//! When a PE is registered without a description, the client generates one
//! from the code itself (paper §4.2). This summarizer walks the parsed AST
//! and composes an English sentence from: the PE name's subtokens, its
//! archetype, port inventory, statefulness, calls, and control shape.

use laminar_script::analysis::{subtokens, CodeFacts};
use laminar_script::{parse_script, PeDecl, PeKind};

/// Verbs recognized in PE names, mapped to sentence leads.
const NAME_VERBS: &[(&str, &str)] = &[
    ("check", "checks"),
    ("is", "checks whether the input is"),
    ("count", "counts"),
    ("read", "reads"),
    ("get", "fetches"),
    ("fetch", "fetches"),
    ("download", "downloads"),
    ("filter", "filters"),
    ("print", "prints"),
    ("produce", "produces"),
    ("make", "produces"),
    ("gen", "generates"),
    ("compute", "computes"),
    ("calc", "computes"),
    ("sum", "sums"),
    ("split", "splits"),
    ("parse", "parses"),
    ("write", "writes"),
    ("emit", "emits"),
    ("convert", "converts"),
    ("transform", "transforms"),
    ("number", "generates numbers from"),
];

/// Summarize the first PE found in `source`. Returns `None` when the
/// source doesn't parse or holds no PE — callers then fall back to a
/// generic description.
pub fn summarize_pe_source(source: &str) -> Option<String> {
    let script = parse_script(source).ok()?;
    let pe = script.pes().next()?;
    Some(summarize_pe(pe))
}

/// Summarize a parsed PE declaration.
pub fn summarize_pe(pe: &PeDecl) -> String {
    let facts = CodeFacts::collect(pe);
    let name_parts = subtokens(&pe.name);

    // Lead: verb derived from the name, if recognizable.
    let mut lead = None;
    for part in &name_parts {
        if let Some((_, verb)) = NAME_VERBS.iter().find(|(k, _)| k == part) {
            let objects: Vec<&String> = name_parts.iter().filter(|p| *p != part && p.len() > 1).collect();
            let obj = if objects.is_empty() {
                "the incoming data".to_string()
            } else {
                objects.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(" ")
            };
            lead = Some(format!("{verb} {obj}"));
            break;
        }
    }
    let lead = lead.unwrap_or_else(|| {
        let kind_action = match pe.kind {
            PeKind::Producer => "generates a stream",
            PeKind::Consumer => "consumes the stream",
            PeKind::Iterative => "transforms each datum",
            PeKind::Generic => "processes the stream",
        };
        if name_parts.is_empty() {
            kind_action.to_string()
        } else {
            format!("{kind_action} for {}", name_parts.join(" "))
        }
    });

    let kind_noun = match pe.kind {
        PeKind::Producer => "producer",
        PeKind::Iterative => "iterative",
        PeKind::Consumer => "consumer",
        PeKind::Generic => "generic",
    };

    let mut clauses: Vec<String> = Vec::new();
    if facts.uses_random {
        clauses.push("uses random values".into());
    }
    if facts.uses_state {
        if pe.inputs.iter().any(|p| p.groupby.is_some()) {
            clauses.push("maintains per-key state (group-by routing)".into());
        } else {
            clauses.push("maintains state across inputs".into());
        }
    }
    for (module, func) in facts.module_calls.iter().take(2) {
        if module != "math" && module != "strings" {
            clauses.push(format!("calls the {module}.{func} service"));
        }
    }
    if facts.has_loop {
        clauses.push("iterates over the data".into());
    }
    if !facts.emit_ports.is_empty() {
        clauses.push(format!("routes results to ports {}", facts.emit_ports.join(", ")));
    } else if facts.emits_default && pe.kind != PeKind::Producer {
        clauses.push("forwards results downstream".into());
    }
    if facts.calls.iter().any(|c| c == "print") {
        clauses.push("prints output".into());
    }

    let mut summary = format!("A {kind_noun} PE that {lead}");
    if !clauses.is_empty() {
        summary.push_str("; ");
        summary.push_str(&clauses.join(", "));
    }
    summary.push('.');
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summarize(src: &str) -> String {
        summarize_pe_source(src).expect("source summarizes")
    }

    #[test]
    fn is_prime_summary_mentions_checking() {
        let s = summarize(
            r#"pe IsPrime : iterative {
                input num; output output;
                process {
                    let i = 2;
                    let prime = num > 1;
                    while i * i <= num { if num % i == 0 { prime = false; break; } i = i + 1; }
                    if prime { emit(num); }
                }
            }"#,
        );
        assert!(s.contains("checks whether the input is"), "summary: {s}");
        assert!(s.contains("prime"), "summary: {s}");
        assert!(s.contains("iterates"), "summary: {s}");
    }

    #[test]
    fn producer_with_rng() {
        let s =
            summarize("pe NumberProducer : producer { output output; process { emit(randint(1, 1000)); } }");
        assert!(s.to_lowercase().contains("producer"), "summary: {s}");
        assert!(s.contains("random"), "summary: {s}");
    }

    #[test]
    fn stateful_groupby_noted() {
        let s = summarize(
            r#"pe CountWords : generic {
                input input groupby 0;
                output output;
                init { state.count = {}; }
                process { state.count[input[0]] = get(state.count, input[0], 0) + 1; emit(state.count); }
            }"#,
        );
        assert!(s.contains("counts words"), "summary: {s}");
        assert!(s.contains("per-key state"), "summary: {s}");
    }

    #[test]
    fn service_calls_mentioned() {
        let s = summarize(
            r#"pe GetVoTable : iterative {
                input coords; output output;
                process { emit(vo.fetch(coords)); }
            }"#,
        );
        assert!(s.contains("fetches vo table"), "summary: {s}");
        assert!(s.contains("vo.fetch"), "summary: {s}");
    }

    #[test]
    fn consumer_prints() {
        let s = summarize(
            r#"pe PrintPrime : consumer { input num; process { print("the num", num, "is prime"); } }"#,
        );
        assert!(s.contains("prints"), "summary: {s}");
    }

    #[test]
    fn unparseable_returns_none() {
        assert!(summarize_pe_source("not lamscript at all").is_none());
        assert!(summarize_pe_source("import x;").is_none());
    }

    #[test]
    fn summary_is_deterministic() {
        let src = "pe Foo : producer { output output; process { emit(1); } }";
        assert_eq!(summarize_pe_source(src), summarize_pe_source(src));
    }
}
