//! Dense embeddings via feature hashing (the "hashing trick").
//!
//! Every model maps an input to a bag of weighted string features; features
//! are hashed into a fixed-dimension vector with a sign hash, then
//! L2-normalized. Cosine similarity over these vectors is exactly the
//! bi-encoder retrieval rule of paper §2.4.

use laminar_json::Value;

/// A dense embedding vector (always L2-normalized unless all-zero).
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    /// Vector components.
    pub values: Vec<f32>,
}

impl Embedding {
    /// Dimension.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Serialize for registry storage (the `codeEmbedding` /
    /// `descEmbedding` columns).
    pub fn to_value(&self) -> Value {
        Value::Array(self.values.iter().map(|f| Value::Float(*f as f64)).collect())
    }

    /// Inverse of [`Self::to_value`].
    pub fn from_value(v: &Value) -> Option<Embedding> {
        let arr = v.as_array()?;
        let mut values = Vec::with_capacity(arr.len());
        for e in arr {
            values.push(e.as_f64()? as f32);
        }
        Some(Embedding { values })
    }
}

/// FNV-1a, 64-bit — the feature hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Accumulates weighted features into a hashed vector.
pub struct FeatureHasher {
    values: Vec<f32>,
}

impl FeatureHasher {
    /// A hasher with output dimension `dim`.
    pub fn new(dim: usize) -> FeatureHasher {
        assert!(dim > 0);
        FeatureHasher { values: vec![0.0; dim] }
    }

    /// Add one feature occurrence with a weight. The feature's hash picks
    /// the bucket; a second hash bit picks the sign (reduces collision
    /// bias).
    pub fn add(&mut self, feature: &str, weight: f32) {
        let h = fnv1a(feature.as_bytes());
        let dim = self.values.len() as u64;
        let bucket = (h % dim) as usize;
        let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
        self.values[bucket] += sign * weight;
    }

    /// Add a whole channel of `(feature, weight)` pairs scaled by
    /// `channel_weight`.
    pub fn add_channel(
        &mut self,
        features: impl IntoIterator<Item = (String, f32)>,
        channel_weight: f32,
        prefix: &str,
    ) {
        for (f, w) in features {
            self.add(&format!("{prefix}:{f}"), w * channel_weight);
        }
    }

    /// Finish: L2-normalize and return the embedding.
    pub fn finish(mut self) -> Embedding {
        let norm: f32 = self.values.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in &mut self.values {
                *v /= norm;
            }
        }
        Embedding { values: self.values }
    }
}

/// Cosine similarity. Normalized inputs make this a dot product, but the
/// full formula keeps the function safe for un-normalized vectors too.
pub fn cosine(a: &Embedding, b: &Embedding) -> f32 {
    assert_eq!(a.dim(), b.dim(), "cosine over mismatched dimensions");
    let dot: f32 = a.values.iter().zip(&b.values).map(|(x, y)| x * y).sum();
    let na: f32 = a.values.iter().map(|v| v * v).sum::<f32>().sqrt();
    let nb: f32 = b.values.iter().map(|v| v * v).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Indices of the `k` corpus embeddings most similar to `query`, best
/// first. Ties break toward the lower index (deterministic).
pub fn top_k(query: &Embedding, corpus: &[Embedding], k: usize) -> Vec<(usize, f32)> {
    let mut scored: Vec<(usize, f32)> =
        corpus.iter().enumerate().map(|(i, e)| (i, cosine(query, e))).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embed(features: &[(&str, f32)], dim: usize) -> Embedding {
        let mut h = FeatureHasher::new(dim);
        for (f, w) in features {
            h.add(f, *w);
        }
        h.finish()
    }

    #[test]
    fn normalization() {
        let e = embed(&[("a", 3.0), ("b", 4.0)], 64);
        let norm: f32 = e.values.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn identical_features_identical_embeddings() {
        let a = embed(&[("x", 1.0), ("y", 2.0)], 128);
        let b = embed(&[("x", 1.0), ("y", 2.0)], 128);
        assert_eq!(a, b);
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn overlap_orders_similarity() {
        let base = embed(&[("a", 1.0), ("b", 1.0), ("c", 1.0)], 512);
        let near = embed(&[("a", 1.0), ("b", 1.0), ("z", 1.0)], 512);
        let far = embed(&[("p", 1.0), ("q", 1.0), ("r", 1.0)], 512);
        assert!(cosine(&base, &near) > cosine(&base, &far));
    }

    #[test]
    fn zero_vector_cosine_is_zero() {
        let z = Embedding { values: vec![0.0; 8] };
        let e = embed(&[("a", 1.0)], 8);
        assert_eq!(cosine(&z, &e), 0.0);
    }

    #[test]
    fn top_k_ordering_and_ties() {
        let q = embed(&[("a", 1.0)], 256);
        let corpus =
            vec![embed(&[("b", 1.0)], 256), embed(&[("a", 1.0)], 256), embed(&[("a", 1.0), ("b", 1.0)], 256)];
        let top = top_k(&q, &corpus, 2);
        assert_eq!(top[0].0, 1, "exact match first");
        assert_eq!(top[1].0, 2, "partial overlap second");
        // k larger than corpus is fine.
        assert_eq!(top_k(&q, &corpus, 10).len(), 3);
    }

    #[test]
    fn value_round_trip() {
        let e = embed(&[("a", 1.0), ("b", -2.0)], 16);
        let back = Embedding::from_value(&e.to_value()).unwrap();
        assert_eq!(back, e);
        assert!(Embedding::from_value(&Value::Str("no".into())).is_none());
    }

    #[test]
    #[should_panic(expected = "mismatched dimensions")]
    fn dim_mismatch_panics() {
        let a = embed(&[("a", 1.0)], 8);
        let b = embed(&[("a", 1.0)], 16);
        let _ = cosine(&a, &b);
    }
}
