//! Dense embeddings via feature hashing (the "hashing trick").
//!
//! Every model maps an input to a bag of weighted string features; features
//! are hashed into a fixed-dimension vector with a sign hash, then
//! L2-normalized. Cosine similarity over these vectors is exactly the
//! bi-encoder retrieval rule of paper §2.4.

use laminar_json::Value;

/// A dense embedding vector (always L2-normalized unless all-zero).
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    /// Vector components.
    pub values: Vec<f32>,
}

impl Embedding {
    /// Dimension.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// Serialize for registry storage (the `codeEmbedding` /
    /// `descEmbedding` columns).
    pub fn to_value(&self) -> Value {
        Value::Array(self.values.iter().map(|f| Value::Float(*f as f64)).collect())
    }

    /// Inverse of [`Self::to_value`].
    pub fn from_value(v: &Value) -> Option<Embedding> {
        let arr = v.as_array()?;
        let mut values = Vec::with_capacity(arr.len());
        for e in arr {
            values.push(e.as_f64()? as f32);
        }
        Some(Embedding { values })
    }
}

/// FNV-1a, 64-bit — the feature hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Accumulates weighted features into a hashed vector.
pub struct FeatureHasher {
    values: Vec<f32>,
}

impl FeatureHasher {
    /// A hasher with output dimension `dim`.
    pub fn new(dim: usize) -> FeatureHasher {
        assert!(dim > 0);
        FeatureHasher { values: vec![0.0; dim] }
    }

    /// Add one feature occurrence with a weight. The feature's hash picks
    /// the bucket; a second hash bit picks the sign (reduces collision
    /// bias).
    pub fn add(&mut self, feature: &str, weight: f32) {
        let h = fnv1a(feature.as_bytes());
        let dim = self.values.len() as u64;
        let bucket = (h % dim) as usize;
        let sign = if (h >> 63) & 1 == 1 { -1.0 } else { 1.0 };
        self.values[bucket] += sign * weight;
    }

    /// Add a whole channel of `(feature, weight)` pairs scaled by
    /// `channel_weight`.
    pub fn add_channel(
        &mut self,
        features: impl IntoIterator<Item = (String, f32)>,
        channel_weight: f32,
        prefix: &str,
    ) {
        for (f, w) in features {
            self.add(&format!("{prefix}:{f}"), w * channel_weight);
        }
    }

    /// Finish: L2-normalize and return the embedding.
    pub fn finish(mut self) -> Embedding {
        let norm: f32 = self.values.iter().map(|v| v * v).sum::<f32>().sqrt();
        if norm > 0.0 {
            for v in &mut self.values {
                *v /= norm;
            }
        }
        Embedding { values: self.values }
    }
}

/// Fused dot product over raw slices.
///
/// Dispatches once per process: an AVX2+FMA kernel when the CPU has it
/// (rustc's baseline x86-64 target only emits SSE2, which leaves ~8× on
/// the table for the registry's 768/1024-dim matrix scans), otherwise
/// the eight-accumulator scalar kernel. The chosen path is a pure
/// function of the CPU, so within a process every caller — the
/// linear-scan oracle and the registry's dense-vector index alike —
/// gets bit-identical scores; that per-process consistency (not
/// cross-machine bit equality, which floating point never promised) is
/// the contract the differential search tests rely on.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot over mismatched lengths");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: the required CPU features were just detected.
        return unsafe { dot_avx2(a, b) };
    }
    dot_scalar(a, b)
}

/// Portable kernel, eight parallel accumulators.
///
/// A single `zip().map().sum()` chain is latency-bound: every add waits on
/// the previous one, which caps a 768-dim dot at roughly one add-latency
/// per element. Eight independent accumulator lanes let the FPU pipeline
/// them. The lane structure (not the data order) fixes the rounding, so
/// the result is deterministic.
fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for lane in 0..8 {
            acc[lane] += xa[lane] * xb[lane];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        tail += x * y;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

/// AVX2+FMA kernel: four 8-lane FMA accumulators (32 floats per
/// iteration) to hide the ~4-cycle FMA latency, an 8-wide cleanup loop,
/// a lane-tree horizontal reduction, and a scalar tail. Deterministic
/// for a given input length — the block structure fixes the rounding.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i + 8)), _mm256_loadu_ps(bp.add(i + 8)), acc1);
        acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i + 16)), _mm256_loadu_ps(bp.add(i + 16)), acc2);
        acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i + 24)), _mm256_loadu_ps(bp.add(i + 24)), acc3);
        i += 32;
    }
    let mut acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
    while i + 8 <= n {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc);
        i += 8;
    }
    let quad = _mm_add_ps(_mm256_castps256_ps128(acc), _mm256_extractf128_ps::<1>(acc));
    let pair = _mm_add_ps(quad, _mm_movehl_ps(quad, quad));
    let one = _mm_add_ss(pair, _mm_shuffle_ps::<1>(pair, pair));
    let mut sum = _mm_cvtss_f32(one);
    while i < n {
        sum += *ap.add(i) * *bp.add(i);
        i += 1;
    }
    sum
}

/// L2 norm via the fused kernel — the norm the cosine family caches.
pub fn l2_norm(v: &[f32]) -> f32 {
    dot(v, v).sqrt()
}

/// Cosine with both norms supplied by the caller. The registry's vector
/// index caches per-row norms at insert time and calls this per candidate,
/// paying one fused dot instead of three passes. [`cosine`] routes through
/// here, so precomputed-norm and from-scratch scores are bit-identical as
/// long as the cached norms came from [`l2_norm`].
pub fn cosine_prenorm(a: &[f32], na: f32, b: &[f32], nb: f32) -> f32 {
    let d = dot(a, b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        d / (na * nb)
    }
}

/// Cosine similarity. Normalized inputs make this a dot product, but the
/// full formula keeps the function safe for un-normalized vectors too.
pub fn cosine(a: &Embedding, b: &Embedding) -> f32 {
    assert_eq!(a.dim(), b.dim(), "cosine over mismatched dimensions");
    cosine_prenorm(&a.values, l2_norm(&a.values), &b.values, l2_norm(&b.values))
}

/// A bounded best-`k` selector over `(id, score)` pairs.
///
/// Keeps at most `k` entries in a binary heap ordered worst-at-the-root
/// (worse = lower score, ties toward the higher id), so a stream of `n`
/// candidates costs `O(n log k)` and `k` slots of memory instead of the
/// sort-everything `O(n log n)`. [`into_sorted`](TopK::into_sorted)
/// returns winners best-first — score descending, ties toward the lower
/// id — exactly the order a full sort by `(score desc, id asc)` followed
/// by `truncate(k)` would produce, which is the contract registry search
/// relies on for oracle equivalence.
pub struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<TopKEntry>,
}

struct TopKEntry {
    score: f64,
    id: i64,
}

impl PartialEq for TopKEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for TopKEntry {}
impl PartialOrd for TopKEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TopKEntry {
    /// Greater = worse, so the max-heap root is the weakest survivor.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.score.partial_cmp(&self.score).unwrap_or(std::cmp::Ordering::Equal).then(self.id.cmp(&other.id))
    }
}

impl TopK {
    /// Selector keeping the best `k` entries.
    pub fn new(k: usize) -> TopK {
        TopK { k, heap: std::collections::BinaryHeap::with_capacity(k.saturating_add(1)) }
    }

    /// Offer one candidate.
    pub fn push(&mut self, id: i64, score: f64) {
        if self.k == 0 {
            return;
        }
        let entry = TopKEntry { score, id };
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if entry < *self.heap.peek().expect("non-empty at capacity") {
            self.heap.pop();
            self.heap.push(entry);
        }
    }

    /// Winners, best-first (score descending, ties toward the lower id).
    pub fn into_sorted(self) -> Vec<(i64, f64)> {
        self.heap.into_sorted_vec().into_iter().map(|e| (e.id, e.score)).collect()
    }
}

/// Indices of the `k` corpus embeddings most similar to `query`, best
/// first. Ties break toward the lower index (deterministic).
pub fn top_k(query: &Embedding, corpus: &[Embedding], k: usize) -> Vec<(usize, f32)> {
    let mut scored: Vec<(usize, f32)> =
        corpus.iter().enumerate().map(|(i, e)| (i, cosine(query, e))).collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embed(features: &[(&str, f32)], dim: usize) -> Embedding {
        let mut h = FeatureHasher::new(dim);
        for (f, w) in features {
            h.add(f, *w);
        }
        h.finish()
    }

    #[test]
    fn normalization() {
        let e = embed(&[("a", 3.0), ("b", 4.0)], 64);
        let norm: f32 = e.values.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn identical_features_identical_embeddings() {
        let a = embed(&[("x", 1.0), ("y", 2.0)], 128);
        let b = embed(&[("x", 1.0), ("y", 2.0)], 128);
        assert_eq!(a, b);
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn overlap_orders_similarity() {
        let base = embed(&[("a", 1.0), ("b", 1.0), ("c", 1.0)], 512);
        let near = embed(&[("a", 1.0), ("b", 1.0), ("z", 1.0)], 512);
        let far = embed(&[("p", 1.0), ("q", 1.0), ("r", 1.0)], 512);
        assert!(cosine(&base, &near) > cosine(&base, &far));
    }

    #[test]
    fn zero_vector_cosine_is_zero() {
        let z = Embedding { values: vec![0.0; 8] };
        let e = embed(&[("a", 1.0)], 8);
        assert_eq!(cosine(&z, &e), 0.0);
    }

    #[test]
    fn top_k_ordering_and_ties() {
        let q = embed(&[("a", 1.0)], 256);
        let corpus =
            vec![embed(&[("b", 1.0)], 256), embed(&[("a", 1.0)], 256), embed(&[("a", 1.0), ("b", 1.0)], 256)];
        let top = top_k(&q, &corpus, 2);
        assert_eq!(top[0].0, 1, "exact match first");
        assert_eq!(top[1].0, 2, "partial overlap second");
        // k larger than corpus is fine.
        assert_eq!(top_k(&q, &corpus, 10).len(), 3);
    }

    #[test]
    fn value_round_trip() {
        let e = embed(&[("a", 1.0), ("b", -2.0)], 16);
        let back = Embedding::from_value(&e.to_value()).unwrap();
        assert_eq!(back, e);
        assert!(Embedding::from_value(&Value::Str("no".into())).is_none());
    }

    #[test]
    #[should_panic(expected = "mismatched dimensions")]
    fn dim_mismatch_panics() {
        let a = embed(&[("a", 1.0)], 8);
        let b = embed(&[("a", 1.0)], 16);
        let _ = cosine(&a, &b);
    }

    #[test]
    fn dot_handles_tails_and_matches_norm() {
        // Exercise the remainder path (lengths not divisible by 8).
        for len in [0usize, 1, 7, 8, 9, 16, 19] {
            let a: Vec<f32> = (0..len).map(|i| (i as f32) * 0.25 - 1.0).collect();
            let b: Vec<f32> = (0..len).map(|i| 1.5 - (i as f32) * 0.5).collect();
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert!((dot(&a, &b) - naive).abs() < 1e-4, "len {len}");
        }
        let v = vec![3.0f32, 4.0];
        assert!((l2_norm(&v) - 5.0).abs() < 1e-6);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn simd_and_scalar_kernels_agree() {
        // The dispatched kernel (AVX2 where the CPU has it) must agree
        // with the portable one to FP tolerance at every tail shape; the
        // *bit*-level contract is only per-process consistency, which
        // holds because dispatch is a pure function of the CPU.
        for len in [0usize, 1, 7, 8, 15, 31, 32, 33, 40, 63, 768, 1024, 1027] {
            let a: Vec<f32> = (0..len).map(|i| ((i * 37 + 11) % 97) as f32 * 0.021 - 1.0).collect();
            let b: Vec<f32> = (0..len).map(|i| ((i * 53 + 29) % 89) as f32 * 0.017 - 0.7).collect();
            let dispatched = dot(&a, &b);
            let scalar = dot_scalar(&a, &b);
            let tol = 1e-4 * (len as f32 + 1.0);
            assert!((dispatched - scalar).abs() < tol, "len {len}: {dispatched} vs {scalar}");
        }
    }

    #[test]
    fn cosine_prenorm_is_bit_identical_to_cosine() {
        let a = embed(&[("a", 1.0), ("b", 2.0)], 100);
        let b = embed(&[("a", 1.0), ("c", 3.0)], 100);
        let full = cosine(&a, &b);
        let pre = cosine_prenorm(&a.values, l2_norm(&a.values), &b.values, l2_norm(&b.values));
        assert_eq!(full.to_bits(), pre.to_bits());
        // Zero-norm guard matches cosine's.
        assert_eq!(cosine_prenorm(&[0.0; 4], 0.0, &b.values[..4], 1.0), 0.0);
    }

    #[test]
    fn top_k_selector_matches_full_sort() {
        let scored: Vec<(i64, f64)> =
            vec![(5, 0.5), (1, 0.9), (9, 0.5), (2, 0.9), (7, 0.1), (3, 0.5), (8, 0.0)];
        for k in 0..=scored.len() + 1 {
            let mut sel = TopK::new(k);
            for &(id, s) in &scored {
                sel.push(id, s);
            }
            let mut oracle = scored.clone();
            oracle.sort_by(|a, b| {
                b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
            });
            oracle.truncate(k);
            assert_eq!(sel.into_sorted(), oracle, "k = {k}");
        }
    }
}
