//! Code and natural-language tokenizers feeding the embedding models.
//!
//! The code tokenizer is total: it never fails, even on text that is not
//! valid LamScript (models must embed arbitrary snippets, exactly like the
//! paper's transformer tokenizers do).

/// Classes a code token can take.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenClass {
    /// Identifier or keyword.
    Word,
    /// Numeric literal.
    Number,
    /// String literal (content, quotes stripped).
    Str,
    /// Operator / punctuation (one lexeme per run).
    Punct,
}

/// A classified code token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeToken {
    /// The lexeme (string contents for `Str`).
    pub text: String,
    /// Classification.
    pub class: TokenClass,
}

/// LamScript keywords — kept when normalizing identifiers because they are
/// structure, not naming.
pub const KEYWORDS: &[&str] = &[
    "pe",
    "workflow",
    "fn",
    "let",
    "if",
    "else",
    "while",
    "for",
    "in",
    "return",
    "break",
    "continue",
    "emit",
    "true",
    "false",
    "null",
    "import",
    "input",
    "output",
    "init",
    "process",
    "doc",
    "groupby",
    "nodes",
    "connect",
    "and",
    "or",
    "not",
    "producer",
    "iterative",
    "consumer",
    "generic",
    "state",
];

/// Is this word a structural keyword?
pub fn is_keyword(w: &str) -> bool {
    KEYWORDS.contains(&w)
}

/// Tokenize arbitrary code-ish text. Comments (`#…`) are dropped; strings
/// become single `Str` tokens; runs of operator characters become one
/// `Punct` token each.
pub fn code_tokens(code: &str) -> Vec<CodeToken> {
    let mut out = Vec::new();
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' => {
                let mut j = i + 1;
                let mut s = String::new();
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' && j + 1 < bytes.len() {
                        j += 1;
                    }
                    if bytes[j] < 0x80 {
                        s.push(bytes[j] as char);
                    }
                    j += 1;
                }
                out.push(CodeToken { text: s, class: TokenClass::Str });
                i = j + 1;
            }
            b if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                out.push(CodeToken {
                    text: String::from_utf8_lossy(&bytes[start..i]).into_owned(),
                    class: TokenClass::Number,
                });
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(CodeToken {
                    text: String::from_utf8_lossy(&bytes[start..i]).into_owned(),
                    class: TokenClass::Word,
                });
            }
            b if b < 0x80 => {
                let start = i;
                while i < bytes.len()
                    && bytes[i] < 0x80
                    && !bytes[i].is_ascii_alphanumeric()
                    && !matches!(bytes[i], b' ' | b'\t' | b'\r' | b'\n' | b'"' | b'#' | b'_')
                {
                    i += 1;
                }
                if i == start {
                    i += 1; // safety: always progress
                }
                out.push(CodeToken {
                    text: String::from_utf8_lossy(&bytes[start..i]).into_owned(),
                    class: TokenClass::Punct,
                });
            }
            _ => {
                // Skip multi-byte UTF-8 sequences byte-safely.
                i += 1;
                while i < bytes.len() && (bytes[i] & 0xC0) == 0x80 {
                    i += 1;
                }
            }
        }
    }
    out
}

/// English stopwords removed from the shared NL/code word channel —
/// without this, short descriptions win on scaffolding words ("a PE
/// that...") rather than content.
pub const STOPWORDS: &[&str] = &[
    "a", "an", "the", "that", "this", "these", "those", "is", "are", "was", "were", "be", "been", "it",
    "its", "if", "of", "for", "to", "in", "on", "with", "and", "or", "each", "every", "when", "as", "by",
    "from", "into", "at", "then", "them", "their", "there", "what", "which", "who", "whether", "do", "does",
    "how", "can", "will", "pe", "pes",
];

/// Is this a stopword?
pub fn is_stopword(w: &str) -> bool {
    STOPWORDS.contains(&w)
}

/// Lowercased word tokens of a natural-language query/description, with
/// stopwords removed.
pub fn text_words(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .filter(|w| !is_stopword(w))
        .collect()
}

/// Word tokens including stopwords (for models that embed raw prose).
pub fn text_words_raw(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric()).filter(|w| !w.is_empty()).map(|w| w.to_lowercase()).collect()
}

/// Normalized source lines: whitespace squeezed, comments removed, empties
/// dropped. The lexical retrieval channel (ReACC-style) hashes these.
pub fn normalized_lines(code: &str) -> Vec<String> {
    code.lines()
        .map(|l| {
            let without_comment = match l.find('#') {
                Some(p) => &l[..p],
                None => l,
            };
            without_comment.split_whitespace().collect::<Vec<_>>().join(" ")
        })
        .filter(|l| !l.is_empty())
        .collect()
}

/// Character trigrams of lowercased text (padded), the pure-text channel
/// used by the GTE/BGE-style models.
pub fn char_trigrams(text: &str) -> Vec<String> {
    let lower = text.to_lowercase();
    let padded: Vec<char> = std::iter::once(' ').chain(lower.chars()).chain(std::iter::once(' ')).collect();
    if padded.len() < 3 {
        return vec![];
    }
    padded.windows(3).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_code() {
        let toks = code_tokens("let x1 = num % 2; # comment\nemit(\"hi there\");");
        let words: Vec<&str> =
            toks.iter().filter(|t| t.class == TokenClass::Word).map(|t| t.text.as_str()).collect();
        assert_eq!(words, vec!["let", "x1", "num", "emit"]);
        assert!(toks.iter().any(|t| t.class == TokenClass::Number && t.text == "2"));
        assert!(toks.iter().any(|t| t.class == TokenClass::Str && t.text == "hi there"));
        assert!(!toks.iter().any(|t| t.text.contains("comment")));
    }

    #[test]
    fn total_on_garbage() {
        // Never panics, always makes progress.
        for junk in ["", "@@@@", "∆∆ unicode λ", "\"unterminated", "1.2.3.4....", "\\\\\\"] {
            let _ = code_tokens(junk);
        }
    }

    #[test]
    fn punct_runs_grouped() {
        let toks = code_tokens("a != b");
        let puncts: Vec<&str> =
            toks.iter().filter(|t| t.class == TokenClass::Punct).map(|t| t.text.as_str()).collect();
        assert_eq!(puncts, vec!["!="]);
    }

    #[test]
    fn text_word_splitting() {
        assert_eq!(
            text_words("A PE that checks if a number is prime!"),
            vec!["checks", "number", "prime"],
            "stopwords removed"
        );
        assert_eq!(text_words_raw("A PE that checks"), vec!["a", "pe", "that", "checks"]);
        assert_eq!(text_words(""), Vec::<String>::new());
        assert!(is_stopword("the"));
        assert!(!is_stopword("prime"));
    }

    #[test]
    fn line_normalization() {
        let lines = normalized_lines("  let   x = 1;  # trailing\n\n\twhile x { }\n# only comment\n");
        assert_eq!(lines, vec!["let x = 1;", "while x { }"]);
    }

    #[test]
    fn trigrams() {
        let t = char_trigrams("ab");
        assert_eq!(t, vec![" ab", "ab "]);
        assert!(char_trigrams("").is_empty());
        assert!(char_trigrams("x").len() == 1);
    }

    #[test]
    fn keywords() {
        assert!(is_keyword("while"));
        assert!(is_keyword("emit"));
        assert!(!is_keyword("isPrime"));
    }
}
