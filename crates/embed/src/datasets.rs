//! Synthetic dataset generators standing in for the paper's evaluation
//! corpora (CosQA, CSN, CodeNet) plus the evaluation drivers.
//!
//! The generators produce LamScript programs from a template bank with
//! controlled transformations:
//!
//! * **parameter variation** makes distinct "problems" that still share
//!   code shapes (hard distractors, like CodeNet problem families);
//! * **identifier renaming** produces semantically identical clones that
//!   only structure-aware models can match;
//! * **style switching** (alternate loop formulation) and **comment/dead
//!   code injection** produce lexical variation;
//! * **query paraphrasing** with a synonym table reproduces CSN's curated
//!   queries (light noise) vs CosQA's web queries (heavy noise).

use crate::embedding::top_k;
use crate::metrics::{map_at_k, mrr, precision_at_1};
use crate::models::EmbeddingModel;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{RngExt, SeedableRng};

/// One template: a parameterized program plus its English description.
struct Template {
    /// Short topic tag.
    topic: &'static str,
    /// Description with `{P}` for the parameter.
    desc: &'static str,
    /// Identifiers subject to renaming (must appear in the bodies).
    idents: &'static [&'static str],
    /// Primary body formulation, `{P}` for the parameter.
    style_a: &'static str,
    /// Alternate formulation computing the same thing.
    style_b: &'static str,
}

/// The template bank. Each entry is a realistic small streaming PE body.
fn templates() -> &'static [Template] {
    &[
        Template {
            topic: "prime",
            desc: "check if the input number is prime and emit primes greater than {P}",
            idents: &["num", "i", "prime"],
            style_a: "let i = 2; let prime = num > 1; while i * i <= num { if num % i == 0 { prime = false; break; } i = i + 1; } if prime and num > {P} { emit(num); }",
            style_b: "let prime = num > 1; let i = 2; while i < num { if num % i == 0 { prime = false; } i = i + 1; } if prime and num > {P} { emit(num); }",
        },
        Template {
            topic: "sumrange",
            desc: "compute the sum of the first {P} numbers and emit the total",
            idents: &["num", "total", "i"],
            style_a: "let total = 0; let i = 0; while i < {P} { total = total + i; i = i + 1; } emit(total + num);",
            style_b: "let total = 0; for i in range({P}) { total = total + i; } emit(total + num);",
        },
        Template {
            topic: "fib",
            desc: "compute the {P}th fibonacci number for each input",
            idents: &["num", "a", "b", "i", "tmp"],
            style_a: "let a = 0; let b = 1; let i = 0; while i < {P} { let tmp = a + b; a = b; b = tmp; i = i + 1; } emit(a + num * 0);",
            style_b: "let a = 0; let b = 1; for i in range({P}) { let tmp = b; b = a + b; a = tmp; } emit(a + num * 0);",
        },
        Template {
            topic: "gcd",
            desc: "compute the greatest common divisor of the input and {P}",
            idents: &["num", "a", "b", "tmp"],
            style_a: "let a = num; let b = {P}; while b != 0 { let tmp = b; b = a % b; a = tmp; } emit(a);",
            style_b: "let a = {P}; let b = num; while a != 0 { let tmp = a; a = b % a; b = tmp; } emit(b);",
        },
        Template {
            topic: "factorial",
            desc: "compute the factorial of {P} and scale the input by it",
            idents: &["num", "acc", "i"],
            style_a: "let acc = 1; let i = 2; while i <= {P} { acc = acc * i; i = i + 1; } emit(acc * num);",
            style_b: "let acc = 1; for i in range(2, {P} + 1) { acc = acc * i; } emit(num * acc);",
        },
        Template {
            topic: "evenfilter",
            desc: "filter the stream keeping only numbers divisible by {P}",
            idents: &["num"],
            style_a: "if num % {P} == 0 { emit(num); }",
            style_b: "let keep = num % {P}; if keep == 0 { emit(num); }",
        },
        Template {
            topic: "clamp",
            desc: "clamp each input value to a maximum of {P}",
            idents: &["num", "bounded"],
            style_a: "let bounded = num; if bounded > {P} { bounded = {P}; } emit(bounded);",
            style_b: "if num > {P} { emit({P}); } else { emit(num); }",
        },
        Template {
            topic: "square",
            desc: "emit the square of each input number plus {P}",
            idents: &["num", "sq"],
            style_a: "let sq = num * num; emit(sq + {P});",
            style_b: "emit(num * num + {P});",
        },
        Template {
            topic: "runningmax",
            desc: "track the largest value seen so far above the floor {P}",
            idents: &["num", "best"],
            style_a: "let best = get(state, \"best\", {P}); if num > best { best = num; } state.best = best; emit(best);",
            style_b: "if num > get(state, \"best\", {P}) { state.best = num; } emit(get(state, \"best\", {P}));",
        },
        Template {
            topic: "runningmean",
            desc: "compute the running average of the stream values offset by {P}",
            idents: &["num", "count", "total"],
            style_a: "let count = get(state, \"count\", 0) + 1; let total = get(state, \"total\", 0) + num; state.count = count; state.total = total; emit(total / count + {P});",
            style_b: "state.count = get(state, \"count\", 0) + 1; state.total = get(state, \"total\", 0) + num; emit({P} + state.total / state.count);",
        },
        Template {
            topic: "wordcount",
            desc: "count the occurrences of each word longer than {P} letters",
            idents: &["rec", "word", "n"],
            style_a: "let word = rec[0]; if len(word) > {P} { let n = get(state, word, 0) + 1; state[word] = n; emit([word, n]); }",
            style_b: "let word = rec[0]; if len(word) > {P} { state[word] = get(state, word, 0) + 1; emit([word, state[word]]); }",
        },
        Template {
            topic: "reverse",
            desc: "reverse each input string longer than {P} characters",
            idents: &["text", "flipped"],
            style_a: "if len(text) > {P} { let flipped = reverse(text); emit(flipped); }",
            style_b: "if len(text) > {P} { emit(reverse(text)); }",
        },
        Template {
            topic: "palindrome",
            desc: "check whether the input string is a palindrome of at least {P} characters",
            idents: &["text", "flipped"],
            style_a: "let flipped = reverse(text); if flipped == text and len(text) >= {P} { emit(text); }",
            style_b: "if text == reverse(text) and len(text) >= {P} { emit(text); }",
        },
        Template {
            topic: "upper",
            desc: "convert strings shorter than {P} characters to upper case letters",
            idents: &["text"],
            style_a: "if len(text) < {P} { emit(upper(text)); }",
            style_b: "if len(text) < {P} { let text2 = upper(text); emit(text2); }",
        },
        Template {
            topic: "tokenize",
            desc: "split the input text into words and emit words longer than {P}",
            idents: &["text", "parts", "w"],
            style_a: "let parts = split(text); for w in parts { if len(w) > {P} { emit(w); } }",
            style_b: "for w in split(text) { if len(w) > {P} { emit(w); } }",
        },
        Template {
            topic: "vowels",
            desc: "count the vowels in the input string and emit counts above {P}",
            idents: &["text", "n", "c"],
            style_a: "let n = 0; for c in chars(text) { if contains(\"aeiou\", c) { n = n + 1; } } if n > {P} { emit(n); }",
            style_b: "let n = 0; for c in chars(lower(text)) { if contains(\"aeiou\", c) { n = n + 1; } } if n > {P} { emit(n); }",
        },
        Template {
            topic: "threshold",
            desc: "emit values greater than {P} and drop the rest",
            idents: &["num"],
            style_a: "if num > {P} { emit(num); }",
            style_b: "let keep = num > {P}; if keep { emit(num); }",
        },
        Template {
            topic: "windowsum",
            desc: "compute a sliding window sum of the last {P} values",
            idents: &["num", "window", "total", "v"],
            style_a: "let window = push(get(state, \"w\", []), num); if len(window) > {P} { window = slice(window, 1, len(window)); } state.w = window; let total = sum(window); emit(total);",
            style_b: "state.w = push(get(state, \"w\", []), num); if len(state.w) > {P} { state.w = slice(state.w, 1, len(state.w)); } emit(sum(state.w));",
        },
        Template {
            topic: "minmax",
            desc: "emit the smallest and largest value of lists longer than {P}",
            idents: &["xs"],
            style_a: "if len(xs) > {P} { emit([min(xs), max(xs)]); }",
            style_b: "if len(xs) > {P} { let lo = min(xs); let hi = max(xs); emit([lo, hi]); }",
        },
        Template {
            topic: "celsius",
            desc: "convert temperatures from celsius to fahrenheit with a calibration offset of {P}",
            idents: &["num", "f"],
            style_a: "let f = num * 9 / 5 + 32 + {P}; emit(f);",
            style_b: "emit({P} + num * 9 / 5 + 32);",
        },
        Template {
            topic: "leap",
            desc: "check whether years after {P}00 are leap years",
            idents: &["num", "leap"],
            style_a: "let leap = num % 4 == 0 and (num % 100 != 0 or num % 400 == 0); if leap and num > {P} * 100 { emit(num); }",
            style_b: "if num > {P} * 100 and (num % 400 == 0 or (num % 4 == 0 and num % 100 != 0)) { emit(num); }",
        },
        Template {
            topic: "digits",
            desc: "compute the sum of the digits of the input number scaled by {P}",
            idents: &["num", "n", "total"],
            style_a: "let n = abs(num); let total = 0; while n > 0 { total = total + n % 10; n = n / 10; } emit(total * {P});",
            style_b: "let total = 0; let n = abs(num); while n != 0 { total = total + n % 10; n = n / 10; } emit({P} * total);",
        },
        Template {
            topic: "dedupe",
            desc: "drop duplicate values keeping at most {P} distinct entries",
            idents: &["num", "key"],
            style_a: "let key = str(num); if not contains(state, key) and len(state) < {P} { state[key] = true; emit(num); }",
            style_b: "if len(state) < {P} and get(state, str(num), false) == false { state[str(num)] = true; emit(num); }",
        },
        Template {
            topic: "interest",
            desc: "apply {P} percent interest to the input amount",
            idents: &["num", "grown"],
            style_a: "let grown = num + num * {P} / 100; emit(grown);",
            style_b: "emit(num * (100 + {P}) / 100);",
        },
    ]
}

/// Synonym table powering query paraphrases.
// Targets are NL-only words that do NOT collide with code identifiers or
// builtins — paraphrase noise must strictly reduce lexical alignment.
const SYNONYMS: &[(&str, &[&str])] = &[
    ("compute", &["calculate", "work", "derive"]),
    ("check", &["verify", "decide"]),
    ("emit", &["send", "yield", "report"]),
    ("number", &["figure", "quantity"]),
    ("numbers", &["figures", "quantities"]),
    ("string", &["characters", "phrase"]),
    ("count", &["tally", "frequency"]),
    ("largest", &["biggest", "greatest"]),
    ("smallest", &["lowest", "littlest"]),
    ("sum", &["aggregate", "combined"]),
    ("average", &["mean", "typical"]),
    ("drop", &["discard", "skip"]),
    ("input", &["incoming", "given"]),
    ("stream", &["sequence", "feed"]),
    ("each", &["every"]),
    ("reverse", &["invert", "backwards"]),
    ("convert", &["turn", "translate"]),
    ("keeping", &["retaining"]),
    ("greater", &["bigger", "higher"]),
    ("longer", &["lengthier"]),
];

const NAME_POOL: &[&str] = &[
    "alpha", "beta", "gamma", "delta", "omega", "val", "item", "entry", "cur", "tmpv", "aux", "hold",
    "box_a", "box_b", "slot", "reg", "acc2", "mem", "cell", "probe", "q", "zz", "node_v", "datum",
];

/// Render one program variant.
///
/// `style` picks the body formulation, `rename` consistently substitutes
/// identifiers, `decorate` injects comments and a dead statement.
fn render(t: &Template, param: i64, style: bool, rename: bool, decorate: bool, rng: &mut StdRng) -> String {
    let body_src = if style { t.style_a } else { t.style_b };
    let mut body = body_src.replace("{P}", &param.to_string());
    let input_var = t.idents.first().copied().unwrap_or("num");
    let mut pe_name = format!("{}{}", capitalize(t.topic), param.max(0));
    let mut in_name = input_var.to_string();
    if rename {
        // Consistent random renaming of template identifiers.
        let mut pool: Vec<&str> = NAME_POOL.to_vec();
        for ident in t.idents {
            let idx = rng.random_range(0..pool.len());
            let fresh = pool.remove(idx);
            body = rename_ident(&body, ident, fresh);
            if *ident == input_var {
                in_name = fresh.to_string();
            }
        }
        pe_name =
            format!("{}Task{}", capitalize(NAME_POOL[rng.random_range(0..NAME_POOL.len())]), param.max(0));
    }
    // Break the body into one statement per line so partial-code queries
    // (line-truncated) keep a meaningful prefix of the logic.
    let body = body.replace("; ", ";\n        ").replace("} ", "}\n        ");
    let mut lines = vec![
        format!("pe {pe_name} : generic {{"),
        format!("    input {in_name};"),
        "    output output;".into(),
    ];
    if decorate {
        lines.push(format!("    # handles the {} task", t.topic));
    }
    lines.push("    process {".into());
    if decorate {
        lines.push("        let unused_marker = 0;".into());
    }
    // Re-bind the datum: generic PEs receive it as `input`.
    lines.push(format!("        let {in_name} = input;"));
    lines.push(format!("        {body}"));
    lines.push("    }".into());
    lines.push("}".into());
    lines.join("\n")
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Token-aware identifier substitution (won't touch substrings of longer
/// names).
fn rename_ident(code: &str, from: &str, to: &str) -> String {
    let mut out = String::with_capacity(code.len());
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = &code[start..i];
            out.push_str(if word == from { to } else { word });
        } else {
            out.push(b as char);
            i += 1;
        }
    }
    out
}

/// Paraphrase a description. `strength` in [0,1]: probability of swapping
/// each swappable word; heavier strength also drops filler words.
fn paraphrase(desc: &str, strength: f64, rng: &mut StdRng) -> String {
    let mut words: Vec<String> = Vec::new();
    for w in desc.split_whitespace() {
        let mut word = w.to_string();
        if let Some((_, syns)) = SYNONYMS.iter().find(|(k, _)| *k == w) {
            if rng.random_bool(strength) {
                word = syns.choose(rng).expect("non-empty synonym list").to_string();
            }
        }
        // Heavy noise drops some filler words entirely, and — like real web
        // queries — usually omits exact constants and occasionally other
        // content words.
        let filler = matches!(w, "the" | "a" | "an" | "and" | "it" | "is" | "of");
        if strength > 0.5 {
            if filler && rng.random_bool(0.35) {
                continue;
            }
            let numeric = w.chars().all(|c| c.is_ascii_digit());
            if numeric && rng.random_bool(0.5) {
                continue;
            }
            if !filler && !numeric && rng.random_bool(0.08) {
                continue;
            }
        }
        words.push(word);
    }
    words.join(" ")
}

// ---------------------------------------------------------------------------
// Text → code search datasets (Table 6)
// ---------------------------------------------------------------------------

/// One (query, code) pair; the corpus is the set of all codes.
#[derive(Debug, Clone)]
pub struct SearchExample {
    /// Natural-language query.
    pub query: String,
    /// The matching code document.
    pub code: String,
    /// The clean description the query was derived from.
    pub doc: String,
}

/// A zero-shot text-to-code search benchmark.
#[derive(Debug, Clone)]
pub struct SearchDataset {
    /// Name used in reports.
    pub name: String,
    /// Query `i` matches code `i`.
    pub examples: Vec<SearchExample>,
}

fn gen_search(name: &str, n: usize, query_noise: f64, seed: u64) -> SearchDataset {
    // Two independent RNG streams: the corpus is identical across noise
    // levels (so CosQA and CSN rank over the same documents, and the
    // noise level is the only experimental variable), while queries get
    // their own stream.
    let mut corpus_rng = StdRng::seed_from_u64(seed);
    let mut query_rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let bank = templates();
    let mut examples = Vec::with_capacity(n);
    for i in 0..n {
        let t = &bank[i % bank.len()];
        // Parameter varies per round so the corpus holds many same-template
        // hard distractors.
        let param = 2 + (i / bank.len()) as i64 * 3 + corpus_rng.random_range(0..3) as i64;
        let style = corpus_rng.random_bool(0.5);
        let decorate = corpus_rng.random_bool(0.3);
        let code = render(t, param, style, false, decorate, &mut corpus_rng);
        let doc = t.desc.replace("{P}", &param.to_string());
        let query = paraphrase(&doc, query_noise, &mut query_rng);
        examples.push(SearchExample { query, code, doc });
    }
    SearchDataset { name: name.to_string(), examples }
}

/// CoSQA-like: noisy web-style queries (heavy paraphrase + word drops).
pub fn gen_cosqa(n: usize, seed: u64) -> SearchDataset {
    gen_search("CosQA", n, 0.85, seed)
}

/// CSN-like: curated queries close to the docstring (light paraphrase).
pub fn gen_csn(n: usize, seed: u64) -> SearchDataset {
    gen_search("CSN", n, 0.35, seed)
}

/// Evaluate zero-shot text-to-code search: MRR of the matching document.
pub fn eval_search(model: &dyn EmbeddingModel, ds: &SearchDataset) -> f64 {
    let corpus: Vec<_> = ds.examples.iter().map(|e| model.embed_code(&e.code)).collect();
    let mut ranks = Vec::with_capacity(ds.examples.len());
    for (i, ex) in ds.examples.iter().enumerate() {
        let q = model.embed_text(&ex.query);
        let ranked = top_k(&q, &corpus, corpus.len());
        let rank = ranked.iter().position(|(idx, _)| *idx == i).map(|p| p + 1);
        ranks.push(rank);
    }
    mrr(&ranks)
}

// ---------------------------------------------------------------------------
// Code → code clone retrieval dataset (Table 7)
// ---------------------------------------------------------------------------

/// One program in the clone corpus.
#[derive(Debug, Clone)]
pub struct CloneProgram {
    /// Which problem (cluster) this solves.
    pub problem: usize,
    /// Full source.
    pub code: String,
}

/// A partial-code query.
#[derive(Debug, Clone)]
pub struct CloneQuery {
    /// The truncated snippet given to the retriever.
    pub partial_code: String,
    /// Ground-truth problem id.
    pub problem: usize,
}

/// A CodeNet-like clone retrieval benchmark.
#[derive(Debug, Clone)]
pub struct CloneDataset {
    /// The searchable corpus.
    pub programs: Vec<CloneProgram>,
    /// Queries (derived from held-out variants).
    pub queries: Vec<CloneQuery>,
}

/// Generate `problems` clusters with `variants` corpus programs each, plus
/// one partial-code query per problem.
pub fn gen_codenet(problems: usize, variants: usize, seed: u64) -> CloneDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let bank = templates();
    let mut programs = Vec::with_capacity(problems * variants);
    let mut queries = Vec::with_capacity(problems);
    for p in 0..problems {
        let t = &bank[p % bank.len()];
        let param = 2 + (p / bank.len()) as i64 * 5 + rng.random_range(0..4) as i64;
        for v in 0..variants {
            // Variant 0 is canonical; others are renamed / restyled /
            // decorated clones.
            let style = v % 2 == 0;
            let rename = v >= variants / 2;
            let decorate = v % 3 == 1;
            let code = render(t, param, style, rename, decorate, &mut rng);
            programs.push(CloneProgram { problem: p, code });
        }
        // The query: a truncated held-out variant with canonical naming —
        // partial-code completion queries are prefixes of code being
        // written, which shares vocabulary with existing solutions.
        let held_out = render(t, param, rng.random_bool(0.5), false, false, &mut rng);
        let lines: Vec<&str> = held_out.lines().collect();
        let keep = (lines.len() * 2 / 3).max(4).min(lines.len());
        queries.push(CloneQuery { partial_code: lines[..keep].join("\n"), problem: p });
    }
    CloneDataset { programs, queries }
}

/// Clone-retrieval evaluation: (MAP@k, Precision@1).
pub fn eval_clone(model: &dyn EmbeddingModel, ds: &CloneDataset, k: usize) -> (f64, f64) {
    let corpus: Vec<_> = ds.programs.iter().map(|p| model.embed_code(&p.code)).collect();
    let mut per_query = Vec::with_capacity(ds.queries.len());
    let mut top1 = Vec::with_capacity(ds.queries.len());
    for q in &ds.queries {
        let qe = model.embed_code(&q.partial_code);
        let ranked = top_k(&qe, &corpus, k);
        let rel: Vec<bool> = ranked.iter().map(|(i, _)| ds.programs[*i].problem == q.problem).collect();
        top1.push(rel.first().copied().unwrap_or(false));
        let total_relevant = ds.programs.iter().filter(|p| p.problem == q.problem).count();
        per_query.push((rel, total_relevant));
    }
    (map_at_k(&per_query, k), precision_at_1(&top1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::model_by_name;

    #[test]
    fn generated_code_parses() {
        let ds = gen_csn(60, 7);
        let mut parsed = 0;
        for ex in &ds.examples {
            if laminar_script::parse_script(&ex.code).is_ok() {
                parsed += 1;
            } else {
                panic!("generated code failed to parse:\n{}", ex.code);
            }
        }
        assert_eq!(parsed, 60);
    }

    #[test]
    fn clone_corpus_parses_and_clusters() {
        let ds = gen_codenet(30, 6, 11);
        assert_eq!(ds.programs.len(), 180);
        assert_eq!(ds.queries.len(), 30);
        for p in &ds.programs {
            laminar_script::parse_script(&p.code)
                .unwrap_or_else(|e| panic!("variant failed to parse ({e}):\n{}", p.code));
        }
        // Each cluster has the advertised size.
        for pid in 0..30 {
            assert_eq!(ds.programs.iter().filter(|p| p.problem == pid).count(), 6);
        }
    }

    #[test]
    fn datasets_are_seed_deterministic() {
        let a = gen_cosqa(20, 5);
        let b = gen_cosqa(20, 5);
        for (x, y) in a.examples.iter().zip(&b.examples) {
            assert_eq!(x.query, y.query);
            assert_eq!(x.code, y.code);
        }
        let c = gen_cosqa(20, 6);
        assert!(a.examples.iter().zip(&c.examples).any(|(x, y)| x.query != y.query));
    }

    #[test]
    fn csn_queries_closer_to_docs_than_cosqa() {
        let csn = gen_csn(40, 3);
        let cosqa = gen_cosqa(40, 3);
        let overlap = |ds: &SearchDataset| -> f64 {
            ds.examples
                .iter()
                .map(|e| {
                    let dw: std::collections::HashSet<_> = e.doc.split_whitespace().collect();
                    let qw: Vec<_> = e.query.split_whitespace().collect();
                    if qw.is_empty() {
                        return 0.0;
                    }
                    qw.iter().filter(|w| dw.contains(**w)).count() as f64 / qw.len() as f64
                })
                .sum::<f64>()
                / ds.examples.len() as f64
        };
        assert!(overlap(&csn) > overlap(&cosqa), "CSN queries must be cleaner");
    }

    #[test]
    fn rename_is_token_aware() {
        assert_eq!(rename_ident("num + number", "num", "x"), "x + number");
        assert_eq!(rename_ident("a.num[num]", "num", "y"), "a.y[y]");
    }

    #[test]
    fn fine_tuned_model_gets_reasonable_mrr() {
        let ds = gen_csn(60, 42);
        let tuned = model_by_name("unixcoder-code-search").unwrap();
        let base = model_by_name("unixcoder-base").unwrap();
        let m_tuned = eval_search(tuned.as_ref(), &ds);
        let m_base = eval_search(base.as_ref(), &ds);
        assert!(m_tuned > m_base, "fine-tuned must beat base: {m_tuned} vs {m_base}");
        assert!(m_tuned > 0.3, "fine-tuned MRR too low: {m_tuned}");
    }

    #[test]
    fn clone_eval_produces_sane_metrics() {
        let ds = gen_codenet(25, 6, 9);
        let reacc = model_by_name("ReACC-retriever-py").unwrap();
        let (map, p1) = eval_clone(reacc.as_ref(), &ds, 100);
        assert!(map > 0.0 && map <= 1.0);
        assert!(p1 > 0.2, "lexical retriever should often nail top-1, got {p1}");
    }
}
