//! Property-based tests: serialization round-trips and parser robustness.

use laminar_json::{parse, to_string, to_string_pretty, Map, Value};
use proptest::prelude::*;

/// Strategy producing arbitrary JSON values with bounded depth/size.
fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN/inf are unrepresentable in JSON.
        prop::num::f64::NORMAL.prop_map(Value::Float),
        "[ -~]{0,24}".prop_map(Value::Str),
        "\\PC{0,8}".prop_map(Value::Str),
    ];
    leaf.prop_recursive(4, 64, 8, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(Value::Array),
            prop::collection::btree_map("[a-z]{1,6}", inner, 0..6)
                .prop_map(|m| Value::Object(m.into_iter().collect::<Map>())),
        ]
    })
}

proptest! {
    /// parse ∘ to_string = id
    #[test]
    fn compact_round_trip(v in arb_value()) {
        let s = to_string(&v);
        let back = parse(&s).unwrap();
        prop_assert_eq!(back, v);
    }

    /// parse ∘ to_string_pretty = id
    #[test]
    fn pretty_round_trip(v in arb_value()) {
        let s = to_string_pretty(&v);
        let back = parse(&s).unwrap();
        prop_assert_eq!(back, v);
    }

    /// stable_hash agrees with equality on round-tripped values.
    #[test]
    fn stable_hash_consistent(v in arb_value()) {
        let back = parse(&to_string(&v)).unwrap();
        prop_assert_eq!(back.stable_hash(), v.stable_hash());
    }

    /// The parser never panics on arbitrary input.
    #[test]
    fn parser_never_panics(s in "\\PC{0,64}") {
        let _ = parse(&s);
    }

    /// Weight is at least 1 and monotone under wrapping in an array.
    #[test]
    fn weight_positive_and_monotone(v in arb_value()) {
        let w = v.weight();
        prop_assert!(w >= 1);
        let wrapped = Value::Array(vec![v]);
        prop_assert_eq!(wrapped.weight(), w + 1);
    }
}
