//! JSON serialization: compact and pretty printers.
//!
//! Guarantees `parse(to_string(v)) == v` for every `Value` (floats are
//! printed with enough precision to round-trip; the property tests pin this).

use crate::value::Value;
use std::fmt::Write;

/// Serialize to the compact single-line form.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Serialize with two-space indentation, for logs and fixtures.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, e, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, e, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    debug_assert!(f.is_finite(), "non-finite floats cannot enter a Value");
    // `{}` on f64 prints the shortest representation that round-trips,
    // but prints integral floats without a dot; add ".0" so the value
    // re-parses as Float, keeping parse∘print = id.
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{jarr, jobj, parse};

    #[test]
    fn compact_forms() {
        assert_eq!(to_string(&Value::Null), "null");
        assert_eq!(to_string(&Value::Int(-3)), "-3");
        assert_eq!(to_string(&Value::Float(2.5)), "2.5");
        assert_eq!(to_string(&Value::Float(3.0)), "3.0");
        assert_eq!(to_string(&jarr![1, 2]), "[1,2]");
        assert_eq!(to_string(&jobj! {"a" => 1, "b" => "x"}), r#"{"a":1,"b":"x"}"#);
    }

    #[test]
    fn string_escaping() {
        assert_eq!(to_string(&Value::Str("a\"b\\c\n\u{1}".into())), "\"a\\\"b\\\\c\\n\\u0001\"");
    }

    #[test]
    fn pretty_has_structure() {
        let p = to_string_pretty(&jobj! {"a" => jarr![1], "b" => jobj!{}});
        assert!(p.contains("\n  \"a\": [\n    1\n  ]"), "pretty was:\n{p}");
        assert!(p.contains("\"b\": {}"));
    }

    #[test]
    fn round_trip_examples() {
        for src in [
            "null",
            "[1,2.5,\"x\",{\"k\":[true,null]}]",
            r#"{"deep":{"er":{"est":[1e-9, -0.5]}}}"#,
            "\"unicode: ∆😀\"",
        ] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&to_string(&v)).unwrap(), v, "compact round-trip {src}");
            assert_eq!(parse(&to_string_pretty(&v)).unwrap(), v, "pretty round-trip {src}");
        }
    }

    #[test]
    fn float_roundtrip_precision() {
        for f in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -1e-300] {
            let v = Value::Float(f);
            let back = parse(&to_string(&v)).unwrap();
            assert_eq!(back, v, "float {f} failed round-trip");
        }
    }
}
