//! # laminar-json
//!
//! JSON value model, parser and serializer for the Laminar framework.
//!
//! Laminar uses JSON both as its client/server wire format (the paper's
//! Controller layer exchanges JSON envelopes) and as the dynamic datum type
//! flowing between Processing Elements. This crate is a from-scratch
//! substrate: no external JSON dependency is used.
//!
//! ## Quick start
//!
//! ```
//! use laminar_json::{Value, parse};
//!
//! let v = parse(r#"{"name": "IsPrime", "ports": ["input", "output"]}"#).unwrap();
//! assert_eq!(v["name"].as_str(), Some("IsPrime"));
//! assert_eq!(v["ports"][1].as_str(), Some("output"));
//!
//! let round = parse(&v.to_string()).unwrap();
//! assert_eq!(round, v);
//! ```

mod error;
mod parse;
mod ser;
mod value;

pub use error::{JsonError, Result};
pub use parse::{parse, Parser};
pub use ser::{to_string, to_string_pretty};
pub use value::{Map, SharedValue, Value};

/// Construct a [`Value::Object`] from `key => value` pairs.
///
/// ```
/// use laminar_json::{jobj, Value};
/// let v = jobj! { "id" => 7, "name" => "NumberProducer" };
/// assert_eq!(v["id"].as_i64(), Some(7));
/// ```
#[macro_export]
macro_rules! jobj {
    () => { $crate::Value::Object($crate::Map::new()) };
    ( $( $k:expr => $v:expr ),+ $(,)? ) => {{
        let mut m = $crate::Map::new();
        $( m.insert(::std::string::String::from($k), $crate::Value::from($v)); )+
        $crate::Value::Object(m)
    }};
}

/// Construct a [`Value::Array`] from elements convertible to [`Value`].
///
/// ```
/// use laminar_json::{jarr, Value};
/// let v = jarr![1, "two", 3.0];
/// assert_eq!(v[1].as_str(), Some("two"));
/// ```
#[macro_export]
macro_rules! jarr {
    () => { $crate::Value::Array(::std::vec::Vec::new()) };
    ( $( $v:expr ),+ $(,)? ) => {
        $crate::Value::Array(::std::vec![ $( $crate::Value::from($v) ),+ ])
    };
}

#[cfg(test)]
mod macro_tests {
    use crate::Value;

    #[test]
    fn jobj_builds_object() {
        let v = jobj! { "a" => 1, "b" => "x", "nested" => jarr![true, Value::Null] };
        assert_eq!(v["a"].as_i64(), Some(1));
        assert_eq!(v["b"].as_str(), Some("x"));
        assert_eq!(v["nested"][0].as_bool(), Some(true));
        assert!(v["nested"][1].is_null());
    }

    #[test]
    fn empty_macros() {
        assert_eq!(jobj! {}, Value::Object(crate::Map::new()));
        assert_eq!(jarr![], Value::Array(vec![]));
    }
}
