//! Recursive-descent JSON parser.
//!
//! Accepts the full JSON grammar (RFC 8259). Rejects: trailing content,
//! NaN/Infinity literals, unescaped control characters, lone surrogates.
//! Depth is bounded to protect the server from hostile payloads.

use crate::error::{JsonError, Result};
use crate::value::{Map, Value};

/// Maximum nesting depth accepted by [`parse`]. The Laminar server parses
/// untrusted client payloads, so recursion must be bounded.
pub const MAX_DEPTH: usize = 256;

/// Parse a complete JSON document.
///
/// ```
/// let v = laminar_json::parse("[1, 2.5, \"x\"]").unwrap();
/// assert_eq!(v[0].as_i64(), Some(1));
/// ```
pub fn parse(input: &str) -> Result<Value> {
    let mut p = Parser::new(input);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Streaming-ish parser over a borrowed input. Exposed so the HTTP layer can
/// parse a value and then inspect the remaining offset.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Create a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        Parser { bytes: input.as_bytes(), pos: 0 }
    }

    /// Byte offset of the next unconsumed byte.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// True when all input has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    /// Skip JSON whitespace.
    pub fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn err(&self, msg: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError::new(msg, line, col, self.pos)
    }

    fn expect(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    /// Parse one JSON value starting at the current position.
    pub fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected '{kw}'")))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{', "'{'")?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':', "':' after object key")?;
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[', "'['")?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(out)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require a following \uXXXX low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate escape"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            out.push(char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?);
                        } else if (0xDC00..0xE000).contains(&cp) {
                            return Err(self.err("unexpected low surrogate"));
                        } else {
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8 byte"))?;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0 alone, or non-zero leading digit.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b) if b.is_ascii_digit() => {
                while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                return Err(self.err("digits required after decimal point"));
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                return Err(self.err("digits required in exponent"));
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number slice");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            // Integer overflow falls back to float, like most JSON parsers.
        }
        let f: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if f.is_nan() || f.is_infinite() {
            return Err(self.err("number out of range"));
        }
        Ok(Value::Float(f))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xC2..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF4 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{jarr, jobj};

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("0").unwrap(), Value::Int(0));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("-1.5E-2").unwrap(), Value::Float(-0.015));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn containers() {
        assert_eq!(parse("[]").unwrap(), jarr![]);
        assert_eq!(parse("[1,2,3]").unwrap(), jarr![1, 2, 3]);
        assert_eq!(parse("{}").unwrap(), jobj! {});
        assert_eq!(
            parse(r#"{"a": [1, {"b": null}], "c": "d"}"#).unwrap(),
            jobj! { "a" => jarr![1, jobj!{ "b" => Value::Null }], "c" => "d" }
        );
    }

    #[test]
    fn whitespace_tolerance() {
        let v = parse(" \n\t{ \"a\" :\r 1 , \"b\" : [ ] } \n").unwrap();
        assert_eq!(v["a"].as_i64(), Some(1));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\/d\n\t\r\b\f""#).unwrap(),
            Value::Str("a\"b\\c/d\n\t\r\u{8}\u{c}".into())
        );
        assert_eq!(parse(r#""A""#).unwrap(), Value::Str("A".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Value::Str("😀".into()));
        assert_eq!(parse("\"héllo ∆\"").unwrap(), Value::Str("héllo ∆".into()));
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "tru",
            "01",
            "1.",
            ".5",
            "1e",
            "+1",
            "nan",
            "Infinity",
            "[1,]",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "\"\\q\"",
            "\"\\uD800\"",
            "\"\\uDC00x\"",
            "[1] extra",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn control_char_rejected() {
        assert!(parse("\"a\u{1}b\"").is_err());
    }

    #[test]
    fn depth_limit() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn int_overflow_degrades_to_float() {
        let v = parse("99999999999999999999999").unwrap();
        assert!(matches!(v, Value::Float(_)));
    }

    #[test]
    fn duplicate_keys_last_wins() {
        let v = parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v["a"].as_i64(), Some(2));
    }

    #[test]
    fn error_position_reported() {
        let e = parse("{\n  \"a\": @\n}").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.column >= 8, "column was {}", e.column);
    }
}
