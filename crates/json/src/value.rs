//! The dynamic [`Value`] type: Laminar's datum model.
//!
//! Every unit of data that crosses a PE port, a client/server boundary or a
//! registry column is a `Value`. The representation mirrors JSON with one
//! extension used internally by the dataflow layer: integers and floats are
//! kept distinct so that group-by keys hash stably.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// A reference-counted [`Value`]: the cheap clone path for large arrays,
/// objects and strings. Cloning a `SharedValue` bumps a refcount instead of
/// deep-copying the tree, which is what lets the dataflow layer broadcast
/// one payload to many destination instances without per-destination
/// copies. Use [`Value::into_shared`] / [`Value::unshare`] to cross between
/// the owned and shared worlds.
pub type SharedValue = Arc<Value>;

/// Ordered map used for JSON objects.
///
/// A `BTreeMap` keeps serialization deterministic, which matters for
/// embedding stability (the registry hashes serialized PE specs) and for
/// reproducible tests.
pub type Map = BTreeMap<String, Value>;

/// A dynamically-typed JSON value.
#[derive(Clone, Default, PartialEq)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// 64-bit signed integer. JSON numbers without a fraction or exponent
    /// that fit in `i64` parse to this variant.
    Int(i64),
    /// Double-precision float. Never NaN after parsing (NaN is rejected).
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list.
    Array(Vec<Value>),
    /// Key → value mapping with deterministic key order.
    Object(Map),
}

impl Value {
    /// `true` if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Borrow as `bool` if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow as `i64` if this is an `Int` (floats are *not* coerced).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: `Int` and `Float` both convert to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Borrow as `&str` if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Borrow as a slice if this is an `Array`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array access.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a map if this is an `Object`.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object access.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Array element lookup; `None` for non-arrays or out-of-range.
    pub fn at(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }

    /// Insert into an object, converting `self` to an object if `Null`.
    ///
    /// Returns `&mut self` for chaining. Panics if `self` is a non-object,
    /// non-null value — that is always a logic error in envelope-building
    /// code.
    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut Self {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => {
                m.insert(key.to_string(), value.into());
            }
            other => panic!("Value::set on non-object {}", other.type_name()),
        }
        self
    }

    /// Human-readable type tag used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Deep size in datum units: scalars count 1, containers count their
    /// recursive element total plus 1. Used by the engine's transfer-cost
    /// model.
    pub fn weight(&self) -> usize {
        match self {
            Value::Array(a) => 1 + a.iter().map(Value::weight).sum::<usize>(),
            Value::Object(m) => 1 + m.values().map(Value::weight).sum::<usize>(),
            _ => 1,
        }
    }

    /// Stable 64-bit hash of the value, used for group-by routing.
    ///
    /// FNV-1a over a canonical byte walk. Stable across processes and runs
    /// (unlike `std` hashing) so that Redis-mapping workers on different
    /// "nodes" route identically.
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(PRIME);
            }
        }
        fn walk(v: &Value, h: &mut u64) {
            match v {
                Value::Null => mix(h, b"n"),
                Value::Bool(b) => mix(h, if *b { b"t" } else { b"f" }),
                Value::Int(i) => {
                    mix(h, b"i");
                    mix(h, &i.to_le_bytes());
                }
                Value::Float(f) => {
                    mix(h, b"d");
                    // Canonicalize -0.0 so that 0.0 and -0.0 route together.
                    let f = if *f == 0.0 { 0.0 } else { *f };
                    mix(h, &f.to_bits().to_le_bytes());
                }
                Value::Str(s) => {
                    mix(h, b"s");
                    mix(h, s.as_bytes());
                }
                Value::Array(a) => {
                    mix(h, b"a");
                    mix(h, &(a.len() as u64).to_le_bytes());
                    for e in a {
                        walk(e, h);
                    }
                }
                Value::Object(m) => {
                    mix(h, b"o");
                    mix(h, &(m.len() as u64).to_le_bytes());
                    for (k, e) in m {
                        mix(h, k.as_bytes());
                        walk(e, h);
                    }
                }
            }
        }
        let mut h = OFFSET;
        walk(self, &mut h);
        h
    }

    /// Move the value behind a refcount so further clones are O(1)
    /// regardless of payload size.
    pub fn into_shared(self) -> SharedValue {
        Arc::new(self)
    }

    /// Recover an owned value from a [`SharedValue`]: zero-copy when this is
    /// the last reference (the steady-state single-destination case), one
    /// deep clone otherwise (broadcast fan-out).
    pub fn unshare(shared: SharedValue) -> Value {
        Arc::try_unwrap(shared).unwrap_or_else(|arc| (*arc).clone())
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Debug output is the compact JSON form; invaluable in test failures.
        write!(f, "{}", crate::ser::to_string(self))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::ser::to_string(self))
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    /// Missing keys index to `Null` rather than panicking; mirrors the
    /// permissive lookups the Python client performs on JSON responses.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.at(idx).unwrap_or(&NULL)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::Str(s.clone())
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}
impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}
impl From<Value> for String {
    fn from(v: Value) -> Self {
        crate::ser::to_string(&v)
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Value::Array(iter.into_iter().collect())
    }
}

impl FromIterator<(String, Value)> for Value {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Value::Object(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let v = Value::Int(42);
        assert_eq!(v.as_i64(), Some(42));
        assert_eq!(v.as_f64(), Some(42.0));
        assert_eq!(v.as_str(), None);
        assert_eq!(v.type_name(), "int");
        assert!(Value::Null.is_null());
    }

    #[test]
    fn index_missing_is_null() {
        let v = crate::jobj! { "a" => 1 };
        assert!(v["missing"].is_null());
        assert!(v["a"]["deeper"].is_null());
        assert!(v[99].is_null());
    }

    #[test]
    fn set_builds_objects() {
        let mut v = Value::Null;
        v.set("x", 1).set("y", "two");
        assert_eq!(v["x"].as_i64(), Some(1));
        assert_eq!(v["y"].as_str(), Some("two"));
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn set_on_scalar_panics() {
        let mut v = Value::Int(3);
        v.set("x", 1);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7usize), Value::Int(7));
        assert_eq!(Value::from(1.5), Value::Float(1.5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(vec![1, 2]), crate::jarr![1, 2]);
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
    }

    #[test]
    fn weight_counts_recursively() {
        let v = crate::jarr![1, crate::jarr![2, 3], "s"];
        // outer(1) + 1 + inner(1 + 2) + "s"(1)
        assert_eq!(v.weight(), 6);
    }

    #[test]
    fn stable_hash_is_stable_and_discriminates() {
        let a = crate::jobj! { "k" => "alpha" };
        let b = crate::jobj! { "k" => "beta" };
        assert_eq!(a.stable_hash(), a.clone().stable_hash());
        assert_ne!(a.stable_hash(), b.stable_hash());
        // int/float/string tag separation
        assert_ne!(Value::Int(1).stable_hash(), Value::Float(1.0).stable_hash());
        assert_ne!(Value::Str("1".into()).stable_hash(), Value::Int(1).stable_hash());
        // negative zero canonicalization
        assert_eq!(Value::Float(0.0).stable_hash(), Value::Float(-0.0).stable_hash());
    }

    #[test]
    fn collect_iterators() {
        let arr: Value = (0..3).map(Value::Int).collect();
        assert_eq!(arr, crate::jarr![0i64, 1i64, 2i64]);
        let obj: Value = vec![("a".to_string(), Value::Int(1))].into_iter().collect();
        assert_eq!(obj["a"].as_i64(), Some(1));
    }
}
