//! Parse-error reporting with line/column positions.

use std::fmt;

/// Result alias for JSON operations.
pub type Result<T> = std::result::Result<T, JsonError>;

/// A JSON parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong, e.g. `"expected ':' after object key"`.
    pub message: String,
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub column: usize,
    /// Byte offset into the input.
    pub offset: usize,
}

impl JsonError {
    pub(crate) fn new(message: impl Into<String>, line: usize, column: usize, offset: usize) -> Self {
        JsonError { message: message.into(), line, column, offset }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at line {}, column {}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for JsonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = JsonError::new("unexpected 'x'", 3, 14, 40);
        let s = e.to_string();
        assert!(s.contains("line 3"));
        assert!(s.contains("column 14"));
        assert!(s.contains("unexpected 'x'"));
    }
}
