//! # laminar-redisim
//!
//! An in-memory Redis-like broker.
//!
//! dispel4py's Redis mapping enacts a workflow by letting worker processes
//! coordinate exclusively through Redis lists used as work queues. This
//! crate reproduces the slice of Redis that mapping needs — lists with
//! blocking pops, hashes, counters, string keys and TTL expiry — behind a
//! cloneable client handle, so the `laminar-dataflow` Redis mapping can run
//! workers that share nothing but the broker.
//!
//! ```
//! use laminar_redisim::Broker;
//! use std::time::Duration;
//!
//! let broker = Broker::new();
//! let client = broker.client();
//! client.rpush("queue:pe1", b"datum".to_vec());
//! let got = client.blpop("queue:pe1", Duration::from_millis(10)).unwrap();
//! assert_eq!(got, b"datum");
//! ```

mod broker;
mod stats;

pub use broker::{Broker, BrokerError, RedisClient};
pub use stats::BrokerStats;
