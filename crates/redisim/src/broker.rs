//! The broker core: keyspace, list/hash/string values, blocking pops, TTLs.

use crate::stats::BrokerStats;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors surfaced by broker operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// Operation applied to a key holding the wrong kind of value
    /// (Redis's `WRONGTYPE`).
    WrongType { key: String, expected: &'static str, actual: &'static str },
    /// Blocking pop timed out.
    Timeout,
    /// The broker was shut down while the call was blocked.
    Closed,
}

impl std::fmt::Display for BrokerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrokerError::WrongType { key, expected, actual } => {
                write!(f, "WRONGTYPE key '{key}': expected {expected}, holds {actual}")
            }
            BrokerError::Timeout => write!(f, "blocking operation timed out"),
            BrokerError::Closed => write!(f, "broker closed"),
        }
    }
}

impl std::error::Error for BrokerError {}

enum Entry {
    List(VecDeque<Vec<u8>>),
    Hash(HashMap<String, Vec<u8>>),
    Str(Vec<u8>),
    Counter(i64),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::List(_) => "list",
            Entry::Hash(_) => "hash",
            Entry::Str(_) => "string",
            Entry::Counter(_) => "counter",
        }
    }
}

struct Keyspace {
    entries: HashMap<String, Entry>,
    expiries: HashMap<String, Instant>,
    closed: bool,
}

struct Inner {
    keyspace: Mutex<Keyspace>,
    /// Woken whenever a list grows or the broker closes.
    list_grew: Condvar,
    ops: AtomicU64,
    blocked_peak: AtomicU64,
    blocked_now: AtomicU64,
}

/// The broker itself. Cheap to clone via [`Broker::client`].
pub struct Broker {
    inner: Arc<Inner>,
}

impl Default for Broker {
    fn default() -> Self {
        Self::new()
    }
}

impl Broker {
    /// Start an empty broker.
    pub fn new() -> Self {
        Broker {
            inner: Arc::new(Inner {
                keyspace: Mutex::new(Keyspace {
                    entries: HashMap::new(),
                    expiries: HashMap::new(),
                    closed: false,
                }),
                list_grew: Condvar::new(),
                ops: AtomicU64::new(0),
                blocked_peak: AtomicU64::new(0),
                blocked_now: AtomicU64::new(0),
            }),
        }
    }

    /// A client handle; clone freely across threads ("connections").
    pub fn client(&self) -> RedisClient {
        RedisClient { inner: Arc::clone(&self.inner) }
    }

    /// Close the broker: all blocked pops return [`BrokerError::Closed`],
    /// all future blocking calls fail fast. Idempotent.
    pub fn close(&self) {
        let mut ks = self.inner.keyspace.lock();
        ks.closed = true;
        drop(ks);
        self.inner.list_grew.notify_all();
    }

    /// Operation counters for the ablation benches.
    pub fn stats(&self) -> BrokerStats {
        BrokerStats {
            total_ops: self.inner.ops.load(Ordering::Relaxed),
            peak_blocked_clients: self.inner.blocked_peak.load(Ordering::Relaxed),
        }
    }
}

/// A connection handle to a [`Broker`].
#[derive(Clone)]
pub struct RedisClient {
    inner: Arc<Inner>,
}

impl RedisClient {
    fn bump(&self) {
        self.inner.ops.fetch_add(1, Ordering::Relaxed);
    }

    fn purge_expired(ks: &mut Keyspace, key: &str) {
        if let Some(t) = ks.expiries.get(key) {
            if Instant::now() >= *t {
                ks.entries.remove(key);
                ks.expiries.remove(key);
            }
        }
    }

    // ---- lists ----------------------------------------------------------

    /// Append to the tail of a list, creating it if absent. Returns the new
    /// length.
    pub fn rpush(&self, key: &str, value: Vec<u8>) -> Result<usize, BrokerError> {
        self.push_impl(key, value, false)
    }

    /// Prepend to the head of a list. Returns the new length.
    pub fn lpush(&self, key: &str, value: Vec<u8>) -> Result<usize, BrokerError> {
        self.push_impl(key, value, true)
    }

    fn push_impl(&self, key: &str, value: Vec<u8>, front: bool) -> Result<usize, BrokerError> {
        self.bump();
        let mut ks = self.inner.keyspace.lock();
        Self::purge_expired(&mut ks, key);
        let entry = ks.entries.entry(key.to_string()).or_insert_with(|| Entry::List(VecDeque::new()));
        let Entry::List(list) = entry else {
            return Err(BrokerError::WrongType { key: key.into(), expected: "list", actual: entry.kind() });
        };
        if front {
            list.push_front(value);
        } else {
            list.push_back(value);
        }
        let len = list.len();
        drop(ks);
        self.inner.list_grew.notify_all();
        Ok(len)
    }

    /// Non-blocking pop from the head. `None` when empty/absent.
    pub fn lpop(&self, key: &str) -> Result<Option<Vec<u8>>, BrokerError> {
        self.bump();
        let mut ks = self.inner.keyspace.lock();
        Self::purge_expired(&mut ks, key);
        match ks.entries.get_mut(key) {
            None => Ok(None),
            Some(Entry::List(list)) => {
                let v = list.pop_front();
                if list.is_empty() {
                    ks.entries.remove(key);
                }
                Ok(v)
            }
            Some(e) => Err(BrokerError::WrongType { key: key.into(), expected: "list", actual: e.kind() }),
        }
    }

    /// Blocking pop from the head: waits up to `timeout` for an element.
    pub fn blpop(&self, key: &str, timeout: Duration) -> Result<Vec<u8>, BrokerError> {
        self.bump();
        let deadline = Instant::now() + timeout;
        let mut ks = self.inner.keyspace.lock();
        let now_blocked = self.inner.blocked_now.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.blocked_peak.fetch_max(now_blocked, Ordering::Relaxed);
        let result = loop {
            if ks.closed {
                break Err(BrokerError::Closed);
            }
            Self::purge_expired(&mut ks, key);
            if let Some(Entry::List(list)) = ks.entries.get_mut(key) {
                if let Some(v) = list.pop_front() {
                    if list.is_empty() {
                        ks.entries.remove(key);
                    }
                    break Ok(v);
                }
            } else if let Some(e) = ks.entries.get(key) {
                break Err(BrokerError::WrongType { key: key.into(), expected: "list", actual: e.kind() });
            }
            if self.inner.list_grew.wait_until(&mut ks, deadline).timed_out() {
                break Err(BrokerError::Timeout);
            }
        };
        self.inner.blocked_now.fetch_sub(1, Ordering::Relaxed);
        result
    }

    /// Length of a list (0 for absent).
    pub fn llen(&self, key: &str) -> Result<usize, BrokerError> {
        self.bump();
        let mut ks = self.inner.keyspace.lock();
        Self::purge_expired(&mut ks, key);
        match ks.entries.get(key) {
            None => Ok(0),
            Some(Entry::List(l)) => Ok(l.len()),
            Some(e) => Err(BrokerError::WrongType { key: key.into(), expected: "list", actual: e.kind() }),
        }
    }

    // ---- hashes ---------------------------------------------------------

    /// Set a hash field. Returns true if the field was newly created.
    pub fn hset(&self, key: &str, field: &str, value: Vec<u8>) -> Result<bool, BrokerError> {
        self.bump();
        let mut ks = self.inner.keyspace.lock();
        Self::purge_expired(&mut ks, key);
        let entry = ks.entries.entry(key.to_string()).or_insert_with(|| Entry::Hash(HashMap::new()));
        let Entry::Hash(h) = entry else {
            return Err(BrokerError::WrongType { key: key.into(), expected: "hash", actual: entry.kind() });
        };
        Ok(h.insert(field.to_string(), value).is_none())
    }

    /// Read a hash field.
    pub fn hget(&self, key: &str, field: &str) -> Result<Option<Vec<u8>>, BrokerError> {
        self.bump();
        let mut ks = self.inner.keyspace.lock();
        Self::purge_expired(&mut ks, key);
        match ks.entries.get(key) {
            None => Ok(None),
            Some(Entry::Hash(h)) => Ok(h.get(field).cloned()),
            Some(e) => Err(BrokerError::WrongType { key: key.into(), expected: "hash", actual: e.kind() }),
        }
    }

    /// All fields of a hash, sorted by field name for determinism.
    pub fn hgetall(&self, key: &str) -> Result<Vec<(String, Vec<u8>)>, BrokerError> {
        self.bump();
        let mut ks = self.inner.keyspace.lock();
        Self::purge_expired(&mut ks, key);
        match ks.entries.get(key) {
            None => Ok(vec![]),
            Some(Entry::Hash(h)) => {
                let mut out: Vec<(String, Vec<u8>)> = h.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                out.sort_by(|a, b| a.0.cmp(&b.0));
                Ok(out)
            }
            Some(e) => Err(BrokerError::WrongType { key: key.into(), expected: "hash", actual: e.kind() }),
        }
    }

    // ---- strings / counters ----------------------------------------------

    /// Set a string key.
    pub fn set(&self, key: &str, value: Vec<u8>) {
        self.bump();
        let mut ks = self.inner.keyspace.lock();
        ks.expiries.remove(key);
        ks.entries.insert(key.to_string(), Entry::Str(value));
    }

    /// Read a string key.
    pub fn get(&self, key: &str) -> Result<Option<Vec<u8>>, BrokerError> {
        self.bump();
        let mut ks = self.inner.keyspace.lock();
        Self::purge_expired(&mut ks, key);
        match ks.entries.get(key) {
            None => Ok(None),
            Some(Entry::Str(v)) => Ok(Some(v.clone())),
            Some(e) => Err(BrokerError::WrongType { key: key.into(), expected: "string", actual: e.kind() }),
        }
    }

    /// Atomically increment a counter key, creating it at 0 first.
    pub fn incr(&self, key: &str) -> Result<i64, BrokerError> {
        self.incr_by(key, 1)
    }

    /// Atomically add `delta` to a counter key.
    pub fn incr_by(&self, key: &str, delta: i64) -> Result<i64, BrokerError> {
        self.bump();
        let mut ks = self.inner.keyspace.lock();
        Self::purge_expired(&mut ks, key);
        let entry = ks.entries.entry(key.to_string()).or_insert(Entry::Counter(0));
        let Entry::Counter(c) = entry else {
            return Err(BrokerError::WrongType {
                key: key.into(),
                expected: "counter",
                actual: entry.kind(),
            });
        };
        *c += delta;
        Ok(*c)
    }

    // ---- keyspace ---------------------------------------------------------

    /// Delete a key. Returns true if it existed.
    pub fn del(&self, key: &str) -> bool {
        self.bump();
        let mut ks = self.inner.keyspace.lock();
        ks.expiries.remove(key);
        ks.entries.remove(key).is_some()
    }

    /// Set a time-to-live on an existing key. Returns false if absent.
    pub fn expire(&self, key: &str, ttl: Duration) -> bool {
        self.bump();
        let mut ks = self.inner.keyspace.lock();
        if ks.entries.contains_key(key) {
            ks.expiries.insert(key.to_string(), Instant::now() + ttl);
            true
        } else {
            false
        }
    }

    /// Keys with the given prefix (the subset of `KEYS pattern*` the
    /// mapping needs), sorted.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.bump();
        let mut ks = self.inner.keyspace.lock();
        let stale: Vec<String> =
            ks.expiries.iter().filter(|(_, t)| Instant::now() >= **t).map(|(k, _)| k.clone()).collect();
        for k in stale {
            ks.entries.remove(&k);
            ks.expiries.remove(&k);
        }
        let mut out: Vec<String> = ks.entries.keys().filter(|k| k.starts_with(prefix)).cloned().collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn list_fifo_order() {
        let b = Broker::new();
        let c = b.client();
        c.rpush("q", b"1".to_vec()).unwrap();
        c.rpush("q", b"2".to_vec()).unwrap();
        c.lpush("q", b"0".to_vec()).unwrap();
        assert_eq!(c.llen("q").unwrap(), 3);
        assert_eq!(c.lpop("q").unwrap().unwrap(), b"0");
        assert_eq!(c.lpop("q").unwrap().unwrap(), b"1");
        assert_eq!(c.lpop("q").unwrap().unwrap(), b"2");
        assert_eq!(c.lpop("q").unwrap(), None);
        assert_eq!(c.llen("q").unwrap(), 0);
    }

    #[test]
    fn blpop_wakes_on_push() {
        let b = Broker::new();
        let c1 = b.client();
        let c2 = b.client();
        let waiter = thread::spawn(move || c1.blpop("jobs", Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(20));
        c2.rpush("jobs", b"work".to_vec()).unwrap();
        assert_eq!(waiter.join().unwrap().unwrap(), b"work");
    }

    #[test]
    fn blpop_times_out() {
        let b = Broker::new();
        let c = b.client();
        let err = c.blpop("empty", Duration::from_millis(20)).unwrap_err();
        assert_eq!(err, BrokerError::Timeout);
    }

    #[test]
    fn close_unblocks_waiters() {
        let b = Broker::new();
        let c = b.client();
        let waiter = thread::spawn(move || c.blpop("jobs", Duration::from_secs(30)));
        thread::sleep(Duration::from_millis(20));
        b.close();
        assert_eq!(waiter.join().unwrap().unwrap_err(), BrokerError::Closed);
        // Subsequent blocking calls fail fast.
        let c2 = b.client();
        assert_eq!(c2.blpop("jobs", Duration::from_secs(30)).unwrap_err(), BrokerError::Closed);
    }

    #[test]
    fn wrong_type_detected() {
        let b = Broker::new();
        let c = b.client();
        c.set("s", b"v".to_vec());
        assert!(matches!(c.rpush("s", b"x".to_vec()), Err(BrokerError::WrongType { .. })));
        assert!(matches!(c.hget("s", "f"), Err(BrokerError::WrongType { .. })));
        c.rpush("l", b"x".to_vec()).unwrap();
        assert!(matches!(c.incr("l"), Err(BrokerError::WrongType { .. })));
    }

    #[test]
    fn hashes() {
        let b = Broker::new();
        let c = b.client();
        assert!(c.hset("h", "a", b"1".to_vec()).unwrap());
        assert!(!c.hset("h", "a", b"2".to_vec()).unwrap());
        c.hset("h", "b", b"3".to_vec()).unwrap();
        assert_eq!(c.hget("h", "a").unwrap().unwrap(), b"2");
        assert_eq!(c.hget("h", "missing").unwrap(), None);
        let all = c.hgetall("h").unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "a");
    }

    #[test]
    fn counters_are_atomic_across_threads() {
        let b = Broker::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = b.client();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr("n").unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(b.client().incr_by("n", 0).unwrap(), 8000);
    }

    #[test]
    fn expiry() {
        let b = Broker::new();
        let c = b.client();
        c.set("k", b"v".to_vec());
        assert!(c.expire("k", Duration::from_millis(10)));
        assert!(!c.expire("absent", Duration::from_secs(1)));
        thread::sleep(Duration::from_millis(25));
        assert_eq!(c.get("k").unwrap(), None);
    }

    #[test]
    fn keys_with_prefix_sorted() {
        let b = Broker::new();
        let c = b.client();
        c.set("queue:b", vec![]);
        c.set("queue:a", vec![]);
        c.set("other", vec![]);
        assert_eq!(c.keys_with_prefix("queue:"), vec!["queue:a", "queue:b"]);
    }

    #[test]
    fn del_and_stats() {
        let b = Broker::new();
        let c = b.client();
        c.set("k", b"v".to_vec());
        assert!(c.del("k"));
        assert!(!c.del("k"));
        assert!(b.stats().total_ops >= 3);
    }

    #[test]
    fn many_producers_one_consumer() {
        let b = Broker::new();
        let n_producers = 4;
        let per = 250;
        let producers: Vec<_> = (0..n_producers)
            .map(|p| {
                let c = b.client();
                thread::spawn(move || {
                    for i in 0..per {
                        c.rpush("work", format!("{p}:{i}").into_bytes()).unwrap();
                    }
                })
            })
            .collect();
        let consumer = {
            let c = b.client();
            thread::spawn(move || {
                let mut got = 0;
                while got < n_producers * per {
                    c.blpop("work", Duration::from_secs(5)).unwrap();
                    got += 1;
                }
                got
            })
        };
        for p in producers {
            p.join().unwrap();
        }
        assert_eq!(consumer.join().unwrap(), n_producers * per);
    }
}
