//! Broker-level statistics, consumed by the mapping ablation benches.

/// A snapshot of broker activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerStats {
    /// Total operations served since startup.
    pub total_ops: u64,
    /// Peak number of simultaneously blocked `BLPOP` clients.
    pub peak_blocked_clients: u64,
}

impl std::fmt::Display for BrokerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ops={} peak_blocked={}", self.total_ops, self.peak_blocked_clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_format() {
        let s = BrokerStats { total_ops: 10, peak_blocked_clients: 2 };
        assert_eq!(s.to_string(), "ops=10 peak_blocked=2");
    }
}
