//! Dataflow error type.

use laminar_script::ScriptError;
use std::fmt;

/// Errors produced while building or enacting workflows.
#[derive(Debug, Clone, PartialEq)]
pub enum DataflowError {
    /// Graph construction error (unknown node, bad port, duplicate name…).
    Graph(String),
    /// The graph failed validation before enactment.
    Validation(String),
    /// A PE failed at runtime; carries the PE name and the script error.
    PeFailed { pe: String, error: ScriptError },
    /// A mapping back-end failed (worker panic, broker closed…).
    Enactment(String),
    /// Run options were inconsistent (e.g. zero processes).
    Options(String),
    /// The run was cancelled via its
    /// [`crate::mapping::CancelToken`] before completing. Not a failure:
    /// events emitted before the stop are a valid prefix of the run's
    /// stream, and consumers see a `Cancelled` terminal marker instead of
    /// an error.
    Cancelled,
    /// A deliberately injected failure (see [`crate::fault::FaultPlan`]):
    /// the run was killed at the named epoch by the chaos harness. The
    /// checkpoint sealed just before the kill is durable, so a job that
    /// dies this way is resumable.
    Injected {
        /// The epoch whose seal triggered the kill.
        epoch: u64,
    },
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::Graph(m) => write!(f, "graph error: {m}"),
            DataflowError::Validation(m) => write!(f, "validation error: {m}"),
            DataflowError::PeFailed { pe, error } => write!(f, "PE '{pe}' failed: {error}"),
            DataflowError::Enactment(m) => write!(f, "enactment error: {m}"),
            DataflowError::Options(m) => write!(f, "options error: {m}"),
            DataflowError::Cancelled => write!(f, "run cancelled"),
            DataflowError::Injected { epoch } => {
                write!(f, "injected fault: run killed after epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for DataflowError {}

impl From<ScriptError> for DataflowError {
    fn from(e: ScriptError) -> Self {
        DataflowError::PeFailed { pe: "<unknown>".into(), error: e }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_script::ErrorKind;

    #[test]
    fn display_variants() {
        assert!(DataflowError::Graph("x".into()).to_string().contains("graph error"));
        let pf = DataflowError::PeFailed {
            pe: "IsPrime".into(),
            error: ScriptError::new(ErrorKind::TypeError, "boom"),
        };
        assert!(pf.to_string().contains("IsPrime"));
        assert!(pf.to_string().contains("boom"));
    }
}
