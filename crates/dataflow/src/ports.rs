//! Port-name interning: the zero-allocation backbone of the enactment
//! datapath.
//!
//! Port names are user-facing strings ("output", "num", ...). Routing a
//! datum by comparing and cloning those strings costs a heap allocation per
//! datum — exactly the overhead the paper's Table 5 says the orchestration
//! layer must not add. Instead, every port name that can appear during an
//! enactment is interned **once** into a [`PortTable`] when the concrete
//! plan is built, and the hot path carries dense [`PortId`] indices: `Copy`,
//! one word, comparable with a register compare, serializable as a small
//! integer on the MPI/Redis wire.

use std::collections::HashMap;
use std::sync::Arc;

/// Dense index of an interned port name. Valid only together with the
/// [`PortTable`] of the plan that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortId(pub u32);

/// Interner mapping port names to dense [`PortId`]s. Built once per
/// concrete plan; read-only (and shared) during enactment. Names are
/// stored as `Arc<str>` so event streams can carry them by refcount.
#[derive(Debug, Default, Clone)]
pub struct PortTable {
    names: Vec<Arc<str>>,
    index: HashMap<Arc<str>, PortId>,
}

impl PortTable {
    /// Intern `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> PortId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = PortId(self.names.len() as u32);
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.index.insert(shared, id);
        id
    }

    /// Resolve a name to its id without interning. Allocation-free.
    pub fn id(&self, name: &str) -> Option<PortId> {
        self.index.get(name).copied()
    }

    /// The name behind an id. Allocation-free.
    ///
    /// # Panics
    /// If `id` did not come from this table.
    pub fn name(&self, id: PortId) -> &str {
        &self.names[id.0 as usize]
    }

    /// The name behind an id as a refcounted handle — what event streams
    /// carry, so emitting an event never allocates a name.
    ///
    /// # Panics
    /// If `id` did not come from this table.
    pub fn shared_name(&self, id: PortId) -> Arc<str> {
        Arc::clone(&self.names[id.0 as usize])
    }

    /// Whether `id` is valid for this table (wire-format validation).
    pub fn contains(&self, id: PortId) -> bool {
        (id.0 as usize) < self.names.len()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = PortTable::default();
        let a = t.intern("output");
        let b = t.intern("input");
        assert_ne!(a, b);
        assert_eq!(t.intern("output"), a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = PortTable::default();
        let id = t.intern("num");
        assert_eq!(t.id("num"), Some(id));
        assert_eq!(t.name(id), "num");
        assert_eq!(t.id("nope"), None);
        assert!(t.contains(id));
        assert!(!t.contains(PortId(99)));
    }

    #[test]
    fn empty_table() {
        let t = PortTable::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
