//! Routing policies: how a datum chooses among destination PE instances.

use laminar_json::Value;

/// Grouping of an input connection (paper §2.1 "Grouping").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grouping {
    /// Round-robin across destination instances (the default).
    Shuffle,
    /// Route by hash of the tuple element at this index — dispel4py's
    /// `group-by`, behaving like MapReduce key routing. Data units with the
    /// same key always reach the same instance.
    GroupBy(usize),
    /// Broadcast every datum to all destination instances.
    OneToAll,
    /// Send everything to instance 0 (global aggregation).
    AllToOne,
}

/// Stateful router for one connection: owns the round-robin cursor.
#[derive(Debug, Clone)]
pub struct Router {
    grouping: Grouping,
    n_dest: usize,
    cursor: usize,
}

impl Router {
    /// Router over `n_dest` destination instances.
    pub fn new(grouping: Grouping, n_dest: usize) -> Self {
        assert!(n_dest > 0, "router needs at least one destination");
        Router { grouping, n_dest, cursor: 0 }
    }

    /// The grouping this router applies.
    pub fn grouping(&self) -> Grouping {
        self.grouping
    }

    /// The round-robin cursor — the router's only mutable state, captured
    /// by epoch checkpoints so a resumed shuffle continues where the
    /// original left off.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Restore a cursor captured by [`Router::cursor`].
    pub fn set_cursor(&mut self, cursor: usize) {
        self.cursor = cursor % self.n_dest;
    }

    /// Destination instance indices for `datum`. One element except for
    /// `OneToAll`.
    pub fn route(&mut self, datum: &Value) -> Vec<usize> {
        let mut out = Vec::new();
        self.route_into(datum, &mut out);
        out
    }

    /// Allocation-free routing: append the destination indices for `datum`
    /// to `out` (which the caller clears and reuses across datums).
    pub fn route_into(&mut self, datum: &Value, out: &mut Vec<usize>) {
        match self.grouping {
            Grouping::Shuffle => {
                let i = self.cursor;
                self.cursor = (self.cursor + 1) % self.n_dest;
                out.push(i);
            }
            Grouping::GroupBy(key_index) => out.push(Self::groupby_index(datum, key_index, self.n_dest)),
            Grouping::OneToAll => out.extend(0..self.n_dest),
            Grouping::AllToOne => out.push(0),
        }
    }

    /// The group-by hash rule, exposed so distributed mappings (Redis) can
    /// route identically without sharing a `Router`.
    pub fn groupby_index(datum: &Value, key_index: usize, n_dest: usize) -> usize {
        // The key is datum[key_index] for tuples/lists; scalar datums group
        // by their own value (a convenient degenerate case). Hashed by
        // reference — keys are never cloned on the routing path.
        static NULL: Value = Value::Null;
        let key = match datum {
            Value::Array(a) => a.get(key_index).unwrap_or(&NULL),
            other => other,
        };
        (key.stable_hash() % n_dest as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_json::jarr;

    #[test]
    fn shuffle_round_robins() {
        let mut r = Router::new(Grouping::Shuffle, 3);
        let v = Value::Int(0);
        let picks: Vec<usize> = (0..6).flat_map(|_| r.route(&v)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn groupby_is_sticky() {
        let mut r = Router::new(Grouping::GroupBy(0), 4);
        let a1 = r.route(&jarr!["the", 1]);
        let a2 = r.route(&jarr!["the", 99]);
        assert_eq!(a1, a2, "same key must route to the same instance");
        // Same rule as the static function.
        assert_eq!(a1[0], Router::groupby_index(&jarr!["the", 5], 0, 4));
    }

    #[test]
    fn groupby_distributes_distinct_keys() {
        let mut r = Router::new(Grouping::GroupBy(0), 8);
        let mut hit = std::collections::HashSet::new();
        for i in 0..200 {
            hit.insert(r.route(&jarr![format!("key{i}"), 1])[0]);
        }
        assert!(hit.len() >= 6, "expected most instances hit, got {hit:?}");
    }

    #[test]
    fn groupby_missing_index_is_stable() {
        let mut r = Router::new(Grouping::GroupBy(5), 4);
        let a = r.route(&jarr![1]);
        let b = r.route(&jarr![2]);
        assert_eq!(a, b, "missing key treats all tuples as one group (null key)");
    }

    #[test]
    fn groupby_scalar_uses_value() {
        let mut r = Router::new(Grouping::GroupBy(0), 16);
        let a = r.route(&Value::Str("alpha".into()));
        let b = r.route(&Value::Str("alpha".into()));
        assert_eq!(a, b);
    }

    #[test]
    fn one_to_all_broadcasts() {
        let mut r = Router::new(Grouping::OneToAll, 3);
        assert_eq!(r.route(&Value::Int(1)), vec![0, 1, 2]);
    }

    #[test]
    fn all_to_one_targets_zero() {
        let mut r = Router::new(Grouping::AllToOne, 5);
        for i in 0..4 {
            assert_eq!(r.route(&Value::Int(i)), vec![0]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one destination")]
    fn zero_destinations_panics() {
        let _ = Router::new(Grouping::Shuffle, 0);
    }
}
