//! Runtime Processing Elements.
//!
//! Two families implement the same [`Pe`] trait:
//!
//! * [`ScriptPe`] — a LamScript `pe` declaration interpreted at runtime.
//!   This is the serverless path: the source travels through the registry
//!   and the engine, and each instance keeps its own interpreter state.
//! * [`NativePe`] / the [`producer_fn`]/[`iterative_fn`]/[`consumer_fn`]
//!   builders — Rust closures, used by baselines and benchmarks where
//!   interpreter overhead must be excluded.

use crate::error::DataflowError;
use laminar_json::Value;
use laminar_script::{
    analysis, compile, parse_script, to_source, Host, Interp, NullHost, PeDecl, PeKind, PortDecl, Program,
    Script, Sink, Vm,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Static description of a PE: ports, kind, provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct PeMeta {
    /// PE class name.
    pub name: String,
    /// Archetype.
    pub kind: PeKind,
    /// Input ports (with group-by info).
    pub inputs: Vec<PortDecl>,
    /// Output port names.
    pub outputs: Vec<String>,
    /// Canonical LamScript source, if this PE is scripted.
    pub source: Option<String>,
    /// Declared + inferred library imports (drives the engine installer).
    pub imports: Vec<String>,
    /// Optional human description (the registry may overwrite with a
    /// generated summary).
    pub description: Option<String>,
    /// Whether the PE keeps per-instance state.
    pub stateful: bool,
}

impl PeMeta {
    /// Metadata extracted from a parsed LamScript PE declaration.
    pub fn from_decl(decl: &PeDecl) -> PeMeta {
        PeMeta {
            name: decl.name.clone(),
            kind: decl.kind,
            inputs: decl.inputs.clone(),
            outputs: decl.outputs.clone(),
            source: None,
            imports: analysis::pe_imports(decl),
            description: decl.doc.clone(),
            stateful: decl.is_stateful(),
        }
    }

    /// Does this PE have an input port with the given name?
    pub fn has_input(&self, port: &str) -> bool {
        self.inputs.iter().any(|p| p.name == port)
    }

    /// Does this PE have an output port with the given name?
    pub fn has_output(&self, port: &str) -> bool {
        self.outputs.iter().any(|p| p == port)
    }

    /// Group-by key for an input port, if declared.
    pub fn groupby(&self, port: &str) -> Option<usize> {
        self.inputs.iter().find(|p| p.name == port).and_then(|p| p.groupby)
    }
}

/// A runtime PE instance. One instance == one unit of parallelism.
pub trait Pe: Send {
    /// Static metadata.
    fn meta(&self) -> &PeMeta;

    /// Called once before any data, with the instance index (0-based) and
    /// total instance count — PEs occasionally need them (e.g. sharded
    /// producers).
    fn setup(&mut self, _instance: usize, _total: usize, _out: &mut dyn Sink) -> Result<(), DataflowError> {
        Ok(())
    }

    /// Process one datum (`Some((port, value))`) or one producer iteration
    /// (`None`). Emissions go to `out`.
    fn process(
        &mut self,
        input: Option<(&str, Value)>,
        iteration: i64,
        out: &mut dyn Sink,
    ) -> Result<(), DataflowError>;

    /// Ask the instance to run on its reference implementation instead of
    /// any compiled fast path (see [`crate::mapping::RunOptions::interpret_scripts`]).
    /// Must be called before [`Pe::setup`]; no-op for PEs with one backend.
    fn use_interpreter(&mut self) {}

    /// Capture the instance's durable cross-invocation state for an epoch
    /// checkpoint, or `None` if this PE kind has nothing snapshotable
    /// (native closure PEs). For scripted PEs the snapshot covers the
    /// script's `state.*` value — which is where group-by tables live —
    /// plus the backend RNG, and both backends (VM and interpreter) must
    /// produce byte-identical snapshots for the same history.
    fn snapshot_state(&self) -> Option<Value> {
        None
    }

    /// Restore state captured by [`Pe::snapshot_state`]. Called after
    /// [`Pe::setup`] (so `init` has run and the backend exists); the
    /// restored state overwrites whatever `init` produced. No-op for PEs
    /// that return `None` from `snapshot_state`.
    fn restore_state(&mut self, _snapshot: &Value) {}
}

/// A cloneable recipe producing fresh [`Pe`] instances; the graph stores
/// factories, mappings instantiate them per-instance.
pub trait PeFactory: Send + Sync {
    /// Static metadata (shared by all instances).
    fn meta(&self) -> &PeMeta;
    /// Create a fresh instance with isolated state.
    fn instantiate(&self) -> Box<dyn Pe>;
    /// Time spent compiling this PE when the factory was built: zero for
    /// native PEs, near-zero on compile-cache hits — which is what makes it
    /// a useful cache-effectiveness signal in [`crate::mapping::StageTimings`].
    fn compile_time(&self) -> Duration {
        Duration::ZERO
    }
}

// ---------------------------------------------------------------------------
// Scripted PEs
// ---------------------------------------------------------------------------

/// Factory for script-defined PEs.
///
/// Construction compiles the canonical source to bytecode through the
/// process-wide compile cache ([`compile::shared`]); instances then run
/// the [`Vm`] unless the run forces the interpreter or compilation was
/// unavailable. Both engines execute the *canonical reparse* of the
/// source, so their observable behaviour — including error line numbers —
/// is identical, and equal canonical sources share one compiled program
/// across factories and engine forks.
pub struct ScriptPeFactory {
    script: Arc<Script>,
    decl: PeDecl,
    meta: PeMeta,
    host: Arc<dyn Host + Send + Sync>,
    fuel: u64,
    seed: u64,
    program: Option<Arc<Program>>,
    compile_time: Duration,
}

impl ScriptPeFactory {
    /// Parse `source` and build a factory for the PE named `pe_name`.
    pub fn from_source(source: &str, pe_name: &str) -> Result<Self, DataflowError> {
        Self::from_source_with_host(source, pe_name, Arc::new(NullHost))
    }

    /// Like [`Self::from_source`] but with a host providing external
    /// (simulated) services to the script.
    pub fn from_source_with_host(
        source: &str,
        pe_name: &str,
        host: Arc<dyn Host + Send + Sync>,
    ) -> Result<Self, DataflowError> {
        let parsed =
            parse_script(source).map_err(|e| DataflowError::PeFailed { pe: pe_name.into(), error: e })?;
        if parsed.pe(pe_name).is_none() {
            return Err(DataflowError::Graph(format!("source defines no PE named '{pe_name}'")));
        }
        let canonical = to_source(&parsed);
        // Execute the canonical reparse (not the original parse): the
        // compiled program is cached under the canonical text, so running
        // the interpreter on the same AST keeps the two backends
        // observationally identical down to error line numbers.
        let script = parse_script(&canonical).unwrap_or(parsed);
        let decl = script
            .pe(pe_name)
            .cloned()
            .ok_or_else(|| DataflowError::Graph(format!("source defines no PE named '{pe_name}'")))?;
        let mut meta = PeMeta::from_decl(&decl);
        meta.source = Some(canonical.clone());
        let t0 = Instant::now();
        // Compilation failure (e.g. a pathologically large body overflowing
        // the bytecode's index spaces) is not fatal: the tree-walking
        // interpreter remains as the fallback backend.
        let program = compile::shared(&canonical).ok();
        let compile_time = t0.elapsed();
        Ok(ScriptPeFactory {
            script: Arc::new(script),
            decl,
            meta,
            host,
            fuel: laminar_script::interp::DEFAULT_FUEL,
            seed: 0x1a31_4a12,
            program,
            compile_time,
        })
    }

    /// Override the per-invocation fuel budget for instances.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Seed the per-instance RNGs (instance `i` gets `seed + i`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl PeFactory for ScriptPeFactory {
    fn meta(&self) -> &PeMeta {
        &self.meta
    }

    fn instantiate(&self) -> Box<dyn Pe> {
        Box::new(ScriptPe {
            script: Arc::clone(&self.script),
            decl: self.decl.clone(),
            meta: self.meta.clone(),
            host: Arc::clone(&self.host),
            fuel: self.fuel,
            seed: self.seed,
            program: self.program.clone(),
            prefer_interp: false,
            backend: None,
            state: Value::Null,
        })
    }

    fn compile_time(&self) -> Duration {
        self.compile_time
    }
}

/// The engine executing one scripted instance.
enum ScriptBackend {
    /// Compiled register bytecode — the default.
    Vm(Vm),
    /// Tree-walking interpreter — the oracle/fallback.
    Interp(Interp),
}

/// A running scripted PE instance.
pub struct ScriptPe {
    script: Arc<Script>,
    decl: PeDecl,
    meta: PeMeta,
    host: Arc<dyn Host + Send + Sync>,
    fuel: u64,
    seed: u64,
    program: Option<Arc<Program>>,
    prefer_interp: bool,
    backend: Option<ScriptBackend>,
    state: Value,
}

impl Pe for ScriptPe {
    fn meta(&self) -> &PeMeta {
        &self.meta
    }

    fn setup(&mut self, instance: usize, _total: usize, out: &mut dyn Sink) -> Result<(), DataflowError> {
        let seed = self.seed.wrapping_add(instance as u64);
        let pe_failed =
            |e: laminar_script::ScriptError| DataflowError::PeFailed { pe: self.meta.name.clone(), error: e };
        match (&self.program, self.prefer_interp) {
            (Some(program), false) => {
                let mut vm =
                    Vm::new(Arc::clone(program), Arc::clone(&self.host)).with_fuel(self.fuel).with_seed(seed);
                let r = vm.run_init(&self.meta.name, &mut self.state, out);
                self.backend = Some(ScriptBackend::Vm(vm));
                r.map_err(pe_failed)
            }
            _ => {
                let mut interp =
                    Interp::new(&self.script, Arc::clone(&self.host)).with_fuel(self.fuel).with_seed(seed);
                let r = interp.run_init(&self.decl, &mut self.state, out);
                self.backend = Some(ScriptBackend::Interp(interp));
                r.map_err(pe_failed)
            }
        }
    }

    fn process(
        &mut self,
        input: Option<(&str, Value)>,
        iteration: i64,
        out: &mut dyn Sink,
    ) -> Result<(), DataflowError> {
        if self.backend.is_none() {
            self.setup(0, 1, out)?;
        }
        let (value, port) = match input {
            Some((p, v)) => (Some(v), Some(p)),
            None => (None, None),
        };
        let returned = match self.backend.as_mut().expect("setup ran") {
            ScriptBackend::Vm(vm) => {
                vm.run_process(&self.meta.name, value, port, iteration, &mut self.state, out)
            }
            ScriptBackend::Interp(interp) => {
                interp.run_process(&self.decl, value, port, iteration, &mut self.state, out)
            }
        }
        .map_err(|e| DataflowError::PeFailed { pe: self.meta.name.clone(), error: e })?;
        // dispel4py shorthand: a returned value is written to the default
        // output port.
        if let Some(v) = returned {
            if let Some(port) = self.decl.default_output() {
                out.emit(port, v);
            }
        }
        Ok(())
    }

    fn use_interpreter(&mut self) {
        self.prefer_interp = true;
        debug_assert!(self.backend.is_none(), "use_interpreter must precede setup");
    }

    fn snapshot_state(&self) -> Option<Value> {
        // The backend's entire cross-invocation footprint: the script's
        // `state.*` value and the RNG position. Fuel resets every
        // invocation and VM scratch buffers are cleared, so neither is
        // state. The shape is backend-independent by construction — the
        // parity proptests pin it byte-for-byte.
        let rng = match self.backend.as_ref()? {
            ScriptBackend::Vm(vm) => vm.rng_state(),
            ScriptBackend::Interp(interp) => interp.rng_state(),
        };
        let mut snap = Value::Null;
        snap.set("state", self.state.clone()).set("rng", rng as i64);
        Some(snap)
    }

    fn restore_state(&mut self, snapshot: &Value) {
        self.state = snapshot["state"].clone();
        let rng = snapshot["rng"].as_i64().unwrap_or(0) as u64;
        match self.backend.as_mut() {
            Some(ScriptBackend::Vm(vm)) => vm.set_rng_state(rng),
            Some(ScriptBackend::Interp(interp)) => interp.set_rng_state(rng),
            None => {}
        }
    }
}

// ---------------------------------------------------------------------------
// Native PEs
// ---------------------------------------------------------------------------

type NativeFn = dyn FnMut(Option<(&str, Value)>, i64, &mut dyn Sink) -> Result<(), DataflowError> + Send;

/// A PE whose behaviour is a Rust closure. Build via [`producer_fn`],
/// [`iterative_fn`], [`consumer_fn`] or [`NativePe::generic`].
pub struct NativePe {
    meta: PeMeta,
    behaviour: Box<NativeFn>,
}

impl Pe for NativePe {
    fn meta(&self) -> &PeMeta {
        &self.meta
    }

    fn process(
        &mut self,
        input: Option<(&str, Value)>,
        iteration: i64,
        out: &mut dyn Sink,
    ) -> Result<(), DataflowError> {
        (self.behaviour)(input, iteration, out)
    }
}

/// Factory for native PEs: holds a constructor closure so each instance
/// gets fresh captured state.
pub struct NativePeFactory {
    meta: PeMeta,
    make: Box<dyn Fn() -> Box<NativeFn> + Send + Sync>,
}

impl NativePeFactory {
    /// Generic constructor: full control over ports and behaviour.
    pub fn new(meta: PeMeta, make: impl Fn() -> Box<NativeFn> + Send + Sync + 'static) -> Arc<Self> {
        Arc::new(NativePeFactory { meta, make: Box::new(make) })
    }
}

impl PeFactory for NativePeFactory {
    fn meta(&self) -> &PeMeta {
        &self.meta
    }

    fn instantiate(&self) -> Box<dyn Pe> {
        Box::new(NativePe { meta: self.meta.clone(), behaviour: (self.make)() })
    }
}

fn native_meta(
    name: &str,
    kind: PeKind,
    inputs: Vec<PortDecl>,
    outputs: Vec<String>,
    stateful: bool,
) -> PeMeta {
    PeMeta {
        name: name.to_string(),
        kind,
        inputs,
        outputs,
        source: None,
        imports: vec![],
        description: None,
        stateful,
    }
}

/// Native producer: `f(iteration)` returns the datum for the default output.
pub fn producer_fn<F>(name: &str, f: F) -> Arc<NativePeFactory>
where
    F: Fn(i64) -> Value + Send + Sync + Clone + 'static,
{
    let meta = native_meta(name, PeKind::Producer, vec![], vec!["output".into()], false);
    NativePeFactory::new(meta, move || {
        let f = f.clone();
        Box::new(move |_input, iteration, out| {
            out.emit("output", f(iteration));
            Ok(())
        })
    })
}

/// Native iterative PE: `f(datum)` returns `Some(mapped)` to forward or
/// `None` to drop.
pub fn iterative_fn<F>(name: &str, f: F) -> Arc<NativePeFactory>
where
    F: Fn(Value) -> Option<Value> + Send + Sync + Clone + 'static,
{
    let meta = native_meta(
        name,
        PeKind::Iterative,
        vec![PortDecl { name: "input".into(), groupby: None }],
        vec!["output".into()],
        false,
    );
    NativePeFactory::new(meta, move || {
        let f = f.clone();
        Box::new(move |input, _iteration, out| {
            if let Some((_, v)) = input {
                if let Some(mapped) = f(v) {
                    out.emit("output", mapped);
                }
            }
            Ok(())
        })
    })
}

/// Native consumer: `f(datum)` runs for its side effects (often `print`).
pub fn consumer_fn<F>(name: &str, f: F) -> Arc<NativePeFactory>
where
    F: Fn(Value, &mut dyn Sink) + Send + Sync + Clone + 'static,
{
    let meta = native_meta(
        name,
        PeKind::Consumer,
        vec![PortDecl { name: "input".into(), groupby: None }],
        vec![],
        false,
    );
    NativePeFactory::new(meta, move || {
        let f = f.clone();
        Box::new(move |input, _iteration, out| {
            if let Some((_, v)) = input {
                f(v, out);
            }
            Ok(())
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use laminar_script::VecSink;

    const SRC: &str = r#"
        pe Producer : producer { output output; process { emit(iteration * 10); } }
        pe Stateful : iterative {
            input x; output output;
            init { state.seen = 0; }
            process { state.seen = state.seen + 1; emit(state.seen); }
        }
    "#;

    #[test]
    fn script_pe_meta() {
        let f = ScriptPeFactory::from_source(SRC, "Stateful").unwrap();
        let m = f.meta();
        assert_eq!(m.name, "Stateful");
        assert_eq!(m.kind, PeKind::Iterative);
        assert!(m.stateful);
        assert!(m.source.as_ref().unwrap().contains("pe Stateful"));
        assert!(m.has_input("x"));
        assert!(m.has_output("output"));
        assert!(!m.has_input("nope"));
    }

    #[test]
    fn unknown_pe_name_fails() {
        assert!(matches!(ScriptPeFactory::from_source(SRC, "Missing"), Err(DataflowError::Graph(_))));
    }

    #[test]
    fn instances_have_isolated_state() {
        let f = ScriptPeFactory::from_source(SRC, "Stateful").unwrap();
        let mut a = f.instantiate();
        let mut b = f.instantiate();
        let mut sink = VecSink::default();
        for _ in 0..3 {
            a.process(Some(("x", Value::Int(0))), 0, &mut sink).unwrap();
        }
        b.process(Some(("x", Value::Int(0))), 0, &mut sink).unwrap();
        let counts: Vec<i64> = sink.emitted.iter().map(|(_, v)| v.as_i64().unwrap()).collect();
        // a counted 1,2,3; b restarted at 1.
        assert_eq!(counts, vec![1, 2, 3, 1]);
    }

    #[test]
    fn producer_iteration_flows() {
        let f = ScriptPeFactory::from_source(SRC, "Producer").unwrap();
        let mut p = f.instantiate();
        let mut sink = VecSink::default();
        for it in 0..3 {
            p.process(None, it, &mut sink).unwrap();
        }
        let vals: Vec<i64> = sink.emitted.iter().map(|(_, v)| v.as_i64().unwrap()).collect();
        assert_eq!(vals, vec![0, 10, 20]);
    }

    #[test]
    fn distinct_instances_get_distinct_rng_streams() {
        let src = "pe R : producer { output output; process { emit(randint(1, 1000000)); } }";
        let f = ScriptPeFactory::from_source(src, "R").unwrap().with_seed(99);
        let mut a = f.instantiate();
        let mut b = f.instantiate();
        let mut sa = VecSink::default();
        let mut sb = VecSink::default();
        a.setup(0, 2, &mut sa).unwrap();
        b.setup(1, 2, &mut sb).unwrap();
        a.process(None, 0, &mut sa).unwrap();
        b.process(None, 0, &mut sb).unwrap();
        assert_ne!(sa.emitted, sb.emitted, "instance RNGs must differ");
    }

    #[test]
    fn snapshot_roundtrip_resumes_state_and_rng_on_both_backends() {
        let src = r#"
            pe S : iterative {
                input x; output output;
                init { state.n = 0; }
                process { state.n = state.n + 1; emit([state.n, randint(0, 1000000)]); }
            }
        "#;
        for interp in [false, true] {
            let f = ScriptPeFactory::from_source(src, "S").unwrap().with_seed(7);
            let mut live = f.instantiate();
            if interp {
                live.use_interpreter();
            }
            let mut sink = VecSink::default();
            live.setup(0, 1, &mut sink).unwrap();
            live.process(Some(("x", Value::Int(0))), 0, &mut sink).unwrap();
            live.process(Some(("x", Value::Int(0))), 1, &mut sink).unwrap();
            let snap = live.snapshot_state().expect("scripted PEs snapshot");
            assert_eq!(snap["state"]["n"].as_i64(), Some(2));
            // A fresh instance restored from the snapshot continues the
            // exact counter and RNG stream of the live one.
            let mut resumed = f.instantiate();
            if interp {
                resumed.use_interpreter();
            }
            let mut rsink = VecSink::default();
            resumed.setup(0, 1, &mut rsink).unwrap();
            resumed.restore_state(&snap);
            rsink.emitted.clear();
            let mut live_sink = VecSink::default();
            live.process(Some(("x", Value::Int(0))), 2, &mut live_sink).unwrap();
            resumed.process(Some(("x", Value::Int(0))), 2, &mut rsink).unwrap();
            assert_eq!(live_sink.emitted, rsink.emitted, "interp={interp}");
        }
    }

    #[test]
    fn native_pes_have_no_snapshot() {
        let prod = producer_fn("Nums", Value::Int);
        let mut p = prod.instantiate();
        assert!(p.snapshot_state().is_none());
        p.restore_state(&Value::Int(1)); // no-op, must not panic
    }

    #[test]
    fn native_pes() {
        let prod = producer_fn("Nums", |i| Value::Int(i + 1));
        let doubler = iterative_fn("Double", |v| v.as_i64().map(|n| Value::Int(n * 2)));
        let mut sink = VecSink::default();
        let mut p = prod.instantiate();
        p.process(None, 4, &mut sink).unwrap();
        assert_eq!(sink.emitted[0].1, Value::Int(5));
        let mut d = doubler.instantiate();
        d.process(Some(("input", Value::Int(5))), 0, &mut sink).unwrap();
        assert_eq!(sink.emitted[1].1, Value::Int(10));
        // Dropping filter
        let dropper = iterative_fn("Drop", |_| None);
        let mut dr = dropper.instantiate();
        let before = sink.emitted.len();
        dr.process(Some(("input", Value::Int(1))), 0, &mut sink).unwrap();
        assert_eq!(sink.emitted.len(), before);
    }

    #[test]
    fn consumer_fn_side_effects() {
        let cons = consumer_fn("Printer", |v, out| out.print(&format!("got {v}")));
        let mut c = cons.instantiate();
        let mut sink = VecSink::default();
        c.process(Some(("input", Value::Int(7))), 0, &mut sink).unwrap();
        assert_eq!(sink.printed, vec!["got 7"]);
        assert!(c.meta().outputs.is_empty());
        assert_eq!(c.meta().kind, PeKind::Consumer);
    }

    #[test]
    fn groupby_surfaces_in_meta() {
        let src = r#"pe G : generic { input input groupby 1; output output; process { emit(input); } }"#;
        let f = ScriptPeFactory::from_source(src, "G").unwrap();
        assert_eq!(f.meta().groupby("input"), Some(1));
        assert_eq!(f.meta().groupby("other"), None);
    }
}
