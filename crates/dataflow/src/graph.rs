//! Abstract workflow graphs (what the user describes; green graph of
//! paper Figure 1).

use crate::error::DataflowError;
use crate::pe::{PeFactory, ScriptPeFactory};
use crate::ports::PortTable;
use crate::routing::Grouping;
use laminar_script::{parse_script, Host, WorkflowDecl};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::Arc;

/// Index of a node (PE) in a workflow graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// A directed edge between two PE ports.
#[derive(Clone)]
pub struct Connection {
    /// Source node.
    pub from: NodeId,
    /// Source output port.
    pub from_port: String,
    /// Destination node.
    pub to: NodeId,
    /// Destination input port.
    pub to_port: String,
    /// Routing policy among destination instances.
    pub grouping: Grouping,
}

/// The abstract workflow: PE factories plus connections.
pub struct WorkflowGraph {
    name: String,
    nodes: Vec<Arc<dyn PeFactory>>,
    connections: Vec<Connection>,
    description: Option<String>,
}

impl WorkflowGraph {
    /// Empty graph with a name (the registry's `workflowName`).
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowGraph { name: name.into(), nodes: Vec::new(), connections: Vec::new(), description: None }
    }

    /// Workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Optional description.
    pub fn description(&self) -> Option<&str> {
        self.description.as_deref()
    }

    /// Set the description (used by the registry).
    pub fn set_description(&mut self, d: impl Into<String>) {
        self.description = Some(d.into());
    }

    /// Add a PE factory as a node.
    pub fn add(&mut self, factory: Arc<dyn PeFactory>) -> NodeId {
        self.nodes.push(factory);
        NodeId(self.nodes.len() - 1)
    }

    /// Convenience: parse LamScript source and add the PE named `pe_name`.
    pub fn add_script_pe(&mut self, source: &str, pe_name: &str) -> Result<NodeId, DataflowError> {
        let f = ScriptPeFactory::from_source(source, pe_name)?;
        Ok(self.add(Arc::new(f)))
    }

    /// Like [`Self::add_script_pe`] with a host for external services.
    pub fn add_script_pe_with_host(
        &mut self,
        source: &str,
        pe_name: &str,
        host: Arc<dyn Host + Send + Sync>,
    ) -> Result<NodeId, DataflowError> {
        let f = ScriptPeFactory::from_source_with_host(source, pe_name, host)?;
        Ok(self.add(Arc::new(f)))
    }

    /// Connect `from.from_port -> to.to_port`. The grouping defaults to the
    /// destination port's declared `groupby` (if any), else shuffle.
    pub fn connect(
        &mut self,
        from: NodeId,
        from_port: &str,
        to: NodeId,
        to_port: &str,
    ) -> Result<(), DataflowError> {
        let grouping = match self.node(to)?.meta().groupby(to_port) {
            Some(k) => Grouping::GroupBy(k),
            None => Grouping::Shuffle,
        };
        self.connect_grouped(from, from_port, to, to_port, grouping)
    }

    /// Connect with an explicit grouping, overriding the port declaration.
    pub fn connect_grouped(
        &mut self,
        from: NodeId,
        from_port: &str,
        to: NodeId,
        to_port: &str,
        grouping: Grouping,
    ) -> Result<(), DataflowError> {
        let from_meta = self.node(from)?.meta();
        if !from_meta.has_output(from_port) {
            return Err(DataflowError::Graph(format!(
                "PE '{}' has no output port '{from_port}'",
                from_meta.name
            )));
        }
        let to_meta = self.node(to)?.meta();
        if !to_meta.has_input(to_port) {
            return Err(DataflowError::Graph(format!("PE '{}' has no input port '{to_port}'", to_meta.name)));
        }
        self.connections.push(Connection {
            from,
            from_port: from_port.to_string(),
            to,
            to_port: to_port.to_string(),
            grouping,
        });
        Ok(())
    }

    /// Node lookup.
    pub fn node(&self, id: NodeId) -> Result<&Arc<dyn PeFactory>, DataflowError> {
        self.nodes.get(id.0).ok_or_else(|| DataflowError::Graph(format!("unknown node id {}", id.0)))
    }

    /// All nodes in insertion order.
    pub fn nodes(&self) -> &[Arc<dyn PeFactory>] {
        &self.nodes
    }

    /// All connections.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Find a node by PE name.
    pub fn find_by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.meta().name == name).map(NodeId)
    }

    /// Initial PEs: nodes with no incoming connections. The execution
    /// engine uses this for its automatic initial-PE detection (paper §3.3).
    pub fn roots(&self) -> Vec<NodeId> {
        let targets: HashSet<NodeId> = self.connections.iter().map(|c| c.to).collect();
        (0..self.nodes.len()).map(NodeId).filter(|id| !targets.contains(id)).collect()
    }

    /// Intern every port name any node declares (plus the implicit
    /// `"input"` that drives data-fed producers). Called once at plan time;
    /// after this the enactment hot path never touches a port string.
    pub fn port_table(&self) -> PortTable {
        let mut table = PortTable::default();
        table.intern("input");
        for node in &self.nodes {
            let meta = node.meta();
            for p in &meta.inputs {
                table.intern(&p.name);
            }
            for p in &meta.outputs {
                table.intern(p);
            }
        }
        table
    }

    /// Terminal output ports: `(node, port)` pairs with no outgoing
    /// connection; their emissions are the workflow's observable output.
    pub fn terminal_ports(&self) -> Vec<(NodeId, String)> {
        let connected: HashSet<(NodeId, &str)> =
            self.connections.iter().map(|c| (c.from, c.from_port.as_str())).collect();
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for port in &node.meta().outputs {
                if !connected.contains(&(NodeId(i), port.as_str())) {
                    out.push((NodeId(i), port.clone()));
                }
            }
        }
        out
    }

    /// Validate the graph for enactment: non-empty, has at least one root
    /// producer, acyclic, and every non-root input port is fed.
    pub fn validate(&self) -> Result<(), DataflowError> {
        if self.nodes.is_empty() {
            return Err(DataflowError::Validation("workflow has no PEs".into()));
        }
        let roots = self.roots();
        if roots.is_empty() {
            return Err(DataflowError::Validation(
                "workflow has no initial PE (cycle at the sources)".into(),
            ));
        }
        for r in &roots {
            let meta = self.nodes[r.0].meta();
            if !meta.inputs.is_empty() {
                return Err(DataflowError::Validation(format!(
                    "initial PE '{}' declares input ports but nothing feeds them",
                    meta.name
                )));
            }
        }
        // Kahn's algorithm for cycle detection.
        let mut indeg = vec![0usize; self.nodes.len()];
        for c in &self.connections {
            indeg[c.to.0] += 1;
        }
        let mut queue: VecDeque<usize> =
            indeg.iter().enumerate().filter(|(_, d)| **d == 0).map(|(i, _)| i).collect();
        let mut seen = 0;
        while let Some(n) = queue.pop_front() {
            seen += 1;
            for c in self.connections.iter().filter(|c| c.from.0 == n) {
                indeg[c.to.0] -= 1;
                if indeg[c.to.0] == 0 {
                    queue.push_back(c.to.0);
                }
            }
        }
        if seen != self.nodes.len() {
            return Err(DataflowError::Validation("workflow graph contains a cycle".into()));
        }
        // Every input port of every non-root node must be connected.
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i);
            if roots.contains(&id) {
                continue;
            }
            for port in &node.meta().inputs {
                let fed = self.connections.iter().any(|c| c.to == id && c.to_port == port.name);
                if !fed {
                    return Err(DataflowError::Validation(format!(
                        "input port '{}.{}' is not connected",
                        node.meta().name,
                        port.name
                    )));
                }
            }
        }
        Ok(())
    }

    /// Topological order of node ids (valid graphs only).
    pub fn topo_order(&self) -> Result<Vec<NodeId>, DataflowError> {
        self.validate()?;
        let mut indeg = vec![0usize; self.nodes.len()];
        // Count distinct *edges* (a node pair may have several port pairs).
        for c in &self.connections {
            indeg[c.to.0] += 1;
        }
        let mut queue: VecDeque<usize> =
            indeg.iter().enumerate().filter(|(_, d)| **d == 0).map(|(i, _)| i).collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(n) = queue.pop_front() {
            order.push(NodeId(n));
            for c in self.connections.iter().filter(|c| c.from.0 == n) {
                indeg[c.to.0] -= 1;
                if indeg[c.to.0] == 0 {
                    queue.push_back(c.to.0);
                }
            }
        }
        Ok(order)
    }

    /// Build a graph from a LamScript `workflow` declaration plus the PE
    /// declarations in the same source (the serverless registration path).
    pub fn from_script(source: &str, workflow_name: &str) -> Result<Self, DataflowError> {
        Self::from_script_with_host(source, workflow_name, Arc::new(laminar_script::NullHost))
    }

    /// [`Self::from_script`] with a host for external services.
    pub fn from_script_with_host(
        source: &str,
        workflow_name: &str,
        host: Arc<dyn Host + Send + Sync>,
    ) -> Result<Self, DataflowError> {
        let script = parse_script(source).map_err(DataflowError::from)?;
        let decl: &WorkflowDecl = script
            .workflows()
            .find(|w| w.name == workflow_name)
            .ok_or_else(|| DataflowError::Graph(format!("source defines no workflow '{workflow_name}'")))?;
        let mut graph = WorkflowGraph::new(&decl.name);
        if let Some(doc) = &decl.doc {
            graph.set_description(doc.clone());
        }
        let mut alias_to_id: BTreeMap<String, NodeId> = BTreeMap::new();
        for node in &decl.nodes {
            if script.pe(&node.pe_name).is_none() {
                return Err(DataflowError::Graph(format!(
                    "workflow '{}' references undefined PE '{}'",
                    decl.name, node.pe_name
                )));
            }
            let factory = ScriptPeFactory::from_source_with_host(source, &node.pe_name, Arc::clone(&host))?;
            let id = graph.add(Arc::new(factory));
            alias_to_id.insert(node.alias.clone(), id);
        }
        for c in &decl.connects {
            let from = *alias_to_id
                .get(&c.from_node)
                .ok_or_else(|| DataflowError::Graph(format!("unknown node alias '{}'", c.from_node)))?;
            let to = *alias_to_id
                .get(&c.to_node)
                .ok_or_else(|| DataflowError::Graph(format!("unknown node alias '{}'", c.to_node)))?;
            graph.connect(from, &c.from_port, to, &c.to_port)?;
        }
        Ok(graph)
    }

    /// Render the abstract workflow in Graphviz DOT (the green graph of
    /// paper Figure 1).
    pub fn to_dot(&self) -> String {
        let mut out = String::from(
            "digraph abstract {\n  rankdir=LR;\n  node [shape=box, style=filled, fillcolor=palegreen];\n",
        );
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!("  n{} [label=\"{}\"];\n", i, n.meta().name));
        }
        for c in &self.connections {
            out.push_str(&format!(
                "  n{} -> n{} [label=\"{}->{}{}\"];\n",
                c.from.0,
                c.to.0,
                c.from_port,
                c.to_port,
                match c.grouping {
                    Grouping::GroupBy(k) => format!(" (groupby {k})"),
                    Grouping::OneToAll => " (one-to-all)".to_string(),
                    Grouping::AllToOne => " (all-to-one)".to_string(),
                    Grouping::Shuffle => String::new(),
                }
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pe::{consumer_fn, iterative_fn, producer_fn};
    use laminar_json::Value;

    fn three_stage() -> (WorkflowGraph, NodeId, NodeId, NodeId) {
        let mut g = WorkflowGraph::new("pipeline");
        let a = g.add(producer_fn("A", Value::Int));
        let b = g.add(iterative_fn("B", Some));
        let c = g.add(consumer_fn("C", |_, _| {}));
        g.connect(a, "output", b, "input").unwrap();
        g.connect(b, "output", c, "input").unwrap();
        (g, a, b, c)
    }

    #[test]
    fn roots_and_terminals() {
        let (g, a, _, _) = three_stage();
        assert_eq!(g.roots(), vec![a]);
        assert!(g.terminal_ports().is_empty(), "all ports connected, consumer has none");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn terminal_port_detection() {
        let mut g = WorkflowGraph::new("t");
        let a = g.add(producer_fn("A", Value::Int));
        let b = g.add(iterative_fn("B", Some));
        g.connect(a, "output", b, "input").unwrap();
        assert_eq!(g.terminal_ports(), vec![(b, "output".to_string())]);
    }

    #[test]
    fn bad_ports_rejected() {
        let mut g = WorkflowGraph::new("bad");
        let a = g.add(producer_fn("A", Value::Int));
        let b = g.add(iterative_fn("B", Some));
        assert!(g.connect(a, "nope", b, "input").is_err());
        assert!(g.connect(a, "output", b, "nope").is_err());
    }

    #[test]
    fn cycle_detected() {
        let mut g = WorkflowGraph::new("cycle");
        let a = g.add(producer_fn("A", Value::Int));
        let b = g.add(iterative_fn("B", Some));
        let c = g.add(iterative_fn("C", Some));
        g.connect(a, "output", b, "input").unwrap();
        g.connect(b, "output", c, "input").unwrap();
        // back edge c -> b
        g.connect(c, "output", b, "input").unwrap();
        assert!(matches!(g.validate(), Err(DataflowError::Validation(m)) if m.contains("cycle")));
    }

    #[test]
    fn unfed_input_detected() {
        let mut g = WorkflowGraph::new("unfed");
        let _a = g.add(producer_fn("A", Value::Int));
        let _b = g.add(iterative_fn("B", Some));
        // B has an input but no edge: it's a root with inputs → invalid.
        assert!(g.validate().is_err());
    }

    #[test]
    fn empty_graph_invalid() {
        let g = WorkflowGraph::new("empty");
        assert!(g.validate().is_err());
        assert!(g.is_empty());
    }

    #[test]
    fn topo_order_respects_edges() {
        let (g, a, b, c) = three_stage();
        let order = g.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|x| *x == id).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn groupby_inferred_from_port_decl() {
        let src = r#"
            pe Src : producer { output output; process { emit([iteration, 1]); } }
            pe Cnt : generic { input input groupby 0; output output; process { emit(input); } }
        "#;
        let mut g = WorkflowGraph::new("wc");
        let s = g.add_script_pe(src, "Src").unwrap();
        let c = g.add_script_pe(src, "Cnt").unwrap();
        g.connect(s, "output", c, "input").unwrap();
        assert_eq!(g.connections()[0].grouping, Grouping::GroupBy(0));
    }

    #[test]
    fn from_script_builds_graph() {
        let src = r#"
            pe NumberProducer : producer { output output; process { emit(randint(1, 1000)); } }
            pe IsPrime : iterative {
                input num; output output;
                process {
                    let i = 2;
                    let prime = num > 1;
                    while i * i <= num { if num % i == 0 { prime = false; break; } i = i + 1; }
                    if prime { emit(num); }
                }
            }
            pe PrintPrime : consumer {
                input num;
                process { print("the num", num, "is prime"); }
            }
            workflow IsPrimeWf {
                doc "Streams random numbers and prints the primes";
                nodes { p = NumberProducer; i = IsPrime; pr = PrintPrime; }
                connect p.output -> i.num;
                connect i.output -> pr.num;
            }
        "#;
        let g = WorkflowGraph::from_script(src, "IsPrimeWf").unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.name(), "IsPrimeWf");
        assert!(g.description().unwrap().contains("random numbers"));
        assert!(g.validate().is_ok());
        assert_eq!(g.roots().len(), 1);
        // Unknown workflow name
        assert!(WorkflowGraph::from_script(src, "Nope").is_err());
    }

    #[test]
    fn dot_rendering_mentions_nodes() {
        let (g, ..) = three_stage();
        let dot = g.to_dot();
        assert!(dot.contains("digraph abstract"));
        assert!(dot.contains("\"A\""));
        assert!(dot.contains("n0 -> n1"));
    }

    #[test]
    fn find_by_name() {
        let (g, a, ..) = three_stage();
        assert_eq!(g.find_by_name("A"), Some(a));
        assert_eq!(g.find_by_name("Z"), None);
    }
}
