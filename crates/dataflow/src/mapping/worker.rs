//! Shared per-instance execution machinery used by every mapping.
//!
//! An [`InstanceRunner`] wraps one PE instance together with its routing
//! tables. Mappings feed it data and deliver the routed emissions over
//! their own transport; terminal outputs, prints and counters leave the
//! worker loop as [`RunEvent`]s ([`run_worker`]) instead of accumulating
//! in per-instance buffers.
//!
//! # The zero-allocation datapath
//!
//! Steady-state enactment performs no per-datum port-name `String`
//! allocations and no per-destination deep copies:
//!
//! * Port names are interned into the plan's [`PortTable`] once; the hot
//!   path carries [`PortId`] indices ([`RoutedDatum`], [`TransportMsg`],
//!   [`Emissions`]) and an interning [`laminar_script::Sink`] resolves
//!   emitted names to ids without allocating.
//! * Payloads travel as [`SharedValue`] (`Arc<Value>`): fan-out clones a
//!   refcount, and the receiving instance recovers ownership zero-copy in
//!   the single-reference case ([`Value::unshare`]).
//! * Emission buffers ([`Emissions`]) are owned by the caller and reused
//!   across `process` calls; routers write destination indices into a
//!   scratch `Vec` ([`crate::routing::Router::route_into`]).
//! * Transports send one frame per destination per emission burst
//!   ([`Transport::send_batch`]), not one per datum.

use super::events::{EventSink, RunEvent};
use crate::error::DataflowError;
use crate::graph::{NodeId, WorkflowGraph};
use crate::pe::Pe;
use crate::planner::{ConcretePlan, InstanceId};
use crate::ports::{PortId, PortTable};
use crate::routing::{Grouping, Router};
use laminar_json::{SharedValue, Value};
use laminar_script::Sink;
use std::sync::Arc;

/// One outgoing edge from the perspective of a sender instance.
pub struct OutEdge {
    /// Source port on this PE.
    pub from_port: PortId,
    /// Destination node.
    pub to_node: NodeId,
    /// Destination input port.
    pub to_port: PortId,
    /// Stateful router over the destination's instances.
    pub router: Router,
}

/// A datum addressed to a concrete destination instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedDatum {
    /// Destination instance.
    pub dest: InstanceId,
    /// Destination input port (interned).
    pub port: PortId,
    /// Payload, refcounted so fan-out never deep-copies.
    pub value: SharedValue,
}

/// Emissions of one `process` call, classified. Owned by the enactment
/// loop and reused across calls (buffers are cleared, not reallocated).
#[derive(Debug, Default)]
pub struct Emissions {
    /// Data to forward to downstream instances.
    pub routed: Vec<RoutedDatum>,
    /// Terminal-port emissions `(port, value)`.
    pub collected: Vec<(PortId, Value)>,
    /// Captured print lines.
    pub printed: Vec<String>,
}

impl Emissions {
    fn clear(&mut self) {
        self.routed.clear();
        self.collected.clear();
        self.printed.clear();
    }
}

/// Per-instance stats counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InstanceStats {
    /// Data (or producer iterations) processed.
    pub processed: u64,
    /// Data emitted on any port.
    pub emitted: u64,
}

/// A [`Sink`] that resolves emitted port names against the interned
/// [`PortTable`] immediately — a hash lookup, never a `String` allocation.
/// Emissions on ports the graph never declared are dropped (they could
/// route nowhere), matching the classic behaviour for unconnected,
/// non-terminal ports.
struct InternSink {
    ports: Arc<PortTable>,
    emitted: Vec<(PortId, Value)>,
    /// Every `emit` call, including those dropped for undeclared ports —
    /// the `emitted` stat counts attempts, so a typo'd port name stays
    /// visible in diagnostics (emitted > delivered).
    emit_calls: u64,
    printed: Vec<String>,
}

impl Sink for InternSink {
    fn emit(&mut self, port: &str, value: Value) {
        self.emit_calls += 1;
        if let Some(pid) = self.ports.id(port) {
            self.emitted.push((pid, value));
        }
    }
    fn print(&mut self, text: &str) {
        self.printed.push(text.to_string());
    }
}

/// A PE instance plus its routing state.
pub struct InstanceRunner {
    /// Identity within the concrete plan.
    pub inst: InstanceId,
    /// PE name (for events/results/stats) — refcounted so the event
    /// stream carries it without allocating.
    pub node_name: Arc<str>,
    pe: Box<dyn Pe>,
    outgoing: Vec<OutEdge>,
    terminal_ports: Vec<PortId>,
    /// Number of upstream EOS signals this instance must observe before it
    /// can finish.
    pub expected_eos: usize,
    /// Stats counters.
    pub stats: InstanceStats,
    iteration: i64,
    sink: InternSink,
    ports: Arc<PortTable>,
    /// Interned `"input"`: the implicit port driving data-fed producers.
    input_port: PortId,
    /// Scratch for router destination indices, reused across datums.
    route_scratch: Vec<usize>,
}

impl InstanceRunner {
    /// Build the runner for instance `inst` under `plan`, running scripted
    /// PEs on the default backend (compiled VM when available).
    pub fn new(
        graph: &WorkflowGraph,
        plan: &ConcretePlan,
        inst: InstanceId,
    ) -> Result<InstanceRunner, DataflowError> {
        Self::with_backend(graph, plan, inst, false)
    }

    /// Like [`InstanceRunner::new`], but when `interpret` is set the PE is
    /// switched to its reference interpreter before setup
    /// ([`Pe::use_interpreter`]) — the oracle/fallback path behind
    /// [`super::RunOptions::interpret_scripts`].
    pub fn with_backend(
        graph: &WorkflowGraph,
        plan: &ConcretePlan,
        inst: InstanceId,
        interpret: bool,
    ) -> Result<InstanceRunner, DataflowError> {
        let ports = Arc::clone(plan.ports());
        let intern = |name: &str| {
            ports.id(name).ok_or_else(|| {
                DataflowError::Graph(format!("port '{name}' missing from the plan's port table"))
            })
        };
        let factory = graph.node(inst.node)?;
        let meta = factory.meta();
        let node_name: Arc<str> = Arc::from(meta.name.as_str());
        let mut outgoing = Vec::new();
        for c in graph.connections().iter().filter(|c| c.from == inst.node) {
            outgoing.push(OutEdge {
                from_port: intern(&c.from_port)?,
                to_node: c.to,
                to_port: intern(&c.to_port)?,
                router: Router::new(c.grouping, plan.count(c.to)),
            });
        }
        let connected: Vec<PortId> = outgoing.iter().map(|e| e.from_port).collect();
        let mut terminal_ports = Vec::new();
        for p in &meta.outputs {
            let pid = intern(p)?;
            if !connected.contains(&pid) {
                terminal_ports.push(pid);
            }
        }
        let expected_eos =
            graph.connections().iter().filter(|c| c.to == inst.node).map(|c| plan.count(c.from)).sum();
        let mut pe = factory.instantiate();
        if interpret {
            pe.use_interpreter();
        }
        let mut sink =
            InternSink { ports: Arc::clone(&ports), emitted: Vec::new(), emit_calls: 0, printed: Vec::new() };
        pe.setup(inst.index, plan.count(inst.node), &mut sink)?;
        // Anything emitted during setup would have nowhere to go; prints
        // are preserved.
        sink.emitted.clear();
        let input_port = intern("input")?;
        Ok(InstanceRunner {
            inst,
            node_name,
            pe,
            outgoing,
            terminal_ports,
            expected_eos,
            stats: InstanceStats::default(),
            iteration: 0,
            sink,
            ports,
            input_port,
            route_scratch: Vec::new(),
        })
    }

    /// The interned port table this runner resolves against.
    pub fn ports(&self) -> &Arc<PortTable> {
        &self.ports
    }

    /// Whether the instance is a source (no upstream edges).
    pub fn is_source(&self) -> bool {
        self.expected_eos == 0
    }

    /// Run one producer iteration (sources only), filling `out`.
    pub fn run_iteration(&mut self, datum: Option<Value>, out: &mut Emissions) -> Result<(), DataflowError> {
        let input = datum.map(|v| (self.input_port, v));
        self.invoke(input, out)
    }

    /// Process one incoming datum, filling `out`.
    pub fn run_datum(
        &mut self,
        port: PortId,
        value: Value,
        out: &mut Emissions,
    ) -> Result<(), DataflowError> {
        self.invoke(Some((port, value)), out)
    }

    fn invoke(&mut self, input: Option<(PortId, Value)>, out: &mut Emissions) -> Result<(), DataflowError> {
        out.clear();
        let it = self.iteration;
        self.iteration += 1;
        self.stats.processed += 1;
        self.sink.emitted.clear();
        self.sink.emit_calls = 0;
        let borrowed = input.map(|(p, v)| (self.ports.name(p), v));
        let result = self.pe.process(borrowed, it, &mut self.sink);
        std::mem::swap(&mut out.printed, &mut self.sink.printed);
        result?;
        self.stats.emitted += self.sink.emit_calls;
        let InstanceRunner { sink, outgoing, terminal_ports, route_scratch, .. } = self;
        for (pid, value) in sink.emitted.drain(..) {
            if !outgoing.iter().any(|e| e.from_port == pid) {
                if terminal_ports.contains(&pid) {
                    out.collected.push((pid, value));
                }
                continue;
            }
            // The payload is shared from here on: every destination holds a
            // refcount, and the (typical) sole receiver unwraps it zero-copy.
            let shared = value.into_shared();
            for edge in outgoing.iter_mut().filter(|e| e.from_port == pid) {
                route_scratch.clear();
                edge.router.route_into(&shared, route_scratch);
                for &dest_index in route_scratch.iter() {
                    out.routed.push(RoutedDatum {
                        dest: InstanceId { node: edge.to_node, index: dest_index },
                        port: edge.to_port,
                        value: SharedValue::clone(&shared),
                    });
                }
            }
        }
        Ok(())
    }

    /// Capture this instance's durable state for an epoch checkpoint:
    /// the PE's own snapshot (script `state.*` + RNG; `null` for native
    /// PEs), the invocation counter feeding the script-visible
    /// `iteration`, and the shuffle cursors of the outgoing routers. Must
    /// only be called at quiescence (no data in flight) — the round-based
    /// checkpoint driver guarantees that by draining each round to EOS.
    pub fn snapshot(&self) -> Value {
        let cursors = self.outgoing.iter().map(|e| Value::Int(e.router.cursor() as i64)).collect();
        let mut snap = Value::Null;
        snap.set("pe", self.pe.snapshot_state().unwrap_or(Value::Null))
            .set("iteration", self.iteration)
            .set("cursors", Value::Array(cursors));
        snap
    }

    /// Restore state captured by [`InstanceRunner::snapshot`] into a
    /// freshly built runner. The runner's `setup` (script `init`) has
    /// already run; the snapshot overwrites its effects, and any prints
    /// `init` produced are discarded — a restored instance is a
    /// continuation, not a fresh start. Stats counters stay at zero: each
    /// round reports its own deltas and the event fold sums them.
    pub fn restore(&mut self, snapshot: &Value) {
        if !snapshot["pe"].is_null() {
            self.pe.restore_state(&snapshot["pe"]);
        }
        self.iteration = snapshot["iteration"].as_i64().unwrap_or(0);
        if let Some(cursors) = snapshot["cursors"].as_array() {
            for (edge, c) in self.outgoing.iter_mut().zip(cursors) {
                if let Some(c) = c.as_i64() {
                    edge.router.set_cursor(c.max(0) as usize);
                }
            }
        }
        self.sink.printed.clear();
    }

    /// Downstream instances that must be told when this instance finishes:
    /// every instance of every successor node, once per outgoing edge.
    pub fn eos_targets(&self, plan: &ConcretePlan) -> Vec<InstanceId> {
        let mut out = Vec::new();
        for edge in &self.outgoing {
            for i in 0..plan.count(edge.to_node) {
                out.push(InstanceId { node: edge.to_node, index: i });
            }
        }
        out
    }

    /// Grouping of the first outgoing edge on `port` (used by tests).
    pub fn grouping_of(&self, port: &str) -> Option<Grouping> {
        let pid = self.ports.id(port)?;
        self.outgoing.iter().find(|e| e.from_port == pid).map(|e| e.router.grouping())
    }
}

/// Plan-level instance counts in node order — the payload of
/// [`RunEvent::PlanReady`].
pub fn plan_pes(graph: &WorkflowGraph, plan: &ConcretePlan) -> Vec<(Arc<str>, usize)> {
    graph
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, n)| (Arc::from(n.meta().name.as_str()), plan.count(NodeId(i))))
        .collect()
}

/// Convert one invocation's terminal emissions and prints into events,
/// appending to `events`. Shared by the sequential drain and the worker
/// loop.
pub(super) fn emissions_to_events(
    pe: &Arc<str>,
    instance: usize,
    ports: &PortTable,
    emissions: &mut Emissions,
    events: &mut Vec<RunEvent>,
) {
    for (pid, value) in emissions.collected.drain(..) {
        events.push(RunEvent::Output { pe: Arc::clone(pe), instance, port: ports.shared_name(pid), value });
    }
    for line in emissions.printed.drain(..) {
        events.push(RunEvent::Print { pe: Arc::clone(pe), instance, line });
    }
}

// ---------------------------------------------------------------------------
// Generic worker loop shared by the parallel mappings
// ---------------------------------------------------------------------------

/// A message as seen by a receiving instance.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportMsg {
    /// One emission burst for this instance: `(port, payload)` in send
    /// order. Senders group a burst by destination, so a batch always came
    /// from one `process` call of one upstream instance — per-edge FIFO
    /// order is the sort stability of [`drain_batch_groups`].
    Data(Vec<(PortId, SharedValue)>),
    /// One upstream instance finished.
    Eos,
}

/// The transport a parallel mapping provides to each worker.
pub trait Transport {
    /// Deliver one emission burst, draining `batch`. Implementations group
    /// the batch by destination ([`drain_batch_groups`]) and issue **one**
    /// transport frame per destination instead of one per datum.
    fn send_batch(&mut self, batch: &mut Vec<RoutedDatum>) -> Result<(), DataflowError>;
    /// Deliver an end-of-stream signal to another instance.
    fn send_eos(&mut self, dest: InstanceId) -> Result<(), DataflowError>;
    /// Block for the next message addressed to this instance.
    fn recv(&mut self) -> Result<TransportMsg, DataflowError>;
}

/// Group a routed burst by destination, preserving per-destination send
/// order (stable sort), and hand each group to `send`. Shared by every
/// transport's [`Transport::send_batch`].
pub fn drain_batch_groups(
    batch: &mut Vec<RoutedDatum>,
    mut send: impl FnMut(InstanceId, Vec<(PortId, SharedValue)>) -> Result<(), DataflowError>,
) -> Result<(), DataflowError> {
    // Stable sort: datums for the same destination keep their emission
    // order, which is exactly the per-edge FIFO guarantee.
    batch.sort_by_key(|d| d.dest);
    let mut items = batch.drain(..).peekable();
    while let Some(first) = items.next() {
        let dest = first.dest;
        let mut group = vec![(first.port, first.value)];
        while items.peek().is_some_and(|d| d.dest == dest) {
            let d = items.next().expect("peeked");
            group.push((d.port, d.value));
        }
        send(dest, group)?;
    }
    Ok(())
}

/// The window of *global* source iterations one [`run_worker`] call
/// drives: `[base, end)`, with `end = None` meaning run until cancelled.
/// A plain run uses the full window (`0 .. bounded_invocations()`); the
/// checkpoint driver slices the same global sequence into
/// `checkpoint_every`-sized rounds, so striping (`i % siblings`) and
/// `datum_for(i)` see identical indices either way.
#[derive(Debug, Clone, Copy)]
pub struct SourceRange {
    /// First global iteration of the window.
    pub base: usize,
    /// One past the last iteration, `None` for unbounded.
    pub end: Option<usize>,
}

impl SourceRange {
    /// The whole input as one window (the non-checkpointed path).
    pub fn full(options: &super::RunOptions) -> SourceRange {
        SourceRange { base: 0, end: options.bounded_invocations() }
    }
}

/// Drive one instance to completion over `transport`, emitting
/// [`RunEvent`]s as they happen.
///
/// Sources run the `range` window of global invocations (striped across
/// sibling source instances), then signal EOS downstream. Sinks/relays
/// consume data until every upstream instance has signalled EOS, then
/// propagate EOS. The runner is borrowed, not consumed, so the checkpoint
/// driver can snapshot it at the post-join quiescent point.
///
/// When the sink is live (an observer is attached) events are flushed into
/// it per emission burst, so downstream consumers see outputs while the
/// run is still in flight. Otherwise the worker buffers its events locally
/// and returns them for the runtime to fold at join time in dense-instance
/// order — the deterministic batch profile, with one sink lock per worker.
pub fn run_worker<T: Transport>(
    runner: &mut InstanceRunner,
    mut transport: T,
    plan: &ConcretePlan,
    options: &super::RunOptions,
    range: SourceRange,
    sink: &EventSink,
) -> Result<Vec<RunEvent>, DataflowError> {
    let pe = Arc::clone(&runner.node_name);
    let instance = runner.inst.index;
    let ports = Arc::clone(runner.ports());
    let live = sink.live();
    let mut events: Vec<RunEvent> = Vec::new();
    events.push(RunEvent::InstanceStarted { pe: Arc::clone(&pe), instance });
    if live {
        sink.extend(&mut events);
    }
    let mut emissions = Emissions::default();
    let send_delay = options.faults.delay_send;
    let deliver = |emissions: &mut Emissions,
                   transport: &mut T,
                   events: &mut Vec<RunEvent>|
     -> Result<(), DataflowError> {
        if !emissions.routed.is_empty() {
            // Injected latency seam: widen the in-flight window the epoch
            // quiescence drain has to absorb (chaos tests only).
            if let Some(d) = send_delay {
                std::thread::sleep(d);
            }
            transport.send_batch(&mut emissions.routed)?;
        }
        emissions_to_events(&pe, instance, &ports, emissions, events);
        Ok(())
    };

    let cancel = &options.cancel;
    // Outstanding upstream EOS signals, tracked outside the drive phase so
    // the failure wind-down below knows how much is left to drain.
    let mut remaining = runner.expected_eos;
    let mut drive = |runner: &mut InstanceRunner,
                     transport: &mut T,
                     events: &mut Vec<RunEvent>|
     -> Result<(), DataflowError> {
        if runner.is_source() {
            let siblings = plan.count(runner.inst.node);
            let my_index = runner.inst.index;
            let pace = options.pace();
            let mut i = range.base;
            // Cancellation is checked before every iteration: an unbounded
            // source ([`super::RunInput::Unbounded`]) ends *only* here, and a
            // bounded one stops early at an invocation boundary. Either way
            // the source falls through to normal EOS propagation below, so
            // downstream instances terminate cleanly.
            loop {
                if cancel.is_cancelled() {
                    break;
                }
                if range.end.is_some_and(|n| i >= n) {
                    break;
                }
                if i % siblings == my_index {
                    runner.run_iteration(options.datum_for(i), &mut emissions)?;
                    deliver(&mut emissions, transport, events)?;
                    if live {
                        sink.extend(events);
                        // Backpressure seam: sources (the rate-setters) park
                        // here when the observer's consumer is behind. Relay
                        // instances never throttle — they must keep draining
                        // so upstream EOS always lands (deadlock freedom).
                        sink.throttle();
                    }
                    if !pace.is_zero() && cancel.sleep_cancellable(pace) {
                        break; // cancelled mid-pace: don't run another iteration
                    }
                }
                i += 1;
            }
        } else {
            // Once cancellation is observed the instance stops *processing*
            // but keeps *draining*: in-flight data is discarded until every
            // upstream EOS arrives, so no peer ever blocks on a full or
            // closed channel and the shutdown stays deadlock-free.
            let mut discard = false;
            while remaining > 0 {
                match transport.recv()? {
                    TransportMsg::Data(items) => {
                        for (port, value) in items {
                            if !discard && cancel.is_cancelled() {
                                discard = true;
                            }
                            if discard {
                                continue;
                            }
                            runner.run_datum(port, Value::unshare(value), &mut emissions)?;
                            deliver(&mut emissions, transport, events)?;
                            if live {
                                sink.extend(events);
                            }
                        }
                    }
                    TransportMsg::Eos => remaining -= 1,
                }
            }
        }
        Ok(())
    };
    let failure = drive(runner, &mut transport, &mut events).err();
    if failure.is_some() {
        // A failing instance must not strand its peers: its receiver stays
        // open while it drains the remaining upstream EOS signals
        // (discarding data), and it still propagates EOS downstream before
        // surfacing the error. Without this wind-down a relay waiting on
        // the dead instance blocks in `recv` forever — every worker holds
        // senders to every channel (including its own), so the channel
        // never disconnects and the whole enactment deadlocks. Transport
        // errors during wind-down are secondary: the PE failure wins.
        while remaining > 0 {
            match transport.recv() {
                Ok(TransportMsg::Eos) => remaining -= 1,
                Ok(TransportMsg::Data(_)) => {}
                Err(_) => break,
            }
        }
    }
    for dest in runner.eos_targets(plan) {
        let sent = transport.send_eos(dest);
        if failure.is_none() {
            sent?;
        }
    }
    if let Some(e) = failure {
        return Err(e);
    }
    // A cancelled run makes no completeness claim: suppress the final
    // counters so the emitted stream stays a clean prefix (terminated by
    // the runtime's `Cancelled` marker, never by partial `instance_done`
    // events that would fold into misleading totals).
    if !cancel.is_cancelled() {
        events.push(RunEvent::InstanceFinished {
            pe,
            instance,
            processed: runner.stats.processed,
            emitted: runner.stats.emitted,
        });
        if live {
            sink.extend(&mut events);
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WorkflowGraph;
    use crate::pe::{iterative_fn, producer_fn};

    fn graph_and_plan() -> (WorkflowGraph, ConcretePlan) {
        let mut g = WorkflowGraph::new("t");
        let a = g.add(producer_fn("A", Value::Int));
        let b = g.add(iterative_fn("B", Some));
        g.connect(a, "output", b, "input").unwrap();
        let plan = ConcretePlan::distribute(&g, 3).unwrap();
        (g, plan)
    }

    fn run_iter(runner: &mut InstanceRunner, datum: Option<Value>) -> Emissions {
        let mut e = Emissions::default();
        runner.run_iteration(datum, &mut e).unwrap();
        e
    }

    #[test]
    fn source_runner_routes_round_robin() {
        let (g, plan) = graph_and_plan();
        assert_eq!(plan.instances, vec![1, 2]);
        let mut runner = InstanceRunner::new(&g, &plan, InstanceId { node: NodeId(0), index: 0 }).unwrap();
        assert!(runner.is_source());
        let e1 = run_iter(&mut runner, None);
        let e2 = run_iter(&mut runner, None);
        assert_eq!(e1.routed[0].dest.index, 0);
        assert_eq!(e2.routed[0].dest.index, 1);
        assert_eq!(e1.routed[0].port, plan.ports().id("input").unwrap());
        assert_eq!(runner.stats.processed, 2);
        assert_eq!(runner.stats.emitted, 2);
    }

    #[test]
    fn terminal_collection() {
        let (g, plan) = graph_and_plan();
        let mut b = InstanceRunner::new(&g, &plan, InstanceId { node: NodeId(1), index: 0 }).unwrap();
        assert!(!b.is_source());
        assert_eq!(b.expected_eos, 1);
        let mut e = Emissions::default();
        let input = plan.ports().id("input").unwrap();
        b.run_datum(input, Value::Int(7), &mut e).unwrap();
        assert!(e.routed.is_empty());
        let output = plan.ports().id("output").unwrap();
        assert_eq!(e.collected, vec![(output, Value::Int(7))]);
    }

    #[test]
    fn eos_targets_cover_all_downstream_instances() {
        let (g, plan) = graph_and_plan();
        let a = InstanceRunner::new(&g, &plan, InstanceId { node: NodeId(0), index: 0 }).unwrap();
        let targets = a.eos_targets(&plan);
        assert_eq!(targets.len(), 2);
        assert!(targets.iter().all(|t| t.node == NodeId(1)));
    }

    #[test]
    fn iteration_counter_feeds_producer() {
        let (g, plan) = graph_and_plan();
        let mut a = InstanceRunner::new(&g, &plan, InstanceId { node: NodeId(0), index: 0 }).unwrap();
        let e1 = run_iter(&mut a, None);
        let e2 = run_iter(&mut a, None);
        assert_eq!(*e1.routed[0].value, Value::Int(0));
        assert_eq!(*e2.routed[0].value, Value::Int(1));
    }

    #[test]
    fn steady_state_interns_nothing_new() {
        // The port table is sealed at plan time: a thousand datums through
        // the interned path leave it untouched (no name is ever re-interned,
        // let alone allocated per datum).
        let (g, plan) = graph_and_plan();
        let before = plan.ports().len();
        let mut a = InstanceRunner::new(&g, &plan, InstanceId { node: NodeId(0), index: 0 }).unwrap();
        let mut e = Emissions::default();
        for _ in 0..1000 {
            a.run_iteration(None, &mut e).unwrap();
        }
        assert_eq!(plan.ports().len(), before);
        assert_eq!(a.stats.processed, 1000);
    }

    #[test]
    fn emitted_stat_counts_undeclared_port_attempts() {
        use crate::pe::NativePeFactory;
        use laminar_script::PeKind;
        let meta = crate::pe::PeMeta {
            name: "Typo".into(),
            kind: PeKind::Producer,
            inputs: vec![],
            outputs: vec!["output".into()],
            source: None,
            imports: vec![],
            description: None,
            stateful: false,
        };
        let factory = NativePeFactory::new(meta, || {
            Box::new(|_input, _it, out| {
                out.emit("output", Value::Int(1));
                out.emit("outptu", Value::Int(2)); // typo'd port: dropped, but counted
                Ok(())
            })
        });
        let mut g = WorkflowGraph::new("typo");
        g.add(factory);
        let plan = ConcretePlan::sequential(&g).unwrap();
        let mut r = InstanceRunner::new(&g, &plan, InstanceId { node: NodeId(0), index: 0 }).unwrap();
        let e = run_iter(&mut r, None);
        // Only the declared port's datum is delivered...
        assert_eq!(e.collected.len(), 1);
        // ...but both emit attempts are visible in the stats, so the typo
        // shows up as emitted > delivered instead of vanishing.
        assert_eq!(r.stats.emitted, 2);
    }

    #[test]
    fn fanout_shares_one_payload() {
        use crate::routing::Grouping;
        let mut g = WorkflowGraph::new("bc");
        let a = g.add(producer_fn("A", Value::Int));
        let b = g.add(iterative_fn("B", Some));
        g.connect_grouped(a, "output", b, "input", Grouping::OneToAll).unwrap();
        let plan = ConcretePlan::distribute(&g, 4).unwrap();
        let mut runner = InstanceRunner::new(&g, &plan, InstanceId { node: NodeId(0), index: 0 }).unwrap();
        let e = run_iter(&mut runner, None);
        assert_eq!(e.routed.len(), plan.count(NodeId(1)));
        // Broadcast clones the refcount, not the tree.
        for pair in e.routed.windows(2) {
            assert!(SharedValue::ptr_eq(&pair[0].value, &pair[1].value));
        }
    }

    #[test]
    fn batch_groups_preserve_order_per_destination() {
        let ports = {
            let mut t = PortTable::default();
            t.intern("input");
            t
        };
        let input = ports.id("input").unwrap();
        let inst = |n: usize, i: usize| InstanceId { node: NodeId(n), index: i };
        let mut batch: Vec<RoutedDatum> = [(1, 0, 10), (1, 1, 11), (1, 0, 12), (1, 1, 13), (2, 0, 14)]
            .iter()
            .map(|&(n, i, v)| RoutedDatum {
                dest: inst(n, i),
                port: input,
                value: Value::Int(v).into_shared(),
            })
            .collect();
        let mut groups = Vec::new();
        drain_batch_groups(&mut batch, |dest, items| {
            groups.push((dest, items.iter().map(|(_, v)| v.as_i64().unwrap()).collect::<Vec<_>>()));
            Ok(())
        })
        .unwrap();
        assert!(batch.is_empty());
        assert_eq!(
            groups,
            vec![(inst(1, 0), vec![10, 12]), (inst(1, 1), vec![11, 13]), (inst(2, 0), vec![14]),]
        );
    }
}
